"""Streaming service metrics: log-bucketed histograms, labeled families.

The simulator side of the stack already has first-class counters
(:mod:`repro.gpusim.profiler`); this module gives the *serving* side
the same treatment.  Three instrument kinds live in a
:class:`MetricsRegistry`, each addressable by a metric name plus a
label set (``observe("latency", 0.01, served="warm")``):

- **Counters** — monotonic integer totals.
- **Gauges** — last-value measurements.
- **Histograms** — :class:`Histogram`, a streaming log-bucketed
  distribution sketch: constant memory (one integer per *occupied*
  bucket), exact ``count``/``sum``/``min``/``max``, and quantiles with
  a guaranteed relative error bound.

Design constraints, in priority order:

1. **Bit-deterministic bucket boundaries.**  Bucket ``i`` covers
   ``(2**((i-1)/SUBBUCKETS), 2**(i/SUBBUCKETS)]``.  Boundaries are a
   pure function of the integer index — never of the data — so two
   histograms built in different processes bucket identically and a
   merged sketch is indistinguishable from one built in a single
   process (the cross-process contract the experiment service relies
   on when workers ship their deltas back to the parent).
2. **Mergeable.**  :meth:`Histogram.merge` adds bucket counts;
   bucket counts, ``count``, ``min``, ``max`` — and therefore every
   quantile — are exactly associative under merge (integer adds and
   min/max).  ``sum`` is a float accumulation and is associative only
   up to ULP-level rounding; tests pin the former bit-exactly and
   bound the latter.
3. **Bounded quantile error.**  :meth:`Histogram.quantile` returns the
   upper boundary of the bucket holding the rank-``ceil(q*n)`` sample
   (capped at the exact ``max``).  The true sample lies in that
   bucket, so the estimate overshoots by at most a factor of
   ``GROWTH``: relative error < :data:`RELATIVE_ERROR` (~4.4% with 16
   sub-buckets per octave), verified against exact numpy percentiles
   by property tests.

:func:`render_prometheus` serializes a registry in the Prometheus text
exposition format (histograms as cumulative ``_bucket``/``_sum``/
``_count`` series); :func:`parse_prometheus` reads it back, which is
how ``runner watch`` and the CI scrape assert on live services.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

#: Buckets per power of two.  16 sub-buckets give a bucket-width growth
#: factor of 2**(1/16) ~= 1.0443 -> quantile relative error < 4.43%.
SUBBUCKETS = 16

#: Multiplicative width of one bucket: upper/lower boundary ratio.
GROWTH = 2.0 ** (1.0 / SUBBUCKETS)

#: Guaranteed bound on quantile relative error (see module docstring).
RELATIVE_ERROR = GROWTH - 1.0

#: Index clamp keeping ``2**(i/SUBBUCKETS)`` inside the float range.
_MAX_INDEX = 1023 * SUBBUCKETS
_MIN_INDEX = -1074 * SUBBUCKETS

_LABELS_NONE: Tuple[Tuple[str, str], ...] = ()


def bucket_bound(index: int) -> float:
    """Upper boundary of bucket ``index``: ``2**(index/SUBBUCKETS)``.

    A pure function of the integer index — the source of the
    bit-deterministic boundary guarantee.
    """
    return 2.0 ** (index / SUBBUCKETS)


def bucket_index(value: float) -> int:
    """The bucket holding ``value`` (> 0): smallest ``i`` with
    ``bucket_bound(i) >= value``.

    ``log2`` seeds the search; the correction loops make the result
    exact at bucket boundaries regardless of libm rounding, so the
    index is a deterministic function of the value alone.
    """
    i = math.ceil(SUBBUCKETS * math.log2(value))
    while bucket_bound(i) < value:
        i += 1
    while i > _MIN_INDEX and bucket_bound(i - 1) >= value:
        i -= 1
    return max(_MIN_INDEX, min(_MAX_INDEX, i))


class Histogram:
    """A mergeable streaming distribution sketch (see module docstring).

    Values ``<= 0`` land in a dedicated underflow bucket with upper
    boundary ``0.0`` (latencies are positive; the bucket exists so a
    clock hiccup cannot crash the collector or poison an index).
    """

    __slots__ = ("buckets", "zero", "count", "sum", "min", "max")

    def __init__(self):
        self.buckets: Dict[int, int] = {}
        self.zero = 0          # observations <= 0
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        v = float(value)
        self.count += 1
        self.sum += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        if v <= 0.0:
            self.zero += 1
        else:
            i = bucket_index(v)
            self.buckets[i] = self.buckets.get(i, 0) + 1

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into this sketch in place; returns self.

        Bucket counts, ``count``, ``min``, ``max`` merge exactly
        (associative); ``sum`` is float addition.
        """
        for i, c in other.buckets.items():
            self.buckets[i] = self.buckets.get(i, 0) + c
        self.zero += other.zero
        self.count += other.count
        self.sum += other.sum
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        return self

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the ``q``-quantile (``q`` in [0, 1]).

        Returns the upper boundary of the bucket containing the
        rank-``ceil(q*count)`` sample, capped at the exact maximum, so
        the estimate ``b`` and the true sample ``v`` satisfy
        ``v <= b < v * GROWTH``.  0.0 for an empty histogram.
        """
        if self.count == 0:
            return 0.0
        rank = min(self.count, max(1, math.ceil(q * self.count)))
        seen = self.zero
        if rank <= seen:
            return min(0.0, self.max)
        for i in sorted(self.buckets):
            seen += self.buckets[i]
            if seen >= rank:
                return min(bucket_bound(i), self.max)
        return self.max  # pragma: no cover — counts always sum to count

    def cumulative(self) -> List[Tuple[float, int]]:
        """Sorted ``(upper_bound, cumulative_count)`` pairs.

        The Prometheus ``_bucket`` series: every occupied boundary in
        increasing order, ending with ``(inf, count)``.
        """
        out: List[Tuple[float, int]] = []
        running = 0
        if self.zero:
            running += self.zero
            out.append((0.0, running))
        for i in sorted(self.buckets):
            running += self.buckets[i]
            out.append((bucket_bound(i), running))
        out.append((math.inf, self.count))
        return out

    # -- wire format -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe encoding; floats round-trip bit-exactly."""
        return {
            "buckets": {str(i): c for i, c in sorted(self.buckets.items())},
            "zero": self.zero,
            "count": self.count,
            "sum": self.sum,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
        }

    @classmethod
    def from_dict(cls, body: Mapping[str, Any]) -> "Histogram":
        h = cls()
        h.buckets = {int(i): int(c) for i, c in body["buckets"].items()}
        h.zero = int(body["zero"])
        h.count = int(body["count"])
        h.sum = float(body["sum"])
        h.min = math.inf if body["min"] is None else float(body["min"])
        h.max = -math.inf if body["max"] is None else float(body["max"])
        return h

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return (
            f"Histogram(count={self.count}, "
            f"p50={self.quantile(0.5):.6g}, "
            f"p99={self.quantile(0.99):.6g}, "
            f"max={(self.max if self.count else 0.0):.6g})"
        )


def _label_key(labels: Mapping[str, Any]) -> Tuple[Tuple[str, str], ...]:
    if not labels:
        return _LABELS_NONE
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Labeled metric families: counters, gauges, histograms.

    One registry per process/service; instruments are created lazily on
    first touch.  Not thread-safe by design — the service mutates it
    only from its event loop, and cross-process deltas arrive as
    :meth:`to_dict` payloads folded in with :meth:`merge`.
    """

    def __init__(self):
        self.counters: Dict[str, Dict[Tuple, int]] = {}
        self.gauges: Dict[str, Dict[Tuple, float]] = {}
        self.histograms: Dict[str, Dict[Tuple, Histogram]] = {}

    # -- instruments -----------------------------------------------------
    def inc(self, name: str, n: int = 1, **labels) -> None:
        fam = self.counters.setdefault(name, {})
        key = _label_key(labels)
        fam[key] = fam.get(key, 0) + n

    def sync_counter(self, name: str, value: int, **labels) -> None:
        """Set a counter's absolute total (for externally-kept tallies).

        The service's always-on :class:`ServiceStats` integers are the
        source of truth for request accounting; at scrape time they are
        synced here so one renderer covers everything.
        """
        self.counters.setdefault(name, {})[_label_key(labels)] = int(value)

    def set_gauge(self, name: str, value: float, **labels) -> None:
        self.gauges.setdefault(name, {})[_label_key(labels)] = float(value)

    def observe(self, name: str, value: float, **labels) -> None:
        self.histogram(name, **labels).observe(value)

    def histogram(self, name: str, **labels) -> Histogram:
        fam = self.histograms.setdefault(name, {})
        key = _label_key(labels)
        hist = fam.get(key)
        if hist is None:
            hist = fam[key] = Histogram()
        return hist

    # -- reads -----------------------------------------------------------
    def counter_value(self, name: str, **labels) -> int:
        return self.counters.get(name, {}).get(_label_key(labels), 0)

    def counter_total(self, name: str) -> int:
        """Sum of a counter family across all label sets."""
        return sum(self.counters.get(name, {}).values())

    # -- wire format -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "counters": {
                name: [[dict(key), value] for key, value in sorted(fam.items())]
                for name, fam in sorted(self.counters.items())
            },
            "gauges": {
                name: [[dict(key), value] for key, value in sorted(fam.items())]
                for name, fam in sorted(self.gauges.items())
            },
            "histograms": {
                name: [[dict(key), hist.to_dict()]
                       for key, hist in sorted(fam.items())]
                for name, fam in sorted(self.histograms.items())
            },
        }

    @classmethod
    def from_dict(cls, body: Mapping[str, Any]) -> "MetricsRegistry":
        reg = cls()
        reg.merge(body)
        return reg

    def merge(self, body: Mapping[str, Any]) -> None:
        """Fold a :meth:`to_dict` payload in: counters and histogram
        buckets add, gauges take the incoming (latest) value."""
        for name, entries in body.get("counters", {}).items():
            for labels, value in entries:
                self.inc(name, int(value), **labels)
        for name, entries in body.get("gauges", {}).items():
            for labels, value in entries:
                self.set_gauge(name, value, **labels)
        for name, entries in body.get("histograms", {}).items():
            for labels, hist_body in entries:
                self.histogram(name, **labels).merge(
                    Histogram.from_dict(hist_body)
                )


# ----------------------------------------------------------------------
# Prometheus text exposition format
# ----------------------------------------------------------------------
def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _unescape(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _labels_text(key: Iterable[Tuple[str, str]],
                 extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(key)
    if extra is not None:
        pairs = pairs + [extra]
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    if isinstance(value, int):
        return str(value)
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    # repr round-trips Python floats exactly; the parser reads float().
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (sorted, stable)."""
    lines: List[str] = []
    for name in sorted(registry.counters):
        lines.append(f"# TYPE {name} counter")
        for key, value in sorted(registry.counters[name].items()):
            lines.append(f"{name}{_labels_text(key)} {_fmt(value)}")
    for name in sorted(registry.gauges):
        lines.append(f"# TYPE {name} gauge")
        for key, value in sorted(registry.gauges[name].items()):
            lines.append(f"{name}{_labels_text(key)} {_fmt(value)}")
    for name in sorted(registry.histograms):
        lines.append(f"# TYPE {name} histogram")
        for key, hist in sorted(registry.histograms[name].items()):
            for bound, cum in hist.cumulative():
                le = "+Inf" if bound == math.inf else _fmt(bound)
                lines.append(
                    f"{name}_bucket{_labels_text(key, ('le', le))} {cum}"
                )
            lines.append(f"{name}_sum{_labels_text(key)} {_fmt(hist.sum)}")
            lines.append(f"{name}_count{_labels_text(key)} {hist.count}")
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

#: Parsed exposition: name -> {sorted-label-tuple -> value}.
Parsed = Dict[str, Dict[Tuple[Tuple[str, str], ...], float]]


def parse_prometheus(text: str) -> Parsed:
    """Parse text exposition back into ``name -> {labels -> value}``.

    Raises ``ValueError`` on a malformed sample line; comments and
    blank lines are skipped.  Histogram series come back as their
    component samples (``<name>_bucket`` with an ``le`` label,
    ``<name>_sum``, ``<name>_count``) — see :func:`histogram_buckets`.
    """
    out: Parsed = {}
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if not m:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        name, labels_text, value_text = m.groups()
        labels: Dict[str, str] = {}
        if labels_text:
            for lm in _LABEL_RE.finditer(labels_text):
                labels[lm.group(1)] = _unescape(lm.group(2))
        try:
            value = float(value_text)
        except ValueError:
            raise ValueError(
                f"line {lineno}: bad value {value_text!r}"
            ) from None
        out.setdefault(name, {})[_label_key(labels)] = value
    return out


def exposition_value(parsed: Parsed, name: str, **labels) -> float:
    """One sample's value; raises ``KeyError`` when absent."""
    return parsed[name][_label_key(labels)]


def histogram_buckets(parsed: Parsed, name: str,
                      **labels) -> List[Tuple[float, int]]:
    """Reassemble a histogram's cumulative buckets from parsed samples.

    ``labels`` are the series labels *without* ``le``.  Returns sorted
    ``(upper_bound, cumulative_count)`` pairs (``+Inf`` last); empty
    when the series is absent.
    """
    want = dict(_label_key(labels))
    out: List[Tuple[float, int]] = []
    for key, value in parsed.get(f"{name}_bucket", {}).items():
        kd = dict(key)
        le = kd.pop("le", None)
        if le is None or kd != want:
            continue
        out.append((float(le), int(value)))
    out.sort()
    return out


def quantile_from_buckets(buckets: List[Tuple[float, int]],
                          q: float) -> float:
    """Quantile estimate from cumulative ``(bound, count)`` pairs.

    The scrape-side twin of :meth:`Histogram.quantile` (without the
    exact-max cap, which does not travel through the exposition
    format): the first boundary whose cumulative count reaches
    ``ceil(q * total)``.
    """
    if not buckets:
        return 0.0
    total = buckets[-1][1]
    if total <= 0:
        return 0.0
    rank = min(total, max(1, math.ceil(q * total)))
    for bound, cum in buckets:
        if cum >= rank:
            return bound
    return buckets[-1][0]  # pragma: no cover
