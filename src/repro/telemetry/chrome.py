"""Export JSONL telemetry traces to the Chrome Trace Event format.

``chrome://tracing`` and https://ui.perfetto.dev consume the *Trace
Event Format* — a JSON object with a ``traceEvents`` array.  The
mapping from the repro schema (docs/TELEMETRY.md) is:

==============  =======================================================
repro event     Chrome event
==============  =======================================================
``meta``        ``M`` (process/thread name metadata)
``span_open``   paired with its close into one ``X`` (complete) event;
                a span that never closed becomes a ``B`` (begin) event
``span_close``  consumed by the pairing above
``counter``     ``C`` (counter) sample; at its own ``ts`` when the event
                carries one (mid-session :func:`~repro.telemetry
                .sample_counters` samples, stop totals), else at the end
                of the timeline — so cumulative counter *evolution*
                renders as a stepped track in Perfetto
``gauge``       same placement rule as ``counter``
==============  =======================================================

Timestamps are microseconds (the format's unit) measured from session
start; span attributes travel in ``args``.  Everything is a plain
structural transform of an already-parsed trace, so a trace captured by
a crashed session (``allow_truncated``) still exports.

A second **simulated-cycles clock domain** renders GPU profiles
(:class:`repro.gpusim.profiler.AppProfile`) as launch/SM/channel
timelines: :func:`gpu_timeline_events` lays each app out in its own
process with 1 simulated cycle = 1 µs, and :func:`profiles_to_chrome`
writes a standalone Perfetto-loadable document.  Host wall-time and
simulated-cycle processes never share a pid, so the two time bases
cannot be confused on one track.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence


def chrome_events(
    events: List[Dict[str, Any]], pid: int = 0
) -> List[Dict[str, Any]]:
    """Transform parsed repro events into Trace Event dicts."""
    out: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": "repro"},
    }]
    opens: Dict[str, Dict[str, Any]] = {}
    closes: Dict[str, Dict[str, Any]] = {}
    end_us = 0.0
    for event in events:
        ev = event.get("ev")
        if ev == "span_open":
            opens[event["id"]] = event
            end_us = max(end_us, event["ts"] * 1e6)
        elif ev == "span_close":
            closes[event["id"]] = event
    for span_id, open_ev in opens.items():
        ts_us = open_ev["ts"] * 1e6
        args = dict(open_ev.get("attrs", {}))
        args["span_id"] = span_id
        close_ev = closes.get(span_id)
        if close_ev is None:
            out.append({
                "name": open_ev["name"], "ph": "B", "ts": ts_us,
                "pid": pid, "tid": 0, "args": args,
            })
            continue
        dur_us = close_ev["dur_s"] * 1e6
        end_us = max(end_us, ts_us + dur_us)
        if not close_ev.get("ok", True):
            args["error"] = True
        out.append({
            "name": open_ev["name"], "ph": "X", "ts": ts_us,
            "dur": dur_us, "pid": pid, "tid": 0, "args": args,
        })
    for event in events:
        if event.get("ev") in ("counter", "gauge"):
            ts_us = (
                event["ts"] * 1e6 if "ts" in event else end_us
            )
            out.append({
                "name": event["name"], "ph": "C", "ts": ts_us,
                "pid": pid, "tid": 0,
                "args": {"value": event["value"]},
            })
    return out


# ----------------------------------------------------------------------
# Simulated-cycles clock domain (GPU profiles)
# ----------------------------------------------------------------------
def gpu_timeline_events(profile, pid: int = 1) -> List[Dict[str, Any]]:
    """Trace events for one app profile, in simulated cycles (1 cy = 1 µs).

    ``profile`` is a :class:`repro.gpusim.profiler.AppProfile` (duck
    typed to keep this module importable without gpusim).  Layout, one
    Chrome *process* per app:

    - tid 0 — the launch stream: one ``X`` per launch (overhead +
      body), bound/stall mix in ``args``;
    - tid 1..effective_sms — SM lanes: an ``X`` spanning each launch's
      body on every SM the grid actually filled;
    - tid 64+ch — memory channels: an ``X`` sized by that channel's
      transaction service time, so channel imbalance is visible as
      ragged right edges;
    - ``C`` tracks of per-launch counters (DRAM bytes, resident warps)
      stepping at each launch boundary.
    """
    cfg = profile.config
    from repro.gpusim.profiler import cycles_per_transaction

    cy_per_tx = cycles_per_transaction(cfg)
    out: List[Dict[str, Any]] = [
        {
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": f"gpusim:{profile.app_name} "
                             f"({cfg.name}, simulated cycles)"},
        },
        {
            "name": "thread_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": "launches"},
        },
    ]
    named_sms: set = set()
    named_channels: set = set()
    cursor = 0.0
    for cs in profile.counters:
        overhead = cs.cycles - cs.body_cycles
        body_start = cursor + overhead
        out.append({
            "name": cs.kernel_name, "ph": "X", "ts": cursor,
            "dur": cs.cycles, "pid": pid, "tid": 0,
            "args": {
                "launch": cs.launch_index,
                "bound": cs.bound,
                "bound_margin": cs.bound_margin,
                "blocks": cs.n_blocks,
                "resident_warps": cs.resident_warps,
                "waves": cs.waves,
                "stall_issue": cs.stalls["issue"],
                "stall_bandwidth": cs.stalls["bandwidth"],
                "stall_latency": cs.stalls["latency"],
                "roofline": cs.roofline,
            },
        })
        for sm in range(cs.effective_sms):
            tid = 1 + sm
            if tid not in named_sms:
                named_sms.add(tid)
                out.append({
                    "name": "thread_name", "ph": "M", "pid": pid,
                    "tid": tid, "args": {"name": f"SM{sm}"},
                })
            out.append({
                "name": cs.kernel_name, "ph": "X", "ts": body_start,
                "dur": cs.body_cycles, "pid": pid, "tid": tid,
                "args": {"launch": cs.launch_index},
            })
        for ch, n_tx in enumerate(cs.channel_transactions):
            if n_tx == 0:
                continue
            tid = 64 + ch
            if tid not in named_channels:
                named_channels.add(tid)
                out.append({
                    "name": "thread_name", "ph": "M", "pid": pid,
                    "tid": tid, "args": {"name": f"DRAM ch{ch}"},
                })
            out.append({
                "name": f"{cs.kernel_name} tx", "ph": "X",
                "ts": body_start, "dur": n_tx * cy_per_tx,
                "pid": pid, "tid": tid,
                "args": {"transactions": n_tx},
            })
        end = cursor + cs.cycles
        for cname, value in (
            ("dram_bytes", cs.dram_bytes),
            ("resident_warps", cs.resident_warps),
            ("issued_warp_insts", cs.issued_warp_insts),
        ):
            out.append({
                "name": cname, "ph": "C", "ts": end, "pid": pid,
                "tid": 0, "args": {"value": value},
            })
        cursor = end
    return out


def profiles_to_chrome(profiles: Sequence[Any], out_path: str) -> str:
    """Write app profiles as one Perfetto-loadable Trace Event document.

    Each profile gets its own process (pid 1, 2, ...) on the
    simulated-cycles clock; returns ``out_path``.
    """
    events: List[Dict[str, Any]] = []
    for i, profile in enumerate(profiles):
        events.extend(gpu_timeline_events(profile, pid=1 + i))
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.gpusim.profiler",
            "clock": "simulated_cycles (1 cycle = 1 us)",
        },
    }
    parent = os.path.dirname(out_path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, separators=(",", ":"))
        fh.write("\n")
    return out_path


def trace_to_chrome(trace_path: str, out_path: Optional[str] = None) -> str:
    """Convert a JSONL trace file; returns the output path.

    ``out_path`` defaults to the trace path with a ``.chrome.json``
    suffix.  Truncated final lines (crashed writer) are tolerated.
    """
    from repro.telemetry import SCHEMA_VERSION, parse_trace

    events = parse_trace(trace_path, allow_truncated=True)
    if out_path is None:
        out_path = os.path.splitext(trace_path)[0] + ".chrome.json"
    document = {
        "traceEvents": chrome_events(events),
        "displayTimeUnit": "ms",
        "otherData": {"source": trace_path, "schema_version": SCHEMA_VERSION},
    }
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, separators=(",", ":"))
        fh.write("\n")
    return out_path
