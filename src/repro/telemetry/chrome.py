"""Export JSONL telemetry traces to the Chrome Trace Event format.

``chrome://tracing`` and https://ui.perfetto.dev consume the *Trace
Event Format* — a JSON object with a ``traceEvents`` array.  The
mapping from the repro schema (docs/TELEMETRY.md) is:

==============  =======================================================
repro event     Chrome event
==============  =======================================================
``meta``        ``M`` (process/thread name metadata)
``span_open``   paired with its close into one ``X`` (complete) event;
                a span that never closed becomes a ``B`` (begin) event
``span_close``  consumed by the pairing above
``counter``     ``C`` (counter) sample at the end of the timeline
``gauge``       ``C`` sample at the end of the timeline
==============  =======================================================

Timestamps are microseconds (the format's unit) measured from session
start; span attributes travel in ``args``.  Everything is a plain
structural transform of an already-parsed trace, so a trace captured by
a crashed session (``allow_truncated``) still exports.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional


def chrome_events(
    events: List[Dict[str, Any]], pid: int = 0
) -> List[Dict[str, Any]]:
    """Transform parsed repro events into Trace Event dicts."""
    out: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": "repro"},
    }]
    opens: Dict[str, Dict[str, Any]] = {}
    closes: Dict[str, Dict[str, Any]] = {}
    end_us = 0.0
    for event in events:
        ev = event.get("ev")
        if ev == "span_open":
            opens[event["id"]] = event
            end_us = max(end_us, event["ts"] * 1e6)
        elif ev == "span_close":
            closes[event["id"]] = event
    for span_id, open_ev in opens.items():
        ts_us = open_ev["ts"] * 1e6
        args = dict(open_ev.get("attrs", {}))
        args["span_id"] = span_id
        close_ev = closes.get(span_id)
        if close_ev is None:
            out.append({
                "name": open_ev["name"], "ph": "B", "ts": ts_us,
                "pid": pid, "tid": 0, "args": args,
            })
            continue
        dur_us = close_ev["dur_s"] * 1e6
        end_us = max(end_us, ts_us + dur_us)
        if not close_ev.get("ok", True):
            args["error"] = True
        out.append({
            "name": open_ev["name"], "ph": "X", "ts": ts_us,
            "dur": dur_us, "pid": pid, "tid": 0, "args": args,
        })
    for event in events:
        if event.get("ev") in ("counter", "gauge"):
            out.append({
                "name": event["name"], "ph": "C", "ts": end_us,
                "pid": pid, "tid": 0,
                "args": {"value": event["value"]},
            })
    return out


def trace_to_chrome(trace_path: str, out_path: Optional[str] = None) -> str:
    """Convert a JSONL trace file; returns the output path.

    ``out_path`` defaults to the trace path with a ``.chrome.json``
    suffix.  Truncated final lines (crashed writer) are tolerated.
    """
    from repro.telemetry import SCHEMA_VERSION, parse_trace

    events = parse_trace(trace_path, allow_truncated=True)
    if out_path is None:
        out_path = os.path.splitext(trace_path)[0] + ".chrome.json"
    document = {
        "traceEvents": chrome_events(events),
        "displayTimeUnit": "ms",
        "otherData": {"source": trace_path, "schema_version": SCHEMA_VERSION},
    }
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, separators=(",", ":"))
        fh.write("\n")
    return out_path
