"""Span-time attribution and memory profiling for telemetry sessions.

Two consumers, one data model:

- **Live** — ``telemetry.start(profile=True)`` attaches a
  :class:`SessionProfile` to the session.  Span exits then additionally
  record *self* time (wall time minus the time spent in child spans),
  and ``stop()`` folds a ``tracemalloc`` peak-memory gauge into the
  session gauges.  The cost is confined to span close while profiling
  is on; the disabled telemetry path is untouched.

- **Offline** — :func:`aggregate_spans` rebuilds the same self-vs-child
  rollup from any parsed JSONL trace (or :class:`MemorySink` event
  list), so traces captured without profiling can still be attributed
  after the fact.

:func:`hot_spans_table` renders either source as a top-N table ordered
by self time — the "where did the wall clock actually go" view.
"""

from __future__ import annotations

import dataclasses
import tracemalloc
from typing import Any, Dict, Iterable, List, Optional

from repro.common.tables import Table


class SessionProfile:
    """Per-session profiling state (attached by ``telemetry.start``)."""

    __slots__ = ("self_stats", "_owns_tracemalloc")

    def __init__(self, trace_memory: bool = True):
        #: name -> [count, self_seconds]
        self.self_stats: Dict[str, List[float]] = {}
        self._owns_tracemalloc = False
        if trace_memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._owns_tracemalloc = True

    def record(self, name: str, self_s: float) -> None:
        stat = self.self_stats.setdefault(name, [0, 0.0])
        stat[0] += 1
        stat[1] += self_s

    def finish(self) -> Dict[str, float]:
        """Final gauges (peak memory); releases tracemalloc if owned."""
        gauges: Dict[str, float] = {}
        if tracemalloc.is_tracing():
            _, peak = tracemalloc.get_traced_memory()
            gauges["profile.mem.peak_kb"] = round(peak / 1024.0, 1)
            if self._owns_tracemalloc:
                tracemalloc.stop()
        return gauges


@dataclasses.dataclass
class SpanAgg:
    """Aggregated timing of all spans sharing a name."""

    name: str
    count: int
    total_s: float    # inclusive wall time
    self_s: float     # total minus time inside child spans

    @property
    def mean_ms(self) -> float:
        return self.total_s / self.count * 1e3 if self.count else 0.0

    @property
    def self_ms(self) -> float:
        return self.self_s / self.count * 1e3 if self.count else 0.0


def aggregate_spans(events: Iterable[Dict[str, Any]]) -> List[SpanAgg]:
    """Self-vs-child rollup from a parsed trace, ordered by self time.

    Works on the event dicts of :func:`repro.telemetry.parse_trace` or a
    :class:`~repro.telemetry.MemorySink`.  Spans that never closed
    (crash, truncated trace) contribute nothing; their children still
    attribute normally.  Appended traces holding several sessions
    aggregate across all of them.
    """
    opens: Dict[str, Dict[str, Any]] = {}
    durs: Dict[str, float] = {}
    child_s: Dict[str, float] = {}
    for event in events:
        ev = event.get("ev")
        if ev == "span_open":
            opens[event["id"]] = event
        elif ev == "span_close" and event["id"] in opens:
            durs[event["id"]] = event["dur_s"]
    for span_id, dur in durs.items():
        parent = opens[span_id].get("parent")
        if parent is not None and parent in durs:
            child_s[parent] = child_s.get(parent, 0.0) + dur
    by_name: Dict[str, SpanAgg] = {}
    for span_id, dur in durs.items():
        name = opens[span_id]["name"]
        agg = by_name.setdefault(name, SpanAgg(name, 0, 0.0, 0.0))
        agg.count += 1
        agg.total_s += dur
        agg.self_s += max(0.0, dur - child_s.get(span_id, 0.0))
    return sorted(by_name.values(), key=lambda a: -a.self_s)


def live_aggregate(
    span_stats: Dict[str, Iterable[float]],
    self_stats: Dict[str, Iterable[float]],
) -> List[SpanAgg]:
    """Rollup from a live session's (span_stats, self_stats) pair."""
    out = []
    for name, (count, total_s) in span_stats.items():
        self_s = self_stats.get(name, (0, 0.0))[1]
        out.append(SpanAgg(name, int(count), total_s, self_s))
    return sorted(out, key=lambda a: -a.self_s)


def hot_spans_table(aggs: List[SpanAgg], n: int = 10) -> Table:
    """Top-N spans by self time as a renderable table."""
    total_self = sum(a.self_s for a in aggs) or 1.0
    table = Table(
        f"Telemetry: hot spans (top {min(n, len(aggs))} by self time)",
        ["span", "count", "total_s", "self_s", "self_ms/call", "self_%"],
    )
    for agg in aggs[:n]:
        table.add_row([
            agg.name, agg.count, agg.total_s, agg.self_s,
            agg.self_ms, agg.self_s / total_self * 100.0,
        ])
    return table


def profile_trace(path: str, n: int = 10) -> Table:
    """One-call convenience: parse a JSONL trace, return the hot-span table."""
    from repro.telemetry import parse_trace

    return hot_spans_table(aggregate_spans(parse_trace(path)), n)
