"""Telemetry: hierarchical spans, named counters, and JSONL traces.

The simulator stack measures simulated machines all day; this module
lets it measure *itself*.  Three primitives, one module-level registry:

- **Spans** — nestable timed regions (``run`` → ``experiment`` →
  ``workload`` → ``kernel_launch`` → ``batch_pass``) opened with the
  :func:`span` context manager or the :func:`spanned` decorator.  Spans
  carry monotonic wall time, a stable id, and their parent's id.
- **Counters / gauges** — named monotonic tallies (:func:`count`) and
  last-value measurements (:func:`gauge`), incremented by the hot
  layers: artifact-cache hits, batch-vs-fallback kernel routing, LRU
  evictions, coalescing tallies.
- **JSONL emission** — when a sink is attached, every span open/close
  becomes one JSON object per line (see :data:`SCHEMA_VERSION` and
  docs/TELEMETRY.md for the schema); counter totals are appended when
  the session stops.  ``runner --trace out.jsonl`` or ``REPRO_TRACE``
  attach a :class:`JsonlSink`; tests use :class:`MemorySink`.

Disabled is the default and costs one ``is None`` branch per call site:
every public function loads the module-level ``_STATE`` and returns
immediately when no session is active, and :func:`span` hands back a
shared no-op context manager.  Nothing is allocated, formatted, or
timed until :func:`start` installs a session.

In-process aggregation is always on while a session is active:
:func:`summary` renders the span/counter totals as
:class:`repro.common.tables.Table` rows without needing a trace file.

The registry is deliberately not thread-safe: the simulator is
single-threaded per process, and the parallel runner path uses
*processes* — each child runs its own session and writes its own
``<trace>.<pid>.jsonl``, with counter totals merged back into the
parent (see :func:`repro.core.features.warm_workload`).

Two companion modules build on the stream: :mod:`.profile` attributes
wall time to spans (self vs children, ``tracemalloc`` peak gauges via
``start(profile=True)``) and :mod:`.chrome` exports any JSONL trace to
the Chrome Trace Event format (:func:`trace_to_chrome`).
"""

from __future__ import annotations

import atexit
import json
import os
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.common.tables import Table

#: Bump when the shape or meaning of emitted events changes.  Every
#: event line carries this as ``"v"`` so trace diffing tools can refuse
#: mixed-schema comparisons.
SCHEMA_VERSION = 1

#: Event kinds emitted to sinks, in the order they can appear.
EVENT_KINDS = ("meta", "span_open", "span_close", "counter", "gauge")


class JsonlSink:
    """Writes one JSON object per line to a file, compact separators.

    Missing parent directories are created; ``close()`` flushes and is
    idempotent, and the module registers an ``atexit`` hook so a
    session that never reaches :func:`stop` (crash, ``os._exit``-free
    interpreter teardown, pool worker shutdown) still lands its
    buffered events on disk.  ``append=True`` reopens an existing trace
    without truncating — the per-process sink of the parallel runner.
    """

    def __init__(self, path: str, append: bool = False):
        self.path = path
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._fh = open(path, "a" if append else "w", encoding="utf-8")

    def emit(self, event: Dict[str, Any]) -> None:
        if self._fh.closed:
            return
        self._fh.write(json.dumps(event, separators=(",", ":")) + "\n")

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class MemorySink:
    """Collects events in a list (tests, benchmarks)."""

    def __init__(self):
        self.events: List[Dict[str, Any]] = []

    def emit(self, event: Dict[str, Any]) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass


class _State:
    """One active telemetry session."""

    __slots__ = (
        "sinks", "counters", "gauges", "span_stats", "stack",
        "next_id", "t0", "api_calls", "profile",
    )

    def __init__(self, sinks, profile=None):
        self.sinks = sinks
        #: Optional :class:`repro.telemetry.profile.SessionProfile`;
        #: None (the default) keeps span close on the original path.
        self.profile = profile
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        # name -> [count, total seconds]
        self.span_stats: Dict[str, List[float]] = {}
        self.stack: List["Span"] = []
        self.next_id = 0
        self.t0 = time.perf_counter()
        #: Total telemetry API invocations (spans count open+close).
        #: The overhead benchmark multiplies this by the disabled
        #: per-call cost to bound the cost of leaving the probes in.
        self.api_calls = 0

    def emit(self, event: Dict[str, Any]) -> None:
        for sink in self.sinks:
            sink.emit(event)


_STATE: Optional[_State] = None


class Span:
    """A timed region.  Use via :func:`span`; reentrant it is not."""

    __slots__ = ("name", "attrs", "id", "parent_id", "_start", "_child_s")

    def __init__(self, name: str, attrs: Dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self.id: Optional[str] = None
        self.parent_id: Optional[str] = None
        self._start = 0.0
        self._child_s = 0.0  # time spent in child spans (profiling only)

    def __enter__(self) -> "Span":
        s = _STATE
        if s is None:  # session stopped between creation and entry
            return self
        s.api_calls += 1
        s.next_id += 1
        self.id = f"s{s.next_id}"
        self.parent_id = s.stack[-1].id if s.stack else None
        s.stack.append(self)
        self._start = time.perf_counter()
        event = {
            "v": SCHEMA_VERSION,
            "ev": "span_open",
            "id": self.id,
            "parent": self.parent_id,
            "name": self.name,
            "ts": round(self._start - s.t0, 6),
        }
        if self.attrs:
            event["attrs"] = self.attrs
        s.emit(event)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        s = _STATE
        if s is None or self.id is None:
            return False
        s.api_calls += 1
        dur = time.perf_counter() - self._start
        # Context managers exit innermost-first; a mismatch means a span
        # was entered without exiting (or exited twice) — a programming
        # error worth failing loudly on rather than emitting garbage
        # parentage.
        top = s.stack.pop()
        if top is not self:
            raise RuntimeError(
                f"span {self.name!r} closed out of LIFO order "
                f"(expected {top.name!r})"
            )
        stat = s.span_stats.setdefault(self.name, [0, 0.0])
        stat[0] += 1
        stat[1] += dur
        if s.profile is not None:
            s.profile.record(self.name, max(0.0, dur - self._child_s))
            if s.stack:
                s.stack[-1]._child_s += dur
        s.emit({
            "v": SCHEMA_VERSION,
            "ev": "span_close",
            "id": self.id,
            "name": self.name,
            "dur_s": round(dur, 6),
            "ok": exc_type is None,
        })
        return False


class _NullSpan:
    """Shared no-op span: what :func:`span` returns while disabled."""

    __slots__ = ()
    id = None
    parent_id = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def active() -> bool:
    """Whether a telemetry session is currently collecting."""
    return _STATE is not None


_ATEXIT_REGISTERED = False


def _close_at_exit() -> None:
    """Last-chance flush: a live session at interpreter exit loses nothing.

    With a balanced span stack this is a full graceful :func:`stop`
    (counter/gauge totals emitted); with spans still open (a crash mid
    run) the sinks are flushed and closed so every event already
    emitted survives — :func:`parse_trace` reads such traces with
    ``allow_truncated``.
    """
    s = _STATE
    if s is None:
        return
    if not s.stack:
        stop()
    else:
        for sink in s.sinks:
            sink.close()


def start(
    sink=None,
    trace_path: Optional[str] = None,
    meta: Optional[Dict[str, Any]] = None,
    profile: bool = False,
) -> bool:
    """Begin a session; returns False (and changes nothing) if one is active.

    ``sink`` is any object with ``emit(dict)``/``close()``;
    ``trace_path`` additionally attaches a :class:`JsonlSink`.  With
    neither, events are aggregated in-process only (for
    :func:`summary`).  ``profile=True`` attaches span self-time
    attribution and a ``tracemalloc`` peak-memory gauge (see
    :mod:`repro.telemetry.profile`).
    """
    global _STATE, _ATEXIT_REGISTERED
    if _STATE is not None:
        return False
    sinks = []
    if sink is not None:
        sinks.append(sink)
    if trace_path:
        sinks.append(JsonlSink(trace_path))
    session_profile = None
    if profile:
        from repro.telemetry.profile import SessionProfile

        session_profile = SessionProfile()
    if not _ATEXIT_REGISTERED:
        atexit.register(_close_at_exit)
        _ATEXIT_REGISTERED = True
    _STATE = _State(sinks, profile=session_profile)
    event = {"v": SCHEMA_VERSION, "ev": "meta", "clock": "perf_counter"}
    if meta:
        event["attrs"] = meta
    _STATE.emit(event)
    return True


def stop() -> Dict[str, Any]:
    """End the session: emit counter/gauge totals, close sinks.

    Returns a plain snapshot dict (``counters``, ``gauges``,
    ``span_stats``, ``api_calls``) usable after the session is gone.
    """
    global _STATE
    s = _STATE
    if s is None:
        return {"counters": {}, "gauges": {}, "span_stats": {},
                "self_stats": {}, "api_calls": 0}
    if s.stack:
        raise RuntimeError(
            f"telemetry stopped with {len(s.stack)} span(s) still open "
            f"(innermost: {s.stack[-1].name!r})"
        )
    if s.profile is not None:
        s.gauges.update(s.profile.finish())
    ts = round(time.perf_counter() - s.t0, 6)
    for name in sorted(s.counters):
        s.emit({"v": SCHEMA_VERSION, "ev": "counter", "name": name,
                "value": s.counters[name], "ts": ts})
    for name in sorted(s.gauges):
        s.emit({"v": SCHEMA_VERSION, "ev": "gauge", "name": name,
                "value": s.gauges[name], "ts": ts})
    snapshot = {
        "counters": dict(s.counters),
        "gauges": dict(s.gauges),
        "span_stats": {k: tuple(v) for k, v in s.span_stats.items()},
        "self_stats": (
            {} if s.profile is None
            else {k: tuple(v) for k, v in s.profile.self_stats.items()}
        ),
        "api_calls": s.api_calls,
    }
    _STATE = None
    for sink in s.sinks:
        sink.close()
    return snapshot


def discard() -> None:
    """Abandon any active session: no totals emitted, sinks left unclosed.

    Fork hygiene.  A forked pool worker inherits the parent's live
    session, whose sinks wrap the *parent's* file descriptors — writing
    to or closing them from the child corrupts the parent's trace (and
    flushes duplicated buffered bytes).  Workers call this before
    starting their own session; see
    :func:`repro.core.features.warm_workload`.
    """
    global _STATE
    _STATE = None


def span(name: str, /, **attrs) -> Any:
    """A context manager timing one region; no-op while disabled.

    ``name`` is positional-only so attrs may freely use ``name=`` as an
    attribute key.  The returned object exposes ``id`` (``None`` while
    disabled) for correlating other records with the emitted events.
    """
    if _STATE is None:
        return _NULL_SPAN
    return Span(name, attrs)


def spanned(name: str):
    """Decorator form of :func:`span`."""
    def deco(fn):
        def wrapper(*args, **kwargs):
            if _STATE is None:
                return fn(*args, **kwargs)
            with Span(name, {}):
                return fn(*args, **kwargs)
        wrapper.__name__ = getattr(fn, "__name__", "wrapped")
        wrapper.__doc__ = fn.__doc__
        wrapper.__wrapped__ = fn
        return wrapper
    return deco


def count(name: str, n: int = 1) -> None:
    """Add ``n`` to a named counter (no-op while disabled)."""
    s = _STATE
    if s is None:
        return
    s.api_calls += 1
    s.counters[name] = s.counters.get(name, 0) + n


def gauge(name: str, value: float) -> None:
    """Record the latest value of a named gauge (no-op while disabled)."""
    s = _STATE
    if s is None:
        return
    s.api_calls += 1
    s.gauges[name] = float(value)


def merge_counters(totals: Dict[str, int]) -> None:
    """Fold another session's counter totals into this one (no-op when off).

    Used by the parallel runner: each pool worker returns its session's
    counter snapshot, and the parent merges them so :func:`summary` and
    the emitted totals cover child work too.
    """
    s = _STATE
    if s is None:
        return
    for name, value in totals.items():
        s.api_calls += 1
        s.counters[name] = s.counters.get(name, 0) + value


def sample_counters(prefix: Optional[str] = None) -> None:
    """Emit the current cumulative counter totals as timestamped events.

    Counter events normally appear once, at :func:`stop`; sampling
    mid-session (the typed experiment runner does it after every
    experiment) gives the trace a *time series* of cumulative totals,
    which the Chrome exporter renders as counter tracks so evolution is
    visible on the timeline, not just the final value.  Each sample
    carries the session-relative ``ts``; the totals stay cumulative, so
    the last event per name still equals the :func:`stop` total and
    :func:`diff_counters` (which keeps the last value per name) is
    unaffected.  ``prefix`` restricts the sample to matching counters.
    No-op while disabled or when no sink is attached.
    """
    s = _STATE
    if s is None:
        return
    s.api_calls += 1
    if not s.sinks:
        return
    ts = round(time.perf_counter() - s.t0, 6)
    for name in sorted(s.counters):
        if prefix is not None and not name.startswith(prefix):
            continue
        s.emit({"v": SCHEMA_VERSION, "ev": "counter", "name": name,
                "value": s.counters[name], "ts": ts})


def counter_value(name: str) -> int:
    """Current value of a counter (0 when absent or disabled)."""
    s = _STATE
    return 0 if s is None else s.counters.get(name, 0)


def counters() -> Dict[str, int]:
    """Snapshot of all counters (empty when disabled)."""
    s = _STATE
    return {} if s is None else dict(s.counters)


def span_stats() -> Dict[str, Tuple[int, float]]:
    """Snapshot of span rollups ``name -> (count, total_s)`` so far.

    Covers only *closed* spans, like the session snapshot; empty while
    disabled.
    """
    s = _STATE
    return (
        {} if s is None
        else {k: (int(v[0]), v[1]) for k, v in s.span_stats.items()}
    )


def current_span_id() -> Optional[str]:
    """Id of the innermost open span, or None."""
    s = _STATE
    return s.stack[-1].id if s is not None and s.stack else None


def summary() -> List[Table]:
    """Aggregated session state as renderable tables.

    One table per populated primitive: spans (count, total, mean),
    counters, gauges.  Empty list while disabled.
    """
    s = _STATE
    if s is None:
        return []
    tables: List[Table] = []
    if s.span_stats:
        t = Table("Telemetry: spans",
                  ["span", "count", "total_s", "mean_ms"])
        for name in sorted(s.span_stats):
            n, total = s.span_stats[name]
            t.add_row([name, int(n), total, total / n * 1e3])
        tables.append(t)
    if s.counters:
        t = Table("Telemetry: counters", ["counter", "value"])
        for name in sorted(s.counters):
            t.add_row([name, s.counters[name]])
        tables.append(t)
    if s.gauges:
        t = Table("Telemetry: gauges", ["gauge", "value"])
        for name in sorted(s.gauges):
            t.add_row([name, s.gauges[name]])
        tables.append(t)
    if s.profile is not None and s.profile.self_stats:
        from repro.telemetry.profile import hot_spans_table, live_aggregate

        tables.append(
            hot_spans_table(live_aggregate(s.span_stats,
                                           s.profile.self_stats))
        )
    return tables


def parse_trace(path: str, allow_truncated: bool = False) -> List[Dict[str, Any]]:
    """Load a JSONL trace file back into event dicts, validating shape.

    Every line must parse as JSON, carry the schema version, and name a
    known event kind — the round-trip guarantee the test suite pins.
    An empty file is a valid empty trace.  ``allow_truncated`` forgives
    exactly one malformed *final* line (a writer killed mid-write);
    malformed JSON anywhere else is always an error.
    """
    events = []
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    numbered = [(i, l.strip()) for i, l in enumerate(lines, 1) if l.strip()]
    for pos, (lineno, line) in enumerate(numbered):
        last = pos == len(numbered) - 1
        try:
            event = json.loads(line)
        except ValueError:
            if allow_truncated and last:
                break
            raise ValueError(
                f"{path}:{lineno}: malformed JSON "
                f"({'truncated trace?' if last else 'corrupt line'})"
            ) from None
        if event.get("v") != SCHEMA_VERSION:
            raise ValueError(
                f"{path}:{lineno}: schema version {event.get('v')!r}, "
                f"expected {SCHEMA_VERSION}"
            )
        if event.get("ev") not in EVENT_KINDS:
            raise ValueError(
                f"{path}:{lineno}: unknown event kind {event.get('ev')!r}"
            )
        events.append(event)
    return events


def diff_counters(
    a: List[Dict[str, Any]], b: List[Dict[str, Any]]
) -> List[Tuple[str, int, int]]:
    """Compare the counter totals of two parsed traces.

    Returns ``(name, value_a, value_b)`` for every counter that differs
    (missing counters read as 0) — the primitive behind "how did this
    run differ from that one".
    """
    ca = {e["name"]: e["value"] for e in a if e["ev"] == "counter"}
    cb = {e["name"]: e["value"] for e in b if e["ev"] == "counter"}
    out = []
    for name in sorted(set(ca) | set(cb)):
        va, vb = ca.get(name, 0), cb.get(name, 0)
        if va != vb:
            out.append((name, va, vb))
    return out


# Companion modules (import at the bottom: none import anything from
# this module at import time, so the package namespace stays one-stop).
from repro.telemetry.chrome import trace_to_chrome  # noqa: E402
from repro.telemetry.metrics import (  # noqa: E402
    Histogram,
    MetricsRegistry,
    parse_prometheus,
    render_prometheus,
)
from repro.telemetry.profile import (  # noqa: E402
    aggregate_spans,
    hot_spans_table,
    profile_trace,
)
