"""Typed experiment API: the one request/response encoding.

Every way of asking this library for an experiment — the Python entry
point (:func:`repro.experiments.run_experiment`), the CLI runner, the
HTTP service (:mod:`repro.service`), and the run registry's provenance
records — speaks the same two dataclasses:

- :class:`ExperimentRequest` — *what to run*: an experiment id, a
  :class:`~repro.common.config.SimScale`, and a whitelisted set of
  runtime-config overrides.  Requests carry an explicit
  ``schema_version`` and are content-keyed
  (:meth:`ExperimentRequest.content_key`) exactly like artifact-cache
  entries, so "the same request" means the same thing to the service's
  coalescing map, the response cache, and a human diffing records.
- :class:`ExperimentResponse` — *what happened*: status, flattened
  numeric metrics (the registry encoding), the rendered payload, and
  provenance.  :meth:`ExperimentResponse.to_json` is canonical
  (sorted keys, fixed separators) so byte equality is response
  equality — the service's warm path serves stored bytes verbatim.

Breaking changes to either shape bump :data:`SCHEMA_VERSION`; decoders
refuse versions they do not understand rather than misparse.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, Mapping, Optional

from repro.common.config import SimScale

#: Bump when the wire shape of requests/responses changes incompatibly.
SCHEMA_VERSION = 1

#: RuntimeConfig fields a request may override, with the type each value
#: must coerce to.  Deliberately excludes *placement* knobs
#: (``cache_dir``, ``registry_dir``, ``trace``): where a service persists
#: its stores is the operator's decision, never the remote caller's.
OVERRIDABLE_CONFIG = {
    "gpu_batch": bool,
    "gpu_batch_lanes": int,
    "gpu_plan": bool,
    "trace_budget": int,
    "trace_chunk_rows": int,
}


def _check_schema_version(body: Mapping[str, Any], what: str) -> None:
    version = body.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{what} schema_version {version!r}, expected {SCHEMA_VERSION}"
        )


def validate_overrides(config: Mapping[str, Any]) -> Dict[str, Any]:
    """Normalize request config overrides against the whitelist.

    Returns a plain dict with values coerced to the declared types;
    raises ``ValueError`` on unknown keys or uncoercible values.
    """
    out: Dict[str, Any] = {}
    for key in sorted(config):
        if key not in OVERRIDABLE_CONFIG:
            raise ValueError(
                f"config override {key!r} is not allowed; "
                f"overridable: {sorted(OVERRIDABLE_CONFIG)}"
            )
        want = OVERRIDABLE_CONFIG[key]
        value = config[key]
        if want is bool:
            if not isinstance(value, bool):
                raise ValueError(f"config override {key!r} must be a bool")
            out[key] = value
        else:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(f"config override {key!r} must be a number")
            out[key] = int(value)
    return out


@dataclasses.dataclass(frozen=True)
class ExperimentRequest:
    """One typed ask: run ``experiment`` at ``scale`` under overrides.

    The ``config`` mapping is validated against
    :data:`OVERRIDABLE_CONFIG` at construction, so a request object
    that exists is a request that can be attempted.  Experiment-id
    existence is checked at dispatch (the id registry lives in
    :mod:`repro.experiments`; keeping it out of here avoids an import
    cycle and lets clients build requests for newer servers).
    """

    experiment: str
    scale: SimScale = SimScale.SMALL
    config: Mapping[str, Any] = dataclasses.field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self):
        if not isinstance(self.experiment, str) or not self.experiment:
            raise ValueError("experiment must be a non-empty string")
        if not isinstance(self.scale, SimScale):
            object.__setattr__(self, "scale", SimScale(self.scale))
        object.__setattr__(self, "config", validate_overrides(self.config))
        if self.schema_version != SCHEMA_VERSION:
            raise ValueError(
                f"request schema_version {self.schema_version!r}, "
                f"expected {SCHEMA_VERSION}"
            )

    # -- encoding --------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "experiment": self.experiment,
            "scale": self.scale.value,
            "config": {k: self.config[k] for k in sorted(self.config)},
        }

    @classmethod
    def from_dict(cls, body: Mapping[str, Any]) -> "ExperimentRequest":
        if not isinstance(body, Mapping):
            raise ValueError("request body must be a JSON object")
        _check_schema_version(body, "request")
        unknown = set(body) - {"schema_version", "experiment", "scale",
                               "config"}
        if unknown:
            raise ValueError(f"request has unknown fields {sorted(unknown)}")
        if "experiment" not in body:
            raise ValueError("request is missing 'experiment'")
        try:
            scale = SimScale(body.get("scale", SimScale.SMALL.value))
        except ValueError:
            raise ValueError(
                f"unknown scale {body.get('scale')!r}; "
                f"known: {[s.value for s in SimScale]}"
            )
        return cls(
            experiment=body["experiment"],
            scale=scale,
            config=body.get("config") or {},
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "ExperimentRequest":
        try:
            body = json.loads(text)
        except ValueError as exc:
            raise ValueError(f"request is not valid JSON: {exc}")
        return cls.from_dict(body)

    def content_key(self) -> str:
        """Stable identity of this ask (16 hex digits).

        Two requests with the same key are interchangeable: same
        experiment, scale, overrides, and schema.  This is the unit of
        request coalescing and of the service's warm-response cache.
        """
        digest = hashlib.sha256(self.to_json().encode("utf-8"))
        return digest.hexdigest()[:16]

    def describe(self) -> str:
        extra = f" +{len(self.config)} overrides" if self.config else ""
        return f"{self.experiment}@{self.scale.value}{extra}"


@dataclasses.dataclass
class ExperimentResponse:
    """One typed outcome, encodable byte-for-byte reproducibly.

    status      -- ``"ok"`` or ``"error"``.
    metrics     -- flattened numeric results, the exact encoding the
                   run registry and drift gate use
                   (:func:`repro.fidelity.registry.flatten_metrics`).
    rendered    -- the human payload (`ExperimentResult.render()`):
                   tables, dendrograms, the Markdown report.
    request_key -- :meth:`ExperimentRequest.content_key` of the ask.
    run_id      -- registry record id when one was persisted.
    duration_s  -- wall seconds of the *execution* that produced this
                   payload (a warm cache hit returns the original
                   cost, which is the honest provenance).
    error       -- diagnostic for ``status == "error"``.
    """

    experiment: str
    scale: SimScale
    status: str = "ok"
    metrics: Dict[str, float] = dataclasses.field(default_factory=dict)
    title: str = ""
    rendered: str = ""
    request_key: str = ""
    run_id: str = ""
    duration_s: float = 0.0
    error: str = ""
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self):
        if not isinstance(self.scale, SimScale):
            self.scale = SimScale(self.scale)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    # -- encoding --------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "experiment": self.experiment,
            "scale": self.scale.value,
            "status": self.status,
            "metrics": {k: self.metrics[k] for k in sorted(self.metrics)},
            "title": self.title,
            "rendered": self.rendered,
            "request_key": self.request_key,
            "run_id": self.run_id,
            "duration_s": self.duration_s,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, body: Mapping[str, Any]) -> "ExperimentResponse":
        if not isinstance(body, Mapping):
            raise ValueError("response body must be a JSON object")
        _check_schema_version(body, "response")
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(body) - fields
        if unknown:
            raise ValueError(f"response has unknown fields {sorted(unknown)}")
        return cls(**{k: body[k] for k in body})

    def to_json(self) -> str:
        """Canonical encoding: byte equality == response equality."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResponse":
        return cls.from_dict(json.loads(text))

    # -- constructors ----------------------------------------------------
    @classmethod
    def from_result(cls, result: Any,
                    request: ExperimentRequest) -> "ExperimentResponse":
        """Wrap an :class:`~repro.experiments.ExperimentResult`."""
        from repro.fidelity.registry import flatten_metrics

        record_path = result.metadata.get("registry_record", "")
        run_id = ""
        if record_path:
            # "<kind>-<run_id>.json" — the registry's file contract.
            stem = record_path.rsplit("/", 1)[-1].rsplit(".", 1)[0]
            run_id = stem.rsplit("-", 1)[-1]
        return cls(
            experiment=result.experiment,
            scale=request.scale,
            status="ok",
            metrics=flatten_metrics(result.experiment, result.data),
            title=result.title,
            rendered=result.render(),
            request_key=request.content_key(),
            run_id=run_id,
            duration_s=float(result.metadata.get("duration_s", 0.0)),
        )

    @classmethod
    def failure(cls, request: ExperimentRequest,
                error: str) -> "ExperimentResponse":
        return cls(
            experiment=request.experiment,
            scale=request.scale,
            status="error",
            request_key=request.content_key(),
            error=error,
        )


def execute(request: ExperimentRequest) -> ExperimentResponse:
    """Run one request to completion, never raising for driver failures.

    The service's worker processes call this: an experiment that blows
    up must become a well-formed ``status="error"`` response (HTTP 500
    at the edge), not a stack trace that kills a pool worker.
    Programming errors in the *request* (unknown id) surface the same
    way; request *shape* errors never reach here —
    :class:`ExperimentRequest` cannot be constructed malformed.
    """
    from repro.experiments import run_experiment

    try:
        result = run_experiment(request)
    except Exception as exc:  # noqa: BLE001 — edge of the system
        return ExperimentResponse.failure(
            request, f"{type(exc).__name__}: {exc}"
        )
    return ExperimentResponse.from_result(result, request)
