"""Experiment service: a long-lived daemon in front of the stores.

The one-shot CLI re-pays Python start-up and model warm-up on every
invocation; this package turns the characterization pipeline into an
always-on HTTP/JSON service (stdlib asyncio, zero new dependencies)
that answers *warm* requests straight from the content-addressed
artifact cache, coalesces identical in-flight *cold* requests into a
single execution, and pushes cold work onto a bounded process pool
behind a backpressure queue (HTTP 429 + ``Retry-After`` when full).

Wire format: :mod:`repro.api` — the same typed
``ExperimentRequest`` / ``ExperimentResponse`` encoding used by
``run_experiment()`` and the run registry, so a service response, a
registry record, and a library call are the same bytes describing the
same ask.

    python -m repro.experiments.runner serve --port 8177
    python -m repro.experiments.runner bench fig3 --spawn --clients 8

See ``docs/SERVICE.md`` for endpoints, semantics, and knobs.
"""

from repro.service.client import (  # noqa: F401
    LoadReport,
    RetryPolicy,
    ServiceClient,
    ServiceError,
    ServiceReply,
    run_load,
)
from repro.service.observability import (  # noqa: F401
    ServiceObservability,
)
from repro.service.server import (  # noqa: F401
    ExperimentService,
    gate_service_run,
    serve,
    spawn_service,
)
from repro.service.slo import (  # noqa: F401
    Objective,
    check_slo,
    parse_slo_spec,
)

__all__ = [
    "ExperimentService",
    "LoadReport",
    "Objective",
    "RetryPolicy",
    "ServiceClient",
    "ServiceError",
    "ServiceObservability",
    "ServiceReply",
    "check_slo",
    "gate_service_run",
    "parse_slo_spec",
    "run_load",
    "serve",
    "spawn_service",
]
