"""The asyncio HTTP/JSON experiment daemon.

One event loop owns the sockets and the coalescing map; cold
experiment executions run in a bounded ``ProcessPoolExecutor`` so the
loop never blocks on simulation work.  The request lifecycle:

1. **Parse + validate** the POSTed JSON into an
   :class:`~repro.api.ExperimentRequest` (400 on shape errors, 400 on
   unknown experiment ids — checked against the driver registry).
2. **Warm path**: the request's content key is looked up in the
   artifact cache's response store (``resp-*`` entries).  A hit is
   served as the stored bytes verbatim — byte-identical to the cold
   response that produced it (``X-Repro-Served: warm``).
3. **Coalesce**: if an identical request is already executing, await
   its task instead of spawning another (``X-Repro-Served:
   coalesced``).  M identical concurrent cold requests cost exactly
   one execution and produce M identical payloads.
4. **Backpressure**: with ``queue_limit`` distinct cold requests in
   flight the service answers ``429`` with a ``Retry-After`` header
   rather than queueing unboundedly.
5. **Cold path**: the request runs in a pool worker via
   :func:`repro.api.execute`; the worker persists the canonical
   response JSON into the artifact cache (so restarts stay warm) and
   the experiment's own registry record via the normal
   ``run_experiment`` hook.

Telemetry: every outcome lands on ``service.*`` counters, and each
request emits a ``service.request`` span carrying the served class and
measured latency as attributes.  The span is opened *after* the
response is ready — the telemetry registry is strictly LIFO and
concurrent handlers interleave across ``await`` points, so a span held
open across an await would corrupt parentage; timings therefore travel
as attributes instead of span duration.

Observability (:mod:`repro.service.observability`): every request gets
an ``X-Repro-Request-Id``; the id crosses the pool boundary so the
cold worker's telemetry session — and hence its
experiment → workload → kernel_launch span tree — is rooted under the
serving request.  Workers ship their histogram/counter deltas back
beside the response and the parent merges them, ``GET /v1/metrics``
renders the whole registry in Prometheus text exposition format, the
access log is structured JSONL, and requests slower than the
configured threshold persist their full stitched span trace to the run
registry as exemplars.  Recording happens synchronously between
``_route`` returning and the first subsequent ``await``, so teardown
(flush-before-close in :meth:`ExperimentService.stop`) leaves the
final scrape and the access log agreeing on totals.
"""

from __future__ import annotations

import asyncio
import contextlib
import inspect
import json
import signal
import sys
import threading
import time
import urllib.parse
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro import telemetry
from repro.api import SCHEMA_VERSION, ExperimentRequest
from repro.common.config import SimScale, config
from repro.service.observability import ServiceObservability

#: Artifact-cache kind under which canonical response JSON persists.
RESPONSE_KIND = "resp"

#: Largest accepted request body; experiment requests are tiny.
MAX_BODY_BYTES = 1 << 20

_JSON = {"Content-Type": "application/json"}


# ----------------------------------------------------------------------
# Cold execution (pool worker side)
# ----------------------------------------------------------------------
def _worker_metrics(
    events: List[Dict[str, Any]], experiment: str, scale: str
) -> Dict[str, Any]:
    """Worker-side histogram deltas distilled from a session's spans.

    Span close events carry exact durations; bucketing them here (in
    the worker, against the bit-deterministic boundary function) means
    the parent merges payloads that are identical no matter which
    process observed them.
    """
    from repro.telemetry.metrics import MetricsRegistry

    registry = MetricsRegistry()
    families = {
        "experiment": "repro_worker_experiment_seconds",
        "workload": "repro_worker_workload_seconds",
        "kernel_launch": "repro_worker_kernel_launch_seconds",
    }
    for event in events:
        if event.get("ev") != "span_close":
            continue
        name = families.get(event.get("name"))
        if name is None:
            continue
        registry.observe(
            name, float(event.get("dur_s", 0.0)),
            experiment=experiment, scale=scale,
        )
    return registry.to_dict()


def _execute(
    request_json: str,
    cache_dir: Optional[str],
    registry_dir: Optional[str],
    request_id: str = "",
) -> Tuple[bool, str, Optional[Dict[str, Any]]]:
    """Run one request in a worker process; never raises.

    Returns ``(ok, canonical_response_json, extras)``.  The worker pins
    its own store locations explicitly — it must not inherit whatever
    cache override the parent had installed when the pool forked — and
    persists the response bytes for the service's warm path before
    returning, so a response the parent serves is always one that is
    already durable.

    With a ``request_id`` the worker opens its own telemetry session
    (named by the id, after :func:`repro.telemetry.discard` fork
    hygiene) and ships its deltas home in ``extras``: the bounded span
    event list rooted under the request id, counter totals, and
    pre-bucketed duration histograms — everything the parent needs to
    stitch the request's trace and merge its metrics.
    """
    from repro import api
    from repro.common.config import override
    from repro.core.artifacts import ArtifactCache, set_artifact_cache
    from repro.service.observability import BoundedMemorySink

    try:
        req = api.ExperimentRequest.from_json(request_json)
    except ValueError as exc:  # unreachable via the service; be safe
        return False, json.dumps({"error": str(exc)}), None
    if cache_dir:
        set_artifact_cache(ArtifactCache(cache_dir))
    else:
        set_artifact_cache(None)
    sink: Optional[BoundedMemorySink] = None
    if request_id:
        # The inherited parent session (if the pool forked mid-trace)
        # wraps the parent's file descriptors; drop it before starting
        # this request's own in-memory session.
        telemetry.discard()
        sink = BoundedMemorySink()
        telemetry.start(sink=sink, meta={"request_id": request_id})
    try:
        with override(registry_dir=registry_dir):
            if request_id:
                with telemetry.span(
                    "service.execute", request_id=request_id,
                    experiment=req.experiment, scale=req.scale.value,
                ):
                    resp = api.execute(req)
            else:
                resp = api.execute(req)
            text = resp.to_json()
            if resp.ok and cache_dir:
                ArtifactCache(cache_dir).put_json(
                    RESPONSE_KIND, req.experiment, req.scale,
                    req.content_key(), text,
                )
        extras: Optional[Dict[str, Any]] = None
        if sink is not None:
            snapshot = telemetry.stop()
            extras = {
                "request_id": request_id,
                "counters": dict(snapshot.get("counters", {})),
                "metrics": _worker_metrics(
                    sink.events, req.experiment, req.scale.value
                ),
                "spans": sink.events,
                "dropped_events": sink.dropped,
            }
        return resp.ok, text, extras
    finally:
        if request_id:
            telemetry.discard()  # no-op after stop(); safety on errors
        set_artifact_cache(None, clear=True)


# ----------------------------------------------------------------------
# Service statistics
# ----------------------------------------------------------------------
@dataclass
class ServiceStats:
    """Always-on request accounting (telemetry may be off)."""

    requests: int = 0
    warm: int = 0
    cold: int = 0
    coalesced: int = 0
    rejected: int = 0
    errors: int = 0
    bad_requests: int = 0
    cold_seconds: float = 0.0
    warm_seconds: float = 0.0
    started_at: float = field(default_factory=time.time)
    per_route: Dict[str, int] = field(default_factory=dict)

    def count_route(self, route: str) -> None:
        self.per_route[route] = self.per_route.get(route, 0) + 1

    def snapshot(self, inflight: Optional[int] = None) -> Dict[str, Any]:
        answered = self.warm + self.cold + self.coalesced
        snap: Dict[str, Any] = {
            "requests": self.requests,
            "warm": self.warm,
            "cold": self.cold,
            "coalesced": self.coalesced,
            "rejected": self.rejected,
            "errors": self.errors,
            "bad_requests": self.bad_requests,
            "warm_hit_rate": round(self.warm / answered, 4) if answered else 0.0,
            "coalescing_ratio": (
                round(self.coalesced / (self.coalesced + self.cold), 4)
                if (self.coalesced + self.cold) else 0.0
            ),
            "mean_cold_s": (
                round(self.cold_seconds / self.cold, 4) if self.cold else 0.0
            ),
            "mean_warm_s": (
                round(self.warm_seconds / self.warm, 6) if self.warm else 0.0
            ),
            "uptime_s": round(time.time() - self.started_at, 1),
            "per_route": dict(sorted(self.per_route.items())),
        }
        if inflight is not None:
            snap["inflight"] = inflight
        return snap


# ----------------------------------------------------------------------
# The daemon
# ----------------------------------------------------------------------
class ExperimentService:
    """Asyncio HTTP daemon serving typed experiment requests.

    Construction resolves every knob from
    :func:`repro.common.config.config` unless given explicitly, so
    ``REPRO_SERVICE_*`` environment variables configure a bare
    ``ExperimentService()``.  ``execute_fn`` is the cold-execution
    callable submitted to the pool — tests substitute a lightweight
    fake; production uses :func:`_execute`.
    """

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        workers: Optional[int] = None,
        queue_limit: Optional[int] = None,
        cache_dir: Optional[str] = None,
        registry_dir: Optional[str] = None,
        execute_fn: Optional[Callable[..., Tuple[bool, str]]] = None,
        access_log: Optional[str] = None,
        slow_request_s: Optional[float] = None,
    ):
        cfg = config()
        self.host = cfg.service_host if host is None else host
        self.port = cfg.service_port if port is None else port
        self.workers = cfg.service_workers if workers is None else workers
        self.queue_limit = (
            cfg.service_queue if queue_limit is None else queue_limit
        )
        self.cache_dir = (
            (cfg.cache_dir if cfg.cache else None)
            if cache_dir is None else (cache_dir or None)
        )
        self.registry_dir = (
            cfg.registry_dir if registry_dir is None else (registry_dir or None)
        )
        self.stats = ServiceStats()
        self.obs = ServiceObservability(
            access_log_path=(
                cfg.service_access_log if access_log is None
                else (access_log or None)
            ),
            slow_request_s=(
                cfg.service_slow_ms / 1e3 if slow_request_s is None
                else slow_request_s
            ),
            registry_dir=self.registry_dir,
        )
        self._execute_fn = execute_fn or _execute
        # Test fakes predate request-id propagation; feed extended
        # arguments only to callables that declare a slot for them.
        try:
            n_params = len(inspect.signature(self._execute_fn).parameters)
        except (TypeError, ValueError):  # builtins / C callables
            n_params = 4
        self._execute_takes_rid = n_params >= 4
        self._inflight: Dict[str, asyncio.Task] = {}
        self._pool: Optional[ProcessPoolExecutor] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        # The Event must be born inside the serving loop (pre-3.10
        # asyncio primitives bind their loop at construction).
        self._stop = asyncio.Event()
        self._loop = asyncio.get_running_loop()
        self._pool = ProcessPoolExecutor(max_workers=self.workers)
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port
        )
        # With port 0 the OS picked one; republish the real value.
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._inflight.values()):
            task.cancel()
        self._inflight.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        # Last: flush-then-close the access log.  Every request already
        # recorded both its metrics sample and its log line before its
        # response hit the socket, so the final scrape a client took
        # and the flushed log agree on totals.  Idempotent — stop() may
        # run again via spawn_service teardown.
        self.obs.close()

    def request_shutdown(self) -> None:
        """Ask the serve loop to stop (call from within its loop)."""
        if self._stop is not None:
            self._stop.set()

    async def run_until_stopped(self) -> None:
        """start(), banner, block until shutdown is requested, stop()."""
        await self.start()
        print(
            f"[serve] listening on http://{self.host}:{self.port} "
            f"(workers={self.workers}, queue={self.queue_limit}, "
            f"cache={self.cache_dir or 'off'}, "
            f"registry={self.registry_dir or 'off'})",
            file=sys.stderr,
            flush=True,
        )
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, self._stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # non-POSIX event loop
        try:
            await self._stop.wait()
        finally:
            await self.stop()
            print("[serve] stopped", file=sys.stderr, flush=True)

    # -- HTTP plumbing ---------------------------------------------------
    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                parsed = await self._read_request(reader)
                if parsed is None:
                    break
                method, target, headers, body = parsed
                keep_alive = headers.get("connection", "").lower() != "close"
                rid = self.obs.new_request_id()
                t0 = time.perf_counter()
                status, payload, extra, info = await self._route(
                    method, target, body, rid
                )
                # Record before any further await: once the response is
                # on the wire, its metrics sample and access-log line
                # already exist, so a final scrape and the flushed log
                # can never disagree.
                self.obs.observe_http(
                    target.partition("?")[0], method, status,
                    time.perf_counter() - t0, rid,
                    served=info.get("served", ""),
                    experiment=info.get("experiment", ""),
                    scale=info.get("scale", ""),
                )
                extra = dict(extra)
                extra.setdefault("X-Repro-Request-Id", rid)
                await self._write_response(
                    writer, status, payload, extra, keep_alive
                )
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError):
            pass  # client went away mid-request; nothing to answer
        except asyncio.CancelledError:
            pass  # server shutting down while this connection idled
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_request(reader):
        """One HTTP/1.1 request -> (method, target, headers, body)."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError:
            return None
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3:
            return None
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise asyncio.LimitOverrunError("request body too large", length)
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    @staticmethod
    async def _write_response(writer, status: int, payload: bytes,
                              extra_headers: Dict[str, str],
                              keep_alive: bool) -> None:
        reason = {
            200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 429: "Too Many Requests",
            500: "Internal Server Error",
        }.get(status, "OK")
        head = [f"HTTP/1.1 {status} {reason}"]
        headers = dict(_JSON)
        headers.update(extra_headers)
        headers["Content-Length"] = str(len(payload))
        headers["Connection"] = "keep-alive" if keep_alive else "close"
        head.extend(f"{k}: {v}" for k, v in headers.items())
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(payload)
        await writer.drain()

    # -- routing ---------------------------------------------------------
    async def _route(
        self, method: str, target: str, body: bytes, rid: str = ""
    ) -> Tuple[int, bytes, Dict[str, str], Dict[str, str]]:
        """Dispatch one request -> (status, payload, headers, info).

        ``info`` is the observability sidecar: the served class and the
        experiment/scale identity for the access log.  It never affects
        the payload.
        """
        self.stats.requests += 1
        telemetry.count("service.requests")
        path, _, query = target.partition("?")
        self.stats.count_route(ServiceObservability.route_label(path))
        if path == "/healthz" and method == "GET":
            return 200, _dumps({
                "ok": True,
                "schema_version": SCHEMA_VERSION,
                "inflight": len(self._inflight),
                "queue_limit": self.queue_limit,
            }), {}, {}
        if path == "/v1/stats" and method == "GET":
            return 200, _dumps(
                self.stats.snapshot(inflight=len(self._inflight))
            ), {}, {}
        if path == "/v1/metrics" and method == "GET":
            text = self.obs.render(
                self.stats.snapshot(), len(self._inflight),
                self.queue_limit,
            )
            return 200, text.encode("utf-8"), {
                "Content-Type": "text/plain; version=0.0.4; charset=utf-8",
            }, {}
        if path == "/v1/experiments":
            if method != "GET":
                return 405, _dumps({"error": "GET only"}), {}, {}
            from repro.experiments import ALL_EXPERIMENTS

            return 200, _dumps({
                "schema_version": SCHEMA_VERSION,
                "experiments": list(ALL_EXPERIMENTS) + ["report"],
                "scales": [s.value for s in SimScale],
            }), {}, {}
        if path == "/v1/experiment" and method == "POST":
            return await self._handle_experiment_body(body, rid)
        if path == "/v1/report" and method == "GET":
            # The report layer rides the same request encoding: a GET
            # here is sugar for POSTing {"experiment": "report", ...}.
            params = urllib.parse.parse_qs(query)
            scale = (params.get("scale") or ["small"])[0]
            try:
                req = ExperimentRequest("report", SimScale(scale))
            except ValueError as exc:
                self.stats.bad_requests += 1
                return 400, _dumps({"error": str(exc)}), {}, {}
            return await self._handle_experiment(req, rid)
        if path == "/v1/shutdown" and method == "POST":
            self.request_shutdown()
            return 200, _dumps({"ok": True, "stopping": True}), {}, {}
        return 404, _dumps({
            "error": f"no route {method} {path}",
            "routes": ["GET /healthz", "GET /v1/stats",
                       "GET /v1/metrics", "GET /v1/experiments",
                       "POST /v1/experiment", "GET /v1/report",
                       "POST /v1/shutdown"],
        }), {}, {}

    async def _handle_experiment_body(
        self, body: bytes, rid: str = ""
    ) -> Tuple[int, bytes, Dict[str, str], Dict[str, str]]:
        try:
            req = ExperimentRequest.from_json(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            self.stats.bad_requests += 1
            telemetry.count("service.bad_request")
            return 400, _dumps({"error": str(exc)}), {}, {}
        # Unknown ids fail *here* (400, the asker's fault), not in a
        # pool worker (500, the service's fault).
        from repro.experiments import get_driver

        try:
            get_driver(req.experiment)
        except KeyError as exc:
            self.stats.bad_requests += 1
            telemetry.count("service.bad_request")
            return 400, _dumps({"error": str(exc.args[0])}), {}, {}
        return await self._handle_experiment(req, rid)

    # -- the warm/coalesced/cold core ------------------------------------
    async def _handle_experiment(
        self, req: ExperimentRequest, rid: str = ""
    ) -> Tuple[int, bytes, Dict[str, str], Dict[str, str]]:
        t0 = time.perf_counter()
        key = req.content_key()
        served = "warm"
        text = self._load_warm(req, key)
        status = 200
        info = {"experiment": req.experiment, "scale": req.scale.value}
        if text is None:
            task = self._inflight.get(key)
            if task is not None:
                served = "coalesced"
                ok, text = await asyncio.shield(task)
                status = 200 if ok else 500
            elif len(self._inflight) >= self.queue_limit:
                self.stats.rejected += 1
                telemetry.count("service.rejected")
                info["served"] = "rejected"
                return 429, _dumps({
                    "error": "cold-execution queue is full",
                    "inflight": len(self._inflight),
                    "retry_after_s": 1,
                }), {"Retry-After": "1"}, info
            else:
                served = "cold"
                task = asyncio.get_running_loop().create_task(
                    self._run_cold(req, key, rid)
                )
                self._inflight[key] = task
                ok, text = await asyncio.shield(task)
                status = 200 if ok else 500
        dur = time.perf_counter() - t0
        self._account(served, status, dur)
        telemetry.count(f"service.{served}")
        info["served"] = served if status < 500 else "error"
        # Post-hoc span: open/close with no await in between (the
        # registry is LIFO; see module docstring) — latency rides as
        # an attribute.
        with telemetry.span(
            "service.request", experiment=req.experiment,
            scale=req.scale.value, served=served, status=status,
            latency_ms=round(dur * 1e3, 3), request_id=rid,
        ):
            pass
        return status, text.encode("utf-8"), {
            "X-Repro-Served": served,
            "X-Repro-Key": key,
        }, info

    def _account(self, served: str, status: int, dur: float) -> None:
        # The latency histogram families mirror the class counters
        # sample for sample: each family's `_count` in /v1/metrics
        # equals the matching /v1/stats integer, by construction.
        if status >= 500:
            self.stats.errors += 1
            telemetry.count("service.errors")
            self.obs.observe_served("error", dur)
            return
        if served == "warm":
            self.stats.warm += 1
            self.stats.warm_seconds += dur
        elif served == "cold":
            self.stats.cold += 1
            self.stats.cold_seconds += dur
        else:
            self.stats.coalesced += 1
        self.obs.observe_served(served, dur)

    def _load_warm(self, req: ExperimentRequest, key: str) -> Optional[str]:
        """Stored canonical response bytes, or None.  Lock-free."""
        if not self.cache_dir:
            return None
        from repro.core.artifacts import ArtifactCache

        return ArtifactCache(self.cache_dir).get_json(
            RESPONSE_KIND, req.experiment, req.scale, key
        )

    async def _run_cold(self, req: ExperimentRequest, key: str,
                        rid: str = "") -> Tuple[bool, str]:
        """One pooled execution; owns the inflight-map entry for key.

        Runs as its own task so a disconnecting leader client cannot
        cancel work that coalesced followers are waiting on.  Never
        raises: pool-level failures (a worker OOM-killed, a broken
        pool) become well-formed error responses.

        The leader's request id rides into the worker; whatever deltas
        come home (pre-bucketed histograms, counters, the span tree)
        are merged here, and a slow execution persists its stitched
        trace as an exemplar before followers are released.
        """
        t0 = time.perf_counter()
        try:
            loop = asyncio.get_running_loop()
            extras: Optional[Dict[str, Any]] = None
            try:
                call_args = [req.to_json(), self.cache_dir,
                             self.registry_dir]
                if self._execute_takes_rid:
                    call_args.append(rid)
                result = await loop.run_in_executor(
                    self._pool, self._execute_fn, *call_args
                )
                if len(result) == 3:
                    ok, text, extras = result
                else:  # legacy 2-tuple execute fns (test fakes)
                    ok, text = result
            except Exception as exc:  # noqa: BLE001 — pool edge
                from repro.api import ExperimentResponse

                ok = False
                text = ExperimentResponse.failure(
                    req, f"execution failed: {type(exc).__name__}: {exc}"
                ).to_json()
            dur = time.perf_counter() - t0
            self.obs.merge_worker(extras)
            if extras is not None and dur >= self.obs.slow_request_s:
                run_id = ""
                with contextlib.suppress(ValueError, AttributeError):
                    run_id = json.loads(text).get("run_id", "")
                self.obs.maybe_exemplar(
                    rid, req.experiment, req.scale.value, "cold",
                    200 if ok else 500, dur, extras.get("spans"),
                    run_id=run_id,
                )
            return ok, text
        finally:
            self._inflight.pop(key, None)


def _dumps(obj: Any) -> bytes:
    return (json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")


@contextlib.contextmanager
def spawn_service(**kwargs) -> Iterator[ExperimentService]:
    """Run a service on a daemon thread; yields the (started) service.

    The building block for tests, benchmarks, and ``runner bench
    --spawn``: the caller gets a fully-started
    :class:`ExperimentService` (inspect ``.host``/``.port``/``.stats``)
    and the service is stopped — its loop unwound, pool shut down —
    when the ``with`` block exits, whatever happened inside.
    """
    service = ExperimentService(**kwargs)
    ready = threading.Event()
    failures: list = []

    async def _amain() -> None:
        await service.start()
        ready.set()
        try:
            await service._stop.wait()
        finally:
            await service.stop()

    def _thread() -> None:
        try:
            asyncio.run(_amain())
        except BaseException as exc:  # noqa: BLE001 — surfaced below
            failures.append(exc)
            ready.set()

    thread = threading.Thread(
        target=_thread, name="repro-service", daemon=True
    )
    thread.start()
    if not ready.wait(timeout=30.0):
        raise RuntimeError("service failed to start within 30s")
    if failures:
        raise failures[0]
    try:
        yield service
    finally:
        if service._loop is not None and not failures:
            try:
                service._loop.call_soon_threadsafe(service.request_shutdown)
            except RuntimeError:
                pass  # loop already closed
        thread.join(timeout=30.0)


def serve(
    host: Optional[str] = None,
    port: Optional[int] = None,
    workers: Optional[int] = None,
    queue_limit: Optional[int] = None,
    cache_dir: Optional[str] = None,
    registry_dir: Optional[str] = None,
    access_log: Optional[str] = None,
    slow_request_s: Optional[float] = None,
    slo: Optional[str] = None,
    baseline: Optional[str] = None,
    save_baseline: Optional[str] = None,
) -> int:
    """Blocking entry point: run the daemon until SIGINT/SIGTERM.

    Returns a process exit code: 0 on clean shutdown with all gates
    green; nonzero when a declared ``--slo`` objective or a
    ``--baseline`` drift comparison fails over the traffic this
    lifetime served.  ``save_baseline`` persists this lifetime's
    ``service/*`` metrics as a baseline record for future gating.
    """
    service = ExperimentService(
        host=host, port=port, workers=workers, queue_limit=queue_limit,
        cache_dir=cache_dir, registry_dir=registry_dir,
        access_log=access_log, slow_request_s=slow_request_s,
    )
    try:
        asyncio.run(service.run_until_stopped())
    except KeyboardInterrupt:
        pass  # loops without add_signal_handler support
    return gate_service_run(
        service, slo=slo, baseline=baseline, save_baseline=save_baseline
    )


def gate_service_run(
    service: ExperimentService,
    slo: Optional[str] = None,
    baseline: Optional[str] = None,
    save_baseline: Optional[str] = None,
    out=None,
) -> int:
    """Post-lifetime gating: SLO objectives + baseline drift.

    Split from :func:`serve` so tests (and ``spawn_service`` users) can
    gate an in-process service without owning the blocking loop.  The
    service must already be stopped; its stats and histograms are
    final.  Persists a ``service`` run record to the registry whenever
    one is configured, so every gated lifetime is also archived.
    """
    from repro.service.slo import check_slo, parse_slo_spec, save_service_baseline

    out = sys.stderr if out is None else out
    snapshot = service.stats.snapshot()
    metrics = service.obs.service_metrics(snapshot)
    if service.registry_dir and snapshot["requests"]:
        from repro.fidelity.registry import RunRecord, RunRegistry

        record = RunRecord(
            kind="service", scale="service", experiments=["service"],
            metrics=metrics,
            meta={"snapshot": snapshot,
                  "access_log": service.obs.access_log_path or ""},
        ).stamp()
        path = RunRegistry(service.registry_dir).save(record)
        print(f"[serve] service record -> {path}", file=out, flush=True)
    if save_baseline:
        path = save_service_baseline(metrics, save_baseline)
        print(f"[serve] baseline saved -> {path}", file=out, flush=True)
    exit_code = 0
    if slo:
        report = check_slo(metrics, parse_slo_spec(slo))
        print(report.to_table().render(), file=out, flush=True)
        print(report.summary_line(), file=out, flush=True)
        exit_code = max(exit_code, report.exit_code)
    if baseline:
        from repro.fidelity.drift import check_drift
        from repro.service.slo import load_service_baseline

        base = load_service_baseline(baseline)
        report = check_drift(
            metrics, base, baseline_label=baseline, scale="service",
            experiments=["service"],
        )
        print(report.to_table().render(), file=out, flush=True)
        print(report.summary_line(), file=out, flush=True)
        exit_code = max(exit_code, report.exit_code)
    return exit_code
