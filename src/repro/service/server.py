"""The asyncio HTTP/JSON experiment daemon.

One event loop owns the sockets and the coalescing map; cold
experiment executions run in a bounded ``ProcessPoolExecutor`` so the
loop never blocks on simulation work.  The request lifecycle:

1. **Parse + validate** the POSTed JSON into an
   :class:`~repro.api.ExperimentRequest` (400 on shape errors, 400 on
   unknown experiment ids — checked against the driver registry).
2. **Warm path**: the request's content key is looked up in the
   artifact cache's response store (``resp-*`` entries).  A hit is
   served as the stored bytes verbatim — byte-identical to the cold
   response that produced it (``X-Repro-Served: warm``).
3. **Coalesce**: if an identical request is already executing, await
   its task instead of spawning another (``X-Repro-Served:
   coalesced``).  M identical concurrent cold requests cost exactly
   one execution and produce M identical payloads.
4. **Backpressure**: with ``queue_limit`` distinct cold requests in
   flight the service answers ``429`` with a ``Retry-After`` header
   rather than queueing unboundedly.
5. **Cold path**: the request runs in a pool worker via
   :func:`repro.api.execute`; the worker persists the canonical
   response JSON into the artifact cache (so restarts stay warm) and
   the experiment's own registry record via the normal
   ``run_experiment`` hook.

Telemetry: every outcome lands on ``service.*`` counters, and each
request emits a ``service.request`` span carrying the served class and
measured latency as attributes.  The span is opened *after* the
response is ready — the telemetry registry is strictly LIFO and
concurrent handlers interleave across ``await`` points, so a span held
open across an await would corrupt parentage; timings therefore travel
as attributes instead of span duration.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import sys
import threading
import time
import urllib.parse
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

from repro import telemetry
from repro.api import SCHEMA_VERSION, ExperimentRequest
from repro.common.config import SimScale, config

#: Artifact-cache kind under which canonical response JSON persists.
RESPONSE_KIND = "resp"

#: Largest accepted request body; experiment requests are tiny.
MAX_BODY_BYTES = 1 << 20

_JSON = {"Content-Type": "application/json"}


# ----------------------------------------------------------------------
# Cold execution (pool worker side)
# ----------------------------------------------------------------------
def _execute(request_json: str, cache_dir: Optional[str],
             registry_dir: Optional[str]) -> Tuple[bool, str]:
    """Run one request in a worker process; never raises.

    Returns ``(ok, canonical_response_json)``.  The worker pins its
    own store locations explicitly — it must not inherit whatever
    cache override the parent had installed when the pool forked — and
    persists the response bytes for the service's warm path before
    returning, so a response the parent serves is always one that is
    already durable.
    """
    from repro import api
    from repro.common.config import override
    from repro.core.artifacts import ArtifactCache, set_artifact_cache

    try:
        req = api.ExperimentRequest.from_json(request_json)
    except ValueError as exc:  # unreachable via the service; be safe
        return False, json.dumps({"error": str(exc)})
    if cache_dir:
        set_artifact_cache(ArtifactCache(cache_dir))
    else:
        set_artifact_cache(None)
    try:
        with override(registry_dir=registry_dir):
            resp = api.execute(req)
            text = resp.to_json()
            if resp.ok and cache_dir:
                ArtifactCache(cache_dir).put_json(
                    RESPONSE_KIND, req.experiment, req.scale,
                    req.content_key(), text,
                )
        return resp.ok, text
    finally:
        set_artifact_cache(None, clear=True)


# ----------------------------------------------------------------------
# Service statistics
# ----------------------------------------------------------------------
@dataclass
class ServiceStats:
    """Always-on request accounting (telemetry may be off)."""

    requests: int = 0
    warm: int = 0
    cold: int = 0
    coalesced: int = 0
    rejected: int = 0
    errors: int = 0
    bad_requests: int = 0
    cold_seconds: float = 0.0
    warm_seconds: float = 0.0
    started_at: float = field(default_factory=time.time)

    def snapshot(self) -> Dict[str, Any]:
        answered = self.warm + self.cold + self.coalesced
        return {
            "requests": self.requests,
            "warm": self.warm,
            "cold": self.cold,
            "coalesced": self.coalesced,
            "rejected": self.rejected,
            "errors": self.errors,
            "bad_requests": self.bad_requests,
            "warm_hit_rate": round(self.warm / answered, 4) if answered else 0.0,
            "coalescing_ratio": (
                round(self.coalesced / (self.coalesced + self.cold), 4)
                if (self.coalesced + self.cold) else 0.0
            ),
            "mean_cold_s": (
                round(self.cold_seconds / self.cold, 4) if self.cold else 0.0
            ),
            "mean_warm_s": (
                round(self.warm_seconds / self.warm, 6) if self.warm else 0.0
            ),
            "uptime_s": round(time.time() - self.started_at, 1),
        }


# ----------------------------------------------------------------------
# The daemon
# ----------------------------------------------------------------------
class ExperimentService:
    """Asyncio HTTP daemon serving typed experiment requests.

    Construction resolves every knob from
    :func:`repro.common.config.config` unless given explicitly, so
    ``REPRO_SERVICE_*`` environment variables configure a bare
    ``ExperimentService()``.  ``execute_fn`` is the cold-execution
    callable submitted to the pool — tests substitute a lightweight
    fake; production uses :func:`_execute`.
    """

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        workers: Optional[int] = None,
        queue_limit: Optional[int] = None,
        cache_dir: Optional[str] = None,
        registry_dir: Optional[str] = None,
        execute_fn: Optional[Callable[..., Tuple[bool, str]]] = None,
    ):
        cfg = config()
        self.host = cfg.service_host if host is None else host
        self.port = cfg.service_port if port is None else port
        self.workers = cfg.service_workers if workers is None else workers
        self.queue_limit = (
            cfg.service_queue if queue_limit is None else queue_limit
        )
        self.cache_dir = (
            (cfg.cache_dir if cfg.cache else None)
            if cache_dir is None else (cache_dir or None)
        )
        self.registry_dir = (
            cfg.registry_dir if registry_dir is None else (registry_dir or None)
        )
        self.stats = ServiceStats()
        self._execute_fn = execute_fn or _execute
        self._inflight: Dict[str, asyncio.Task] = {}
        self._pool: Optional[ProcessPoolExecutor] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        # The Event must be born inside the serving loop (pre-3.10
        # asyncio primitives bind their loop at construction).
        self._stop = asyncio.Event()
        self._loop = asyncio.get_running_loop()
        self._pool = ProcessPoolExecutor(max_workers=self.workers)
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port
        )
        # With port 0 the OS picked one; republish the real value.
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._inflight.values()):
            task.cancel()
        self._inflight.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def request_shutdown(self) -> None:
        """Ask the serve loop to stop (call from within its loop)."""
        if self._stop is not None:
            self._stop.set()

    async def run_until_stopped(self) -> None:
        """start(), banner, block until shutdown is requested, stop()."""
        await self.start()
        print(
            f"[serve] listening on http://{self.host}:{self.port} "
            f"(workers={self.workers}, queue={self.queue_limit}, "
            f"cache={self.cache_dir or 'off'}, "
            f"registry={self.registry_dir or 'off'})",
            file=sys.stderr,
            flush=True,
        )
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, self._stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # non-POSIX event loop
        try:
            await self._stop.wait()
        finally:
            await self.stop()
            print("[serve] stopped", file=sys.stderr, flush=True)

    # -- HTTP plumbing ---------------------------------------------------
    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                parsed = await self._read_request(reader)
                if parsed is None:
                    break
                method, target, headers, body = parsed
                keep_alive = headers.get("connection", "").lower() != "close"
                status, payload, extra = await self._route(
                    method, target, body
                )
                await self._write_response(
                    writer, status, payload, extra, keep_alive
                )
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError):
            pass  # client went away mid-request; nothing to answer
        except asyncio.CancelledError:
            pass  # server shutting down while this connection idled
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_request(reader):
        """One HTTP/1.1 request -> (method, target, headers, body)."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError:
            return None
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3:
            return None
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise asyncio.LimitOverrunError("request body too large", length)
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    @staticmethod
    async def _write_response(writer, status: int, payload: bytes,
                              extra_headers: Dict[str, str],
                              keep_alive: bool) -> None:
        reason = {
            200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 429: "Too Many Requests",
            500: "Internal Server Error",
        }.get(status, "OK")
        head = [f"HTTP/1.1 {status} {reason}"]
        headers = dict(_JSON)
        headers.update(extra_headers)
        headers["Content-Length"] = str(len(payload))
        headers["Connection"] = "keep-alive" if keep_alive else "close"
        head.extend(f"{k}: {v}" for k, v in headers.items())
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(payload)
        await writer.drain()

    # -- routing ---------------------------------------------------------
    async def _route(self, method: str, target: str,
                     body: bytes) -> Tuple[int, bytes, Dict[str, str]]:
        self.stats.requests += 1
        telemetry.count("service.requests")
        path, _, query = target.partition("?")
        if path == "/healthz" and method == "GET":
            return 200, _dumps({
                "ok": True,
                "schema_version": SCHEMA_VERSION,
                "inflight": len(self._inflight),
                "queue_limit": self.queue_limit,
            }), {}
        if path == "/v1/stats" and method == "GET":
            return 200, _dumps(self.stats.snapshot()), {}
        if path == "/v1/experiments":
            if method != "GET":
                return 405, _dumps({"error": "GET only"}), {}
            from repro.experiments import ALL_EXPERIMENTS

            return 200, _dumps({
                "schema_version": SCHEMA_VERSION,
                "experiments": list(ALL_EXPERIMENTS) + ["report"],
                "scales": [s.value for s in SimScale],
            }), {}
        if path == "/v1/experiment" and method == "POST":
            return await self._handle_experiment_body(body)
        if path == "/v1/report" and method == "GET":
            # The report layer rides the same request encoding: a GET
            # here is sugar for POSTing {"experiment": "report", ...}.
            params = urllib.parse.parse_qs(query)
            scale = (params.get("scale") or ["small"])[0]
            try:
                req = ExperimentRequest("report", SimScale(scale))
            except ValueError as exc:
                self.stats.bad_requests += 1
                return 400, _dumps({"error": str(exc)}), {}
            return await self._handle_experiment(req)
        if path == "/v1/shutdown" and method == "POST":
            self.request_shutdown()
            return 200, _dumps({"ok": True, "stopping": True}), {}
        return 404, _dumps({
            "error": f"no route {method} {path}",
            "routes": ["GET /healthz", "GET /v1/stats",
                       "GET /v1/experiments", "POST /v1/experiment",
                       "GET /v1/report", "POST /v1/shutdown"],
        }), {}

    async def _handle_experiment_body(
        self, body: bytes
    ) -> Tuple[int, bytes, Dict[str, str]]:
        try:
            req = ExperimentRequest.from_json(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            self.stats.bad_requests += 1
            telemetry.count("service.bad_request")
            return 400, _dumps({"error": str(exc)}), {}
        # Unknown ids fail *here* (400, the asker's fault), not in a
        # pool worker (500, the service's fault).
        from repro.experiments import get_driver

        try:
            get_driver(req.experiment)
        except KeyError as exc:
            self.stats.bad_requests += 1
            telemetry.count("service.bad_request")
            return 400, _dumps({"error": str(exc.args[0])}), {}
        return await self._handle_experiment(req)

    # -- the warm/coalesced/cold core ------------------------------------
    async def _handle_experiment(
        self, req: ExperimentRequest
    ) -> Tuple[int, bytes, Dict[str, str]]:
        t0 = time.perf_counter()
        key = req.content_key()
        served = "warm"
        text = self._load_warm(req, key)
        status = 200
        if text is None:
            task = self._inflight.get(key)
            if task is not None:
                served = "coalesced"
                ok, text = await asyncio.shield(task)
                status = 200 if ok else 500
            elif len(self._inflight) >= self.queue_limit:
                self.stats.rejected += 1
                telemetry.count("service.rejected")
                return 429, _dumps({
                    "error": "cold-execution queue is full",
                    "inflight": len(self._inflight),
                    "retry_after_s": 1,
                }), {"Retry-After": "1"}
            else:
                served = "cold"
                task = asyncio.get_running_loop().create_task(
                    self._run_cold(req, key)
                )
                self._inflight[key] = task
                ok, text = await asyncio.shield(task)
                status = 200 if ok else 500
        dur = time.perf_counter() - t0
        self._account(served, status, dur)
        telemetry.count(f"service.{served}")
        # Post-hoc span: open/close with no await in between (the
        # registry is LIFO; see module docstring) — latency rides as
        # an attribute.
        with telemetry.span(
            "service.request", experiment=req.experiment,
            scale=req.scale.value, served=served, status=status,
            latency_ms=round(dur * 1e3, 3),
        ):
            pass
        return status, text.encode("utf-8"), {
            "X-Repro-Served": served,
            "X-Repro-Key": key,
        }

    def _account(self, served: str, status: int, dur: float) -> None:
        if status >= 500:
            self.stats.errors += 1
            telemetry.count("service.errors")
            return
        if served == "warm":
            self.stats.warm += 1
            self.stats.warm_seconds += dur
        elif served == "cold":
            self.stats.cold += 1
            self.stats.cold_seconds += dur
        else:
            self.stats.coalesced += 1

    def _load_warm(self, req: ExperimentRequest, key: str) -> Optional[str]:
        """Stored canonical response bytes, or None.  Lock-free."""
        if not self.cache_dir:
            return None
        from repro.core.artifacts import ArtifactCache

        return ArtifactCache(self.cache_dir).get_json(
            RESPONSE_KIND, req.experiment, req.scale, key
        )

    async def _run_cold(self, req: ExperimentRequest,
                        key: str) -> Tuple[bool, str]:
        """One pooled execution; owns the inflight-map entry for key.

        Runs as its own task so a disconnecting leader client cannot
        cancel work that coalesced followers are waiting on.  Never
        raises: pool-level failures (a worker OOM-killed, a broken
        pool) become well-formed error responses.
        """
        try:
            loop = asyncio.get_running_loop()
            try:
                ok, text = await loop.run_in_executor(
                    self._pool, self._execute_fn, req.to_json(),
                    self.cache_dir, self.registry_dir,
                )
            except Exception as exc:  # noqa: BLE001 — pool edge
                from repro.api import ExperimentResponse

                ok = False
                text = ExperimentResponse.failure(
                    req, f"execution failed: {type(exc).__name__}: {exc}"
                ).to_json()
            return ok, text
        finally:
            self._inflight.pop(key, None)


def _dumps(obj: Any) -> bytes:
    return (json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")


@contextlib.contextmanager
def spawn_service(**kwargs) -> Iterator[ExperimentService]:
    """Run a service on a daemon thread; yields the (started) service.

    The building block for tests, benchmarks, and ``runner bench
    --spawn``: the caller gets a fully-started
    :class:`ExperimentService` (inspect ``.host``/``.port``/``.stats``)
    and the service is stopped — its loop unwound, pool shut down —
    when the ``with`` block exits, whatever happened inside.
    """
    service = ExperimentService(**kwargs)
    ready = threading.Event()
    failures: list = []

    async def _amain() -> None:
        await service.start()
        ready.set()
        try:
            await service._stop.wait()
        finally:
            await service.stop()

    def _thread() -> None:
        try:
            asyncio.run(_amain())
        except BaseException as exc:  # noqa: BLE001 — surfaced below
            failures.append(exc)
            ready.set()

    thread = threading.Thread(
        target=_thread, name="repro-service", daemon=True
    )
    thread.start()
    if not ready.wait(timeout=30.0):
        raise RuntimeError("service failed to start within 30s")
    if failures:
        raise failures[0]
    try:
        yield service
    finally:
        if service._loop is not None and not failures:
            try:
                service._loop.call_soon_threadsafe(service.request_shutdown)
            except RuntimeError:
                pass  # loop already closed
        thread.join(timeout=30.0)


def serve(
    host: Optional[str] = None,
    port: Optional[int] = None,
    workers: Optional[int] = None,
    queue_limit: Optional[int] = None,
    cache_dir: Optional[str] = None,
    registry_dir: Optional[str] = None,
) -> int:
    """Blocking entry point: run the daemon until SIGINT/SIGTERM.

    Returns a process exit code (0 on clean shutdown).
    """
    service = ExperimentService(
        host=host, port=port, workers=workers, queue_limit=queue_limit,
        cache_dir=cache_dir, registry_dir=registry_dir,
    )
    try:
        asyncio.run(service.run_until_stopped())
    except KeyboardInterrupt:
        pass  # loops without add_signal_handler support
    return 0
