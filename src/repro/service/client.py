"""Blocking client + load generator for the experiment service.

:class:`ServiceClient` is a thin ``http.client`` wrapper (stdlib only,
keep-alive, auto-reconnect) that speaks the :mod:`repro.api` wire
format.  :func:`run_load` is the shared load generator behind
``runner bench`` and ``benchmarks/test_bench_service.py``: N client
threads drain a request list against one service and the resulting
:class:`LoadReport` aggregates latency percentiles and hit rates by
served class (``cold`` / ``warm`` / ``coalesced``).
"""

from __future__ import annotations

import dataclasses
import http.client
import json
import queue
import threading
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.api import ExperimentRequest, ExperimentResponse
from repro.common.tables import Table


class ServiceError(RuntimeError):
    """Transport-level failure talking to the service."""


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Opt-in retry schedule for 429 backpressure responses.

    Capped exponential backoff — attempt ``k`` waits
    ``min(base_delay_s * 2**k, max_delay_s)`` — except that a server
    ``Retry-After`` hint, when present, takes precedence when *longer*
    (the server knows its queue; never retry earlier than it asked).
    ``attempts`` bounds the retries per request and ``max_wait_s``
    bounds the total time spent waiting, whichever trips first.
    """

    attempts: int = 5
    base_delay_s: float = 0.05
    max_delay_s: float = 5.0
    max_wait_s: float = 120.0

    def delay(self, attempt: int,
              retry_after: Optional[float] = None) -> float:
        backoff = min(self.base_delay_s * (2.0 ** attempt),
                      self.max_delay_s)
        return max(backoff, retry_after or 0.0)


@dataclasses.dataclass
class ServiceReply:
    """One HTTP exchange, as the load generator sees it.

    served is the service's ``X-Repro-Served`` header
    (``cold``/``warm``/``coalesced``), or ``""`` for non-experiment
    endpoints and errors.  retries counts the 429 rounds this reply
    absorbed before the answer came back (0 without a retry policy).
    """

    status: int
    text: str
    served: str = ""
    latency_s: float = 0.0
    retry_after: Optional[float] = None
    retries: int = 0
    request_id: str = ""

    @property
    def ok(self) -> bool:
        return self.status == 200

    def response(self) -> ExperimentResponse:
        """The decoded typed response (raises on non-response bodies)."""
        return ExperimentResponse.from_json(self.text)

    def json(self) -> Any:
        return json.loads(self.text)


class ServiceClient:
    """Keep-alive HTTP client for one service endpoint.

    ``retry`` opts :meth:`submit` into the capped-backoff 429 handling
    of :class:`RetryPolicy` (off by default: a bare client surfaces
    backpressure to its caller verbatim).  ``retries_total``
    accumulates every backoff round the client has slept through, so
    load generators can report retry pressure alongside latency.
    """

    def __init__(self, host: str, port: int, timeout: float = 300.0,
                 retry: Optional[RetryPolicy] = None):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry
        self.retries_total = 0
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- plumbing --------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[str] = None) -> ServiceReply:
        payload = body.encode("utf-8") if body is not None else None
        t0 = time.perf_counter()
        for attempt in (1, 2):  # one reconnect on a dropped keep-alive
            if self._conn is None:
                self._conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
            try:
                self._conn.request(
                    method, path, body=payload,
                    headers={"Content-Type": "application/json"}
                    if payload else {},
                )
                resp = self._conn.getresponse()
                text = resp.read().decode("utf-8")
            except (ConnectionError, http.client.HTTPException,
                    OSError) as exc:
                self.close()
                if attempt == 2:
                    raise ServiceError(
                        f"{method} {path} against "
                        f"{self.host}:{self.port} failed: {exc}"
                    ) from exc
                continue
            retry_after = resp.getheader("Retry-After")
            if resp.getheader("Connection", "").lower() == "close":
                self.close()
            return ServiceReply(
                status=resp.status,
                text=text,
                served=resp.getheader("X-Repro-Served") or "",
                latency_s=time.perf_counter() - t0,
                retry_after=float(retry_after) if retry_after else None,
                request_id=resp.getheader("X-Repro-Request-Id") or "",
            )
        raise ServiceError("unreachable")  # pragma: no cover

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- endpoints -------------------------------------------------------
    def submit(self, request: ExperimentRequest) -> ServiceReply:
        """POST one typed experiment request.

        With a :class:`RetryPolicy` installed, 429 responses are
        retried on the policy's schedule and the returned reply carries
        the rounds it absorbed in ``reply.retries``; without one, the
        429 comes back as-is.
        """
        if self.retry is None:
            return self._request(
                "POST", "/v1/experiment", request.to_json()
            )
        return self._submit_with_policy(request, self.retry)

    def submit_retrying(self, request: ExperimentRequest,
                        max_wait_s: float = 120.0) -> ServiceReply:
        """submit(), honouring 429 + Retry-After until ``max_wait_s``."""
        policy = self.retry or RetryPolicy(
            attempts=1_000_000, base_delay_s=1.0, max_delay_s=5.0
        )
        policy = dataclasses.replace(policy, max_wait_s=max_wait_s)
        return self._submit_with_policy(request, policy)

    def _submit_with_policy(self, request: ExperimentRequest,
                            policy: RetryPolicy) -> ServiceReply:
        body = request.to_json()
        deadline = time.monotonic() + policy.max_wait_s
        retries = 0
        while True:
            reply = self._request("POST", "/v1/experiment", body)
            if reply.status != 429 or retries >= policy.attempts:
                reply.retries = retries
                return reply
            delay = policy.delay(retries, reply.retry_after)
            if time.monotonic() + delay >= deadline:
                reply.retries = retries
                return reply
            retries += 1
            self.retries_total += 1
            time.sleep(delay)

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz").json()

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/stats").json()

    def metrics_text(self) -> str:
        """The raw Prometheus exposition from ``GET /v1/metrics``."""
        reply = self._request("GET", "/v1/metrics")
        if reply.status != 200:
            raise ServiceError(f"/v1/metrics answered {reply.status}")
        return reply.text

    def metrics(self) -> Dict[str, Dict[Any, float]]:
        """Parsed scrape: ``name -> {label tuple -> value}``."""
        from repro.telemetry.metrics import parse_prometheus

        return parse_prometheus(self.metrics_text())

    def experiments(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/experiments").json()

    def report(self, scale: str = "small") -> ServiceReply:
        return self._request("GET", f"/v1/report?scale={scale}")

    def shutdown(self) -> Dict[str, Any]:
        return self._request("POST", "/v1/shutdown").json()

    def wait_ready(self, budget_s: float = 15.0) -> Dict[str, Any]:
        """Poll /healthz until the service answers (daemon start-up)."""
        deadline = time.monotonic() + budget_s
        while True:
            try:
                return self.health()
            except ServiceError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)


# ----------------------------------------------------------------------
# Load generation
# ----------------------------------------------------------------------
def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); 0.0 for empty input."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, int(round(q / 100.0 * len(ordered) + 0.5)))
    return ordered[min(rank, len(ordered)) - 1]


@dataclasses.dataclass
class LoadReport:
    """Aggregated outcome of one load-generation run."""

    replies: List[ServiceReply]
    wall_s: float
    clients: int

    def by_served(self, served: str) -> List[float]:
        return [r.latency_s for r in self.replies
                if r.served == served and r.ok]

    @property
    def rejected(self) -> int:
        return sum(1 for r in self.replies if r.status == 429)

    @property
    def retries(self) -> int:
        """Backoff rounds absorbed across all replies."""
        return sum(r.retries for r in self.replies)

    @property
    def errors(self) -> int:
        return sum(1 for r in self.replies
                   if r.status not in (200, 429))

    def hit_rate(self, served: str) -> float:
        answered = [r for r in self.replies if r.ok]
        if not answered:
            return 0.0
        return sum(1 for r in answered if r.served == served) / len(answered)

    def coalescing_ratio(self) -> float:
        """Fraction of would-be executions that were deduplicated."""
        cold = len(self.by_served("cold"))
        coal = len(self.by_served("coalesced"))
        return coal / (cold + coal) if (cold + coal) else 0.0

    def summary(self) -> Dict[str, float]:
        out: Dict[str, float] = {
            "requests": float(len(self.replies)),
            "wall_s": round(self.wall_s, 4),
            "throughput_rps": (
                round(len(self.replies) / self.wall_s, 2)
                if self.wall_s > 0 else 0.0
            ),
            "rejected": float(self.rejected),
            "retries": float(self.retries),
            "errors": float(self.errors),
            "coalescing_ratio": round(self.coalescing_ratio(), 4),
        }
        for served in ("cold", "warm", "coalesced"):
            lat = self.by_served(served)
            out[f"{served}_n"] = float(len(lat))
            if lat:
                out[f"{served}_p50_ms"] = round(
                    percentile(lat, 50) * 1e3, 3
                )
                out[f"{served}_p99_ms"] = round(
                    percentile(lat, 99) * 1e3, 3
                )
        return out

    def table(self) -> Table:
        table = Table(
            f"Service load ({self.clients} clients)", ["metric", "value"]
        )
        for key, value in self.summary().items():
            table.add_row([key, f"{value:g}"])
        return table


def run_load(
    host: str,
    port: int,
    requests: Sequence[ExperimentRequest],
    clients: int = 4,
    honor_backpressure: bool = True,
    retry: Optional[RetryPolicy] = None,
) -> LoadReport:
    """Drain ``requests`` through ``clients`` concurrent connections.

    Requests are pulled from one shared queue, so ordering across
    clients is racy on purpose — that is what makes identical
    neighbours land concurrently and exercise coalescing.  With
    ``honor_backpressure`` each client retries 429s after the advertised
    delay; without it the 429s land in the report.  ``retry`` installs
    an explicit :class:`RetryPolicy` on every client (implies honoring
    backpressure on that policy's schedule); the report's ``retries``
    total counts the rounds absorbed.
    """
    work: "queue.Queue[ExperimentRequest]" = queue.Queue()
    for req in requests:
        work.put(req)
    replies: List[ServiceReply] = []
    replies_lock = threading.Lock()
    failures: List[BaseException] = []

    def client_loop() -> None:
        with ServiceClient(host, port, retry=retry) as client:
            while True:
                try:
                    req = work.get_nowait()
                except queue.Empty:
                    return
                try:
                    if retry is not None:
                        reply = client.submit(req)
                    elif honor_backpressure:
                        reply = client.submit_retrying(req)
                    else:
                        reply = client.submit(req)
                except BaseException as exc:  # noqa: BLE001 — report it
                    failures.append(exc)
                    return
                with replies_lock:
                    replies.append(reply)

    threads = [
        threading.Thread(target=client_loop, name=f"loadgen-{i}")
        for i in range(max(1, clients))
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    if failures:
        raise ServiceError(
            f"{len(failures)} load-generator clients failed; "
            f"first: {failures[0]}"
        )
    return LoadReport(replies=replies, wall_s=wall, clients=len(threads))
