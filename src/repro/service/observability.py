"""Request observability for the experiment service.

:class:`ServiceObservability` owns everything the daemon knows about
its own behavior beyond the six always-on integers of ``ServiceStats``:

- a :class:`~repro.telemetry.metrics.MetricsRegistry` holding per-route
  HTTP counters/latency histograms, warm/cold/coalesced latency
  families, and worker-reported deltas, rendered on demand for
  ``GET /v1/metrics`` (Prometheus text exposition format);
- **request ids** — every request gets an ``X-Repro-Request-Id``; the
  id rides into the cold-path pool worker, names the worker's
  telemetry session, and roots the stitched span tree;
- a structured **JSONL access log** (one object per request, written
  through the existing :class:`~repro.telemetry.JsonlSink`), whose
  line count agrees with the metrics totals by construction: both are
  recorded at the same call site, and teardown flushes before close;
- **slow-request exemplars** — any request whose latency crosses a
  configurable threshold persists its full span tree (service request
  root + the worker's experiment/workload/kernel_launch spans) into
  the run-registry directory as ``exemplar-<request_id>.json``.

Everything here is synchronous and allocation-light: the warm hit path
pays one id generation, a few dict updates, and one buffered file
write — bounded under 3% of the warm p50 by
``benchmarks/test_bench_service.py``.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import time
from typing import Any, Dict, List, Optional

from repro.telemetry import JsonlSink
from repro.telemetry.metrics import MetricsRegistry, render_prometheus

#: Routes the service serves; anything else is labeled "other" so label
#: cardinality stays bounded no matter what clients probe.
KNOWN_ROUTES = (
    "/healthz",
    "/v1/stats",
    "/v1/experiments",
    "/v1/experiment",
    "/v1/report",
    "/v1/metrics",
    "/v1/shutdown",
)

#: Span events kept per worker payload (exemplars stay bounded even if
#: an experiment emits millions of batch_pass spans).
MAX_WORKER_EVENTS = 50_000

#: Access-log event schema version.
ACCESS_SCHEMA_VERSION = 1


class BoundedMemorySink:
    """A MemorySink that keeps the first ``cap`` events and counts drops.

    The cold-path worker attaches this to its telemetry session so the
    span tree it ships back over the pool boundary has a hard size
    ceiling.
    """

    def __init__(self, cap: int = MAX_WORKER_EVENTS):
        self.cap = cap
        self.events: List[Dict[str, Any]] = []
        self.dropped = 0

    def emit(self, event: Dict[str, Any]) -> None:
        if len(self.events) < self.cap:
            self.events.append(event)
        else:
            self.dropped += 1

    def close(self) -> None:
        pass


class ServiceObservability:
    """Metrics registry + access log + exemplars for one service."""

    def __init__(
        self,
        access_log_path: Optional[str] = None,
        slow_request_s: float = 1.0,
        registry_dir: Optional[str] = None,
    ):
        self.metrics = MetricsRegistry()
        self.slow_request_s = slow_request_s
        self.registry_dir = registry_dir or None
        self.access_log_path = access_log_path or None
        self._sink = (
            JsonlSink(access_log_path) if access_log_path else None
        )
        self._closed = False
        self._seq = 0
        self.access_lines = 0
        self.dropped_access_lines = 0
        self.exemplars_written = 0
        self.started_at = time.time()

    # -- request ids -----------------------------------------------------
    def new_request_id(self) -> str:
        """A fresh request id: ordered prefix + random suffix."""
        self._seq += 1
        return f"r{self._seq:06d}-{os.urandom(6).hex()}"

    # -- recording -------------------------------------------------------
    @staticmethod
    def route_label(path: str) -> str:
        return path if path in KNOWN_ROUTES else "other"

    def observe_http(
        self,
        path: str,
        method: str,
        status: int,
        latency_s: float,
        request_id: str,
        served: str = "",
        experiment: str = "",
        scale: str = "",
    ) -> None:
        """One finished HTTP exchange: metrics + access-log line.

        Counter increment and log line happen at the same call site, so
        ``repro_service_http_requests_total`` and the access log agree
        on totals for the life of the service (modulo lines dropped
        after teardown, which are counted in
        ``dropped_access_lines``).
        """
        route = self.route_label(path)
        self.metrics.inc(
            "repro_service_http_requests_total",
            route=route, status=str(status),
        )
        self.metrics.observe(
            "repro_service_http_request_seconds", latency_s, route=route
        )
        if self._sink is None:
            return
        if self._closed:
            self.dropped_access_lines += 1
            return
        event: Dict[str, Any] = {
            "v": ACCESS_SCHEMA_VERSION,
            "ts": round(time.time(), 6),
            "rid": request_id,
            "method": method,
            "route": route,
            "path": path,
            "status": status,
            "latency_ms": round(latency_s * 1e3, 3),
        }
        if served:
            event["served"] = served
        if experiment:
            event["experiment"] = experiment
        if scale:
            event["scale"] = scale
        self._sink.emit(event)
        self.access_lines += 1

    def observe_served(self, served: str, latency_s: float) -> None:
        """Latency of one answered experiment request, by served class.

        Called exactly where ``ServiceStats`` increments its class
        counters, so each family's ``_count`` equals the corresponding
        ``/v1/stats`` integer.
        """
        self.metrics.observe(
            "repro_service_request_latency_seconds", latency_s,
            served=served,
        )

    def merge_worker(self, extras: Optional[Dict[str, Any]]) -> None:
        """Fold a cold worker's telemetry deltas into the registry.

        ``extras["metrics"]`` is a worker-side
        :meth:`MetricsRegistry.to_dict` payload (experiment/workload/
        kernel-launch duration histograms); ``extras["counters"]`` are
        the worker session's telemetry counter totals, re-published as
        one labeled counter family.
        """
        if not extras:
            return
        metrics = extras.get("metrics")
        if metrics:
            self.metrics.merge(metrics)
        for name, value in (extras.get("counters") or {}).items():
            self.metrics.inc(
                "repro_worker_telemetry_total", int(value), counter=name
            )
        dropped = extras.get("dropped_events", 0)
        if dropped:
            self.metrics.inc(
                "repro_worker_dropped_span_events_total", int(dropped)
            )

    # -- exemplars -------------------------------------------------------
    def maybe_exemplar(
        self,
        request_id: str,
        experiment: str,
        scale: str,
        served: str,
        status: int,
        latency_s: float,
        spans: Optional[List[Dict[str, Any]]],
        run_id: str = "",
    ) -> Optional[pathlib.Path]:
        """Persist a slow request's span tree to the registry directory.

        The document's root is the service request id; the worker's
        root spans are re-parented under it, so the tree reads
        ``<request id> -> service.execute -> experiment -> workload ->
        kernel_launch`` end to end.  Returns the written path, or None
        (below threshold, no registry, no spans).
        """
        if (
            self.registry_dir is None
            or latency_s < self.slow_request_s
            or not spans
        ):
            return None
        stitched: List[Dict[str, Any]] = []
        for event in spans:
            if event.get("ev") not in ("span_open", "span_close"):
                continue
            event = dict(event)
            if event["ev"] == "span_open" and event.get("parent") is None:
                event["parent"] = request_id
            stitched.append(event)
        doc = {
            "v": ACCESS_SCHEMA_VERSION,
            "kind": "exemplar",
            "request_id": request_id,
            "experiment": experiment,
            "scale": scale,
            "served": served,
            "status": status,
            "latency_s": round(latency_s, 6),
            "threshold_s": self.slow_request_s,
            "run_id": run_id,
            "root": {
                "id": request_id,
                "name": "service.request",
                "experiment": experiment,
                "scale": scale,
            },
            "spans": stitched,
        }
        root = pathlib.Path(self.registry_dir)
        try:
            root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=root, prefix=f"exemplar-{request_id}.", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(doc, fh, indent=2, sort_keys=True)
                    fh.write("\n")
                os.replace(tmp, root / f"exemplar-{request_id}.json")
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
        except OSError:
            # Observability must never fail a served request.
            return None
        self.exemplars_written += 1
        self.metrics.inc("repro_service_slow_exemplars_total")
        return root / f"exemplar-{request_id}.json"

    # -- exposition ------------------------------------------------------
    def render(self, stats_snapshot: Dict[str, Any],
               inflight: int, queue_limit: int) -> str:
        """The full Prometheus exposition for ``GET /v1/metrics``.

        Always-on ``ServiceStats`` totals are synced into the registry
        at scrape time so one renderer covers request accounting,
        latency families, gauges, and worker deltas.
        """
        m = self.metrics
        m.sync_counter("repro_service_requests_total",
                       stats_snapshot["requests"])
        for key in ("warm", "cold", "coalesced", "rejected", "errors",
                    "bad_requests"):
            m.sync_counter(
                "repro_service_responses_total", stats_snapshot[key],
                outcome=key,
            )
        for route, count in sorted(
            (stats_snapshot.get("per_route") or {}).items()
        ):
            m.sync_counter(
                "repro_service_route_requests_total", count, route=route
            )
        m.set_gauge("repro_service_inflight", inflight)
        m.set_gauge("repro_service_queue_limit", queue_limit)
        m.set_gauge("repro_service_warm_hit_rate",
                    stats_snapshot["warm_hit_rate"])
        m.set_gauge("repro_service_coalescing_ratio",
                    stats_snapshot["coalescing_ratio"])
        m.set_gauge("repro_service_uptime_seconds",
                    round(time.time() - self.started_at, 3))
        m.sync_counter("repro_service_access_log_lines_total",
                       self.access_lines)
        return render_prometheus(m)

    # -- summary metrics (SLO / drift / baseline) ------------------------
    def service_metrics(
        self, stats_snapshot: Dict[str, Any]
    ) -> Dict[str, float]:
        """Flattened ``service/*`` metric paths for the fidelity layer.

        The encoding the run registry, ``--save-baseline``, and the SLO
        gate share: latencies in milliseconds, rates in [0, 1].
        """
        out: Dict[str, float] = {
            "service/requests": float(stats_snapshot["requests"]),
            "service/rejected": float(stats_snapshot["rejected"]),
            "service/bad_requests": float(stats_snapshot["bad_requests"]),
            "service/warm_hit_rate": float(stats_snapshot["warm_hit_rate"]),
            "service/coalescing_ratio": float(
                stats_snapshot["coalescing_ratio"]
            ),
        }
        answered = (stats_snapshot["warm"] + stats_snapshot["cold"]
                    + stats_snapshot["coalesced"]
                    + stats_snapshot["errors"])
        out["service/error_rate"] = (
            stats_snapshot["errors"] / answered if answered else 0.0
        )
        fam = self.metrics.histograms.get(
            "repro_service_request_latency_seconds", {}
        )
        for key, hist in sorted(fam.items()):
            served = dict(key).get("served", "all")
            if hist.count == 0:
                continue
            out[f"service/{served}_p50_ms"] = hist.quantile(0.5) * 1e3
            out[f"service/{served}_p95_ms"] = hist.quantile(0.95) * 1e3
            out[f"service/{served}_p99_ms"] = hist.quantile(0.99) * 1e3
            out[f"service/{served}_max_ms"] = hist.max * 1e3
            out[f"service/{served}_count"] = float(hist.count)
        return out

    # -- teardown --------------------------------------------------------
    def close(self) -> None:
        """Flush-then-close the access log; idempotent.

        Called from the service's ``stop()`` (and again by whoever owns
        the service, safely): the first call flushes buffered lines to
        disk, later calls are no-ops, and any request that somehow
        lands after teardown is counted in ``dropped_access_lines``
        instead of corrupting a closed file.
        """
        if self._closed:
            return
        self._closed = True
        if self._sink is not None:
            self._sink.close()
