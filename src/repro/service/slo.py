"""Service-level objectives, checked by the fidelity drift machinery.

An SLO is a ceiling on a ``service/*`` metric: "warm p99 under 50ms",
"error rate under 1%".  Objectives are declared as a compact spec
string (CLI-friendly)::

    warm_p99_ms=50,error_rate=0.01,cold_p50_ms=30000

Short names alias the flattened metric paths the observability layer
already emits (:meth:`ServiceObservability.service_metrics`), so the
same numbers feed ``--slo`` ceilings, ``--baseline`` drift comparisons,
and the persisted ``service`` run record.

:func:`check_slo` returns the fidelity layer's own
:class:`~repro.fidelity.drift.DriftReport` — one
:class:`~repro.fidelity.drift.MetricDrift` entry per objective, status
``pass`` when the measured value is at or under the ceiling, ``fail``
above it, ``missing`` when the service never observed the metric (a
gate on a family that saw no traffic is a broken gate, and fails
loudly).  CI consumes ``report.exit_code`` exactly as it does for
golden-table drift.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Dict, Optional, Tuple

from repro.fidelity.drift import DriftReport, MetricDrift

#: Short objective names -> flattened service metric paths.  Anything
#: not listed here may still be targeted by its full ``service/...``
#: path in the spec string.
SLO_ALIASES: Dict[str, str] = {
    "warm_p50_ms": "service/warm_p50_ms",
    "warm_p95_ms": "service/warm_p95_ms",
    "warm_p99_ms": "service/warm_p99_ms",
    "warm_max_ms": "service/warm_max_ms",
    "cold_p50_ms": "service/cold_p50_ms",
    "cold_p95_ms": "service/cold_p95_ms",
    "cold_p99_ms": "service/cold_p99_ms",
    "cold_max_ms": "service/cold_max_ms",
    "coalesced_p99_ms": "service/coalesced_p99_ms",
    "error_rate": "service/error_rate",
}


@dataclasses.dataclass(frozen=True)
class Objective:
    """One declared ceiling on a service metric."""

    metric: str     # full "service/..." path
    ceiling: float  # inclusive upper bound

    @property
    def short(self) -> str:
        return self.metric.split("/", 1)[-1]


def parse_slo_spec(spec: str) -> Tuple[Objective, ...]:
    """``"warm_p99_ms=50,error_rate=0.01"`` -> objectives.

    Accepts short aliases or full ``service/...`` metric paths;
    separators are commas.  Raises ``ValueError`` on malformed entries,
    unknown short names, or non-numeric ceilings — a typo'd gate must
    not silently gate nothing.
    """
    objectives = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        name, sep, raw = chunk.partition("=")
        name = name.strip()
        if not sep or not name:
            raise ValueError(f"SLO entry {chunk!r} is not name=ceiling")
        metric = SLO_ALIASES.get(name, name if "/" in name else None)
        if metric is None:
            known = ", ".join(sorted(SLO_ALIASES))
            raise ValueError(
                f"unknown SLO name {name!r} (known: {known}; or use a "
                f"full service/... metric path)"
            )
        try:
            ceiling = float(raw)
        except ValueError:
            raise ValueError(
                f"SLO ceiling {raw!r} for {name!r} is not a number"
            ) from None
        objectives.append(Objective(metric=metric, ceiling=ceiling))
    if not objectives:
        raise ValueError(f"SLO spec {spec!r} declares no objectives")
    return tuple(objectives)


def check_slo(
    metrics: Dict[str, float], objectives: Tuple[Objective, ...]
) -> DriftReport:
    """Measured service metrics vs declared ceilings -> DriftReport.

    An objective passes when ``actual <= ceiling`` (the ceiling itself
    is in-budget: "p99 under 50ms" declared as 50 passes at exactly
    50).  ``error`` is the overshoot; ``budget`` the ceiling, so
    ``ratio`` reads as "overshoot as a fraction of the objective".
    """
    entries = []
    for obj in objectives:
        actual = metrics.get(obj.metric)
        if actual is None:
            entries.append(MetricDrift(
                metric=obj.metric, expected=obj.ceiling, actual=None,
                error=0.0, budget=obj.ceiling or 1.0, status="missing",
            ))
            continue
        over = max(0.0, actual - obj.ceiling)
        entries.append(MetricDrift(
            metric=obj.metric, expected=obj.ceiling, actual=actual,
            error=over, budget=obj.ceiling if obj.ceiling else 1.0,
            status="pass" if over == 0.0 else "fail",
        ))
    return DriftReport(
        baseline="slo", scale="service", entries=entries,
        experiments=["service"], skipped=[],
    )


# ----------------------------------------------------------------------
# Baseline persistence (for `runner serve --baseline` drift gating)
# ----------------------------------------------------------------------
def save_service_baseline(
    metrics: Dict[str, float], path: str
) -> pathlib.Path:
    """Persist one lifetime's ``service/*`` metrics as a baseline file."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps({"v": 1, "kind": "service-baseline",
                    "metrics": metrics},
                   indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return target


def load_service_baseline(path: str) -> Dict[str, float]:
    """Baseline metrics from a baseline file *or* a run-registry record.

    Accepts either a file written by :func:`save_service_baseline` or a
    full :class:`~repro.fidelity.registry.RunRecord` JSON (the service
    archives one per lifetime) — both carry a ``metrics`` mapping.
    """
    body = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    metrics = body.get("metrics")
    if not isinstance(metrics, dict):
        raise ValueError(f"{path} has no 'metrics' mapping")
    return {str(k): float(v) for k, v in metrics.items()}


def baseline_metrics_or_none(path: str) -> Optional[Dict[str, float]]:
    """``load_service_baseline`` that returns None on a missing file."""
    try:
        return load_service_baseline(path)
    except FileNotFoundError:
        return None
