"""`runner watch` — a curses-free terminal dashboard for the service.

Polls ``/v1/stats`` and ``/v1/metrics`` on an interval and renders a
compact live view: per-served-class latency quantiles straight from
the scraped histogram buckets, per-route request counts, gauges
(in-flight depth, hit rates), and unicode sparklines of throughput and
warm latency over the recent polling history.  Plain ``print`` with an
ANSI home-and-clear prefix — works in any terminal, pipes cleanly when
redirected (``--no-clear``), and needs nothing beyond the stdlib.
"""

from __future__ import annotations

import sys
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.common.tables import Table
from repro.service.client import ServiceClient, ServiceError
from repro.telemetry.metrics import (
    histogram_buckets,
    parse_prometheus,
    quantile_from_buckets,
)

#: Eight-level bar alphabet, lowest to highest.
SPARK = "▁▂▃▄▅▆▇█"

#: ANSI: cursor home + clear-to-end (repaint without scrollback spam).
_CLEAR = "\x1b[H\x1b[J"

#: Polls of history behind each sparkline.
HISTORY = 60


def sparkline(values: List[float], width: int = 30) -> str:
    """Render the last ``width`` values as a unicode bar strip.

    Scaled to the window's own min..max so shape is visible whatever
    the units; a flat series renders as a flat low bar.
    """
    tail = [v for v in values[-width:] if v == v]  # drop NaNs
    if not tail:
        return ""
    lo, hi = min(tail), max(tail)
    if hi <= lo:
        return SPARK[0] * len(tail)
    span = hi - lo
    return "".join(
        SPARK[min(len(SPARK) - 1, int((v - lo) / span * len(SPARK)))]
        for v in tail
    )


class WatchState:
    """Polling history + table rendering for one watched service."""

    def __init__(self, history: int = HISTORY):
        self.samples: Deque[Dict[str, Any]] = deque(maxlen=history)

    # -- collection ------------------------------------------------------
    def collect(self, client: ServiceClient) -> Dict[str, Any]:
        stats = client.stats()
        parsed = parse_prometheus(client.metrics_text())
        sample = {
            "t": time.monotonic(),
            "stats": stats,
            "parsed": parsed,
        }
        self.samples.append(sample)
        return sample

    # -- derived series --------------------------------------------------
    def series(self, fn) -> List[float]:
        return [fn(s) for s in self.samples]

    def throughput(self) -> List[float]:
        """Requests/s between consecutive polls."""
        out: List[float] = []
        prev: Optional[Dict[str, Any]] = None
        for s in self.samples:
            if prev is not None:
                dt = s["t"] - prev["t"]
                dn = (s["stats"]["requests"]
                      - prev["stats"]["requests"])
                out.append(dn / dt if dt > 0 else 0.0)
            prev = s
        return out

    # -- rendering -------------------------------------------------------
    @staticmethod
    def _quantiles(
        parsed: Dict[str, Dict[Any, float]], served: str
    ) -> Optional[Tuple[float, float, float, float]]:
        buckets = histogram_buckets(
            parsed, "repro_service_request_latency_seconds",
            served=served,
        )
        if buckets is None or not buckets or buckets[-1][1] == 0:
            return None
        return (
            quantile_from_buckets(buckets, 0.5),
            quantile_from_buckets(buckets, 0.95),
            quantile_from_buckets(buckets, 0.99),
            buckets[-1][1],
        )

    def render(self, host: str, port: int) -> str:
        if not self.samples:
            return f"watch {host}:{port} — waiting for first sample"
        latest = self.samples[-1]
        stats, parsed = latest["stats"], latest["parsed"]
        lines: List[str] = [
            f"repro service {host}:{port} — "
            f"uptime {stats.get('uptime_s', 0.0):g}s, "
            f"{stats['requests']} requests, "
            f"inflight {stats.get('inflight', 0)}, "
            f"warm hit rate {stats.get('warm_hit_rate', 0.0):.2%}, "
            f"coalescing {stats.get('coalescing_ratio', 0.0):.2%}",
            "",
        ]
        lat = Table("Latency by served class (scraped histograms)",
                    ["served", "p50 ms", "p95 ms", "p99 ms", "count"])
        for served in ("warm", "coalesced", "cold", "error"):
            q = self._quantiles(parsed, served)
            if q is None:
                continue
            p50, p95, p99, count = q
            lat.add_row([served, f"{p50 * 1e3:.3f}", f"{p95 * 1e3:.3f}",
                         f"{p99 * 1e3:.3f}", f"{int(count)}"])
        lines.append(lat.render())
        routes = Table("Requests by route", ["route", "count"])
        for route, count in sorted(
            (stats.get("per_route") or {}).items()
        ):
            routes.add_row([route, str(count)])
        lines.append(routes.render())
        rps = self.throughput()
        if rps:
            lines.append(
                f"throughput rps  {sparkline(rps)}  "
                f"(now {rps[-1]:.1f}/s)"
            )

        def warm_p50(sample: Dict[str, Any]) -> float:
            q = self._quantiles(sample["parsed"], "warm")
            return q[0] * 1e3 if q else float("nan")

        warm = [v for v in self.series(warm_p50)]
        if any(v == v for v in warm):
            tail = [v for v in warm if v == v]
            lines.append(
                f"warm p50 ms     {sparkline(warm)}  "
                f"(now {tail[-1]:.3f}ms)"
            )
        return "\n".join(lines)


def watch(
    host: str,
    port: int,
    interval_s: float = 2.0,
    iterations: Optional[int] = None,
    clear: bool = True,
    out=None,
) -> int:
    """Poll and repaint until interrupted (or ``iterations`` polls).

    Returns 0 on a clean exit (Ctrl-C included — leaving a dashboard
    is not an error), 1 when the service could not be reached at all.
    """
    out = sys.stdout if out is None else out
    state = WatchState()
    client = ServiceClient(host, port, timeout=max(10.0, interval_s * 5))
    polled = 0
    try:
        while iterations is None or polled < iterations:
            try:
                state.collect(client)
                frame = state.render(host, port)
            except ServiceError as exc:
                if not state.samples:
                    print(f"watch: {exc}", file=sys.stderr, flush=True)
                    return 1
                frame = (state.render(host, port)
                         + f"\n[connection lost: {exc}]")
            print((_CLEAR if clear else "") + frame, file=out,
                  flush=True)
            polled += 1
            if iterations is not None and polled >= iterations:
                break
            time.sleep(interval_s)
    except KeyboardInterrupt:
        pass
    finally:
        client.close()
    return 0
