"""Random graph generation in CSR form (BFS, MUMmer tree layouts)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.common.rng import make_rng


def random_graph_csr(
    n_nodes: int, avg_degree: int = 6, seed_tag: str = "bfs"
) -> Tuple[np.ndarray, np.ndarray]:
    """Connected random directed graph as (row_offsets, col_indices).

    A Hamiltonian backbone over a random permutation guarantees
    connectivity (so BFS reaches every node); remaining edges are uniform
    random.  Mirrors the generator shipped with Rodinia's BFS, which
    produces uniform random graphs.
    """
    rng = make_rng("graph", seed_tag, n_nodes, avg_degree)
    perm = rng.permutation(n_nodes)
    backbone_src = perm[:-1]
    backbone_dst = perm[1:]
    n_extra = max(0, n_nodes * avg_degree - (n_nodes - 1))
    extra_src = rng.integers(0, n_nodes, n_extra)
    extra_dst = rng.integers(0, n_nodes, n_extra)
    src = np.concatenate([backbone_src, extra_src])
    dst = np.concatenate([backbone_dst, extra_dst])
    order = np.argsort(src, kind="stable")
    src = src[order]
    dst = dst[order]
    row_offsets = np.zeros(n_nodes + 1, dtype=np.int64)
    np.add.at(row_offsets, src + 1, 1)
    row_offsets = np.cumsum(row_offsets)
    return row_offsets.astype(np.int64), dst.astype(np.int64)


def bfs_source(n_nodes: int, seed_tag: str = "bfs") -> int:
    """Deterministic BFS source node."""
    rng = make_rng("graph-src", seed_tag, n_nodes)
    return int(rng.integers(0, n_nodes))
