"""Synthetic image inputs.

Generates speckled ultrasound-like frames (SRAD, Heartwall), cell images
(Leukocyte), video frame sequences (Bodytrack, X264), and generic photos
(Vips, Ferret) with deterministic seeding.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.common.rng import make_rng


def _disk_mask(h: int, w: int, cy: float, cx: float, r: float) -> np.ndarray:
    ys, xs = np.mgrid[0:h, 0:w]
    return (ys - cy) ** 2 + (xs - cx) ** 2 <= r * r


def speckled_ultrasound(h: int, w: int, seed_tag: str = "srad") -> np.ndarray:
    """Ultrasound-like image: smooth anatomy + multiplicative speckle.

    SRAD's whole purpose is removing exactly this speckle, so the
    generator reproduces the standard multiplicative-noise model.
    """
    rng = make_rng("ultrasound", seed_tag, h, w)
    img = np.full((h, w), 0.3)
    img[_disk_mask(h, w, h * 0.5, w * 0.5, min(h, w) * 0.32)] = 0.7
    img[_disk_mask(h, w, h * 0.5, w * 0.5, min(h, w) * 0.18)] = 0.45
    speckle = rng.gamma(shape=4.0, scale=0.25, size=(h, w))
    return (img * speckle).astype(np.float64)


def heart_sequence(
    n_frames: int, h: int, w: int, seed_tag: str = "heartwall"
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Synthetic beating-heart ultrasound sequence.

    Returns ``(frames, inner_radii, outer_radii)``: two concentric walls
    whose radii oscillate over the sequence — the structure Heartwall
    tracks.  Radii arrays give the ground truth for self-checks.
    """
    rng = make_rng("heart", seed_tag, n_frames, h, w)
    cy, cx = h / 2.0, w / 2.0
    base_inner = min(h, w) * 0.18
    base_outer = min(h, w) * 0.34
    frames = np.empty((n_frames, h, w))
    inner_r = np.empty(n_frames)
    outer_r = np.empty(n_frames)
    for f in range(n_frames):
        phase = 2 * np.pi * f / max(1, n_frames)
        ri = base_inner * (1.0 + 0.15 * np.sin(phase))
        ro = base_outer * (1.0 + 0.08 * np.sin(phase))
        img = np.full((h, w), 0.25)
        img[_disk_mask(h, w, cy, cx, ro)] = 0.65
        img[_disk_mask(h, w, cy, cx, ri)] = 0.2
        speckle = rng.gamma(shape=6.0, scale=1.0 / 6.0, size=(h, w))
        frames[f] = img * speckle
        inner_r[f] = ri
        outer_r[f] = ro
    return frames, inner_r, outer_r


def cell_image(
    h: int, w: int, n_cells: int, radius: float, seed_tag: str = "leukocyte"
) -> Tuple[np.ndarray, np.ndarray]:
    """In-vivo microscopy-like frame with bright circular leukocytes.

    Returns ``(image, centers)`` with centers as an (n_cells, 2) array of
    (y, x) ground-truth positions for detection self-checks.
    """
    rng = make_rng("cells", seed_tag, h, w, n_cells)
    img = rng.normal(0.35, 0.05, size=(h, w))
    margin = radius * 2.0
    min_sep = radius * 5.0
    centers = np.empty((n_cells, 2))
    for i in range(n_cells):
        # Rejection-sample so planted cells stay separable by detection.
        for _ in range(200):
            cy = rng.uniform(margin, h - margin)
            cx = rng.uniform(margin, w - margin)
            if all(
                (cy - centers[j, 0]) ** 2 + (cx - centers[j, 1]) ** 2
                >= min_sep * min_sep
                for j in range(i)
            ):
                break
        centers[i] = (cy, cx)
        img[_disk_mask(h, w, cy, cx, radius)] += 0.5
        img[_disk_mask(h, w, cy, cx, radius * 0.55)] -= 0.25
    return np.clip(img, 0.0, 1.0), centers


def video_sequence(
    n_frames: int, h: int, w: int, seed_tag: str = "video"
) -> np.ndarray:
    """Frames with moving blocks over textured background (x264/bodytrack)."""
    rng = make_rng("video", seed_tag, n_frames, h, w)
    background = rng.uniform(0.2, 0.8, size=(h, w))
    frames = np.empty((n_frames, h, w))
    n_objects = 4
    pos = rng.uniform(0.1, 0.7, size=(n_objects, 2)) * [h, w]
    vel = rng.uniform(-2.0, 2.0, size=(n_objects, 2))
    size = max(8, h // 10)  # at least template-sized, so trackers lock on
    for f in range(n_frames):
        frame = background.copy()
        for o in range(n_objects):
            y = int(pos[o, 0]) % max(1, h - size)
            x = int(pos[o, 1]) % max(1, w - size)
            frame[y : y + size, x : x + size] = 0.1 + 0.2 * o / n_objects
        frames[f] = frame
        pos += vel
    return frames


def photo(h: int, w: int, seed_tag: str = "photo") -> np.ndarray:
    """Generic natural-image stand-in: low-frequency field plus detail."""
    rng = make_rng("photo", seed_tag, h, w)
    coarse = rng.uniform(0.0, 1.0, size=((h + 7) // 8, (w + 7) // 8))
    img = np.kron(coarse, np.ones((8, 8)))[:h, :w]
    return np.clip(img + rng.normal(0.0, 0.05, size=(h, w)), 0.0, 1.0)
