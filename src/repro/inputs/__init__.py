"""Deterministic synthetic input generators.

The paper's workloads consume domain inputs (ultrasound image sequences,
DNA reads, unstructured CFD meshes, video frames, transaction databases).
Those exact datasets are not redistributable, so each generator here
synthesizes a statistically similar input exercising the same code paths
(documented per substitution in DESIGN.md).  All generators are seeded
via :func:`repro.common.rng.make_rng` and fully reproducible.
"""

from repro.inputs import graphs, images, meshes, misc, points, sequences

__all__ = ["graphs", "images", "meshes", "misc", "points", "sequences"]
