"""DNA sequence synthesis (Needleman-Wunsch, MUMmer)."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.common.rng import make_rng

#: Nucleotide alphabet as small integers (A, C, G, T).
ALPHABET = 4


def random_sequence(length: int, seed_tag: str = "dna") -> np.ndarray:
    """Uniform random nucleotide sequence as int8 codes in [0, 4)."""
    rng = make_rng("dna", seed_tag, length)
    return rng.integers(0, ALPHABET, length, dtype=np.int8)


def reads_from_reference(
    reference: np.ndarray,
    n_reads: int,
    read_len: int,
    error_rate: float = 0.05,
    seed_tag: str = "mummer",
) -> np.ndarray:
    """Sample reads from a reference with point mutations.

    Models a sequencing run: most reads align somewhere in the reference
    (so suffix-tree walks descend deep, as in MUMmerGPU), with occasional
    mismatches that terminate matches early.
    """
    rng = make_rng("reads", seed_tag, n_reads, read_len)
    n_ref = reference.size
    starts = rng.integers(0, max(1, n_ref - read_len), n_reads)
    reads = np.empty((n_reads, read_len), dtype=np.int8)
    for i, s in enumerate(starts):
        reads[i] = reference[s : s + read_len]
    errors = rng.random((n_reads, read_len)) < error_rate
    substitutions = rng.integers(1, ALPHABET, (n_reads, read_len))
    reads[errors] = (reads[errors] + substitutions[errors]) % ALPHABET
    return reads


def blosum_like_matrix(seed_tag: str = "nw") -> np.ndarray:
    """A 4x4 substitution score matrix (match-biased, symmetric)."""
    rng = make_rng("subst", seed_tag)
    m = rng.integers(-4, 0, (ALPHABET, ALPHABET))
    m = ((m + m.T) / 2).astype(np.int32)
    np.fill_diagonal(m, 5)
    return m
