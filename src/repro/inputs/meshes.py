"""Unstructured-mesh synthesis (CFD solver, Facesim).

The CFD solver of Corrigan et al. operates on an unstructured 3-D
finite-volume mesh: per element, state variables plus the indices and
face normals of its neighbors.  We synthesize a topologically unstructured
mesh by perturbing and permuting a structured hexahedral grid: adjacency
is grid-like (4-6 neighbors) but element numbering is randomized, so the
memory-access pattern is a genuine indexed gather, as in the original.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np

from repro.common.rng import make_rng


@dataclasses.dataclass
class UnstructuredMesh:
    """Finite-volume mesh: per-element neighbor indices and face normals."""

    n_elements: int
    neighbors: np.ndarray      # (n, 4) element indices, -1 for boundary
    face_normals: np.ndarray   # (n, 4, 3) outward normals scaled by area
    volumes: np.ndarray        # (n,)


def cfd_mesh(nx: int, ny: int, nz: int = 2, seed_tag: str = "cfd") -> UnstructuredMesh:
    """Perturbed grid mesh with 4 tracked faces per element.

    Element numbering follows the grid order: this models the
    locality-optimized ("appropriate numbering scheme") renumbering the
    Rodinia CFD solver applies to reduce uncoalesced accesses — the
    adjacency is still consumed through an explicit indexed gather, as
    in any unstructured solver, but neighbor indices are mostly nearby.
    """
    rng = make_rng("mesh", seed_tag, nx, ny, nz)
    n = nx * ny * nz

    def idx(i, j, k):
        return (i * ny + j) * nz + k

    neighbors = np.full((n, 4), -1, dtype=np.int64)
    normals = np.zeros((n, 4, 3))
    base_dirs = np.array(
        [[1.0, 0, 0], [-1.0, 0, 0], [0, 1.0, 0], [0, -1.0, 0]]
    )
    for i in range(nx):
        for j in range(ny):
            for k in range(nz):
                e = idx(i, j, k)
                nbrs = [
                    idx(i + 1, j, k) if i + 1 < nx else -1,
                    idx(i - 1, j, k) if i - 1 >= 0 else -1,
                    idx(i, j + 1, k) if j + 1 < ny else -1,
                    idx(i, j - 1, k) if j - 1 >= 0 else -1,
                ]
                for f, nb in enumerate(nbrs):
                    neighbors[e, f] = nb
                    jitter = rng.normal(0.0, 0.05, 3)
                    normals[e, f] = base_dirs[f] + jitter
    volumes = rng.uniform(0.9, 1.1, n)
    return UnstructuredMesh(n, neighbors, normals, volumes)


def tet_spring_mesh(
    nx: int, ny: int, nz: int, seed_tag: str = "facesim"
) -> Tuple[np.ndarray, np.ndarray]:
    """Spring lattice for the Facesim stand-in.

    Returns ``(positions, edges)``: node positions of a jittered 3-D
    lattice and the spring edge list (6-connectivity), mimicking a
    tetrahedralized flesh mesh's sparsity.
    """
    rng = make_rng("tetmesh", seed_tag, nx, ny, nz)
    grid = np.stack(
        np.meshgrid(np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"),
        axis=-1,
    ).reshape(-1, 3).astype(np.float64)
    positions = grid + rng.normal(0.0, 0.05, grid.shape)

    def idx(i, j, k):
        return (i * ny + j) * nz + k

    edges = []
    for i in range(nx):
        for j in range(ny):
            for k in range(nz):
                e = idx(i, j, k)
                if i + 1 < nx:
                    edges.append((e, idx(i + 1, j, k)))
                if j + 1 < ny:
                    edges.append((e, idx(i, j + 1, k)))
                if k + 1 < nz:
                    edges.append((e, idx(i, j, k + 1)))
    return positions, np.asarray(edges, dtype=np.int64)
