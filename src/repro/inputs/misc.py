"""Remaining domain inputs: options, swaptions, netlists, transaction
databases, dedup byte streams, and feature databases for similarity
search."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.common.rng import make_rng


def option_portfolio(n_options: int, seed_tag: str = "blackscholes") -> dict:
    """European option parameters in realistic ranges (Parsec-style)."""
    rng = make_rng("options", seed_tag, n_options)
    return {
        "spot": rng.uniform(20.0, 120.0, n_options),
        "strike": rng.uniform(20.0, 120.0, n_options),
        "rate": rng.uniform(0.01, 0.08, n_options),
        "volatility": rng.uniform(0.1, 0.6, n_options),
        "expiry": rng.uniform(0.25, 2.0, n_options),
        "is_call": rng.random(n_options) < 0.5,
    }


def swaption_portfolio(n_swaptions: int, seed_tag: str = "swaptions") -> dict:
    """HJM swaption parameters (maturity/tenor/strike/initial curve)."""
    rng = make_rng("swaptions", seed_tag, n_swaptions)
    n_curve = 11
    base_curve = 0.03 + 0.01 * np.linspace(0.0, 1.0, n_curve)
    return {
        "maturity_steps": rng.integers(2, 6, n_swaptions),
        "tenor_steps": rng.integers(2, 6, n_swaptions),
        "strike": rng.uniform(0.02, 0.06, n_swaptions),
        "vol": rng.uniform(0.05, 0.2, n_swaptions),
        "initial_curve": np.tile(base_curve, (n_swaptions, 1))
        + rng.normal(0.0, 0.002, (n_swaptions, n_curve)),
    }


def netlist(
    n_elements: int, grid_side: int, seed_tag: str = "canneal"
) -> Tuple[np.ndarray, np.ndarray]:
    """Synthetic chip netlist: element fanout lists + initial placement.

    Returns ``(fanout, locations)``: fanout is (n, 4) net partner
    indices (mostly near in index space, some far — Rent's-rule-ish),
    locations is the initial random placement on a grid_side^2 board.
    """
    rng = make_rng("netlist", seed_tag, n_elements)
    near = (
        np.arange(n_elements)[:, None]
        + rng.integers(-16, 17, (n_elements, 3))
    ) % n_elements
    far = rng.integers(0, n_elements, (n_elements, 1))
    fanout = np.concatenate([near, far], axis=1).astype(np.int64)
    locations = rng.permutation(grid_side * grid_side)[:n_elements]
    return fanout, locations.astype(np.int64)


def transaction_db(
    n_transactions: int,
    n_items: int,
    avg_len: int = 8,
    seed_tag: str = "freqmine",
) -> List[np.ndarray]:
    """Market-basket transactions with Zipf-ish item popularity."""
    rng = make_rng("transactions", seed_tag, n_transactions, n_items)
    popularity = 1.0 / np.arange(1, n_items + 1)
    popularity /= popularity.sum()
    out = []
    for _ in range(n_transactions):
        k = max(1, int(rng.poisson(avg_len)))
        items = rng.choice(n_items, size=min(k, n_items), replace=False, p=popularity)
        out.append(np.unique(items).astype(np.int64))
    return out


def dedup_stream(n_bytes: int, dup_rate: float = 0.5, seed_tag: str = "dedup") -> np.ndarray:
    """Byte stream with repeated blocks (storage-archive-like)."""
    rng = make_rng("dedupstream", seed_tag, n_bytes)
    block = 512
    n_blocks = max(1, n_bytes // block)
    unique_pool = rng.integers(0, 256, (max(2, n_blocks // 4), block), dtype=np.uint8)
    out = np.empty((n_blocks, block), dtype=np.uint8)
    for i in range(n_blocks):
        if rng.random() < dup_rate:
            out[i] = unique_pool[rng.integers(0, unique_pool.shape[0])]
        else:
            out[i] = rng.integers(0, 256, block, dtype=np.uint8)
    return out.reshape(-1)[:n_bytes]


def feature_database(
    n_images: int, n_dims: int, seed_tag: str = "ferret"
) -> np.ndarray:
    """Image-feature database for similarity search (unit-normalized)."""
    rng = make_rng("features", seed_tag, n_images, n_dims)
    db = rng.normal(0.0, 1.0, (n_images, n_dims))
    return db / np.linalg.norm(db, axis=1, keepdims=True)
