"""Point-set synthesis (Kmeans, StreamCluster, Fluidanimate)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.common.rng import make_rng


def clustered_points(
    n_points: int,
    n_features: int,
    n_clusters: int,
    spread: float = 0.15,
    seed_tag: str = "kmeans",
) -> Tuple[np.ndarray, np.ndarray]:
    """Gaussian blobs: ``(points, true_labels)``.

    Data-mining workloads (Kmeans, StreamCluster) are run on clusterable
    data so convergence behaviour matches real inputs.
    """
    rng = make_rng("points", seed_tag, n_points, n_features, n_clusters)
    centers = rng.uniform(0.0, 1.0, (n_clusters, n_features))
    labels = rng.integers(0, n_clusters, n_points)
    pts = centers[labels] + rng.normal(0.0, spread, (n_points, n_features))
    return pts.astype(np.float64), labels


def particle_box(
    n_particles: int, box: float = 1.0, seed_tag: str = "fluid"
) -> Tuple[np.ndarray, np.ndarray]:
    """Uniform particles with small random velocities (SPH input)."""
    rng = make_rng("particles", seed_tag, n_particles)
    pos = rng.uniform(0.0, box, (n_particles, 3))
    vel = rng.normal(0.0, 0.01, (n_particles, 3))
    return pos, vel
