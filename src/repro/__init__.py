"""Reproduction of Che et al., "A Characterization of the Rodinia Benchmark
Suite with Comparison to Contemporary CMP Workloads" (IISWC 2010).

The package is organized as:

- :mod:`repro.gpusim` -- a SIMT GPU functional + timing simulator (the
  GPGPU-Sim substitute) with a warp-masked kernel DSL.
- :mod:`repro.cpusim` -- a Pin-like instrumentation substrate with cache,
  reuse-distance, sharing, and footprint analyses.
- :mod:`repro.workloads` -- from-scratch implementations of the 12 Rodinia
  and 13 Parsec workloads against both substrates.
- :mod:`repro.inputs` -- deterministic synthetic input generators.
- :mod:`repro.core` -- the paper's methodology: feature extraction, PCA,
  hierarchical clustering, Plackett-Burman sensitivity analysis.
- :mod:`repro.experiments` -- one driver per paper table/figure.
"""

__version__ = "1.0.0"

from repro.common.config import SimScale

__all__ = ["SimScale", "__version__"]
