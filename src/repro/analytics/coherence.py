"""Batch private-cache MSI coherence simulation.

Every interaction in the write-invalidate protocol of
:mod:`repro.cpusim.coherence` — lookup, LRU touch, install/evict,
cross-core invalidation, cold classification — is line-granular, and a
line maps to exactly one set in every core's (identically shaped)
private cache.  Accesses to different sets therefore never interact,
and the simulation vectorizes over sets exactly like
:mod:`repro.analytics.cache`: one access per set per round, with the
per-core way matrices ``W[core, set, way]`` advanced by gather-shifts.

Alongside the line addresses, two payload matrices ride through the
same shifts: the MSI dirty bit and the touched-word bitmask that
classifies invalidations into true vs. false sharing.  The
"last departure was an invalidation" set becomes a dense
``(core, line)`` boolean table.

Unlike the shared-cache engine, invalidations *remove* entries, which
leaves stale line addresses beyond a set's valid length — every match
is therefore masked by way index < length.

Results are bit-identical to the scalar simulator, which remains the
test oracle.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from repro.analytics.cache import (
    EMPTY_LINE,
    batch_worthwhile,
    partition_by_set,
)
from repro.cpusim.coherence import CoherenceStats


def _member(sorted_ref: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Boolean membership of ``values`` in a sorted reference array."""
    if sorted_ref.size == 0 or values.size == 0:
        return np.zeros(values.size, dtype=bool)
    idx = np.minimum(
        np.searchsorted(sorted_ref, values), sorted_ref.size - 1
    )
    return sorted_ref[idx] == values


@dataclasses.dataclass
class CoherenceBatchState:
    """Carried machine state between chunked coherence runs.

    Way matrices are dense over all ``n_sets`` (a chunk imports and
    exports only the sets it touches); the invalidated and seen line
    sets are sorted line-address arrays, since their domain — distinct
    lines — is unbounded by cache geometry.
    """

    n_sets: int
    W: np.ndarray    # (C, n_sets, A) resident lines, MRU first
    MOD: np.ndarray  # (C, n_sets, A) dirty bits
    TW: np.ndarray   # (C, n_sets, A) touched-word masks
    LEN: np.ndarray  # (C, n_sets) valid ways
    inv_lines: List[np.ndarray]  # per-core sorted lines last evicted by inval
    seen_lines: np.ndarray       # sorted lines ever accessed

    @classmethod
    def fresh(cls, n_cores: int, n_sets: int, assoc: int) -> "CoherenceBatchState":
        C, A = n_cores, assoc
        return cls(
            n_sets=n_sets,
            W=np.full((C, n_sets, A), EMPTY_LINE, dtype=np.int64),
            MOD=np.zeros((C, n_sets, A), dtype=bool),
            TW=np.zeros((C, n_sets, A), dtype=np.uint64),
            LEN=np.zeros((C, n_sets), dtype=np.int64),
            inv_lines=[np.empty(0, dtype=np.int64) for _ in range(C)],
            seen_lines=np.empty(0, dtype=np.int64),
        )


def simulate_coherent_caches_batch(
    addrs: np.ndarray,
    tids: np.ndarray,
    writes: np.ndarray,
    cache_bytes_per_core: int = 512 * 1024,
    assoc: int = 4,
    line_bytes: int = 64,
    n_cores: int = 8,
    force: bool = False,
    state: Optional[CoherenceBatchState] = None,
    return_state: bool = False,
) -> Optional[CoherenceStats]:
    """Vectorized-across-sets run of the private-cache MSI protocol.

    Returns ``None`` when the trace shape doesn't suit the batch engine
    (few sets, or one set dominating); the caller falls back to the
    scalar oracle.

    With ``state``/``return_state`` the run continues from (and exports
    to) carried machine state, so a chunked trace processed one chunk at
    a time produces counters bit-identical to one dense run — every
    protocol interaction is line-granular and a line maps to one set in
    all cores' identically shaped caches, so per-set subsequences with
    carried way/INV/seen state compose exactly.
    """
    n = int(addrs.size)
    if line_bytes > 512:
        return None  # touched-word masks are 64-bit (8-byte words)
    n_sets = max(1, cache_bytes_per_core // (assoc * line_bytes))
    if state is not None and state.n_sets != n_sets:
        raise ValueError("carried state has mismatched set count")
    if n == 0:
        empty = CoherenceStats(n_cores, 0, 0, 0, 0, 0, 0)
        return (empty, state) if return_state else empty
    lines = (addrs // line_bytes).astype(np.int64)
    part = partition_by_set(lines % n_sets)
    if not force and not batch_worthwhile(n, part.counts):
        return None

    order = part.order
    sorted_lines = lines[order]
    uniq_lines, lid_all = np.unique(sorted_lines, return_inverse=True)
    n_lines = int(uniq_lines.size)
    words = ((addrs % line_bytes) // 8).astype(np.uint64)
    sorted_wbit = np.uint64(1) << words[order]
    sorted_core = (tids[order].astype(np.int64)) % n_cores
    sorted_wr = writes[order].astype(bool)

    G = part.n_groups
    desc = np.argsort(-part.counts, kind="stable")
    dstarts = part.starts[desc]
    neg_counts = -part.counts[desc]
    maxlen = int(part.counts[desc[0]])

    C, A = n_cores, assoc
    # Way-matrix row j holds the desc[j]-th group throughout the round
    # loop, so state import/export must follow the same permutation.
    sid = part.set_ids[desc]
    if state is not None:
        W = state.W[:, sid, :].copy()
        MOD = state.MOD[:, sid, :].copy()
        TW = state.TW[:, sid, :].copy()
        LEN = state.LEN[:, sid].copy()
        INV = np.stack(
            [_member(state.inv_lines[c], uniq_lines) for c in range(C)]
        )
        seen = _member(state.seen_lines, uniq_lines)
    else:
        W = np.full((C, G, A), EMPTY_LINE, dtype=np.int64)
        MOD = np.zeros((C, G, A), dtype=bool)
        TW = np.zeros((C, G, A), dtype=np.uint64)
        LEN = np.zeros((C, G), dtype=np.int64)
        INV = np.zeros((C, n_lines), dtype=bool)
        seen = np.zeros(n_lines, dtype=bool)

    misses = cold = coh = invals = wbs = 0
    true_sh = false_sh = 0
    cols = np.arange(A)
    zero64 = np.uint64(0)

    for r in range(maxlen):
        k = int(np.searchsorted(neg_counts, -(r + 1), side="right"))
        idx = dstarts[:k] + r
        x = sorted_lines[idx]
        lid = lid_all[idx]
        wbit = sorted_wbit[idx]
        core = sorted_core[idx]
        wr = sorted_wr[idx]
        rows = np.arange(k)

        # --- cross-core invalidations (before the writer's own update,
        # matching the scalar order; they never touch the writer's cache)
        if wr.any():
            for o in range(C):
                im = wr & (core != o)
                if not im.any():
                    continue
                ro = rows[im]
                xo = x[im]
                Wo = W[o, ro]
                Lo = LEN[o, ro]
                mm = (Wo == xo[:, None]) & (cols[None, :] < Lo[:, None])
                present = mm.any(axis=1)
                if not present.any():
                    continue
                pos = mm.argmax(axis=1)
                mo = np.arange(ro.size)
                touched = TW[o, ro][mo, pos]
                hit_word = present & ((touched & wbit[im]) != zero64)
                invals += int(present.sum())
                true_sh += int(hit_word.sum())
                false_sh += int((present & ~hit_word).sum())
                INV[o, lid[im][present]] = True
                # Shift the removed entry out: columns at/after the hit
                # position take their right neighbour.
                src = np.minimum(cols + (cols >= pos[:, None]), A - 1)
                Wn = np.take_along_axis(Wo, src, axis=1)
                Mn = np.take_along_axis(MOD[o, ro], src, axis=1)
                Tn = np.take_along_axis(TW[o, ro], src, axis=1)
                keep = ~present[:, None]
                W[o, ro] = np.where(keep, Wo, Wn)
                MOD[o, ro] = np.where(keep, MOD[o, ro], Mn)
                TW[o, ro] = np.where(keep, TW[o, ro], Tn)
                LEN[o, ro] = Lo - present

        # --- own-cache access
        Wk = W[core, rows]
        Mk = MOD[core, rows]
        Tk = TW[core, rows]
        Lk = LEN[core, rows]
        match = (Wk == x[:, None]) & (cols[None, :] < Lk[:, None])
        hit = match.any(axis=1)
        pos = match.argmax(axis=1)
        miss = ~hit

        n_miss = int(miss.sum())
        if n_miss:
            misses += n_miss
            cold += int((miss & ~seen[lid]).sum())
            was_inval = miss & INV[core, lid]
            coh += int(was_inval.sum())
            INV[core[miss], lid[miss]] = False
            evict = miss & (Lk >= A)
            if evict.any():
                wbs += int(Mk[evict, A - 1].sum())
        seen[lid] = True

        old_mod = Mk[rows, pos]
        old_tw = Tk[rows, pos]
        limit = np.where(hit, pos, np.minimum(Lk, A - 1))
        src = cols - (cols <= limit[:, None])
        src[:, 0] = 0
        Wn = np.take_along_axis(Wk, src, axis=1)
        Mn = np.take_along_axis(Mk, src, axis=1)
        Tn = np.take_along_axis(Tk, src, axis=1)
        Wn[:, 0] = x
        Mn[:, 0] = np.where(hit, old_mod | wr, wr)
        Tn[:, 0] = np.where(hit, old_tw | wbit, wbit)
        W[core, rows] = Wn
        MOD[core, rows] = Mn
        TW[core, rows] = Tn
        LEN[core, rows] = np.minimum(Lk + miss, A)

    stats = CoherenceStats(
        n_cores=n_cores,
        accesses=n,
        misses=misses,
        cold_misses=cold,
        coherence_misses=coh,
        invalidations=invals,
        writebacks=wbs,
        true_sharing_invalidations=true_sh,
        false_sharing_invalidations=false_sh,
    )
    if not return_state:
        return stats
    if state is None:
        state = CoherenceBatchState.fresh(n_cores, n_sets, assoc)
    state.W[:, sid, :] = W
    state.MOD[:, sid, :] = MOD
    state.TW[:, sid, :] = TW
    state.LEN[:, sid] = LEN
    for c in range(C):
        # Lines of this chunk overwrite their carried INV status; lines
        # untouched by the chunk keep theirs.
        kept = state.inv_lines[c][~_member(uniq_lines, state.inv_lines[c])]
        state.inv_lines[c] = np.sort(
            np.concatenate((kept, uniq_lines[INV[c]]))
        )
    state.seen_lines = np.union1d(state.seen_lines, uniq_lines)
    return stats, state
