"""Batch/vectorized trace analytics.

The per-access analysis loops in :mod:`repro.cpusim` and
:mod:`repro.gpusim` are exact but pure Python; every paper figure is
bottlenecked on them.  This package provides batch replacements that
produce *bit-identical* results on whole traces at once:

- :mod:`repro.analytics.reuse` — LRU stack distances via the offline
  previous-occurrence + sort-based counting algorithm (no per-access
  Fenwick loop).
- :mod:`repro.analytics.cache` — set-associative LRU simulation that
  stable-sorts accesses by set index and advances every set one access
  per vectorized round through a way matrix; the cache-size sweep
  shares the set partition across sizes by radix refinement.
- :mod:`repro.analytics.sharing` — grouped-by-line consumer-read
  counting and residency-windowed sharing on the way-matrix engine.
- :mod:`repro.analytics.coherence` — private-cache MSI simulation
  vectorized across sets (all protocol interactions are line-local,
  hence set-local).

The scalar implementations remain in their original modules as the
test oracles; the property suite in ``tests/test_analytics_equivalence``
asserts bit-for-bit agreement on random and adversarial traces.
"""

from repro.analytics.cache import (
    batch_worthwhile,
    miss_rates_exact_batch,
    simulate_lru_sets,
)
from repro.analytics.coherence import simulate_coherent_caches_batch
from repro.analytics.reuse import (
    count_earlier_leq,
    previous_occurrence,
    reuse_distance_histogram_batch,
    stack_distances,
)
from repro.analytics.sharing import (
    count_consumer_reads_batch,
    sharing_at_size_batch,
)

__all__ = [
    "previous_occurrence",
    "count_earlier_leq",
    "stack_distances",
    "reuse_distance_histogram_batch",
    "simulate_lru_sets",
    "miss_rates_exact_batch",
    "batch_worthwhile",
    "count_consumer_reads_batch",
    "sharing_at_size_batch",
    "simulate_coherent_caches_batch",
]
