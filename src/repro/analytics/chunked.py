"""Streaming (chunk-at-a-time) analytics over columnar trace stores.

Every analysis in this package was originally whole-trace: materialize
the full access stream, run one vectorized pass.  With the chunked trace
pipeline (:mod:`repro.common.chunkstore`) the stream arrives as
fixed-size column chunks that may live on disk, so each analysis needs a
decomposition into *per-chunk work plus carried state* that reproduces
the dense result bit-for-bit:

- :class:`StreamingReuse` — LRU stack distances.  The dominance-count
  identity ``d[i] = #{j < i : p[j] <= p[i]} - p[i] - 1`` splits cleanly:
  earlier chunks contribute through a sorted array of their previous-
  occurrence values (one ``searchsorted``), the current chunk through
  the usual merge-counting on rank-compressed values.  State is O(n)
  int64 (8 bytes per access) — far below the several dense copies the
  whole-trace path peaks at — plus the per-line last-use table.

- :class:`StreamingSharing` — Bienia-style sharing statistics.  Carries
  the distinct (line, thread) pair set, the written-line set, and a
  per-line last-writer table; a second pass over the (re-iterable)
  chunks counts accesses to shared lines once the shared set is known.

Both are exercised against the dense implementations by the equivalence
suite in ``tests/test_chunked_equivalence.py``.
"""

from __future__ import annotations

from typing import Callable, Iterator, Tuple

import numpy as np

from repro.analytics.reuse import count_earlier_leq, previous_occurrence
from repro.cpusim.sharing import SharingStats

#: Thread ids are packed into the low bits of the (line, tid) pair key.
_TID_BITS = 6
_MAX_TIDS = 1 << _TID_BITS

ChunkIter = Callable[[], Iterator[Tuple[np.ndarray, ...]]]


def _member(sorted_ref: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Boolean membership of ``values`` in a sorted reference array."""
    if sorted_ref.size == 0 or values.size == 0:
        return np.zeros(values.size, dtype=bool)
    idx = np.minimum(
        np.searchsorted(sorted_ref, values), sorted_ref.size - 1
    )
    return sorted_ref[idx] == values


class StreamingReuse:
    """Chunk-at-a-time LRU stack-distance histogram.

    Feed chunks with :meth:`update`; :meth:`result` returns
    ``(hist, cold)`` bit-identical to
    :func:`repro.analytics.reuse.reuse_distance_histogram_batch` over the
    concatenated stream.
    """

    def __init__(self, line_bytes: int = 64):
        self.line_bytes = line_bytes
        self._n = 0
        self._cold = 0
        self._hist = np.zeros(1, dtype=np.int64)
        # Per-line last global occurrence (sorted by line).
        self._h_lines = np.empty(0, dtype=np.int64)
        self._h_last = np.empty(0, dtype=np.int64)
        # Sorted previous-occurrence values of every processed access
        # (including the -1 of cold accesses, which count as dominated).
        self._h_prev = np.empty(0, dtype=np.int64)

    def update(self, addrs: np.ndarray) -> None:
        if addrs.size == 0:
            return
        lines = (addrs // self.line_bytes).astype(np.int64)
        off = self._n
        m = lines.size

        # Previous occurrence in *global* indices: in-chunk predecessor
        # where one exists, else the carried per-line last use.
        prev_local = previous_occurrence(lines)
        prev = np.where(prev_local >= 0, prev_local + off, np.int64(-1))
        first = prev_local < 0
        if self._h_lines.size:
            fl = lines[first]
            idx = np.minimum(
                np.searchsorted(self._h_lines, fl), self._h_lines.size - 1
            )
            found = self._h_lines[idx] == fl
            pf = np.full(fl.size, -1, dtype=np.int64)
            pf[found] = self._h_last[idx[found]]
            prev[first] = pf

        # d[i] = #{j < i : p[j] <= p[i]} - p[i] - 1, with the count split
        # into history (every prior access precedes the chunk) and
        # within-chunk dominance on rank-compressed values.
        hist_cnt = np.searchsorted(self._h_prev, prev, side="right")
        _, ranks = np.unique(prev, return_inverse=True)
        within = count_earlier_leq(ranks.astype(np.int64))
        warm = prev >= 0
        self._cold += int(m - warm.sum())
        d = (hist_cnt + within - prev - 1)[warm]
        if d.size:
            h = np.bincount(d).astype(np.int64)
            if h.size > self._hist.size:
                h[: self._hist.size] += self._hist
                self._hist = h
            else:
                self._hist[: h.size] += h

        # Carry: merge prev values and per-line last uses.
        self._h_prev = np.sort(np.concatenate((self._h_prev, prev)))
        order = np.argsort(lines, kind="stable")
        sl = lines[order]
        end = np.concatenate((sl[1:] != sl[:-1], [True]))
        cl = sl[end]
        clast = off + order[end]
        if self._h_lines.size:
            stale = _member(cl, self._h_lines)
            ml = np.concatenate((self._h_lines[~stale], cl))
            mlast = np.concatenate((self._h_last[~stale], clast))
            o2 = np.argsort(ml, kind="stable")
            self._h_lines = ml[o2]
            self._h_last = mlast[o2]
        else:
            self._h_lines = cl
            self._h_last = clast
        self._n = off + m

    def result(self) -> Tuple[np.ndarray, int]:
        """``(distances_hist, cold_misses)`` of everything seen so far."""
        return self._hist, self._cold


def reuse_histogram_chunked(
    iter_chunks: ChunkIter, line_bytes: int = 64
) -> Tuple[np.ndarray, int]:
    """Stack-distance histogram of a chunked trace (addresses = column 0)."""
    acc = StreamingReuse(line_bytes)
    for chunk in iter_chunks():
        acc.update(chunk[0])
    return acc.result()


class StreamingSharing:
    """Chunk-at-a-time whole-run sharing statistics.

    Feed chunks with :meth:`update`, then call :meth:`result` with the
    re-iterable chunk source — the shared-line set is only known after
    the first pass, so accesses to shared lines are counted in a second
    streaming pass.  Matches
    :func:`repro.cpusim.sharing.analyze_sharing` exactly.
    """

    def __init__(self, line_bytes: int = 64):
        self.line_bytes = line_bytes
        self._total = 0
        self._consumer_reads = 0
        self._pairs = np.empty(0, dtype=np.int64)     # (line << 6) | tid
        self._written = np.empty(0, dtype=np.int64)   # sorted unique lines
        self._lw_lines = np.empty(0, dtype=np.int64)  # last-writer table
        self._lw_tids = np.empty(0, dtype=np.int64)

    def update(
        self, addrs: np.ndarray, tids: np.ndarray, writes: np.ndarray
    ) -> None:
        if addrs.size == 0:
            return
        lines = (addrs // self.line_bytes).astype(np.int64)
        t = tids.astype(np.int64)
        if int(t.max()) >= _MAX_TIDS:
            raise ValueError(
                f"streaming sharing supports < {_MAX_TIDS} thread ids"
            )
        w = np.asarray(writes, dtype=bool)
        self._total += int(addrs.size)
        self._pairs = np.union1d(self._pairs, (lines << _TID_BITS) | t)
        if w.any():
            self._written = np.union1d(self._written, lines[w])
        self._consumer_reads += self._consumer_reads_chunk(lines, t, w)
        self._update_last_writer(lines, t, w)

    def _consumer_reads_chunk(
        self, lines: np.ndarray, tids: np.ndarray, writes: np.ndarray
    ) -> int:
        """Reads of a line most recently written by another thread.

        In-chunk writers resolve through the grouped segmented pass of
        :func:`repro.analytics.sharing.count_consumer_reads_batch`;
        reads preceding any in-chunk write consult the carried
        last-writer table.
        """
        n = lines.size
        order = np.argsort(lines, kind="stable")
        sl = lines[order]
        sw = writes[order]
        st = tids[order]
        pos = np.arange(n, dtype=np.int64)
        new_group = np.concatenate(([True], sl[1:] != sl[:-1]))
        group_start = np.maximum.accumulate(np.where(new_group, pos, 0))
        last_write = np.maximum.accumulate(np.where(sw, pos, -1))
        lwb = np.concatenate(([-1], last_write[:-1]))
        valid = lwb >= group_start
        in_chunk = ~sw & valid
        count = 0
        if in_chunk.any():
            writer = st[lwb[in_chunk]]
            count += int((writer != st[in_chunk]).sum())
        outside = ~sw & ~valid
        if outside.any() and self._lw_lines.size:
            ol = sl[outside]
            idx = np.minimum(
                np.searchsorted(self._lw_lines, ol), self._lw_lines.size - 1
            )
            found = self._lw_lines[idx] == ol
            writer = self._lw_tids[idx[found]]
            count += int((writer != st[outside][found]).sum())
        return count

    def _update_last_writer(
        self, lines: np.ndarray, tids: np.ndarray, writes: np.ndarray
    ) -> None:
        if not writes.any():
            return
        wl = lines[writes]
        wt = tids[writes]
        order = np.argsort(wl, kind="stable")
        swl = wl[order]
        end = np.concatenate((swl[1:] != swl[:-1], [True]))
        new_lines = swl[end]
        new_tids = wt[order][end]
        if self._lw_lines.size:
            stale = _member(new_lines, self._lw_lines)
            ml = np.concatenate((self._lw_lines[~stale], new_lines))
            mt = np.concatenate((self._lw_tids[~stale], new_tids))
            o2 = np.argsort(ml, kind="stable")
            self._lw_lines = ml[o2]
            self._lw_tids = mt[o2]
        else:
            self._lw_lines = new_lines
            self._lw_tids = new_tids

    def result(self, iter_chunks: ChunkIter) -> SharingStats:
        """Finish with a second pass for shared-line access counts."""
        if self._total == 0:
            return SharingStats(0, 0, 0, 0, 0, 0, 0.0)
        pair_lines = self._pairs >> _TID_BITS
        uniq_lines, sharer_counts = np.unique(pair_lines, return_counts=True)
        shared = uniq_lines[sharer_counts > 1]
        shared_accesses = 0
        for chunk in iter_chunks():
            lines = (chunk[0] // self.line_bytes).astype(np.int64)
            shared_accesses += int(_member(shared, lines).sum())
        write_shared = int(_member(shared, self._written).sum())
        return SharingStats(
            total_lines=int(uniq_lines.size),
            shared_lines=int(shared.size),
            total_accesses=self._total,
            shared_accesses=shared_accesses,
            write_shared_lines=write_shared,
            consumer_reads=self._consumer_reads,
            mean_sharers=float(sharer_counts.mean()),
        )


def analyze_sharing_chunked(
    iter_chunks: ChunkIter, line_bytes: int = 64
) -> SharingStats:
    """Streaming equivalent of ``analyze_sharing`` over (addr, tid, write)
    column chunks."""
    acc = StreamingSharing(line_bytes)
    for addrs, tids, writes in iter_chunks():
        acc.update(addrs, tids, writes)
    return acc.result(iter_chunks)
