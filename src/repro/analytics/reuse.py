"""Vectorized LRU stack-distance computation.

The scalar algorithm (:mod:`repro.cpusim.reuse`) walks the trace once,
paying a Python-level Fenwick update/query per access.  Here the same
quantity — for each access, the number of distinct lines touched since
the previous access to the same line — is computed offline in a handful
of whole-array numpy passes:

1. ``previous_occurrence``: one stable argsort groups equal lines while
   preserving time order, so each access's previous-use index ``p[i]``
   falls out of a shifted comparison.

2. The distance identity.  Every position ``j <= p[i]`` trivially
   satisfies ``p[j] < j <= p[i]``, so::

       d[i] = #{ j in (p[i], i) : p[j] <= p[i] }          (first uses)
            = #{ j < i : p[j] <= p[i] } - (p[i] + 1)

   which reduces the problem to *offline dominance counting*: for each
   element of ``p``, how many earlier elements are <= it.

3. ``count_earlier_leq``: level-wise merge counting.  Value and
   position are packed into one int64 key; at each level, blocks of
   ``2w`` (each half already sorted) are merged by a run-aware stable
   sort, and a per-row cumulative sum of "came from the left half"
   yields, for every right-half element, the number of left-half
   elements <= it.  O(n log^2 n) element work, all inside numpy.

Cold (first-touch) accesses are reported separately, exactly as in the
scalar implementation.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: Packed (value, position) keys use 32 bits for each half; traces at or
#: beyond this length fall back to the scalar path (they would not fit
#: in memory anyway).
_MAX_BATCH = 1 << 30

_POS_MASK = np.int64((1 << 32) - 1)


def previous_occurrence(keys: np.ndarray) -> np.ndarray:
    """Index of the previous occurrence of each element (-1 if first).

    One stable argsort; equal keys stay in time order, so the previous
    occurrence of ``keys[i]`` is simply its predecessor within the run
    of equal sorted keys.
    """
    n = keys.size
    prev = np.full(n, -1, dtype=np.int64)
    if n <= 1:
        return prev
    order = np.argsort(keys, kind="stable")
    sk = keys[order]
    same = sk[1:] == sk[:-1]
    prev_sorted = np.full(n, -1, dtype=np.int64)
    prev_sorted[1:][same] = order[:-1][same]
    prev[order] = prev_sorted
    return prev


def count_earlier_leq(values: np.ndarray) -> np.ndarray:
    """For each i, the number of j < i with ``values[j] <= values[i]``.

    Offline dominance counting by level-wise merging (see module
    docstring).  ``values`` must lie in ``[-1, n]``.
    """
    n = values.size
    if n <= 1:
        return np.zeros(n, dtype=np.int64)
    if n >= _MAX_BATCH:
        raise ValueError(f"trace too long for packed counting ({n})")
    m = 1 << (n - 1).bit_length()
    packed = np.empty(m, dtype=np.int64)
    # Shift values to [0, n+1] and reserve n+2 for the padding sentinel,
    # which sorts after every real value and is never a query target
    # (counts accumulated for padding slots are sliced away at the end).
    packed[:n] = (values.astype(np.int64) + 1) << 32
    packed[n:] = np.int64(n + 2) << 32
    packed += np.arange(m, dtype=np.int64)
    counts = np.zeros(m, dtype=np.int64)

    # Level 0: blocks of two need no sort — min/max orders each pair,
    # and the left element (strictly smaller packed key when values tie,
    # thanks to the position bits) contributes iff it is the pair min.
    ev, od = packed[0::2], packed[1::2]
    lo = np.minimum(ev, od)
    hi = np.maximum(ev, od)
    counts[(od & _POS_MASK)[lo == ev]] += 1
    packed[0::2] = lo
    packed[1::2] = hi

    w = 2
    while w < m:
        # Each row of the reshape is two sorted runs; a run-aware stable
        # sort merges them in linear time.
        sp = np.sort(packed.reshape(-1, 2 * w), axis=1, kind="stable")
        gpos = sp & _POS_MASK
        # An element belongs to the left half of its block iff bit
        # log2(w) of its original position is clear.
        right = (gpos & w).astype(bool).reshape(-1, 2 * w)
        cum = np.cumsum(~right, axis=1, dtype=np.int32)
        rf = right.reshape(-1)
        counts[gpos.reshape(-1)[rf]] += cum.reshape(-1)[rf]
        packed = sp.reshape(-1)
        w *= 2
    return counts[:n]


def stack_distances(lines: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-access LRU stack distance of a line-address trace.

    Returns ``(dist, prev)``: ``dist[i]`` is the number of distinct
    other lines touched since the previous access to ``lines[i]``,
    valid where ``prev[i] >= 0``; accesses with ``prev[i] == -1`` are
    cold (first touch) and their ``dist`` entry is meaningless.
    """
    prev = previous_occurrence(lines)
    dist = count_earlier_leq(prev) - prev - 1
    return dist, prev


def reuse_distance_histogram_batch(
    addrs: np.ndarray, line_bytes: int = 64
) -> Tuple[np.ndarray, int]:
    """Vectorized equivalent of ``reuse_distance_histogram``.

    Returns ``(distances_hist, cold_misses)``, bit-identical to the
    scalar Fenwick implementation.
    """
    if addrs.size == 0:
        return np.zeros(1, dtype=np.int64), 0
    lines = (addrs // line_bytes).astype(np.int64)
    dist, prev = stack_distances(lines)
    warm = prev >= 0
    cold = int(lines.size - warm.sum())
    d = dist[warm]
    if d.size:
        hist = np.bincount(d).astype(np.int64)
    else:
        hist = np.zeros(1, dtype=np.int64)
    return hist, cold
