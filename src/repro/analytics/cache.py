"""Batch set-associative LRU simulation.

Accesses to different cache sets never interact, so an exact
set-associative LRU simulation decomposes freely: stable-sort the trace
by set index (preserving time order within each set) and advance *every
set simultaneously*, one access per vectorized round, through a way
matrix ``W[set, way]`` holding resident line addresses in MRU-first
order.  Each round is a handful of whole-array numpy operations (match,
argmax, gather-shift), so the per-access Python interpreter cost of the
scalar simulator disappears; the number of Python-level iterations drops
from ``n`` accesses to ``max_set_length`` rounds.

Sets are processed in descending sequence-length order so the active
sets of round ``r`` are always a prefix — plain slices, no masks.

The cache-size sweep (``miss_rates_exact_batch``) shares the
set-partitioning work: the paper's sizes double, so each finer partition
is derived from the previous one by a single O(n) stable radix split on
the next set-index bit instead of a fresh argsort.

Everything here is bit-identical to the scalar simulators; the scalar
code remains in :mod:`repro.cpusim.cache` / :mod:`repro.gpusim.memory`
as the oracle.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry

#: Way-matrix slot holding no line.  Real line addresses are
#: non-negative, so -1 can never produce a false hit.
EMPTY_LINE = np.int64(-1)


@dataclasses.dataclass
class SetPartition:
    """A trace stable-sorted into contiguous per-set groups."""

    order: np.ndarray     # original index of each sorted position
    starts: np.ndarray    # group start offset in the sorted layout
    counts: np.ndarray    # group length
    set_ids: np.ndarray   # set index of each group

    @property
    def n_groups(self) -> int:
        return int(self.starts.size)


def partition_by_set(set_idx: np.ndarray) -> SetPartition:
    """Group access indices by set, preserving time order within sets."""
    order = np.argsort(set_idx, kind="stable")
    ss = set_idx[order]
    if ss.size == 0:
        e = np.empty(0, dtype=np.int64)
        return SetPartition(order, e, e.copy(), e.copy())
    set_ids, starts = np.unique(ss, return_index=True)
    counts = np.diff(np.append(starts, ss.size))
    return SetPartition(order, starts, counts, set_ids)


def refine_partition(
    part: SetPartition, bit: np.ndarray, cur_sets: int
) -> SetPartition:
    """Split every group on one extra set-index bit in O(n), stably.

    ``bit`` is aligned to the *original* index domain (0 goes before 1
    within each group, time order preserved) — one radix pass, replacing
    a full argsort when the number of sets doubles.
    """
    order, starts, counts = part.order, part.starts, part.counts
    n = order.size
    G = part.n_groups
    b = bit[order].astype(bool)
    gid = np.repeat(np.arange(G), counts)
    ones = np.bincount(gid[b], minlength=G)
    zeros = counts - ones
    zstart = np.concatenate(([0], np.cumsum(zeros)[:-1]))
    ostart = np.concatenate(([0], np.cumsum(ones)[:-1]))
    rank_zero = np.cumsum(~b) - 1
    rank_one = np.cumsum(b) - 1
    newpos = np.where(
        b,
        starts[gid] + zeros[gid] + (rank_one - ostart[gid]),
        starts[gid] + (rank_zero - zstart[gid]),
    )
    new_order = np.empty(n, dtype=order.dtype)
    new_order[newpos] = order
    new_starts = np.empty(2 * G, dtype=np.int64)
    new_counts = np.empty(2 * G, dtype=np.int64)
    new_ids = np.empty(2 * G, dtype=np.int64)
    new_starts[0::2] = starts
    new_starts[1::2] = starts + zeros
    new_counts[0::2] = zeros
    new_counts[1::2] = ones
    new_ids[0::2] = part.set_ids
    new_ids[1::2] = part.set_ids + cur_sets
    keep = new_counts > 0
    return SetPartition(
        new_order, new_starts[keep], new_counts[keep], new_ids[keep]
    )


def batch_worthwhile(n_accesses: int, counts: np.ndarray) -> bool:
    """Heuristic: rounds (= longest set sequence) must amortize.

    The vectorized engine costs ~one numpy round per access *rank*
    within a set; a trace concentrated on few sets degenerates to
    per-access rounds and the scalar loop wins.
    """
    if n_accesses < 4096 or counts.size == 0:
        return False
    return int(counts.max()) * 16 <= n_accesses


@dataclasses.dataclass
class LRUSetsResult:
    """Outcome of a way-matrix run, aligned to the partition's groups."""

    miss_per_group: np.ndarray
    ways: np.ndarray        # (G, assoc) line addresses, MRU first
    lengths: np.ndarray     # valid ways per group
    hits_sorted: Optional[np.ndarray]  # per-access hits, sorted layout


def simulate_lru_sets(
    sorted_lines: np.ndarray,
    starts: np.ndarray,
    counts: np.ndarray,
    assoc: int,
    need_hits: bool = False,
    init_ways: Optional[np.ndarray] = None,
    init_lengths: Optional[np.ndarray] = None,
) -> LRUSetsResult:
    """Advance every set one access per round through a way matrix.

    ``sorted_lines`` is the trace in grouped (sorted-by-set) layout;
    ``starts``/``counts`` delimit the groups.  Exactly reproduces a
    per-set LRU list with MRU appended last and eviction from the front.

    ``init_ways``/``init_lengths`` (aligned to the groups, MRU-first)
    seed a *warm* cache: the simulation continues from that state
    exactly as the scalar simulator would.
    """
    G = starts.size
    if init_ways is not None:
        W = np.array(init_ways, dtype=np.int64, copy=True)
        lengths = np.array(init_lengths, dtype=np.int64, copy=True)
    else:
        W = np.full((G, assoc), EMPTY_LINE, dtype=np.int64)
        lengths = np.zeros(G, dtype=np.int64)
    miss_pg = np.zeros(G, dtype=np.int64)
    hits_sorted = (
        np.empty(sorted_lines.size, dtype=bool) if need_hits else None
    )
    if G == 0:
        return LRUSetsResult(miss_pg, W, lengths, hits_sorted)
    desc = np.argsort(-counts, kind="stable")
    # The round loop runs in length-descending layout (unpermuted on
    # return); bring any warm initial state into that layout too.
    W = W[desc]
    lengths = lengths[desc]
    dstarts = starts[desc]
    neg_counts = -counts[desc]
    maxlen = int(counts[desc[0]])
    cols = np.arange(assoc)
    for r in range(maxlen):
        k = int(np.searchsorted(neg_counts, -(r + 1), side="right"))
        idx = dstarts[:k] + r
        x = sorted_lines[idx]
        Wk = W[:k]
        match = Wk == x[:, None]
        hit = match.any(axis=1)
        pos = match.argmax(axis=1)
        # Columns 1..limit take their left neighbour (shift toward LRU);
        # on a hit the shift stops at the hit position, on a miss it
        # covers the whole occupied range (dropping the LRU when full).
        limit = np.where(hit, pos, np.minimum(lengths[:k], assoc - 1))
        src = cols - (cols <= limit[:, None])
        src[:, 0] = 0
        Wn = np.take_along_axis(Wk, src, axis=1)
        Wn[:, 0] = x
        W[:k] = Wn
        lengths[:k] = np.minimum(lengths[:k] + ~hit, assoc)
        miss_pg[:k] += ~hit
        if need_hits:
            hits_sorted[idx] = hit
    # Undo the length-descending permutation.
    miss_out = np.empty_like(miss_pg)
    miss_out[desc] = miss_pg
    W_out = np.empty_like(W)
    W_out[desc] = W
    len_out = np.empty_like(lengths)
    len_out[desc] = lengths
    if telemetry.active():
        n_miss = int(miss_pg.sum())
        # A miss inserts one line; whatever did not fit in the final
        # occupancy over the initial one was evicted.
        init_len = (
            np.zeros(G, dtype=np.int64) if init_lengths is None
            else np.asarray(init_lengths, dtype=np.int64)
        )
        telemetry.count("analytics.lru.accesses", int(sorted_lines.size))
        telemetry.count("analytics.lru.misses", n_miss)
        telemetry.count("analytics.lru.hits",
                        int(sorted_lines.size) - n_miss)
        telemetry.count(
            "analytics.lru.evictions",
            int((init_len + miss_out - len_out).sum()),
        )
    return LRUSetsResult(miss_out, W_out, len_out, hits_sorted)


def _misses_grouped_scalar(
    sorted_lines: np.ndarray,
    starts: np.ndarray,
    counts: np.ndarray,
    assoc: int,
) -> int:
    """Scalar per-set LRU miss count (fallback for degenerate shapes)."""
    misses = 0
    seq = sorted_lines.tolist()
    for s, c in zip(starts.tolist(), counts.tolist()):
        ways: "OrderedDict[int, None]" = OrderedDict()
        for line in seq[s : s + c]:
            if line in ways:
                ways.move_to_end(line)
            else:
                misses += 1
                ways[line] = None
                if len(ways) > assoc:
                    ways.popitem(last=False)
    return misses


def miss_rates_exact_batch(
    addrs: np.ndarray,
    sizes: Sequence[int],
    assoc: int = 4,
    line_bytes: int = 64,
    force: bool = False,
) -> Dict[int, float]:
    """Exact per-size miss rates with shared set-partitioning.

    Identical to running the scalar simulator once per size.  Sizes are
    processed smallest-first; whenever the set count doubles, the next
    partition is derived by one radix refinement instead of a new sort.
    """
    n = int(addrs.size)
    out: Dict[int, float] = {}
    if n == 0:
        return {int(s): 0.0 for s in sizes}
    lines = (addrs // line_bytes).astype(np.int64)
    part: Optional[SetPartition] = None
    cur_sets = 0
    sorted_lines: Optional[np.ndarray] = None
    for size in sorted(int(s) for s in sizes):
        n_sets = max(1, size // (assoc * line_bytes))
        if part is None or n_sets < cur_sets:
            part = partition_by_set(lines % n_sets)
            cur_sets = n_sets
            sorted_lines = lines[part.order]
        else:
            while cur_sets < n_sets and n_sets % (cur_sets * 2) == 0:
                part = refine_partition(
                    part, (lines // cur_sets) & 1, cur_sets
                )
                cur_sets *= 2
                sorted_lines = None
            if cur_sets != n_sets:
                part = partition_by_set(lines % n_sets)
                cur_sets = n_sets
                sorted_lines = None
            if sorted_lines is None:
                sorted_lines = lines[part.order]
        if force or batch_worthwhile(n, part.counts):
            telemetry.count("analytics.lru.dispatch.batch")
            res = simulate_lru_sets(
                sorted_lines, part.starts, part.counts, assoc
            )
            misses = int(res.miss_per_group.sum())
        else:
            telemetry.count("analytics.lru.dispatch.scalar")
            misses = _misses_grouped_scalar(
                sorted_lines, part.starts, part.counts, assoc
            )
        out[size] = misses / n
    return {int(s): out[int(s)] for s in sizes}
