"""Batch sharing analysis.

Two pieces of :mod:`repro.cpusim.sharing` walk the trace in Python:

- ``_count_consumer_reads`` — replaced by a grouped-by-line pass: one
  stable sort groups each line's accesses in time order, a segmented
  running maximum carries "index of the most recent write" down each
  group, and a final gather compares writer and reader thread ids.

- ``sharing_at_size`` — the residency-windowed analysis runs on the
  way-matrix engine of :mod:`repro.analytics.cache`, with a parallel
  matrix of per-residency sharer *bitmasks* (one bit per thread id)
  carried through the same gather-shift as the line addresses.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from repro.analytics.cache import EMPTY_LINE, batch_worthwhile, partition_by_set

#: Sharer masks are uint64 bitfields — one bit per thread id.
MAX_BATCH_TIDS = 64


def _popcount(a: np.ndarray) -> np.ndarray:
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(a)
    v = a.astype(np.uint64).copy()
    out = np.zeros(a.shape, dtype=np.int64)
    while np.any(v):
        out += (v & 1).astype(np.int64)
        v >>= np.uint64(1)
    return out


def count_consumer_reads_batch(
    lines: np.ndarray, tids: np.ndarray, writes: np.ndarray
) -> int:
    """Reads whose line's most recent writer is a different thread.

    Bit-identical to the scalar last-writer walk.
    """
    n = lines.size
    if n == 0:
        return 0
    order = np.argsort(lines, kind="stable")
    sl = lines[order]
    sw = writes[order].astype(bool)
    pos = np.arange(n, dtype=np.int64)
    group_start = np.empty(n, dtype=np.int64)
    group_start[0] = 0
    new_group = sl[1:] != sl[:-1]
    np.maximum.accumulate(
        np.where(np.concatenate(([True], new_group)), pos, 0), out=group_start
    )
    # Running "sorted position of the latest write"; a value below the
    # group start belongs to an earlier line and means "no write yet".
    last_write = np.maximum.accumulate(np.where(sw, pos, -1))
    last_write_before = np.concatenate(([-1], last_write[:-1]))
    valid = last_write_before >= group_start
    reads = ~sw & valid
    writer_tid = np.zeros(n, dtype=np.int64)
    writer_tid[reads] = tids[order][last_write_before[reads]]
    consumer = reads & (writer_tid != tids[order])
    return int(consumer.sum())


@dataclasses.dataclass
class SharingSizeState:
    """Carried cache state for chunked residency-windowed sharing."""

    n_sets: int
    W: np.ndarray        # (n_sets, assoc) resident lines, MRU first
    M: np.ndarray        # (n_sets, assoc) sharer bitmasks
    lengths: np.ndarray  # (n_sets,) valid ways

    @classmethod
    def fresh(cls, n_sets: int, assoc: int) -> "SharingSizeState":
        return cls(
            n_sets=n_sets,
            W=np.full((n_sets, assoc), EMPTY_LINE, dtype=np.int64),
            M=np.zeros((n_sets, assoc), dtype=np.uint64),
            lengths=np.zeros(n_sets, dtype=np.int64),
        )

    def close_lifetimes(self) -> Tuple[int, int]:
        """End-of-trace closeout: (lifetimes, shared_lifetimes) of the
        still-resident lines."""
        resident = (
            np.arange(self.W.shape[1])[None, :] < self.lengths[:, None]
        )
        return (
            int(self.lengths.sum()),
            int((_popcount(self.M[resident]) > 1).sum()),
        )


def sharing_at_size_batch(
    lines: np.ndarray,
    tids: np.ndarray,
    n_sets: int,
    assoc: int,
    force: bool = False,
    state: Optional[SharingSizeState] = None,
    return_state: bool = False,
) -> Optional[Tuple[int, int, int]]:
    """Residency-windowed sharing through per-set LRU with sharer masks.

    Returns ``(shared_accesses, lifetimes, shared_lifetimes)`` exactly
    matching the scalar ``sharing_at_size`` walk, or ``None`` when the
    trace shape doesn't suit the batch engine (caller falls back).

    With ``state``/``return_state`` the cache continues across chunks
    and still-resident lifetimes are NOT closed out — the caller calls
    :meth:`SharingSizeState.close_lifetimes` after the last chunk.
    """
    n = lines.size
    if n == 0:
        return (0, 0, 0, state) if return_state else (0, 0, 0)
    if tids.size and int(tids.max()) >= MAX_BATCH_TIDS:
        return None
    if state is not None and state.n_sets != n_sets:
        raise ValueError("carried state has mismatched set count")
    part = partition_by_set(lines % n_sets)
    if not force and not batch_worthwhile(n, part.counts):
        return None
    sorted_lines = lines[part.order]
    sorted_bits = np.uint64(1) << tids[part.order].astype(np.uint64)
    G = part.n_groups
    desc = np.argsort(-part.counts, kind="stable")
    dstarts = part.starts[desc]
    neg_counts = -part.counts[desc]
    maxlen = int(part.counts[desc[0]])
    # Way-matrix row j holds the desc[j]-th group throughout the round
    # loop, so state import/export must follow the same permutation.
    sid = part.set_ids[desc]
    if state is not None:
        W = state.W[sid].copy()
        M = state.M[sid].copy()
        lengths = state.lengths[sid].copy()
    else:
        W = np.full((G, assoc), EMPTY_LINE, dtype=np.int64)
        M = np.zeros((G, assoc), dtype=np.uint64)   # sharer masks per way
        lengths = np.zeros(G, dtype=np.int64)
    cols = np.arange(assoc)
    shared_accesses = 0
    lifetimes = 0
    shared_lifetimes = 0
    for r in range(maxlen):
        k = int(np.searchsorted(neg_counts, -(r + 1), side="right"))
        idx = dstarts[:k] + r
        x = sorted_lines[idx]
        bit = sorted_bits[idx]
        Wk = W[:k]
        Mk = M[:k]
        match = Wk == x[:, None]
        hit = match.any(axis=1)
        pos = match.argmax(axis=1)
        rows = np.arange(k)
        seen = Mk[rows, pos]
        # Scalar rule: a hit counts as shared when this thread is new to
        # the residency, or more than one thread already touched it.
        shared_now = hit & (((seen & bit) == 0) | (_popcount(seen) > 1))
        shared_accesses += int(shared_now.sum())
        full = lengths[:k] >= assoc
        evict = ~hit & full
        if evict.any():
            victims = Mk[evict, assoc - 1]
            lifetimes += int(evict.sum())
            shared_lifetimes += int((_popcount(victims) > 1).sum())
        limit = np.where(hit, pos, np.minimum(lengths[:k], assoc - 1))
        src = cols - (cols <= limit[:, None])
        src[:, 0] = 0
        Wn = np.take_along_axis(Wk, src, axis=1)
        Mn = np.take_along_axis(Mk, src, axis=1)
        Wn[:, 0] = x
        Mn[:, 0] = np.where(hit, seen | bit, bit)
        W[:k] = Wn
        M[:k] = Mn
        lengths[:k] = np.minimum(lengths[:k] + ~hit, assoc)
    if return_state:
        if state is None:
            state = SharingSizeState.fresh(n_sets, assoc)
        state.W[sid] = W
        state.M[sid] = M
        state.lengths[sid] = lengths
        return shared_accesses, lifetimes, shared_lifetimes, state
    # Close out still-resident lifetimes.
    resident = cols[None, :] < lengths[:, None]
    lifetimes += int(lengths.sum())
    shared_lifetimes += int((_popcount(M[resident]) > 1).sum())
    return shared_accesses, lifetimes, shared_lifetimes
