"""StreamCluster, Parsec registration.

StreamCluster appears in *both* suites — the paper's dendrogram labels
it "streamcluster(R, P)".  The algorithm and implementation are shared
with :mod:`repro.workloads.rodinia.streamcluster`; this module registers
the Parsec-side entry with Table V's metadata so suite enumeration
(Table V) is complete.  Suite-comparison experiments deduplicate the
pair into a single "(R, P)" point, as the paper does.
"""

from __future__ import annotations

from repro.workloads.base import WorkloadDef, WorkloadMeta, register
from repro.workloads.rodinia.streamcluster import check_cpu, cpu_run

META = WorkloadMeta(
    name="streamcluster_p",
    suite="parsec",
    dwarf="Dense Linear Algebra",
    domain="Data Mining",
    paper_size="16,384 points per block, 1 block",
    description="Online clustering kernel (same implementation as Rodinia's)",
)

register(WorkloadDef(META, cpu_fn=cpu_run, check_cpu=check_cpu))
