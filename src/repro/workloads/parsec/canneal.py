"""Canneal (Parsec) — engineering (chip design).

Paper (Table V) problem size: 400,000 elements.

Simulated-annealing placement of a synthetic netlist: threads repeatedly
pick element pairs, evaluate the routing-cost delta from swapping their
locations (gathering every net partner's location), and commit
improving or thermally-accepted swaps.  The pointer-chasing gathers over
a large, randomly-ordered netlist give Canneal its signature large
working set and high miss rate, and concurrent swaps on the shared
location array give it strong write-sharing (Figs. 8-10).
"""

from __future__ import annotations

import numpy as np

from repro.common.config import SimScale
from repro.common.rng import make_rng
from repro.cpusim import Machine
from repro.inputs.misc import netlist
from repro.workloads.base import WorkloadDef, WorkloadMeta, register

META = WorkloadMeta(
    name="canneal",
    suite="parsec",
    dwarf="Graph Traversal / Optimization",
    domain="Engineering",
    paper_size="400,000 elements",
    description="Lock-free simulated-annealing netlist placement",
)

_FANOUT = 4


def cpu_sizes(scale: SimScale) -> dict:
    n = {SimScale.TINY: 4096, SimScale.SMALL: 32768, SimScale.MEDIUM: 131072,
         SimScale.LARGE: 262144}[scale]
    # Swap budget scales with the netlist so annealing quality (and the
    # self-check's improvement threshold) holds at every scale.
    return {"n": n, "swaps_per_thread": max(768, n // 21), "temp_steps": 3}


def _grid_side(n: int) -> int:
    side = 1
    while side * side < 2 * n:
        side *= 2
    return side


def _wire_cost(loc_a: int, loc_b: int, side: int) -> float:
    ya, xa = divmod(loc_a, side)
    yb, xb = divmod(loc_b, side)
    return abs(ya - yb) + abs(xa - xb)


def _total_cost(fanout: np.ndarray, locations: np.ndarray, side: int) -> float:
    ys, xs = np.divmod(locations, side)
    total = 0.0
    for f in range(_FANOUT):
        partner = fanout[:, f]
        total += (np.abs(ys - ys[partner]) + np.abs(xs - xs[partner])).sum()
    return float(total)


def cpu_run(machine: Machine, scale: SimScale = SimScale.SMALL):
    p = cpu_sizes(scale)
    n = p["n"]
    side = _grid_side(n)
    fanout_h, locations_h = netlist(n, side, seed_tag="canneal")
    fanout = machine.array(fanout_h.reshape(-1), name="fanout")
    locations = machine.array(locations_h, name="locations")
    initial_cost = _total_cost(fanout_h, locations_h, side)
    fidx = np.arange(_FANOUT)

    def delta_for(t, elem: int, new_loc: int) -> float:
        """Cost delta of moving ``elem`` to ``new_loc``."""
        partners = t.load(fanout, elem * _FANOUT + fidx)
        ploc = t.load(locations, partners)
        old_loc = int(t.load(locations, elem))
        t.alu(10 * _FANOUT)
        d = 0.0
        for pl in ploc:
            d += _wire_cost(new_loc, int(pl), side)
            d -= _wire_cost(old_loc, int(pl), side)
        return d

    def anneal(t, temperature: float):
        rng = make_rng("canneal-swaps", t.tid, temperature)
        accepted = 0
        for _ in range(p["swaps_per_thread"]):
            a = int(rng.integers(0, n))
            b = int(rng.integers(0, n))
            if a == b:
                continue
            loc_a = int(t.load(locations, a))
            loc_b = int(t.load(locations, b))
            delta = delta_for(t, a, loc_b) + delta_for(t, b, loc_a)
            t.branch(1)
            threshold = temperature * float(rng.exponential(1.0))
            if delta < threshold:
                t.store(locations, a, loc_b)
                t.store(locations, b, loc_a)
                accepted += 1
        return accepted

    for step in range(p["temp_steps"]):
        temperature = 2.0 * (0.5 ** step)
        machine.parallel(anneal, temperature)
    final_cost = _total_cost(fanout_h, locations.to_host(), side)
    return initial_cost, final_cost, locations.to_host()


def check_cpu(result, scale: SimScale) -> None:
    p = cpu_sizes(scale)
    initial_cost, final_cost, locations = result
    side = _grid_side(p["n"])
    fanout_h, _ = netlist(p["n"], side, seed_tag="canneal")
    # The returned cost must be consistent with the returned placement,
    # and annealing must have improved the placement substantially.
    recomputed = _total_cost(fanout_h, locations, side)
    np.testing.assert_allclose(final_cost, recomputed, rtol=1e-12)
    if final_cost > 0.95 * initial_cost:
        raise AssertionError(
            f"annealing improved cost only {initial_cost:.0f} -> {final_cost:.0f}"
        )
    if np.unique(locations).size != locations.size:
        raise AssertionError("placement lost its permutation property")


register(WorkloadDef(META, cpu_fn=cpu_run, check_cpu=check_cpu))
