"""Fluidanimate (Parsec) — physical animation.

Paper (Table V) problem size: 5 frames, 300,000 particles.

Smoothed-particle-hydrodynamics fluid: particles are binned into a
uniform grid; densities and pairwise forces are computed over each
cell's 27-neighborhood; then positions integrate under gravity.  The
spatial grid is partitioned across threads in slabs, so neighbor lookups
at slab boundaries read other threads' particles — Fluidanimate's
boundary-sharing profile, clustered near the stencil workloads in
Figure 6 (the paper notes SRAD and Fluidanimate are "quite similar").
"""

from __future__ import annotations

import numpy as np

from repro.common.config import SimScale
from repro.cpusim import Machine
from repro.inputs.points import particle_box
from repro.workloads.base import WorkloadDef, WorkloadMeta, register

META = WorkloadMeta(
    name="fluidanimate",
    suite="parsec",
    dwarf="Structured Grid / N-body",
    domain="Animation",
    paper_size="5 frames, 300,000 particles",
    description="SPH fluid with slab-partitioned uniform grid",
)

_H = 0.1           # smoothing radius = cell size
_MASS = 1.0
_STIFF = 2.0
_REST = 150.0
_DT = 0.002
_GRAV = -9.8


def cpu_sizes(scale: SimScale) -> dict:
    n = {SimScale.TINY: 512, SimScale.SMALL: 2048, SimScale.MEDIUM: 8192,
         SimScale.LARGE: 16384}[scale]
    return {"n": n, "frames": 2}


def _inputs(p: dict):
    pos, vel = particle_box(p["n"], box=1.0, seed_tag="fluidanimate")
    return pos, vel


def _cells(pos: np.ndarray):
    ncell = int(1.0 / _H)
    cid = np.clip((pos / _H).astype(np.int64), 0, ncell - 1)
    flat = (cid[:, 0] * ncell + cid[:, 1]) * ncell + cid[:, 2]
    return cid, flat, ncell


def _step_numpy(pos, vel):
    """One SPH step (density + pressure force + gravity + integrate)."""
    n = pos.shape[0]
    cid, flat, ncell = _cells(pos)
    buckets = {}
    for i in range(n):
        buckets.setdefault(int(flat[i]), []).append(i)
    dens = np.zeros(n)
    for i in range(n):
        cx, cy, cz = cid[i]
        acc = 0.0
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dz in (-1, 0, 1):
                    nx, ny, nz = cx + dx, cy + dy, cz + dz
                    if not (0 <= nx < ncell and 0 <= ny < ncell and 0 <= nz < ncell):
                        continue
                    key = (nx * ncell + ny) * ncell + nz
                    for j in buckets.get(int(key), ()):
                        r2 = ((pos[i] - pos[j]) ** 2).sum()
                        if r2 < _H * _H:
                            acc += _MASS * (_H * _H - r2) ** 3
                    # endfor j
        dens[i] = acc
    pressure = _STIFF * (dens - _REST / 1e5)
    force = np.zeros_like(pos)
    for i in range(n):
        cx, cy, cz = cid[i]
        f = np.zeros(3)
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dz in (-1, 0, 1):
                    nx, ny, nz = cx + dx, cy + dy, cz + dz
                    if not (0 <= nx < ncell and 0 <= ny < ncell and 0 <= nz < ncell):
                        continue
                    key = (nx * ncell + ny) * ncell + nz
                    for j in buckets.get(int(key), ()):
                        if j == i:
                            continue
                        d = pos[i] - pos[j]
                        r2 = (d ** 2).sum()
                        if 1e-12 < r2 < _H * _H:
                            f += (pressure[i] + pressure[j]) * d * (_H * _H - r2)
        force[i] = f
    vel = vel + _DT * (force + np.array([0.0, _GRAV, 0.0]))
    pos = np.clip(pos + _DT * vel, 0.0, 1.0 - 1e-9)
    return pos, vel


def reference(p: dict) -> np.ndarray:
    pos, vel = _inputs(p)
    for _ in range(p["frames"]):
        pos, vel = _step_numpy(pos, vel)
    return pos


def cpu_run(machine: Machine, scale: SimScale = SimScale.SMALL) -> np.ndarray:
    p = cpu_sizes(scale)
    pos_h, vel_h = _inputs(p)
    n = p["n"]
    pos = machine.array(pos_h.reshape(-1), name="positions")
    vel = machine.array(vel_h.reshape(-1), name="velocities")
    dens = machine.alloc(n, name="density")
    force = machine.alloc(n * 3, name="force")
    three = np.arange(3)

    for _ in range(p["frames"]):
        pos_now = pos.to_host().reshape(n, 3)
        cid, flat, ncell = _cells(pos_now)
        buckets = {}
        for i in range(n):
            buckets.setdefault(int(flat[i]), []).append(i)
        order = np.argsort(cid[:, 0], kind="stable")  # slab partition

        def neighbors_of(i):
            cx, cy, cz = cid[i]
            out = []
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    for dz in (-1, 0, 1):
                        nx, ny, nz = cx + dx, cy + dy, cz + dz
                        if 0 <= nx < ncell and 0 <= ny < ncell and 0 <= nz < ncell:
                            out.extend(buckets.get(int((nx * ncell + ny) * ncell + nz), ()))
            return np.array(out, dtype=np.int64)

        def density(t):
            for k in t.chunk(n):
                i = int(order[k])
                nbrs = neighbors_of(i)
                pi = t.load(pos, i * 3 + three)
                pj = t.load(pos, (nbrs[:, None] * 3 + three).reshape(-1)).reshape(-1, 3)
                t.alu(10 * nbrs.size)
                t.branch(nbrs.size)
                r2 = ((pi - pj) ** 2).sum(axis=1)
                close = r2 < _H * _H
                t.store(dens, i, (_MASS * (_H * _H - r2[close]) ** 3).sum())

        def forces(t):
            for k in t.chunk(n):
                i = int(order[k])
                nbrs = neighbors_of(i)
                nbrs = nbrs[nbrs != i]
                pi = t.load(pos, i * 3 + three)
                di = float(t.load(dens, i))
                pj = t.load(pos, (nbrs[:, None] * 3 + three).reshape(-1)).reshape(-1, 3)
                dj = t.load(dens, nbrs)
                t.alu(16 * nbrs.size)
                t.branch(nbrs.size)
                d = pi - pj
                r2 = (d ** 2).sum(axis=1)
                close = (r2 > 1e-12) & (r2 < _H * _H)
                pres_i = _STIFF * (di - _REST / 1e5)
                pres_j = _STIFF * (dj - _REST / 1e5)
                f = ((pres_i + pres_j[close])[:, None] * d[close]
                     * (_H * _H - r2[close])[:, None]).sum(axis=0)
                t.store(force, i * 3 + three, f)

        def integrate(t):
            for i in t.chunk(n):
                fv = t.load(force, i * 3 + three)
                vv = t.load(vel, i * 3 + three)
                pv = t.load(pos, i * 3 + three)
                t.alu(12)
                vv = vv + _DT * (fv + np.array([0.0, _GRAV, 0.0]))
                t.store(vel, i * 3 + three, vv)
                t.store(pos, i * 3 + three, np.clip(pv + _DT * vv, 0.0, 1.0 - 1e-9))

        machine.parallel(density)
        machine.parallel(forces)
        machine.parallel(integrate)
    return pos.to_host().reshape(n, 3)


def check_cpu(result: np.ndarray, scale: SimScale) -> None:
    np.testing.assert_allclose(result, reference(cpu_sizes(scale)), rtol=1e-6, atol=1e-9)


register(WorkloadDef(META, cpu_fn=cpu_run, check_cpu=check_cpu))
