"""X264 (Parsec) — media processing.

Paper (Table V) problem size: 128 frames, 640x360 pixels.

The H.264 encoder's dominant kernels: per 16x16 macroblock, full-search
motion estimation (SAD over a +-4 window in the reference frame),
followed by a 4x4 integer transform and quantization of the residual.
Macroblock rows are parallelized per frame; the reference frame is
read-shared across threads, integer arithmetic dominates.
"""

from __future__ import annotations

import numpy as np

from repro.common.config import SimScale
from repro.cpusim import Machine
from repro.inputs.images import video_sequence
from repro.workloads.base import WorkloadDef, WorkloadMeta, register

META = WorkloadMeta(
    name="x264",
    suite="parsec",
    dwarf="Structured Grid / Dense",
    domain="Media Processing",
    paper_size="128 frames, 640x360 pixels",
    description="Motion estimation + integer transform per macroblock",
)

_MB = 16
_SR = 4            # search radius

# H.264 4x4 forward integer transform matrix.
_T4 = np.array([
    [1, 1, 1, 1],
    [2, 1, -1, -2],
    [1, -1, -1, 1],
    [1, -2, 2, -1],
], dtype=np.int64)

_QP = 6


def cpu_sizes(scale: SimScale) -> dict:
    res = {SimScale.TINY: 48, SimScale.SMALL: 96, SimScale.MEDIUM: 160,
           SimScale.LARGE: 288}[scale]
    return {"h": res, "w": res, "frames": 3}


def _inputs(p: dict) -> np.ndarray:
    frames = video_sequence(p["frames"], p["h"], p["w"], seed_tag="x264")
    return (frames * 255.0).astype(np.int64)


def _sad(a: np.ndarray, b: np.ndarray) -> int:
    return int(np.abs(a - b).sum())


def _transform_quant(residual: np.ndarray) -> np.ndarray:
    """4x4 integer transform + flat quantization over the macroblock."""
    out = np.empty_like(residual)
    for by in range(0, _MB, 4):
        for bx in range(0, _MB, 4):
            blk = residual[by:by + 4, bx:bx + 4]
            coef = _T4 @ blk @ _T4.T
            out[by:by + 4, bx:bx + 4] = coef // (1 << _QP)
    return out


def _encode_frame(cur: np.ndarray, ref: np.ndarray, record=None):
    """Returns (motion_vectors, total_coded_bits_proxy)."""
    h, w = cur.shape
    mvs = []
    bits = 0
    for my in range(0, h - _MB + 1, _MB):
        for mx in range(0, w - _MB + 1, _MB):
            block = cur[my:my + _MB, mx:mx + _MB]
            best = (np.inf, 0, 0)
            for dy in range(-_SR, _SR + 1):
                for dx in range(-_SR, _SR + 1):
                    ry, rx = my + dy, mx + dx
                    if ry < 0 or rx < 0 or ry + _MB > h or rx + _MB > w:
                        continue
                    cand = ref[ry:ry + _MB, rx:rx + _MB]
                    if record is not None:
                        record(ry, rx)
                    s = _sad(block, cand)
                    if s < best[0]:
                        best = (s, dy, dx)
            _, dy, dx = best
            residual = block - ref[my + dy:my + dy + _MB, mx + dx:mx + dx + _MB]
            coef = _transform_quant(residual)
            bits += int(np.abs(coef).sum()) + abs(dy) + abs(dx)
            mvs.append((dy, dx))
    return mvs, bits


def reference(p: dict):
    frames = _inputs(p)
    all_bits = []
    for f in range(1, p["frames"]):
        _, bits = _encode_frame(frames[f], frames[f - 1])
        all_bits.append(bits)
    return all_bits


def cpu_run(machine: Machine, scale: SimScale = SimScale.SMALL):
    p = cpu_sizes(scale)
    frames_h = _inputs(p)
    h, w = p["h"], p["w"]
    frame_arrs = [machine.array(frames_h[f].reshape(-1), name=f"frame{f}")
                  for f in range(p["frames"])]
    n_mb_rows = (h - _MB) // _MB + 1
    bits_arr = machine.alloc(machine.n_threads, dtype=np.int64, name="bits")
    txs = np.arange(_MB)
    all_bits = []

    for f in range(1, p["frames"]):
        cur, ref = frame_arrs[f], frame_arrs[f - 1]

        def encode_rows(t):
            bits = 0
            for row in t.strided(n_mb_rows):
                my = row * _MB
                for mx in range(0, w - _MB + 1, _MB):
                    block = np.empty((_MB, _MB), dtype=np.int64)
                    for ty in range(_MB):
                        block[ty] = t.load(cur, (my + ty) * w + mx + txs)
                    best = (np.inf, 0, 0)
                    for dy in range(-_SR, _SR + 1):
                        for dx in range(-_SR, _SR + 1):
                            ry, rx = my + dy, mx + dx
                            if ry < 0 or rx < 0 or ry + _MB > h or rx + _MB > w:
                                continue
                            sad = 0
                            for ty in range(_MB):
                                rrow = t.load(ref, (ry + ty) * w + rx + txs)
                                t.alu(2 * _MB)
                                sad += int(np.abs(block[ty] - rrow).sum())
                            t.branch(1)
                            if sad < best[0]:
                                best = (sad, dy, dx)
                    _, dy, dx = best
                    refblk = np.empty((_MB, _MB), dtype=np.int64)
                    for ty in range(_MB):
                        refblk[ty] = t.load(
                            ref, (my + dy + ty) * w + mx + dx + txs)
                    t.alu(40 * _MB)   # integer transform + quantization
                    coef = _transform_quant(block - refblk)
                    bits += int(np.abs(coef).sum()) + abs(dy) + abs(dx)
            t.store(bits_arr, t.tid, bits)

        machine.parallel(encode_rows)
        all_bits.append(int(bits_arr.data.sum()))
    return all_bits


def check_cpu(result, scale: SimScale) -> None:
    expected = reference(cpu_sizes(scale))
    if result != expected:
        raise AssertionError(f"coded-bits mismatch: {result} vs {expected}")


register(WorkloadDef(META, cpu_fn=cpu_run, check_cpu=check_cpu))
