"""Ferret (Parsec) — content-based similarity search.

Paper (Table V) problem size: 256 queries, 34,973 images.

The toolkit's pipeline: image load -> segmentation -> feature extraction
-> index query -> ranking, each stage on its own threads with queue
handoff (the software-pipelining model the paper contrasts with GPU
porting).  The index query scans a large read-shared feature database
per query, which dominates the working set.
"""

from __future__ import annotations

import numpy as np

from repro.common.config import SimScale
from repro.cpusim import Machine
from repro.inputs.images import photo
from repro.inputs.misc import feature_database
from repro.workloads.base import WorkloadDef, WorkloadMeta, register

META = WorkloadMeta(
    name="ferret",
    suite="parsec",
    dwarf="Pipeline",
    domain="Similarity Search",
    paper_size="256 queries, 34,973 images",
    description="Segmentation/feature/query/rank similarity-search pipeline",
)

_DIMS = 32
_TOPK = 8
_IMG = 32


def cpu_sizes(scale: SimScale) -> dict:
    nq, db = {
        SimScale.TINY: (8, 512),
        SimScale.SMALL: (16, 2048),
        SimScale.MEDIUM: (64, 8192),
        SimScale.LARGE: (128, 16384),
    }[scale]
    return {"n_queries": nq, "db_size": db}


def _query_images(p: dict) -> np.ndarray:
    return np.stack([
        photo(_IMG, _IMG, seed_tag=f"ferret-q{i}") for i in range(p["n_queries"])
    ])


def _extract(img: np.ndarray) -> np.ndarray:
    """Segmentation (threshold) + per-segment histogram feature."""
    mask = img > img.mean()
    feat = np.empty(_DIMS)
    hi = img[mask]
    lo = img[~mask]
    feat[: _DIMS // 2], _ = np.histogram(hi, bins=_DIMS // 2, range=(0.0, 1.0))
    feat[_DIMS // 2 :], _ = np.histogram(lo, bins=_DIMS // 2, range=(0.0, 1.0))
    norm = np.linalg.norm(feat)
    return feat / (norm + 1e-12)


def reference(p: dict) -> np.ndarray:
    """Top-k database ids per query (brute force)."""
    images = _query_images(p)
    db = feature_database(p["db_size"], _DIMS)
    out = np.empty((p["n_queries"], _TOPK), dtype=np.int64)
    for q in range(p["n_queries"]):
        feat = _extract(images[q])
        d = ((db - feat) ** 2).sum(axis=1)
        out[q] = np.argsort(d, kind="stable")[:_TOPK]
    return out


def cpu_run(machine: Machine, scale: SimScale = SimScale.SMALL) -> np.ndarray:
    p = cpu_sizes(scale)
    nq, ndb = p["n_queries"], p["db_size"]
    images_h = _query_images(p)
    db_h = feature_database(ndb, _DIMS)
    images = machine.array(images_h.reshape(nq, -1), name="query_images")
    db = machine.array(db_h.reshape(-1), name="feature_db")
    feats = machine.alloc((nq, _DIMS), name="features")
    ranks = machine.alloc((nq, _TOPK), dtype=np.int64, name="ranks")
    nt = machine.n_threads
    px = np.arange(_IMG * _IMG)
    didx = np.arange(_DIMS)

    def pipeline(t):
        if t.tid < nt // 2:
            # Stages 1-3: load, segment, extract features.
            for q in range(t.tid, nq, nt // 2):
                img = t.load(images, q * _IMG * _IMG + px).reshape(_IMG, _IMG)
                t.alu(6 * px.size)
                t.branch(px.size)
                feat = _extract(img)
                t.store(feats, q * _DIMS + didx, feat)
        else:
            # Stages 4-5: index scan + rank (consumes stage-3 output).
            stride = nt - nt // 2
            for q in range(t.tid - nt // 2, nq, stride):
                feat = t.load(feats, q * _DIMS + didx)
                d = np.empty(ndb)
                for base in range(0, ndb, 64):
                    hi = min(base + 64, ndb)
                    rows = t.load(db, np.arange(base * _DIMS, hi * _DIMS))
                    t.alu(3 * (hi - base) * _DIMS)
                    d[base:hi] = (
                        (rows.reshape(-1, _DIMS) - feat) ** 2
                    ).sum(axis=1)
                t.branch(ndb)
                t.store(ranks, q * _TOPK + np.arange(_TOPK),
                        np.argsort(d, kind="stable")[:_TOPK])

    machine.parallel(pipeline)
    return ranks.to_host().astype(np.int64)


def check_cpu(result: np.ndarray, scale: SimScale) -> None:
    np.testing.assert_array_equal(result, reference(cpu_sizes(scale)))


register(WorkloadDef(META, cpu_fn=cpu_run, check_cpu=check_cpu))
