"""Swaptions (Parsec) — financial analysis.

Paper (Table V) problem size: 64 swaptions, 20,000 simulations.

Monte-Carlo pricing of interest-rate swaptions under an HJM-style
forward-rate model: per swaption and trial, the forward curve is evolved
with correlated shocks, the swap's value is computed at maturity, and
the discounted payoff is averaged.  Compute-dominated with per-swaption
private state; swaptions are distributed cyclically across threads, as
in Parsec.
"""

from __future__ import annotations

import numpy as np

from repro.common.config import SimScale
from repro.common.rng import make_rng
from repro.cpusim import Machine
from repro.inputs.misc import swaption_portfolio
from repro.workloads.base import WorkloadDef, WorkloadMeta, register

META = WorkloadMeta(
    name="swaptions",
    suite="parsec",
    dwarf="MapReduce / Monte Carlo",
    domain="Financial Analysis",
    paper_size="64 swaptions, 20,000 simulations",
    description="HJM Monte-Carlo swaption pricing, cyclic distribution",
)


def cpu_sizes(scale: SimScale) -> dict:
    ns, trials = {
        SimScale.TINY: (8, 64),
        SimScale.SMALL: (16, 256),
        SimScale.MEDIUM: (32, 512),
        SimScale.LARGE: (64, 1024),
    }[scale]
    return {"n_swaptions": ns, "trials": trials}


def _shocks(p: dict) -> np.ndarray:
    rng = make_rng("swaptions-shocks", p["n_swaptions"], p["trials"])
    return rng.normal(0.0, 1.0, (p["n_swaptions"], p["trials"], 10))


def _price_one(curve, maturity, tenor, strike, vol, shocks):
    """Average discounted payoff of one swaption over all trials."""
    n_curve = curve.size
    total = 0.0
    dt = 0.5
    for trial in range(shocks.shape[0]):
        fwd = curve.copy()
        for step in range(maturity):
            drift = 0.5 * vol * vol * dt
            fwd = fwd + drift + vol * np.sqrt(dt) * shocks[trial, step]
        # Swap rate over the tenor vs. strike, discounted along the curve.
        pay_leg = fwd[:tenor].sum() * dt
        discount = np.exp(-fwd[0] * maturity * dt)
        payoff = max(pay_leg - strike * tenor * dt, 0.0)
        total += discount * payoff
    return total / shocks.shape[0]


def reference(p: dict) -> np.ndarray:
    port = swaption_portfolio(p["n_swaptions"])
    shocks = _shocks(p)
    out = np.empty(p["n_swaptions"])
    for i in range(p["n_swaptions"]):
        out[i] = _price_one(
            port["initial_curve"][i], int(port["maturity_steps"][i]),
            int(port["tenor_steps"][i]), float(port["strike"][i]),
            float(port["vol"][i]), shocks[i, :, :],
        )
    return out


def cpu_run(machine: Machine, scale: SimScale = SimScale.SMALL) -> np.ndarray:
    p = cpu_sizes(scale)
    ns, trials = p["n_swaptions"], p["trials"]
    port = swaption_portfolio(ns)
    shocks_h = _shocks(p)
    n_curve = port["initial_curve"].shape[1]
    curves = machine.array(port["initial_curve"].reshape(-1), name="curves")
    prices = machine.alloc(ns, name="prices")
    # Per-thread HJM path matrix, as in Parsec's ppdHJMPath buffers.
    max_steps = int(port["maturity_steps"].max())
    paths = machine.alloc((machine.n_threads, max_steps, n_curve), name="paths")
    dt = 0.5

    def worker(t):
        cidx = np.arange(n_curve)
        pbase = t.tid * max_steps * n_curve
        for i in t.strided(ns):
            curve = t.load(curves, i * n_curve + cidx)
            maturity = int(port["maturity_steps"][i])
            tenor = int(port["tenor_steps"][i])
            strike = float(port["strike"][i])
            vol = float(port["vol"][i])
            total = 0.0
            for trial in range(trials):
                fwd = curve.copy()
                for step in range(maturity):
                    # Parsec generates the normal shock inline (RanUnif +
                    # CumNormalInv): charged as arithmetic, not a load.
                    z = shocks_h[i, trial, step]
                    t.alu(12 + 4 * n_curve)
                    fwd = fwd + 0.5 * vol * vol * dt + vol * np.sqrt(dt) * z
                    t.store(paths, pbase + step * n_curve + cidx, fwd)
                # Payoff reads the simulated path's final row back.
                final = t.load(paths, pbase + (maturity - 1) * n_curve + cidx)
                t.alu(2 * tenor + 8)
                t.branch(1)
                pay_leg = final[:tenor].sum() * dt
                discount = np.exp(-final[0] * maturity * dt)
                payoff = max(pay_leg - strike * tenor * dt, 0.0)
                total += discount * payoff
            t.store(prices, i, total / trials)

    machine.parallel(worker)
    return prices.to_host()


def check_cpu(result: np.ndarray, scale: SimScale) -> None:
    np.testing.assert_allclose(result, reference(cpu_sizes(scale)), rtol=1e-10)


register(WorkloadDef(META, cpu_fn=cpu_run, check_cpu=check_cpu))
