"""Blackscholes (Parsec) — financial analysis.

Paper (Table V) problem size: 65,536 options.

Portfolio pricing with the closed-form Black-Scholes PDE solution; the
Parsec kernel re-prices the whole portfolio ``NUM_RUNS`` times across a
static partition of options.  Arithmetic-dominated with tiny, streaming
working sets — the classic low-sharing, low-miss-rate corner of the
PCA space (Figs. 7-9).
"""

from __future__ import annotations

import numpy as np

from repro.common.config import SimScale
from repro.cpusim import Machine
from repro.inputs.misc import option_portfolio
from repro.workloads.base import WorkloadDef, WorkloadMeta, register

META = WorkloadMeta(
    name="blackscholes",
    suite="parsec",
    dwarf="Dense Linear Algebra",
    domain="Financial Analysis",
    paper_size="65,536 options",
    description="Closed-form option pricing over a static partition",
)

_NUM_RUNS = 4
_INV_SQRT_2PI = 0.3989422804014327


def cpu_sizes(scale: SimScale) -> dict:
    n = {SimScale.TINY: 2048, SimScale.SMALL: 8192, SimScale.MEDIUM: 32768,
         SimScale.LARGE: 65536}[scale]
    return {"n": n, "runs": _NUM_RUNS}


def _cndf(x: np.ndarray) -> np.ndarray:
    """Cumulative normal via the polynomial expansion Parsec uses."""
    sign = x < 0
    ax = np.abs(x)
    k = 1.0 / (1.0 + 0.2316419 * ax)
    poly = k * (0.319381530 + k * (-0.356563782 + k * (1.781477937
           + k * (-1.821255978 + k * 1.330274429))))
    approx = 1.0 - _INV_SQRT_2PI * np.exp(-0.5 * ax * ax) * poly
    return np.where(sign, 1.0 - approx, approx)


def _price(spot, strike, rate, vol, expiry, is_call):
    sqrt_t = np.sqrt(expiry)
    d1 = (np.log(spot / strike) + (rate + 0.5 * vol * vol) * expiry) / (vol * sqrt_t)
    d2 = d1 - vol * sqrt_t
    call = spot * _cndf(d1) - strike * np.exp(-rate * expiry) * _cndf(d2)
    put = strike * np.exp(-rate * expiry) * _cndf(-d2) - spot * _cndf(-d1)
    return np.where(is_call, call, put)


def reference(p: dict) -> np.ndarray:
    opts = option_portfolio(p["n"])
    return _price(opts["spot"], opts["strike"], opts["rate"],
                  opts["volatility"], opts["expiry"], opts["is_call"])


def cpu_run(machine: Machine, scale: SimScale = SimScale.SMALL) -> np.ndarray:
    p = cpu_sizes(scale)
    n = p["n"]
    opts = option_portfolio(n)
    spot = machine.array(opts["spot"], name="spot")
    strike = machine.array(opts["strike"], name="strike")
    rate = machine.array(opts["rate"], name="rate")
    vol = machine.array(opts["volatility"], name="volatility")
    expiry = machine.array(opts["expiry"], name="expiry")
    is_call = machine.array(opts["is_call"].astype(np.int8), name="is_call")
    prices = machine.alloc(n, name="prices")
    batch = 256

    def worker(t):
        chunk = t.chunk(n)
        for lo in range(chunk.start, chunk.stop, batch):
            idx = np.arange(lo, min(lo + batch, chunk.stop))
            s = t.load(spot, idx)
            k = t.load(strike, idx)
            r = t.load(rate, idx)
            v = t.load(vol, idx)
            tt = t.load(expiry, idx)
            c = t.load(is_call, idx) != 0
            t.alu(55 * idx.size)   # log/exp/sqrt-heavy formula
            t.branch(idx.size)
            t.store(prices, idx, _price(s, k, r, v, tt, c))

    for _ in range(p["runs"]):
        machine.parallel(worker)
    return prices.to_host()


def check_cpu(result: np.ndarray, scale: SimScale) -> None:
    np.testing.assert_allclose(result, reference(cpu_sizes(scale)), rtol=1e-10)


# ----------------------------------------------------------------------
# Experimental GPU port (Section V-B: "Can the Parsec workloads be
# effectively mapped to heterogeneous platforms?").  Blackscholes is the
# *easy* case: one thread per option, no synchronization, no sharing.
# Not registered in the suite (Parsec remains CPU-only, as in the
# paper); used by the ext_parsec_ports experiment.
# ----------------------------------------------------------------------
def _bs_kernel(ctx, spot, strike, rate, vol, expiry, is_call, prices, n):
    i = ctx.gtid
    with ctx.masked(i < n):
        s = ctx.load(spot, i)
        k = ctx.load(strike, i)
        r = ctx.load(rate, i)
        v = ctx.load(vol, i)
        t = ctx.load(expiry, i)
        c = ctx.load(is_call, i) != 0
        # The CNDF polynomial + pricing formula: ~55 scalar FLOPs
        # (log/exp/sqrt/divides included), as charged in the CPU twin.
        ctx.alu(55)
        price = _price(s, k, r, v, np.maximum(t, 1e-9), c)
        ctx.branch()
        ctx.store(prices, i, price)


def gpu_port_run(gpu, scale: SimScale = SimScale.SMALL) -> np.ndarray:
    p = cpu_sizes(scale)
    n = p["n"]
    opts = option_portfolio(n)
    arrays = [
        gpu.to_device(opts["spot"], name="spot"),
        gpu.to_device(opts["strike"], name="strike"),
        gpu.to_device(opts["rate"], name="rate"),
        gpu.to_device(opts["volatility"], name="volatility"),
        gpu.to_device(opts["expiry"], name="expiry"),
        gpu.to_device(opts["is_call"].astype(np.int8), name="is_call"),
    ]
    prices = gpu.alloc(n, dtype=np.float64, name="prices")
    block = 128
    for _ in range(p["runs"]):
        gpu.launch(_bs_kernel, (n + block - 1) // block, block,
                   *arrays, prices, n, regs_per_thread=24,
                   name="blackscholes_port")
    return prices.to_host()


def check_gpu_port(result: np.ndarray, scale: SimScale) -> None:
    np.testing.assert_allclose(result, reference(cpu_sizes(scale)), rtol=1e-10)


register(WorkloadDef(META, cpu_fn=cpu_run, check_cpu=check_cpu))
