"""Freqmine (Parsec) — data mining.

Paper (Table V) problem size: 990,000 transactions.

FP-growth frequent-itemset mining: a parallel scan counts item supports,
an FP-tree of frequency-ordered transaction prefixes is built with
parent/header-link pointers, and the mining phase walks each frequent
item's node links up the tree to count frequent pairs.  The
pointer-chasing tree walks over a heap-shaped node array are what give
Freqmine its irregular access pattern and large footprint.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Tuple

import numpy as np

from repro.common.config import SimScale
from repro.cpusim import Machine
from repro.inputs.misc import transaction_db
from repro.workloads.base import WorkloadDef, WorkloadMeta, register

META = WorkloadMeta(
    name="freqmine",
    suite="parsec",
    dwarf="MapReduce / Tree Traversal",
    domain="Data Mining",
    paper_size="990,000 transactions",
    description="FP-growth: tree build + header-link pattern mining",
)


def cpu_sizes(scale: SimScale) -> dict:
    nt, ni = {
        SimScale.TINY: (512, 64),
        SimScale.SMALL: (2048, 128),
        SimScale.MEDIUM: (8192, 256),
        SimScale.LARGE: (16384, 384),
    }[scale]
    return {"n_transactions": nt, "n_items": ni, "minsup": max(4, nt // 64)}


def _inputs(p: dict) -> List[np.ndarray]:
    return transaction_db(p["n_transactions"], p["n_items"], avg_len=8,
                          seed_tag="freqmine")


def reference(p: dict) -> Dict[Tuple[int, int], int]:
    """Brute-force frequent-pair supports (independent of the FP-tree)."""
    db = _inputs(p)
    counts = Counter()
    for txn in db:
        items = txn.tolist()
        for i in range(len(items)):
            for j in range(i + 1, len(items)):
                a, b = items[i], items[j]
                counts[(min(a, b), max(a, b))] += 1
    return {k: v for k, v in counts.items() if v >= p["minsup"]}


def cpu_run(machine: Machine, scale: SimScale = SimScale.SMALL):
    p = cpu_sizes(scale)
    db = _inputs(p)
    n_items = p["n_items"]
    minsup = p["minsup"]
    supports = machine.alloc(n_items, dtype=np.int64, name="supports")
    partial = machine.alloc((machine.n_threads, n_items), dtype=np.int64,
                            name="partial_supports")

    def count_items(t):
        local = np.zeros(n_items, dtype=np.int64)
        for i in t.chunk(len(db)):
            txn = db[i]
            t.alu(txn.size)
            local[txn] += 1
        t.store(partial, t.tid * n_items + np.arange(n_items), local)

    def reduce_counts(t):
        all_parts = t.load(partial, np.arange(machine.n_threads * n_items))
        t.alu(all_parts.size)
        t.store(supports, np.arange(n_items),
                all_parts.reshape(machine.n_threads, n_items).sum(axis=0))

    machine.parallel(count_items)
    machine.serial(reduce_counts)

    support_h = supports.to_host()
    frequent = np.where(support_h >= minsup)[0]
    rank = {int(item): r for r, item in
            enumerate(frequent[np.argsort(-support_h[frequent], kind="stable")])}

    # FP-tree node arrays: item, parent, count, and header chains.
    max_nodes = 1 + sum(min(len(txn), len(rank)) for txn in db)
    node_item = machine.alloc(max_nodes, dtype=np.int64, name="node_item")
    node_parent = machine.alloc(max_nodes, dtype=np.int64, name="node_parent")
    node_count = machine.alloc(max_nodes, dtype=np.int64, name="node_count")
    node_next = machine.alloc(max_nodes, dtype=np.int64, name="node_next")
    header = machine.alloc(n_items, dtype=np.int64, name="header")
    header.data[:] = -1
    node_item.data[0] = -1

    def build_tree(t):
        """Serial FP-tree construction (Parsec builds per-thread trees and
        merges; a single instrumented build keeps the same access shape)."""
        n_nodes = 1
        children: Dict[Tuple[int, int], int] = {}
        for txn in db:
            ranked = sorted((item for item in txn.tolist() if item in rank),
                            key=lambda it: rank[it])
            cur = 0
            for item in ranked:
                t.branch(1)
                key = (cur, item)
                nxt = children.get(key)
                if nxt is None:
                    nxt = n_nodes
                    n_nodes += 1
                    children[key] = nxt
                    t.store(node_item, nxt, item)
                    t.store(node_parent, nxt, cur)
                    t.store(node_count, nxt, 0)
                    old_head = int(t.load(header, item))
                    t.store(node_next, nxt, old_head)
                    t.store(header, item, nxt)
                t.store(node_count, nxt, int(t.load(node_count, nxt)) + 1)
                cur = nxt
        return n_nodes

    machine.serial(build_tree)

    pair_support: Dict[Tuple[int, int], int] = {}

    def mine(t):
        """Walk each owned item's header chain; count (item, ancestor)."""
        local: Dict[Tuple[int, int], int] = {}
        items = [it for it in rank if rank[it] % t.nthreads == t.tid]
        for item in items:
            node = int(t.load(header, item))
            while node != -1:
                t.branch(1)
                cnt = int(t.load(node_count, node))
                anc = int(t.load(node_parent, node))
                while anc != 0:
                    t.branch(1)
                    anc_item = int(t.load(node_item, anc))
                    key = (min(item, anc_item), max(item, anc_item))
                    local[key] = local.get(key, 0) + cnt
                    anc = int(t.load(node_parent, anc))
                node = int(t.load(node_next, node))
        return local

    results = machine.parallel(mine)
    for local in results:
        for k, v in local.items():
            pair_support[k] = pair_support.get(k, 0) + v
    return {k: v for k, v in pair_support.items() if v >= minsup}


def check_cpu(result, scale: SimScale) -> None:
    p = cpu_sizes(scale)
    expected = reference(p)
    # FP-tree mining only sees pairs of *frequent* items; brute force
    # counts all pairs.  Restrict the reference accordingly.
    db = _inputs(p)
    supports = Counter()
    for txn in db:
        supports.update(txn.tolist())
    frequent = {i for i, c in supports.items() if c >= p["minsup"]}
    expected = {k: v for k, v in expected.items()
                if k[0] in frequent and k[1] in frequent}
    if result != expected:
        missing = set(expected) - set(result)
        extra = set(result) - set(expected)
        raise AssertionError(
            f"frequent pairs differ: {len(missing)} missing, {len(extra)} extra"
        )


register(WorkloadDef(META, cpu_fn=cpu_run, check_cpu=check_cpu))
