"""Raytrace (Parsec 2.1) — rendering.

Renders a sphere scene through a median-split BVH: per pixel, a primary
ray walks the BVH with an explicit stack, finds the nearest hit, and
shades with a Lambertian term.  Rows are distributed cyclically over
threads; the BVH and scene are read-shared.  The independent self-check
renders the same scene by brute-force intersection against every sphere.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

import numpy as np

from repro.common.config import SimScale
from repro.common.rng import make_rng
from repro.cpusim import Machine
from repro.workloads.base import WorkloadDef, WorkloadMeta, register

META = WorkloadMeta(
    name="raytrace",
    suite="parsec",
    dwarf="Graphics / Traversal",
    domain="Rendering",
    paper_size="1920x1080 frame (sim-large)",
    description="BVH ray casting of a sphere scene, row-cyclic threads",
)


def cpu_sizes(scale: SimScale) -> dict:
    res, ns = {
        SimScale.TINY: (40, 32),
        SimScale.SMALL: (64, 64),
        SimScale.MEDIUM: (128, 128),
        SimScale.LARGE: (224, 224),
    }[scale]
    return {"h": res, "w": res, "n_spheres": ns}


def _scene(p: dict):
    rng = make_rng("raytrace-scene", p["n_spheres"])
    centers = rng.uniform(-4.0, 4.0, (p["n_spheres"], 3))
    centers[:, 2] = rng.uniform(6.0, 14.0, p["n_spheres"])
    radii = rng.uniform(0.3, 0.9, p["n_spheres"])
    albedo = rng.uniform(0.2, 1.0, p["n_spheres"])
    return centers, radii, albedo


@dataclasses.dataclass
class _BVH:
    """Flat BVH: internal nodes reference children; leaves hold spheres."""

    bbox_min: np.ndarray    # (nodes, 3)
    bbox_max: np.ndarray    # (nodes, 3)
    left: np.ndarray        # child id or -1
    right: np.ndarray
    first: np.ndarray       # leaf: first sphere index into `order`
    count: np.ndarray       # leaf: number of spheres (0 for internal)
    order: np.ndarray       # sphere permutation


def build_bvh(centers: np.ndarray, radii: np.ndarray, leaf_size: int = 4) -> _BVH:
    n = centers.shape[0]
    order = np.arange(n)
    nodes: List[dict] = []

    def make(lo: int, hi: int) -> int:
        idx = order[lo:hi]
        mins = (centers[idx] - radii[idx, None]).min(axis=0)
        maxs = (centers[idx] + radii[idx, None]).max(axis=0)
        node = {"min": mins, "max": maxs, "left": -1, "right": -1,
                "first": lo, "count": 0}
        me = len(nodes)
        nodes.append(node)
        if hi - lo <= leaf_size:
            node["count"] = hi - lo
            return me
        axis = int(np.argmax(maxs - mins))
        key = centers[idx, axis]
        local = np.argsort(key, kind="stable")
        order[lo:hi] = idx[local]
        mid = (lo + hi) // 2
        node["left"] = make(lo, mid)
        node["right"] = make(mid, hi)
        return me

    make(0, n)
    return _BVH(
        bbox_min=np.array([nd["min"] for nd in nodes]),
        bbox_max=np.array([nd["max"] for nd in nodes]),
        left=np.array([nd["left"] for nd in nodes], dtype=np.int64),
        right=np.array([nd["right"] for nd in nodes], dtype=np.int64),
        first=np.array([nd["first"] for nd in nodes], dtype=np.int64),
        count=np.array([nd["count"] for nd in nodes], dtype=np.int64),
        order=order,
    )


def _ray_dirs(h: int, w: int) -> np.ndarray:
    ys = (np.arange(h) / h - 0.5)
    xs = (np.arange(w) / w - 0.5)
    d = np.empty((h, w, 3))
    d[..., 0] = xs[None, :]
    d[..., 1] = ys[:, None]
    d[..., 2] = 1.0
    return d / np.linalg.norm(d, axis=2, keepdims=True)


def _sphere_hit(center, radius, direction) -> float:
    """Nearest positive t of a ray from the origin, or inf."""
    b = -2.0 * float(np.dot(direction, center))
    c = float(np.dot(center, center)) - radius * radius
    disc = b * b - 4.0 * c
    if disc < 0.0:
        return np.inf
    root = np.sqrt(disc)
    t0 = (-b - root) / 2.0
    if t0 > 1e-6:
        return t0
    t1 = (-b + root) / 2.0
    return t1 if t1 > 1e-6 else np.inf


def reference(p: dict) -> np.ndarray:
    """Brute-force render (no BVH) — the independent check."""
    centers, radii, albedo = _scene(p)
    h, w = p["h"], p["w"]
    dirs = _ray_dirs(h, w)
    img = np.zeros((h, w))
    light = np.array([0.5, -1.0, -0.25])
    light = light / np.linalg.norm(light)
    for y in range(h):
        for x in range(w):
            d = dirs[y, x]
            best_t, best_s = np.inf, -1
            for s in range(centers.shape[0]):
                t = _sphere_hit(centers[s], radii[s], d)
                if t < best_t:
                    best_t, best_s = t, s
            if best_s >= 0:
                hit = best_t * d
                normal = (hit - centers[best_s]) / radii[best_s]
                img[y, x] = albedo[best_s] * max(0.0, -float(np.dot(normal, light)))
    return img


def _box_hit(bmin, bmax, inv_d) -> bool:
    t0 = bmin * inv_d
    t1 = bmax * inv_d
    tmin = np.minimum(t0, t1).max()
    tmax = np.maximum(t0, t1).min()
    return tmax >= max(tmin, 0.0)


def cpu_run(machine: Machine, scale: SimScale = SimScale.SMALL) -> np.ndarray:
    p = cpu_sizes(scale)
    centers_h, radii_h, albedo_h = _scene(p)
    bvh = build_bvh(centers_h, radii_h)
    h, w = p["h"], p["w"]
    dirs = _ray_dirs(h, w)
    light = np.array([0.5, -1.0, -0.25])
    light = light / np.linalg.norm(light)

    centers = machine.array(centers_h.reshape(-1), name="centers")
    radii = machine.array(radii_h, name="radii")
    albedo = machine.array(albedo_h, name="albedo")
    bmin = machine.array(bvh.bbox_min.reshape(-1), name="bbox_min")
    bmax = machine.array(bvh.bbox_max.reshape(-1), name="bbox_max")
    left = machine.array(bvh.left, name="left")
    right = machine.array(bvh.right, name="right")
    first = machine.array(bvh.first, name="first")
    count = machine.array(bvh.count, name="count")
    order = machine.array(bvh.order, name="order")
    img = machine.alloc(h * w, name="image")
    three = np.arange(3)

    def trace_row(t, y):
        for x in range(w):
            d = dirs[y, x]
            safe = np.where(np.abs(d) < 1e-12, 1e-12, d)
            inv_d = 1.0 / safe
            stack = [0]
            best_t, best_s = np.inf, -1
            while stack:
                t.branch(1)
                node = stack.pop()
                nb_min = t.load(bmin, node * 3 + three)
                nb_max = t.load(bmax, node * 3 + three)
                t.alu(14)
                if not _box_hit(nb_min - 0.0, nb_max - 0.0, inv_d):
                    continue
                cnt = int(t.load(count, node))
                if cnt > 0:
                    lo = int(t.load(first, node))
                    sids = t.load(order, np.arange(lo, lo + cnt))
                    for s in sids:
                        c = t.load(centers, s * 3 + three)
                        r = float(t.load(radii, int(s)))
                        t.alu(18)
                        t.branch(1)
                        th = _sphere_hit(c, r, d)
                        if th < best_t:
                            best_t, best_s = th, int(s)
                else:
                    stack.append(int(t.load(left, node)))
                    stack.append(int(t.load(right, node)))
            if best_s >= 0:
                hit = best_t * d
                c = t.load(centers, best_s * 3 + three)
                a = float(t.load(albedo, best_s))
                t.alu(12)
                normal = (hit - c) / radii_h[best_s]
                t.store(img, y * w + x, a * max(0.0, -float(np.dot(normal, light))))

    def worker(t):
        for y in t.strided(h):
            trace_row(t, y)

    machine.parallel(worker)
    return img.to_host().reshape(h, w)


def check_cpu(result: np.ndarray, scale: SimScale) -> None:
    np.testing.assert_allclose(result, reference(cpu_sizes(scale)), rtol=1e-8, atol=1e-12)


# ----------------------------------------------------------------------
# Experimental GPU port (Section V-B).  Raytrace is the *hard* case:
# every ray walks its private BVH path with a per-lane traversal stack
# (spilled to local memory), so warps diverge immediately — the port
# "works" but exhibits MUMmer-like divergence and scattered access.
# Not registered (Parsec stays CPU-only); used by ext_parsec_ports.
# ----------------------------------------------------------------------
_MAX_STACK = 16


def _raytrace_kernel(ctx, bmin, bmax, left, right, first, count, order,
                     const_centers, const_radii, const_albedo,
                     stack, image, h, w, n_spheres, light):
    pix = ctx.gtid
    with ctx.masked(pix < h * w):
        ctx.alu(16)   # ray setup: pixel -> direction (normalize incl. sqrt)
        py = pix // w
        px = pix % w
        dx = (px / w - 0.5).astype(np.float64)
        dy = (py / h - 0.5).astype(np.float64)
        dz = np.ones(ctx.nthreads)
        norm = np.sqrt(dx * dx + dy * dy + dz * dz)
        dx, dy, dz = dx / norm, dy / norm, dz / norm
        inv_x = 1.0 / np.where(np.abs(dx) < 1e-12, 1e-12, dx)
        inv_y = 1.0 / np.where(np.abs(dy) < 1e-12, 1e-12, dy)
        inv_z = 1.0 / np.where(np.abs(dz) < 1e-12, 1e-12, dz)

        lane_base = ctx.tidx * _MAX_STACK
        ctx.store(stack, lane_base, 0)          # push the root
        sp = ctx.const(1, dtype=np.int64)
        best_t = ctx.const(np.inf, dtype=np.float64)
        best_s = ctx.const(-1, dtype=np.int64)

        def still_walking():
            return sp > 0

        for _ in ctx.while_(still_walking):
            ctx.alu(2)
            sp = np.where(ctx.mask, sp - 1, sp)
            node = ctx.load(stack, lane_base + np.maximum(sp, 0))
            # Slab test against the node's bounding box.
            bx0 = ctx.load(bmin, node * 3 + 0)
            by0 = ctx.load(bmin, node * 3 + 1)
            bz0 = ctx.load(bmin, node * 3 + 2)
            bx1 = ctx.load(bmax, node * 3 + 0)
            by1 = ctx.load(bmax, node * 3 + 1)
            bz1 = ctx.load(bmax, node * 3 + 2)
            ctx.alu(18)
            tx0, tx1 = bx0 * inv_x, bx1 * inv_x
            ty0, ty1 = by0 * inv_y, by1 * inv_y
            tz0, tz1 = bz0 * inv_z, bz1 * inv_z
            tmin = np.maximum(np.maximum(np.minimum(tx0, tx1),
                                         np.minimum(ty0, ty1)),
                              np.minimum(tz0, tz1))
            tmax = np.minimum(np.minimum(np.maximum(tx0, tx1),
                                         np.maximum(ty0, ty1)),
                              np.maximum(tz0, tz1))
            box_hit = tmax >= np.maximum(tmin, 0.0)
            with ctx.masked(box_hit):
                cnt = ctx.load(count, node)
                is_leaf = cnt > 0
                with ctx.masked(is_leaf):
                    lo = ctx.load(first, node)
                    for k in range(4):          # leaf_size = 4
                        with ctx.masked(k < cnt):
                            sid = ctx.load(order, np.minimum(lo + k,
                                                             n_spheres - 1))
                            cx = ctx.load(const_centers, sid * 3 + 0)
                            cy = ctx.load(const_centers, sid * 3 + 1)
                            cz = ctx.load(const_centers, sid * 3 + 2)
                            rr = ctx.load(const_radii, sid)
                            ctx.alu(20)         # quadratic intersection
                            b = -2.0 * (dx * cx + dy * cy + dz * cz)
                            c = cx * cx + cy * cy + cz * cz - rr * rr
                            disc = b * b - 4.0 * c
                            root = np.sqrt(np.maximum(disc, 0.0))
                            t0 = (-b - root) / 2.0
                            t1 = (-b + root) / 2.0
                            t_hit = np.where(t0 > 1e-6, t0,
                                             np.where(t1 > 1e-6, t1, np.inf))
                            t_hit = np.where(disc >= 0.0, t_hit, np.inf)
                            closer = t_hit < best_t
                            upd = ctx.mask & closer
                            best_t = np.where(upd, t_hit, best_t)
                            best_s = np.where(upd, sid, best_s)
                with ctx.masked(~is_leaf):
                    lchild = ctx.load(left, node)
                    rchild = ctx.load(right, node)
                    ctx.alu(2)
                    ctx.store(stack, lane_base + sp, lchild)
                    sp = np.where(ctx.mask, sp + 1, sp)
                    ctx.store(stack, lane_base + sp, rchild)
                    sp = np.where(ctx.mask, sp + 1, sp)

        # Lambertian shading of the nearest hit.
        hit = best_s >= 0
        with ctx.masked(hit):
            sid = np.maximum(best_s, 0)
            cx = ctx.load(const_centers, sid * 3 + 0)
            cy = ctx.load(const_centers, sid * 3 + 1)
            cz = ctx.load(const_centers, sid * 3 + 2)
            rr = ctx.load(const_radii, sid)
            alb = ctx.load(const_albedo, sid)
            ctx.alu(16)
            nx = (best_t * dx - cx) / rr
            ny = (best_t * dy - cy) / rr
            nz = (best_t * dz - cz) / rr
            lam = -(nx * light[0] + ny * light[1] + nz * light[2])
            ctx.store(image, pix, alb * np.maximum(lam, 0.0))


def gpu_port_run(gpu, scale: SimScale = SimScale.SMALL) -> np.ndarray:
    p = cpu_sizes(scale)
    centers_h, radii_h, albedo_h = _scene(p)
    bvh = build_bvh(centers_h, radii_h)
    h, w = p["h"], p["w"]
    light = np.array([0.5, -1.0, -0.25])
    light = light / np.linalg.norm(light)
    from repro.gpusim.isa import Space

    # BVH in texture memory (like MUMmer's tree); spheres in constant.
    bmin = gpu.to_texture(bvh.bbox_min.reshape(-1), name="bvh_min")
    bmax = gpu.to_texture(bvh.bbox_max.reshape(-1), name="bvh_max")
    left = gpu.to_texture(bvh.left.astype(np.int32), name="bvh_left")
    right = gpu.to_texture(bvh.right.astype(np.int32), name="bvh_right")
    first = gpu.to_texture(bvh.first.astype(np.int32), name="bvh_first")
    count = gpu.to_texture(bvh.count.astype(np.int32), name="bvh_count")
    order = gpu.to_texture(bvh.order.astype(np.int32), name="bvh_order")
    const_centers = gpu.to_const(centers_h.reshape(-1), name="centers")
    const_radii = gpu.to_const(radii_h, name="radii")
    const_albedo = gpu.to_const(albedo_h, name="albedo")
    image = gpu.alloc(h * w, dtype=np.float64, name="image")
    block = 128
    stack = gpu.alloc(block * _MAX_STACK, dtype=np.int32,
                      space=Space.LOCAL, name="traversal_stack")
    gpu.launch(_raytrace_kernel, (h * w + block - 1) // block, block,
               bmin, bmax, left, right, first, count, order,
               const_centers, const_radii, const_albedo,
               stack, image, h, w, centers_h.shape[0], light,
               regs_per_thread=48, name="raytrace_port")
    return image.to_host().reshape(h, w)


def check_gpu_port(result: np.ndarray, scale: SimScale) -> None:
    np.testing.assert_allclose(result, reference(cpu_sizes(scale)),
                               rtol=1e-8, atol=1e-12)


register(WorkloadDef(META, cpu_fn=cpu_run, check_cpu=check_cpu))
