"""Vips (Parsec) — media processing.

Paper (Table V) problem size: 1 image, 26,625,500 pixels.

The VIPS benchmark applies a fused image-transformation pipeline
(affine shrink, sharpen convolution, linear colour adjustment) in
row-banded parallel passes over a large image — streaming access with a
big data footprint and almost no sharing, which keeps Vips near
Blackscholes in the clustering (Fig. 6).
"""

from __future__ import annotations

import numpy as np

from repro.common.config import SimScale
from repro.cpusim import Machine
from repro.inputs.images import photo
from repro.workloads.base import WorkloadDef, WorkloadMeta, register

META = WorkloadMeta(
    name="vips",
    suite="parsec",
    dwarf="Structured Grid / Streaming",
    domain="Media Processing",
    paper_size="1 image, 26,625,500 pixels",
    description="Affine-shrink + sharpen + linear-adjust image pipeline",
)

_SHARPEN = np.array([[0.0, -1.0, 0.0], [-1.0, 5.0, -1.0], [0.0, -1.0, 0.0]])


def cpu_sizes(scale: SimScale) -> dict:
    h, w = {
        SimScale.TINY: (96, 128),
        SimScale.SMALL: (192, 256),
        SimScale.MEDIUM: (384, 512),
        SimScale.LARGE: (768, 1024),
    }[scale]
    return {"h": h, "w": w}


def _inputs(p: dict) -> np.ndarray:
    return photo(p["h"], p["w"], seed_tag="vips")


def _shrink_numpy(img: np.ndarray) -> np.ndarray:
    """2x box shrink."""
    h2, w2 = img.shape[0] // 2, img.shape[1] // 2
    v = img[: h2 * 2, : w2 * 2]
    return 0.25 * (v[0::2, 0::2] + v[1::2, 0::2] + v[0::2, 1::2] + v[1::2, 1::2])


def _sharpen_numpy(img: np.ndarray) -> np.ndarray:
    h, w = img.shape
    pad = np.pad(img, 1, mode="edge")
    out = np.zeros_like(img)
    for ky in range(3):
        for kx in range(3):
            out += _SHARPEN[ky, kx] * pad[ky:ky + h, kx:kx + w]
    return out


def reference(p: dict) -> np.ndarray:
    img = _inputs(p)
    img = _shrink_numpy(img)
    img = _sharpen_numpy(img)
    return np.clip(1.1 * img + 0.02, 0.0, 1.0)


def cpu_run(machine: Machine, scale: SimScale = SimScale.SMALL) -> np.ndarray:
    p = cpu_sizes(scale)
    img_h = _inputs(p)
    h, w = p["h"], p["w"]
    h2, w2 = h // 2, w // 2
    src = machine.array(img_h.reshape(-1), name="image")
    small = machine.alloc(h2 * w2, name="shrunk")
    sharp = machine.alloc(h2 * w2, name="sharpened")
    out = machine.alloc(h2 * w2, name="output")

    def shrink(t):
        xs = np.arange(w2)
        for r in t.chunk(h2):
            a = t.load(src, (2 * r) * w + 2 * xs)
            b = t.load(src, (2 * r + 1) * w + 2 * xs)
            c = t.load(src, (2 * r) * w + 2 * xs + 1)
            d = t.load(src, (2 * r + 1) * w + 2 * xs + 1)
            t.alu(4 * w2)
            t.store(small, r * w2 + xs, 0.25 * (a + b + c + d))

    def sharpen(t):
        xs = np.arange(w2)
        for r in t.chunk(h2):
            acc = np.zeros(w2)
            for ky in (-1, 0, 1):
                rr = min(max(r + ky, 0), h2 - 1)
                row = t.load(small, rr * w2 + xs)
                t.alu(6 * w2)
                for kx in (-1, 0, 1):
                    kv = _SHARPEN[ky + 1, kx + 1]
                    if kv == 0.0:
                        continue
                    shifted = row[np.clip(xs + kx, 0, w2 - 1)]
                    acc += kv * shifted
            t.store(sharp, r * w2 + xs, acc)

    def adjust(t):
        xs = np.arange(w2)
        for r in t.chunk(h2):
            v = t.load(sharp, r * w2 + xs)
            t.alu(3 * w2)
            t.store(out, r * w2 + xs, np.clip(1.1 * v + 0.02, 0.0, 1.0))

    machine.parallel(shrink)
    machine.parallel(sharpen)
    machine.parallel(adjust)
    return out.to_host().reshape(h2, w2)


def check_cpu(result: np.ndarray, scale: SimScale) -> None:
    np.testing.assert_allclose(result, reference(cpu_sizes(scale)), rtol=1e-10)


register(WorkloadDef(META, cpu_fn=cpu_run, check_cpu=check_cpu))
