"""Facesim (Parsec) — physical animation.

Paper (Table V) problem size: 1 frame, 372,126 tetrahedra.

Simulates deformable flesh as a spring lattice (the PhysBAM face model's
force loop): per iteration, every spring's elastic force is evaluated
from its endpoints' positions and accumulated per vertex, then vertices
are integrated.  Vertices are partitioned across threads; springs are
owned by their lower endpoint's partition, so forces on boundary
vertices read the neighbor partition's positions — Facesim's moderate,
boundary-limited sharing (Fig. 9).
"""

from __future__ import annotations

import numpy as np

from repro.common.config import SimScale
from repro.cpusim import Machine
from repro.inputs.meshes import tet_spring_mesh
from repro.workloads.base import WorkloadDef, WorkloadMeta, register

META = WorkloadMeta(
    name="facesim",
    suite="parsec",
    dwarf="Unstructured Grid",
    domain="Animation",
    paper_size="1 frame, 372,126 tetrahedra",
    description="Spring-lattice flesh simulation with partitioned vertices",
)

_STIFF = 8.0
_DAMP = 0.2
_DT = 0.01


def cpu_sizes(scale: SimScale) -> dict:
    e = {SimScale.TINY: 8, SimScale.SMALL: 14, SimScale.MEDIUM: 22,
         SimScale.LARGE: 32}[scale]
    return {"nx": e, "ny": e, "nz": e, "iters": 3}


def _inputs(p: dict):
    positions, edges = tet_spring_mesh(p["nx"], p["ny"], p["nz"],
                                       seed_tag="facesim")
    rest = np.linalg.norm(
        positions[edges[:, 0]] - positions[edges[:, 1]], axis=1
    )
    velocities = np.zeros_like(positions)
    return positions, velocities, edges, rest


def _forces_numpy(pos, edges, rest):
    delta = pos[edges[:, 1]] - pos[edges[:, 0]]
    length = np.linalg.norm(delta, axis=1)
    f = _STIFF * (length - rest)[:, None] * delta / (length[:, None] + 1e-12)
    out = np.zeros_like(pos)
    np.add.at(out, edges[:, 0], f)
    np.add.at(out, edges[:, 1], -f)
    return out


def reference(p: dict) -> np.ndarray:
    pos, vel, edges, rest = _inputs(p)
    pos = pos.copy()
    vel = vel.copy()
    for _ in range(p["iters"]):
        f = _forces_numpy(pos, edges, rest)
        vel = (1.0 - _DAMP) * vel + _DT * f
        pos = pos + _DT * vel
    return pos


def cpu_run(machine: Machine, scale: SimScale = SimScale.SMALL) -> np.ndarray:
    p = cpu_sizes(scale)
    pos_h, vel_h, edges_h, rest_h = _inputs(p)
    nv = pos_h.shape[0]
    ne = edges_h.shape[0]
    pos = machine.array(pos_h.reshape(-1), name="positions")
    vel = machine.array(vel_h.reshape(-1), name="velocities")
    forces = machine.alloc(nv * 3, name="forces")
    edges = machine.array(edges_h.reshape(-1), name="edges")
    rest = machine.array(rest_h, name="rest_lengths")
    three = np.arange(3)

    # Springs owned by the partition of their lower endpoint.
    owner_chunks = [
        np.where((edges_h[:, 0] * machine.n_threads) // nv == tid)[0]
        for tid in range(machine.n_threads)
    ]

    def zero_forces(t):
        for i in t.chunk(nv * 3):
            t.store(forces, i, 0.0)

    def springs(t):
        batch = 64
        mine = owner_chunks[t.tid]
        for lo in range(0, mine.size, batch):
            eids = mine[lo:lo + batch]
            pair = t.load(edges, (eids[:, None] * 2 + np.arange(2)).reshape(-1))
            pair = pair.reshape(-1, 2).astype(np.int64)
            pa = t.load(pos, (pair[:, 0][:, None] * 3 + three).reshape(-1)).reshape(-1, 3)
            pb = t.load(pos, (pair[:, 1][:, None] * 3 + three).reshape(-1)).reshape(-1, 3)
            r = t.load(rest, eids)
            t.alu(14 * eids.size)
            delta = pb - pa
            length = np.linalg.norm(delta, axis=1)
            f = _STIFF * (length - r)[:, None] * delta / (length[:, None] + 1e-12)
            # Scatter-accumulate (read-modify-write) on both endpoints.
            for k, e in enumerate(eids):
                ia = pair[k, 0] * 3 + three
                ib = pair[k, 1] * 3 + three
                t.store(forces, ia, t.load(forces, ia) + f[k])
                t.store(forces, ib, t.load(forces, ib) - f[k])

    def integrate(t):
        for v in t.chunk(nv):
            idx = v * 3 + three
            fv = t.load(forces, idx)
            vv = t.load(vel, idx)
            pv = t.load(pos, idx)
            t.alu(9)
            vv = (1.0 - _DAMP) * vv + _DT * fv
            t.store(vel, idx, vv)
            t.store(pos, idx, pv + _DT * vv)

    for _ in range(p["iters"]):
        machine.parallel(zero_forces)
        machine.parallel(springs)
        machine.parallel(integrate)
    return pos.to_host().reshape(nv, 3)


def check_cpu(result: np.ndarray, scale: SimScale) -> None:
    np.testing.assert_allclose(result, reference(cpu_sizes(scale)), rtol=1e-9, atol=1e-12)


register(WorkloadDef(META, cpu_fn=cpu_run, check_cpu=check_cpu))
