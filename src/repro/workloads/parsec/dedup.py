"""Dedup (Parsec) — enterprise storage.

Paper (Table V) problem size: 184 MB stream.

The pipelined compression kernel: the stream is (1) chunked at
rolling-hash boundaries, (2) fingerprinted, (3) deduplicated against a
hash table, and (4) unique chunks are compressed (RLE here).  Stages are
assigned to *different threads* communicating through shared queues —
the software-pipelining structure the paper singles out as hard to port
to GPUs (Section V-B) — so consumer threads read producer threads'
writes, giving Dedup strong producer-consumer sharing (Fig. 9).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.common.config import SimScale
from repro.cpusim import Machine
from repro.inputs.misc import dedup_stream
from repro.workloads.base import WorkloadDef, WorkloadMeta, register

META = WorkloadMeta(
    name="dedup",
    suite="parsec",
    dwarf="Pipeline",
    domain="Enterprise Storage",
    paper_size="184 MB",
    description="Chunk/fingerprint/dedup/compress pipeline over a stream",
)

_AVG_CHUNK = 256       # rolling-hash boundary target
_WINDOW = 8


def cpu_sizes(scale: SimScale) -> dict:
    n = {SimScale.TINY: 32768, SimScale.SMALL: 131072,
         SimScale.MEDIUM: 524288,
         SimScale.LARGE: 1048576}[scale]
    return {"n_bytes": n}


def _boundaries(data: np.ndarray) -> np.ndarray:
    """Content-defined chunk boundaries via a rolling sum hash."""
    kernel = np.ones(_WINDOW, dtype=np.int64)
    rolled = np.convolve(data.astype(np.int64), kernel, mode="valid")
    hits = np.where(rolled % _AVG_CHUNK == 0)[0] + _WINDOW
    edges = [0]
    for h in hits:
        if h - edges[-1] >= 64:
            edges.append(int(h))
    if edges[-1] != data.size:
        edges.append(data.size)
    return np.array(edges, dtype=np.int64)


def _fingerprint(chunk: np.ndarray) -> int:
    """FNV-1a over the chunk bytes."""
    h = 0xCBF29CE484222325
    for b in chunk.tolist():
        h = ((h ^ b) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


def _rle(chunk: np.ndarray) -> List[Tuple[int, int]]:
    out = []
    run_val = int(chunk[0])
    run_len = 1
    for b in chunk[1:].tolist():
        if b == run_val and run_len < 255:
            run_len += 1
        else:
            out.append((run_val, run_len))
            run_val, run_len = b, 1
    out.append((run_val, run_len))
    return out


def reference(p: dict):
    """(n_chunks, n_unique, reconstructed==original) without instrumentation."""
    data = dedup_stream(p["n_bytes"], seed_tag="dedup")
    edges = _boundaries(data)
    seen = {}
    refs = []
    for i in range(edges.size - 1):
        chunk = data[edges[i]:edges[i + 1]]
        fp = _fingerprint(chunk)
        if fp not in seen:
            seen[fp] = chunk
        refs.append(fp)
    return len(refs), len(seen)


def cpu_run(machine: Machine, scale: SimScale = SimScale.SMALL):
    p = cpu_sizes(scale)
    data_h = dedup_stream(p["n_bytes"], seed_tag="dedup")
    edges = _boundaries(data_h)
    n_chunks = edges.size - 1
    data = machine.array(data_h, name="stream")
    fingerprints = machine.alloc(n_chunks, dtype=np.int64, name="fingerprints")
    is_unique = machine.alloc(n_chunks, dtype=np.int8, name="is_unique")
    compressed_len = machine.alloc(n_chunks, dtype=np.int64, name="compressed")
    # Hash table as an open bucket array (power-of-two size).
    table_size = 1
    while table_size < 4 * n_chunks:
        table_size *= 2
    table = machine.alloc(table_size, dtype=np.int64, name="hash_table")
    table.data[:] = -1

    nt = machine.n_threads
    # Pipeline-stage assignment: earlier tids produce, later tids consume.
    # (Threads run in tid order within a region; queues are the shared
    # fingerprint/uniqueness arrays.)
    def pipeline(t):
        if t.tid < nt // 2:
            # Stage 1+2: chunk fingerprinting (split among first half).
            for c in range(t.tid, n_chunks, nt // 2):
                lo, hi = int(edges[c]), int(edges[c + 1])
                chunk = t.load(data, np.arange(lo, hi))
                t.alu(3 * (hi - lo))
                fp = _fingerprint(chunk)
                t.store(fingerprints, c, np.int64(fp & 0x7FFFFFFFFFFFFFFF))
        elif t.tid < nt // 2 + nt // 4:
            # Stage 3: dedup lookup/insert over the shared table.
            stride = max(1, nt // 4)
            for c in range((t.tid - nt // 2), n_chunks, stride):
                fp = int(t.load(fingerprints, c))
                slot = fp % table_size
                t.branch(1)
                while True:
                    cur = int(t.load(table, slot))
                    t.branch(1)
                    if cur == -1:
                        t.store(table, slot, fp)
                        t.store(is_unique, c, 1)
                        break
                    if cur == fp:
                        t.store(is_unique, c, 0)
                        break
                    slot = (slot + 1) % table_size
        else:
            # Stage 4: compress unique chunks.
            stride = max(1, nt - nt // 2 - nt // 4)
            for c in range((t.tid - nt // 2 - nt // 4), n_chunks, stride):
                t.branch(1)
                if int(t.load(is_unique, c)) == 0:
                    t.store(compressed_len, c, 0)
                    continue
                lo, hi = int(edges[c]), int(edges[c + 1])
                chunk = t.load(data, np.arange(lo, hi))
                t.alu(4 * (hi - lo))
                t.branch(hi - lo)
                t.store(compressed_len, c, len(_rle(chunk)))

    machine.parallel(pipeline)
    return (n_chunks, int(is_unique.data.sum()),
            fingerprints.to_host(), is_unique.to_host())


def check_cpu(result, scale: SimScale) -> None:
    p = cpu_sizes(scale)
    n_chunks, n_unique, fingerprints, is_unique = result
    ref_chunks, ref_unique = reference(p)
    if n_chunks != ref_chunks:
        raise AssertionError(f"chunk count {n_chunks} != {ref_chunks}")
    if n_unique != ref_unique:
        raise AssertionError(f"unique count {n_unique} != {ref_unique}")
    # Exactly one chunk per distinct fingerprint is marked unique (the
    # pipeline's dedup stage processes chunks in thread-interleaved
    # order, so *which* occurrence wins is schedule-dependent, as in the
    # lock-free original).
    from collections import Counter
    unique_count = Counter()
    for c in range(n_chunks):
        if is_unique[c]:
            unique_count[int(fingerprints[c])] += 1
    distinct = len(set(int(f) for f in fingerprints))
    if len(unique_count) != distinct or any(v != 1 for v in unique_count.values()):
        raise AssertionError("dedup stage did not keep exactly one copy per chunk")


register(WorkloadDef(META, cpu_fn=cpu_run, check_cpu=check_cpu))
