"""Bodytrack (Parsec) — computer vision.

Paper (Table V) problem size: 4 frames, 4,000 particles.

Particle-filter tracking: per frame, every particle hypothesizes a
target position, its likelihood is evaluated against the frame (template
SAD over a read-shared image), weights are normalized, and the particle
cloud is resampled around the best hypotheses.  Particles are chunked
across threads; frames and the template are read-shared, which gives
Bodytrack its moderate sharing profile (Fig. 9).
"""

from __future__ import annotations

import numpy as np

from repro.common.config import SimScale
from repro.common.rng import make_rng
from repro.cpusim import Machine
from repro.inputs.images import video_sequence
from repro.workloads.base import WorkloadDef, WorkloadMeta, register

META = WorkloadMeta(
    name="bodytrack",
    suite="parsec",
    dwarf="Computer Vision / MapReduce",
    domain="Computer Vision",
    paper_size="4 frames, 4,000 particles",
    description="Particle-filter template tracking over a frame sequence",
)

_TPL = 8


def cpu_sizes(scale: SimScale) -> dict:
    res, parts = {
        SimScale.TINY: (48, 128),
        SimScale.SMALL: (96, 512),
        SimScale.MEDIUM: (160, 2000),
        SimScale.LARGE: (256, 4000),
    }[scale]
    return {"h": res, "w": res, "frames": 4, "particles": parts}


def _inputs(p: dict):
    frames = video_sequence(p["frames"], p["h"], p["w"], seed_tag="bodytrack")
    rng = make_rng("bodytrack-noise", p["particles"], p["frames"])
    noise = rng.normal(0.0, 2.0, (p["frames"], p["particles"], 2))
    # Track the darkest moving block: template from frame 0's darkest area.
    f0 = frames[0]
    start = np.unravel_index(np.argmin(
        f0[: p["h"] - _TPL, : p["w"] - _TPL]), (p["h"] - _TPL, p["w"] - _TPL))
    template = f0[start[0]:start[0] + _TPL, start[1]:start[1] + _TPL].copy()
    return frames, noise, template, np.array(start, dtype=np.float64)


def _likelihood(frame: np.ndarray, template: np.ndarray, y: int, x: int) -> float:
    h, w = frame.shape
    y = min(max(y, 0), h - _TPL)
    x = min(max(x, 0), w - _TPL)
    patch = frame[y:y + _TPL, x:x + _TPL]
    return float(np.abs(patch - template).sum())


def _run_filter(p: dict, record_fn=None):
    """Shared particle-filter logic; record_fn instruments accesses."""
    frames, noise, template, start = _inputs(p)
    n = p["particles"]
    particles = np.tile(start, (n, 1))
    track = [start.copy()]
    for f in range(1, p["frames"]):
        cand = particles + noise[f]
        sads = np.empty(n)
        for i in range(n):
            y, x = int(cand[i, 0]), int(cand[i, 1])
            if record_fn is not None:
                record_fn(f, y, x, i)
            sads[i] = _likelihood(frames[f], template, y, x)
        weights = np.exp(-sads / (sads.min() + 1e-9))
        weights /= weights.sum()
        # Systematic resampling (deterministic).
        positions = (np.arange(n) + 0.5) / n
        cumulative = np.cumsum(weights)
        chosen = np.searchsorted(cumulative, positions)
        particles = cand[np.minimum(chosen, n - 1)]
        track.append(particles.mean(axis=0))
    return np.array(track)


def reference(p: dict) -> np.ndarray:
    return _run_filter(p)


def cpu_run(machine: Machine, scale: SimScale = SimScale.SMALL) -> np.ndarray:
    p = cpu_sizes(scale)
    frames_h, noise, template_h, start = _inputs(p)
    h, w = p["h"], p["w"]
    n = p["particles"]
    frame_arrs = [machine.array(frames_h[f].reshape(-1), name=f"frame{f}")
                  for f in range(p["frames"])]
    template = machine.array(template_h.reshape(-1), name="template")
    sads_arr = machine.alloc(n, name="sads")
    txs = np.arange(_TPL)

    particles = np.tile(start, (n, 1))
    track = [start.copy()]
    for f in range(1, p["frames"]):
        cand = particles + noise[f]

        def weigh(t):
            for i in t.chunk(n):
                y = min(max(int(cand[i, 0]), 0), h - _TPL)
                x = min(max(int(cand[i, 1]), 0), w - _TPL)
                sad = 0.0
                for ty in range(_TPL):
                    row = t.load(frame_arrs[f], (y + ty) * w + x + txs)
                    trow = t.load(template, ty * _TPL + txs)
                    t.alu(3 * _TPL)
                    sad += np.abs(row - trow).sum()
                t.store(sads_arr, i, sad)

        machine.parallel(weigh)

        def resample(t):
            sads = t.load(sads_arr, np.arange(n))
            t.alu(6 * n)
            weights = np.exp(-sads / (sads.min() + 1e-9))
            weights /= weights.sum()
            positions = (np.arange(n) + 0.5) / n
            cumulative = np.cumsum(weights)
            t.branch(n)
            return np.searchsorted(cumulative, positions)

        chosen = machine.serial(resample)
        particles = cand[np.minimum(chosen, n - 1)]
        track.append(particles.mean(axis=0))
    return np.array(track)


def check_cpu(result: np.ndarray, scale: SimScale) -> None:
    p = cpu_sizes(scale)
    np.testing.assert_allclose(result, reference(p), rtol=1e-9)
    # The tracked path must follow a moving object, i.e. actually move.
    if np.abs(np.diff(result, axis=0)).sum() < 1.0:
        raise AssertionError("tracker never moved; likelihood is degenerate")


register(WorkloadDef(META, cpu_fn=cpu_run, check_cpu=check_cpu))
