"""Parsec workload implementations."""
