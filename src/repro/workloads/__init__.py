"""Workload implementations: the 12 Rodinia and 13 Parsec applications.

Each workload module registers itself in :mod:`repro.workloads.base`;
:func:`repro.workloads.load_all` imports every module so the registry is
fully populated.  Rodinia workloads provide both a GPU (SIMT DSL) and a
CPU (instrumented OpenMP-style) implementation; Parsec workloads provide
the CPU implementation used by the suite-comparison study.
"""

from repro.workloads.base import (
    REGISTRY,
    WorkloadDef,
    WorkloadMeta,
    all_parsec,
    all_rodinia,
    get,
    load_all,
)

__all__ = [
    "REGISTRY",
    "WorkloadDef",
    "WorkloadMeta",
    "all_parsec",
    "all_rodinia",
    "get",
    "load_all",
]
