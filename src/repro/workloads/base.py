"""Workload registry and metadata.

Table I (Rodinia) and Table V (Parsec) of the paper enumerate the
applications with their Berkeley Dwarf, application domain, and problem
size; :class:`WorkloadMeta` records those alongside our scaled simulation
sizes.  Workload modules register entry points:

- ``gpu_fn(gpu, scale) -> result`` runs the CUDA-style implementation on
  a :class:`repro.gpusim.GPU` (Rodinia only).
- ``cpu_fn(machine, scale) -> result`` runs the OpenMP-style
  implementation on a :class:`repro.cpusim.Machine`.
- ``check_fn(result, scale)`` raises if the result fails its self-check
  against the module's independent reference.

GPU workloads with incrementally optimized versions (Table III) register
them in ``gpu_versions``; ``gpu_fn`` points at the released (most
optimized) version used in Figures 1-5.
"""

from __future__ import annotations

import dataclasses
import importlib
from typing import Callable, Dict, List, Optional

RODINIA_MODULES = [
    "kmeans",
    "nw",
    "hotspot",
    "backprop",
    "srad",
    "leukocyte",
    "bfs",
    "streamcluster",
    "mummer",
    "cfd",
    "lud",
    "heartwall",
]

PARSEC_MODULES = [
    "blackscholes",
    "bodytrack",
    "canneal",
    "dedup",
    "facesim",
    "ferret",
    "fluidanimate",
    "freqmine",
    "raytrace",
    "streamcluster_p",
    "swaptions",
    "vips",
    "x264",
]


@dataclasses.dataclass(frozen=True)
class WorkloadMeta:
    """Static description of one benchmark (paper Tables I / V)."""

    name: str
    suite: str                 # "rodinia" | "parsec"
    dwarf: str                 # Berkeley Dwarf (Rodinia) or domain class
    domain: str
    paper_size: str            # problem size quoted in the paper
    description: str = ""
    short: str = ""            # the paper's abbreviation (e.g. "NW")


@dataclasses.dataclass
class WorkloadDef:
    """A registered workload with its entry points.

    GPU and CPU runs may use different scaled problem sizes (the GPU
    side needs enough thread blocks to exercise 28 SMs; the CPU side
    needs bounded trace lengths for the reuse-distance pass), so each
    has its own self-check against the module's reference.
    """

    meta: WorkloadMeta
    cpu_fn: Optional[Callable] = None
    gpu_fn: Optional[Callable] = None
    gpu_versions: Optional[Dict[int, Callable]] = None
    check_cpu: Optional[Callable] = None
    check_gpu: Optional[Callable] = None

    @property
    def name(self) -> str:
        return self.meta.name

    @property
    def has_gpu(self) -> bool:
        return self.gpu_fn is not None


REGISTRY: Dict[str, WorkloadDef] = {}


def register(defn: WorkloadDef) -> WorkloadDef:
    """Add a workload to the registry (idempotent by name)."""
    REGISTRY[defn.meta.name] = defn
    return defn


_loaded = False


def load_all() -> Dict[str, WorkloadDef]:
    """Import every workload module, populating the registry."""
    global _loaded
    if not _loaded:
        for mod in RODINIA_MODULES:
            importlib.import_module(f"repro.workloads.rodinia.{mod}")
        for mod in PARSEC_MODULES:
            importlib.import_module(f"repro.workloads.parsec.{mod}")
        _loaded = True
    return REGISTRY


def get(name: str) -> WorkloadDef:
    load_all()
    if name not in REGISTRY:
        raise KeyError(f"unknown workload {name!r}; known: {sorted(REGISTRY)}")
    return REGISTRY[name]


def all_rodinia() -> List[WorkloadDef]:
    load_all()
    return [w for w in REGISTRY.values() if w.meta.suite == "rodinia"]


def all_parsec() -> List[WorkloadDef]:
    load_all()
    return [w for w in REGISTRY.values() if w.meta.suite == "parsec"]
