"""LU Decomposition (Rodinia) — Dense Linear Algebra dwarf.

Paper problem size: 256x256 data points.

Blocked Doolittle LU factorization, added to Rodinia for its row/column
interdependencies: each step k factors the diagonal 16x16 tile, solves
the perimeter row/column tiles against it, then updates the trailing
submatrix — three kernel launches per step whose grids *shrink* as k
advances.  The paper attributes LUD's limited 8-to-28-shader scaling to
exactly these dependencies (Section III-B), and its low channel
sensitivity to shared-memory locality (Fig. 4); both fall out of this
structure.  All tiles are staged in shared memory.
"""

from __future__ import annotations

import numpy as np

from repro.common.config import SimScale
from repro.common.rng import make_rng
from repro.cpusim import Machine
from repro.gpusim import GPU
from repro.workloads.base import WorkloadDef, WorkloadMeta, register

META = WorkloadMeta(
    name="lud",
    suite="rodinia",
    dwarf="Dense Linear Algebra",
    domain="Linear Algebra",
    paper_size="256x256 data points",
    short="LUD",
    description="Blocked in-place LU factorization with shared-memory tiles",
)

_B = 16


def gpu_sizes(scale: SimScale) -> dict:
    n = {SimScale.TINY: 64, SimScale.SMALL: 128, SimScale.MEDIUM: 256,
         SimScale.LARGE: 512}[scale]
    return {"n": n}


def cpu_sizes(scale: SimScale) -> dict:
    n = {SimScale.TINY: 48, SimScale.SMALL: 96, SimScale.MEDIUM: 192,
         SimScale.LARGE: 384}[scale]
    return {"n": n}


def _inputs(p: dict) -> np.ndarray:
    """Diagonally dominant matrix (stable without pivoting)."""
    n = p["n"]
    rng = make_rng("lud", n)
    a = rng.uniform(-1.0, 1.0, (n, n))
    a[np.arange(n), np.arange(n)] = np.abs(a).sum(axis=1) + 1.0
    return a.astype(np.float32)


def reference(p: dict) -> np.ndarray:
    """In-place Doolittle LU (L unit-diagonal below, U on/above)."""
    a = _inputs(p).astype(np.float64)
    n = p["n"]
    for i in range(n - 1):
        a[i + 1 :, i] /= a[i, i]
        a[i + 1 :, i + 1 :] -= np.outer(a[i + 1 :, i], a[i, i + 1 :])
    return a


# ----------------------------------------------------------------------
# GPU kernels (block = 16x16 lanes; lane (ty, tx) owns tile cell (ty, tx))
# ----------------------------------------------------------------------
def _load_tile(ctx, mat, n, tile_y, tile_x, smem):
    ctx.alu(4)
    gy = tile_y * _B + ctx.ty
    gx = tile_x * _B + ctx.tx
    ctx.store(smem, ctx.ty * _B + ctx.tx, ctx.load(mat, gy * n + gx))
    ctx.sync()


def _store_tile(ctx, mat, n, tile_y, tile_x, smem):
    ctx.alu(4)
    gy = tile_y * _B + ctx.ty
    gx = tile_x * _B + ctx.tx
    ctx.store(mat, gy * n + gx, ctx.load(smem, ctx.ty * _B + ctx.tx))


def _factor_tile(ctx, smem):
    """Doolittle elimination of the 16x16 shared tile."""
    lin = ctx.ty * _B + ctx.tx
    for i in range(_B - 1):
        ctx.alu(3)
        with ctx.masked((ctx.ty > i) & (ctx.tx == i)):
            dii = ctx.load(smem, i * _B + i)
            v = ctx.load(smem, lin)
            ctx.alu(1)
            ctx.store(smem, lin, v / dii)
        ctx.sync()
        with ctx.masked((ctx.ty > i) & (ctx.tx > i)):
            lji = ctx.load(smem, ctx.ty * _B + i)
            uik = ctx.load(smem, i * _B + ctx.tx)
            v = ctx.load(smem, lin)
            ctx.alu(2)
            ctx.store(smem, lin, v - lji * uik)
        ctx.sync()


def _lud_diagonal(ctx, mat, n, k):
    smem = ctx.shared((_B, _B), dtype=np.float32, name="diag")
    _load_tile(ctx, mat, n, k, k, smem)
    _factor_tile(ctx, smem)
    _store_tile(ctx, mat, n, k, k, smem)


def _lud_perimeter(ctx, mat, n, k):
    """Each block solves one perimeter tile (rows first, then columns)."""
    nb = n // _B
    rem = nb - k - 1
    diag = ctx.shared((_B, _B), dtype=np.float32, name="diag")
    work = ctx.shared((_B, _B), dtype=np.float32, name="work")
    _load_tile(ctx, mat, n, k, k, diag)
    lin = ctx.ty * _B + ctx.tx
    if ctx.bidx < rem:
        # Row tile (k, k+1+bidx): solve L * U_tile = A_tile.
        tx_tile = k + 1 + ctx.bidx
        _load_tile(ctx, mat, n, k, tx_tile, work)
        for i in range(_B - 1):
            ctx.alu(1)
            with ctx.masked(ctx.ty > i):
                lji = ctx.load(diag, ctx.ty * _B + i)
                a = ctx.load(work, i * _B + ctx.tx)
                v = ctx.load(work, lin)
                ctx.alu(2)
                ctx.store(work, lin, v - lji * a)
            ctx.sync()
        _store_tile(ctx, mat, n, k, tx_tile, work)
    else:
        # Column tile (k+1+bidx-rem, k): solve L_tile * U = A_tile.
        ty_tile = k + 1 + ctx.bidx - rem
        _load_tile(ctx, mat, n, ty_tile, k, work)
        for i in range(_B):
            ctx.alu(1)
            with ctx.masked(ctx.tx == i):
                uii = ctx.load(diag, i * _B + i)
                v = ctx.load(work, lin)
                ctx.alu(1)
                ctx.store(work, lin, v / uii)
            ctx.sync()
            with ctx.masked(ctx.tx > i):
                lti = ctx.load(work, ctx.ty * _B + i)
                u = ctx.load(diag, i * _B + ctx.tx)
                v = ctx.load(work, lin)
                ctx.alu(2)
                ctx.store(work, lin, v - lti * u)
            ctx.sync()
        _store_tile(ctx, mat, n, ty_tile, k, work)


def _lud_internal(ctx, mat, n, k):
    """Trailing update: C_tile -= L_tile @ U_tile."""
    nb = n // _B
    rem = nb - k - 1
    by = k + 1 + ctx.bidx // rem
    bx = k + 1 + ctx.bidx % rem
    ltile = ctx.shared((_B, _B), dtype=np.float32, name="ltile")
    utile = ctx.shared((_B, _B), dtype=np.float32, name="utile")
    _load_tile(ctx, mat, n, by, k, ltile)
    _load_tile(ctx, mat, n, k, bx, utile)
    ctx.alu(4)
    gy = by * _B + ctx.ty
    gx = bx * _B + ctx.tx
    acc = ctx.load(mat, gy * n + gx)
    for t in range(_B):
        l = ctx.load(ltile, ctx.ty * _B + t)
        u = ctx.load(utile, t * _B + ctx.tx)
        ctx.alu(2)
        acc = acc - l * u
    ctx.store(mat, gy * n + gx, acc)


def gpu_run(gpu: GPU, scale: SimScale = SimScale.SMALL) -> np.ndarray:
    """Version 2 (released): blocked, shared-memory tiled factorization."""
    p = gpu_sizes(scale)
    n = p["n"]
    mat = gpu.to_device(_inputs(p), name="matrix")
    nb = n // _B
    for k in range(nb):
        gpu.launch(_lud_diagonal, 1, (_B, _B), mat, n, k,
                   regs_per_thread=18, name="lud_diagonal")
        rem = nb - k - 1
        if rem == 0:
            break
        gpu.launch(_lud_perimeter, 2 * rem, (_B, _B), mat, n, k,
                   regs_per_thread=24, name="lud_perimeter")
        gpu.launch(_lud_internal, rem * rem, (_B, _B), mat, n, k,
                   regs_per_thread=20, name="lud_internal")
    return mat.to_host().reshape(n, n)


# ----------------------------------------------------------------------
# Version 1: naive unblocked elimination, all accesses to global memory
# (the paper's "incremental code versions of ... LUD" starting point).
# ----------------------------------------------------------------------
def _scale_column_kernel(ctx, mat, n, i):
    """L(:, i) = A(:, i) / A(i, i) for rows below the pivot."""
    row = i + 1 + ctx.gtid
    with ctx.masked(row < n):
        ctx.alu(3)
        pivot = ctx.load(mat, ctx.const(i * n + i, np.int64))
        v = ctx.load(mat, row * n + i)
        ctx.alu(1)
        ctx.store(mat, row * n + i, v / pivot)


def _rank1_update_kernel(ctx, mat, n, i):
    """A(i+1:, i+1:) -= L(i+1:, i) * U(i, i+1:), one thread per element."""
    rem = n - i - 1
    idx = ctx.gtid
    with ctx.masked(idx < rem * rem):
        ctx.alu(6)
        r = i + 1 + idx // rem
        c = i + 1 + idx % rem
        l = ctx.load(mat, r * n + i)
        u = ctx.load(mat, i * n + c)
        v = ctx.load(mat, r * n + c)
        ctx.alu(2)
        ctx.store(mat, r * n + c, v - l * u)


def gpu_run_v1(gpu: GPU, scale: SimScale = SimScale.SMALL) -> np.ndarray:
    p = gpu_sizes(scale)
    n = p["n"]
    mat = gpu.to_device(_inputs(p), name="matrix")
    block = 256
    for i in range(n - 1):
        rows = n - i - 1
        gpu.launch(_scale_column_kernel, (rows + block - 1) // block, block,
                   mat, n, i, regs_per_thread=10, name="lud_scale_v1")
        elems = rows * rows
        gpu.launch(_rank1_update_kernel, (elems + block - 1) // block, block,
                   mat, n, i, regs_per_thread=12, name="lud_update_v1")
    return mat.to_host().reshape(n, n)


# ----------------------------------------------------------------------
# CPU implementation: right-looking blocked LU with row-parallel updates
# ----------------------------------------------------------------------
def cpu_run(machine: Machine, scale: SimScale = SimScale.SMALL) -> np.ndarray:
    p = cpu_sizes(scale)
    n = p["n"]
    mat = machine.array(_inputs(p), name="matrix")

    def eliminate(t, i):
        cols = np.arange(i + 1, n)
        pivot_row = t.load(mat, i * n + cols)
        pivot = t.load(mat, np.array([i * n + i]))[0]
        rows = np.arange(i + 1, n)
        for r in rows[t.tid :: t.nthreads]:
            lri = t.load(mat, np.array([r * n + i]))[0]
            t.alu(1)
            m = lri / pivot
            t.store(mat, r * n + i, m)
            v = t.load(mat, r * n + cols)
            t.alu(2 * cols.size)
            t.store(mat, r * n + cols, v - m * pivot_row)

    for i in range(n - 1):
        machine.parallel(eliminate, i)
    return mat.to_host().reshape(n, n)


def check_gpu(result: np.ndarray, scale: SimScale) -> None:
    np.testing.assert_allclose(result, reference(gpu_sizes(scale)), atol=2e-2, rtol=2e-3)


def check_cpu(result: np.ndarray, scale: SimScale) -> None:
    np.testing.assert_allclose(result, reference(cpu_sizes(scale)), atol=2e-2, rtol=2e-3)


register(
    WorkloadDef(
        META, cpu_fn=cpu_run, gpu_fn=gpu_run,
        gpu_versions={1: gpu_run_v1, 2: gpu_run},
        check_cpu=check_cpu, check_gpu=check_gpu,
    )
)
