"""SRAD (Rodinia) — Structured Grid dwarf, image processing.

Paper problem size: 512x512 data points.

Speckle Reducing Anisotropic Diffusion despeckles ultrasound imagery.
Each iteration: (1) a reduction computes the ROI mean/variance for the
diffusion threshold q0; (2) kernel 1 computes per-pixel gradients and
the clamped diffusion coefficient; (3) kernel 2 applies the divergence
update.  Two incremental versions are provided, reproducing Table III:

- **Version 1** reads all neighbors from global memory.
- **Version 2** stages 16x16 tiles (with halo) in shared memory, raising
  the shared-memory instruction fraction and the IPC, exactly the
  optimization step Table III documents.
"""

from __future__ import annotations

import numpy as np

from repro.common.config import SimScale
from repro.cpusim import Machine
from repro.gpusim import GPU
from repro.inputs.images import speckled_ultrasound
from repro.workloads.base import WorkloadDef, WorkloadMeta, register

META = WorkloadMeta(
    name="srad",
    suite="rodinia",
    dwarf="Structured Grid",
    domain="Image Processing",
    paper_size="512x512 data points",
    short="SRAD",
    description="Speckle-reducing anisotropic diffusion with tiled shared memory",
)

_TILE = 16
_LAMBDA = 0.5


def gpu_sizes(scale: SimScale) -> dict:
    r = {SimScale.TINY: 64, SimScale.SMALL: 160, SimScale.MEDIUM: 320,
         SimScale.LARGE: 1280}[scale]
    return {"rows": r, "cols": r,
            "iters": 6 if scale is SimScale.LARGE else 2}


def cpu_sizes(scale: SimScale) -> dict:
    r = {SimScale.TINY: 32, SimScale.SMALL: 64, SimScale.MEDIUM: 128,
         SimScale.LARGE: 256}[scale]
    return {"rows": r, "cols": r, "iters": 2}


def _inputs(p: dict) -> np.ndarray:
    img = speckled_ultrasound(p["rows"], p["cols"], seed_tag="srad")
    return np.exp(img).astype(np.float32)


def _srad_step_numpy(img: np.ndarray) -> np.ndarray:
    """One SRAD iteration (clamped borders), the module's reference."""
    mean = img.mean()
    var = img.var()
    q0_sq = var / (mean * mean)

    def shift(a, dy, dx):
        out = np.roll(a, (dy, dx), axis=(0, 1))
        if dy == 1:
            out[0] = a[0]
        if dy == -1:
            out[-1] = a[-1]
        if dx == 1:
            out[:, 0] = a[:, 0]
        if dx == -1:
            out[:, -1] = a[:, -1]
        return out

    n = shift(img, 1, 0) - img
    s = shift(img, -1, 0) - img
    w = shift(img, 0, 1) - img
    e = shift(img, 0, -1) - img
    g2 = (n * n + s * s + w * w + e * e) / (img * img)
    lap = (n + s + w + e) / img
    num = 0.5 * g2 - (1.0 / 16.0) * lap * lap
    den = (1.0 + 0.25 * lap) ** 2
    q_sq = num / den
    c = 1.0 / (1.0 + (q_sq - q0_sq) / (q0_sq * (1.0 + q0_sq)))
    c = np.clip(c, 0.0, 1.0)
    c_s = shift(c, -1, 0)
    c_e = shift(c, 0, -1)
    d = c_s * s + c * n + c_e * e + c * w
    return (img + (_LAMBDA / 4.0) * d).astype(np.float32)


def reference(p: dict) -> np.ndarray:
    img = _inputs(p)
    for _ in range(p["iters"]):
        img = _srad_step_numpy(img)
    return img


# ----------------------------------------------------------------------
# GPU kernels
# ----------------------------------------------------------------------
def _reduce_kernel(ctx, img, partial_sum, partial_sq, n):
    """Block tree-reduction of sum and sum-of-squares (shared memory)."""
    i = ctx.gtid
    smem = ctx.shared(ctx.nthreads, dtype=np.float64, name="red")
    with ctx.masked(i < n):
        v = ctx.load(img, i).astype(np.float64)
    total = ctx.block_reduce_sum(np.where(ctx.mask & (i < n), v, 0.0), smem)
    with ctx.masked(i < n):
        ctx.alu(1)
        v2 = v * v
    total_sq = ctx.block_reduce_sum(np.where(ctx.mask & (i < n), v2, 0.0), smem)
    with ctx.masked(ctx.tidx == 0):
        ctx.store(partial_sum, ctx.const(ctx.bidx, np.int64), total)
        ctx.store(partial_sq, ctx.const(ctx.bidx, np.int64), total_sq)


def _clamped(v, lo, hi):
    return np.clip(v, lo, hi)


def _srad_kernel1_v1(ctx, img, coeff, dn, ds, dw, de, rows, cols, q0_sq):
    """Gradient + diffusion coefficient, all-global version."""
    y, x = ctx.gy, ctx.gx
    inside = (y < rows) & (x < cols)
    with ctx.masked(inside):
        ctx.alu(8)  # clamped neighbor index arithmetic
        here = y * cols + x
        c0 = ctx.load(img, here)
        vn = ctx.load(img, _clamped(y - 1, 0, rows - 1) * cols + x)
        vs = ctx.load(img, _clamped(y + 1, 0, rows - 1) * cols + x)
        vw = ctx.load(img, y * cols + _clamped(x - 1, 0, cols - 1))
        ve = ctx.load(img, y * cols + _clamped(x + 1, 0, cols - 1))
        ctx.alu(38)  # gradient + q computation (three multi-cycle divides)
        n = vn - c0
        s = vs - c0
        w = vw - c0
        e = ve - c0
        g2 = (n * n + s * s + w * w + e * e) / (c0 * c0)
        lap = (n + s + w + e) / c0
        num = 0.5 * g2 - (1.0 / 16.0) * lap * lap
        den = (1.0 + 0.25 * lap) ** 2
        q_sq = num / den
        ctx.alu(12)  # coefficient: two more divides + clamp
        c = 1.0 / (1.0 + (q_sq - q0_sq) / (q0_sq * (1.0 + q0_sq)))
        c = np.clip(c, 0.0, 1.0)
        ctx.store(coeff, here, c)
        ctx.store(dn, here, n)
        ctx.store(ds, here, s)
        ctx.store(dw, here, w)
        ctx.store(de, here, e)


def _srad_kernel2_v1(ctx, img, coeff, dn, ds, dw, de, rows, cols):
    y, x = ctx.gy, ctx.gx
    inside = (y < rows) & (x < cols)
    with ctx.masked(inside):
        ctx.alu(6)
        here = y * cols + x
        c0 = ctx.load(coeff, here)
        cs = ctx.load(coeff, _clamped(y + 1, 0, rows - 1) * cols + x)
        ce = ctx.load(coeff, y * cols + _clamped(x + 1, 0, cols - 1))
        n = ctx.load(dn, here)
        s = ctx.load(ds, here)
        w = ctx.load(dw, here)
        e = ctx.load(de, here)
        v = ctx.load(img, here)
        ctx.alu(9)
        d = cs * s + c0 * n + ce * e + c0 * w
        ctx.store(img, here, v + (_LAMBDA / 4.0) * d)


def _srad_kernel1_v2(ctx, img, coeff, dn, ds, dw, de, rows, cols, q0_sq):
    """Tiled version: 16x16 image tile + halo staged through shared memory.

    Like Rodinia's srad_cuda_1, the block keeps six shared arrays (the
    haloed image tile plus per-direction gradient tiles and the
    coefficient tile, ~6 kB total) — the footprint that makes SRAD
    prefer Fermi's shared-bias configuration (Fig. 5).
    """
    y, x = ctx.gy, ctx.gx
    inside = (y < rows) & (x < cols)
    t = _TILE + 2
    tile = ctx.shared((t, t), dtype=np.float32, name="tile")
    sh_n = ctx.shared((_TILE, _TILE), dtype=np.float32, name="north")
    sh_s = ctx.shared((_TILE, _TILE), dtype=np.float32, name="south")
    sh_w = ctx.shared((_TILE, _TILE), dtype=np.float32, name="west")
    sh_e = ctx.shared((_TILE, _TILE), dtype=np.float32, name="east")
    sh_c = ctx.shared((_TILE, _TILE), dtype=np.float32, name="coeff")
    ctx.alu(6)
    lin = (ctx.ty + 1) * t + (ctx.tx + 1)
    flat = ctx.ty * _TILE + ctx.tx
    with ctx.masked(inside):
        c0 = ctx.load(img, y * cols + x)
        ctx.store(tile, lin, c0)
        # Edge lanes also stage their halo cells (clamped).
        with ctx.masked(ctx.ty == 0):
            ctx.store(tile, ctx.tx + 1,
                      ctx.load(img, _clamped(y - 1, 0, rows - 1) * cols + x))
        with ctx.masked(ctx.ty == _TILE - 1):
            ctx.store(tile, (t - 1) * t + ctx.tx + 1,
                      ctx.load(img, _clamped(y + 1, 0, rows - 1) * cols + x))
        with ctx.masked(ctx.tx == 0):
            ctx.store(tile, (ctx.ty + 1) * t,
                      ctx.load(img, y * cols + _clamped(x - 1, 0, cols - 1)))
        with ctx.masked(ctx.tx == _TILE - 1):
            ctx.store(tile, (ctx.ty + 1) * t + t - 1,
                      ctx.load(img, y * cols + _clamped(x + 1, 0, cols - 1)))
    ctx.sync()
    with ctx.masked(inside):
        # Clamp at global image borders: reuse center when outside.
        ctx.alu(8)
        up = np.where(y == 0, lin, lin - t)
        dn_i = np.where(y == rows - 1, lin, lin + t)
        lf = np.where(x == 0, lin, lin - 1)
        rt = np.where(x == cols - 1, lin, lin + 1)
        c0 = ctx.load(tile, lin)
        vn = ctx.load(tile, up)
        vs = ctx.load(tile, dn_i)
        vw = ctx.load(tile, lf)
        ve = ctx.load(tile, rt)
        ctx.alu(38)  # gradient + q computation (three multi-cycle divides)
        n = vn - c0
        s = vs - c0
        w = vw - c0
        e = ve - c0
        g2 = (n * n + s * s + w * w + e * e) / (c0 * c0)
        lap = (n + s + w + e) / c0
        num = 0.5 * g2 - (1.0 / 16.0) * lap * lap
        den = (1.0 + 0.25 * lap) ** 2
        q_sq = num / den
        ctx.alu(12)  # coefficient: two more divides + clamp
        c = 1.0 / (1.0 + (q_sq - q0_sq) / (q0_sq * (1.0 + q0_sq)))
        c = np.clip(c, 0.0, 1.0)
        # Stage results in shared (as srad_cuda_1 does) ...
        ctx.store(sh_c, flat, c)
        ctx.store(sh_n, flat, n)
        ctx.store(sh_s, flat, s)
        ctx.store(sh_w, flat, w)
        ctx.store(sh_e, flat, e)
    ctx.sync()
    with ctx.masked(inside):
        # ... then write back to the global arrays.
        here = y * cols + x
        ctx.store(coeff, here, ctx.load(sh_c, flat))
        ctx.store(dn, here, ctx.load(sh_n, flat))
        ctx.store(ds, here, ctx.load(sh_s, flat))
        ctx.store(dw, here, ctx.load(sh_w, flat))
        ctx.store(de, here, ctx.load(sh_e, flat))


def _srad_kernel2_v2(ctx, img, coeff, dn, ds, dw, de, rows, cols):
    """Tiled update: stage the coefficient tile + halo in shared memory."""
    y, x = ctx.gy, ctx.gx
    inside = (y < rows) & (x < cols)
    t = _TILE + 2
    ctile = ctx.shared((t, t), dtype=np.float32, name="ctile")
    ctx.alu(4)
    lin = (ctx.ty + 1) * t + (ctx.tx + 1)
    with ctx.masked(inside):
        here = y * cols + x
        ctx.store(ctile, lin, ctx.load(coeff, here))
        with ctx.masked(ctx.ty == _TILE - 1):
            ctx.store(ctile, (t - 1) * t + ctx.tx + 1,
                      ctx.load(coeff, _clamped(y + 1, 0, rows - 1) * cols + x))
        with ctx.masked(ctx.tx == _TILE - 1):
            ctx.store(ctile, (ctx.ty + 1) * t + t - 1,
                      ctx.load(coeff, y * cols + _clamped(x + 1, 0, cols - 1)))
    ctx.sync()
    with ctx.masked(inside):
        ctx.alu(4)
        dn_i = np.where(y == rows - 1, lin, lin + t)
        rt = np.where(x == cols - 1, lin, lin + 1)
        c0 = ctx.load(ctile, lin)
        cs = ctx.load(ctile, dn_i)
        ce = ctx.load(ctile, rt)
        here = y * cols + x
        n = ctx.load(dn, here)
        s = ctx.load(ds, here)
        w = ctx.load(dw, here)
        e = ctx.load(de, here)
        v = ctx.load(img, here)
        ctx.alu(9)
        d = cs * s + c0 * n + ce * e + c0 * w
        ctx.store(img, here, v + (_LAMBDA / 4.0) * d)


def _gpu_run_version(gpu: GPU, scale: SimScale, version: int) -> np.ndarray:
    p = gpu_sizes(scale)
    rows, cols = p["rows"], p["cols"]
    n = rows * cols
    img = gpu.to_device(_inputs(p), name="image")
    coeff = gpu.alloc(n, name="coeff")
    dn = gpu.alloc(n, name="dn")
    ds = gpu.alloc(n, name="ds")
    dw = gpu.alloc(n, name="dw")
    de = gpu.alloc(n, name="de")
    red_block = 256
    red_grid = (n + red_block - 1) // red_block
    psum = gpu.alloc(red_grid, dtype=np.float64, name="psum")
    psq = gpu.alloc(red_grid, dtype=np.float64, name="psq")
    k1 = _srad_kernel1_v1 if version == 1 else _srad_kernel1_v2
    k2 = _srad_kernel2_v1 if version == 1 else _srad_kernel2_v2
    gx = (cols + _TILE - 1) // _TILE
    gy = (rows + _TILE - 1) // _TILE
    for _ in range(p["iters"]):
        gpu.launch(_reduce_kernel, red_grid, red_block, img, psum, psq, n,
                   regs_per_thread=14, name="srad_reduce")
        mean = psum.data.sum() / n
        var = psq.data.sum() / n - mean * mean
        q0_sq = var / (mean * mean)
        gpu.launch(k1, (gx, gy), (_TILE, _TILE), img, coeff, dn, ds, dw, de,
                   rows, cols, q0_sq, regs_per_thread=24,
                   name=f"srad_k1_v{version}")
        gpu.launch(k2, (gx, gy), (_TILE, _TILE), img, coeff, dn, ds, dw, de,
                   rows, cols, regs_per_thread=20, name=f"srad_k2_v{version}")
    return img.to_host().reshape(rows, cols)


def gpu_run_v1(gpu: GPU, scale: SimScale = SimScale.SMALL) -> np.ndarray:
    return _gpu_run_version(gpu, scale, 1)


def gpu_run(gpu: GPU, scale: SimScale = SimScale.SMALL) -> np.ndarray:
    """The released (v2, shared-memory tiled) implementation."""
    return _gpu_run_version(gpu, scale, 2)


# ----------------------------------------------------------------------
# CPU implementation
# ----------------------------------------------------------------------
def cpu_run(machine: Machine, scale: SimScale = SimScale.SMALL) -> np.ndarray:
    p = cpu_sizes(scale)
    rows, cols = p["rows"], p["cols"]
    n = rows * cols
    img = machine.array(_inputs(p), name="image")
    coeff = machine.alloc(n, dtype=np.float32, name="coeff")
    grads = machine.alloc((4, n), dtype=np.float32, name="grads")
    partial = machine.alloc((machine.n_threads, 2), name="partial")
    q0_box = {"v": 0.0}

    def local_stats(t):
        s = sq = 0.0
        for r in t.chunk(rows):
            v = t.load(img, r * cols + np.arange(cols))
            t.alu(2 * cols)
            s += v.sum()
            sq += (v.astype(np.float64) ** 2).sum()
        t.store(partial, np.array([t.tid * 2, t.tid * 2 + 1]), np.array([s, sq]))

    def gradients(t):
        xs = np.arange(cols)
        for r in t.chunk(rows):
            c0 = t.load(img, r * cols + xs)
            vn = t.load(img, max(r - 1, 0) * cols + xs)
            vs = t.load(img, min(r + 1, rows - 1) * cols + xs)
            vw = t.load(img, r * cols + np.clip(xs - 1, 0, cols - 1))
            ve = t.load(img, r * cols + np.clip(xs + 1, 0, cols - 1))
            t.alu(30 * cols)
            nn = vn - c0
            ss = vs - c0
            ww = vw - c0
            ee = ve - c0
            g2 = (nn * nn + ss * ss + ww * ww + ee * ee) / (c0 * c0)
            lap = (nn + ss + ww + ee) / c0
            num = 0.5 * g2 - (1.0 / 16.0) * lap * lap
            den = (1.0 + 0.25 * lap) ** 2
            q_sq = num / den
            q0_sq = q0_box["v"]
            c = 1.0 / (1.0 + (q_sq - q0_sq) / (q0_sq * (1.0 + q0_sq)))
            t.store(coeff, r * cols + xs, np.clip(c, 0.0, 1.0))
            t.store(grads, 0 * n + r * cols + xs, nn)
            t.store(grads, 1 * n + r * cols + xs, ss)
            t.store(grads, 2 * n + r * cols + xs, ww)
            t.store(grads, 3 * n + r * cols + xs, ee)

    def update(t):
        xs = np.arange(cols)
        for r in t.chunk(rows):
            c0 = t.load(coeff, r * cols + xs)
            cs = t.load(coeff, min(r + 1, rows - 1) * cols + xs)
            ce = t.load(coeff, r * cols + np.clip(xs + 1, 0, cols - 1))
            nn = t.load(grads, 0 * n + r * cols + xs)
            ss = t.load(grads, 1 * n + r * cols + xs)
            ww = t.load(grads, 2 * n + r * cols + xs)
            ee = t.load(grads, 3 * n + r * cols + xs)
            v = t.load(img, r * cols + xs)
            t.alu(9 * cols)
            d = cs * ss + c0 * nn + ce * ee + c0 * ww
            t.store(img, r * cols + xs, v + (_LAMBDA / 4.0) * d)

    for _ in range(p["iters"]):
        machine.parallel(local_stats)
        totals = partial.data.sum(axis=0)
        mean = totals[0] / n
        var = totals[1] / n - mean * mean
        q0_box["v"] = var / (mean * mean)
        machine.parallel(gradients)
        machine.parallel(update)
    return img.to_host().reshape(rows, cols)


def check_gpu(result: np.ndarray, scale: SimScale) -> None:
    np.testing.assert_allclose(result, reference(gpu_sizes(scale)), rtol=2e-3)


def check_cpu(result: np.ndarray, scale: SimScale) -> None:
    np.testing.assert_allclose(result, reference(cpu_sizes(scale)), rtol=2e-3)


register(
    WorkloadDef(
        META,
        cpu_fn=cpu_run,
        gpu_fn=gpu_run,
        gpu_versions={1: gpu_run_v1, 2: gpu_run},
        check_cpu=check_cpu,
        check_gpu=check_gpu,
    )
)
