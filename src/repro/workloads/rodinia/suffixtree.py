"""Ukkonen's online suffix tree construction ([33] in the paper).

MUMmerGPU builds the reference suffix tree on the CPU with Ukkonen's
algorithm and ships a flattened encoding to the GPU.  This module
implements the construction in O(n) (amortized) and the flattening into
the array form both the GPU kernel and the instrumented CPU matcher
walk: per node, five child slots (four bases + terminator), the edge
label's start offset in the reference, and the edge length.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

#: Alphabet: 4 bases plus the unique terminator symbol.
SIGMA = 5
TERMINATOR = 4


class _Node:
    __slots__ = ("children", "start", "end", "slink")

    def __init__(self, start: int, end: Optional[int]):
        self.children: Dict[int, "_Node"] = {}
        self.start = start
        self.end = end          # None = open (grows with the text)
        self.slink: Optional["_Node"] = None


@dataclasses.dataclass
class FlatSuffixTree:
    """Array encoding of the tree (the GPU-friendly form).

    ``children[node * SIGMA + c]`` is the child entered on symbol ``c``
    (0 = none; the root is node 0 and never a child).  ``edge_start`` /
    ``edge_len`` describe the edge label leading *into* each node, as a
    slice of ``text``.
    """

    children: np.ndarray    # (n_nodes * SIGMA,) int32
    edge_start: np.ndarray  # (n_nodes,) int32
    edge_len: np.ndarray    # (n_nodes,) int32
    text: np.ndarray        # reference + terminator, int8

    @property
    def n_nodes(self) -> int:
        return self.edge_start.size


class SuffixTree:
    """Suffix tree of ``sequence`` (int codes in [0, 4)) via Ukkonen."""

    def __init__(self, sequence: np.ndarray):
        self.text = np.concatenate(
            [np.asarray(sequence, dtype=np.int8), [TERMINATOR]]
        )
        self._build()

    # ------------------------------------------------------------------
    def _edge_len(self, node: _Node, pos: int) -> int:
        end = node.end if node.end is not None else pos + 1
        return end - node.start

    def _build(self) -> None:
        text = self.text
        n = text.size
        self.root = _Node(-1, -1)
        active_node = self.root
        active_edge = 0     # index into text of the active edge's symbol
        active_len = 0
        remainder = 0
        for pos in range(n):
            c = int(text[pos])
            remainder += 1
            last_internal: Optional[_Node] = None
            while remainder > 0:
                if active_len == 0:
                    active_edge = pos
                edge_c = int(text[active_edge])
                nxt = active_node.children.get(edge_c)
                if nxt is None:
                    # Rule 2: new leaf from active_node.
                    active_node.children[edge_c] = _Node(pos, None)
                    if last_internal is not None:
                        last_internal.slink = active_node
                        last_internal = None
                    if active_node is not self.root:
                        last_internal = None
                else:
                    elen = self._edge_len(nxt, pos)
                    if active_len >= elen:
                        # Walk down.
                        active_edge += elen
                        active_len -= elen
                        active_node = nxt
                        continue
                    if int(text[nxt.start + active_len]) == c:
                        # Rule 3: already present; just extend active point.
                        active_len += 1
                        if last_internal is not None:
                            last_internal.slink = active_node
                            last_internal = None
                        break
                    # Rule 2 with split.
                    split = _Node(nxt.start, nxt.start + active_len)
                    active_node.children[edge_c] = split
                    split.children[c] = _Node(pos, None)
                    nxt.start += active_len
                    split.children[int(text[nxt.start])] = nxt
                    if last_internal is not None:
                        last_internal.slink = split
                    last_internal = split
                remainder -= 1
                if active_node is self.root and active_len > 0:
                    active_len -= 1
                    active_edge = pos - remainder + 1
                else:
                    active_node = (
                        active_node.slink
                        if active_node.slink is not None
                        else self.root
                    )
        self._close(self.root, n)

    def _close(self, node: _Node, n: int) -> None:
        for child in node.children.values():
            if child.end is None:
                child.end = n
            self._close(child, n)

    # ------------------------------------------------------------------
    def contains(self, pattern: np.ndarray) -> bool:
        """Whether ``pattern`` occurs in the sequence (tree walk)."""
        return self.match_length(pattern) == len(pattern)

    def match_length(self, pattern: np.ndarray) -> int:
        """Length of the longest prefix of ``pattern`` present."""
        text = self.text
        node = self.root
        matched = 0
        i = 0
        m = len(pattern)
        while i < m:
            child = node.children.get(int(pattern[i]))
            if child is None:
                return matched
            k = child.start
            while k < child.end and i < m:
                if int(text[k]) != int(pattern[i]):
                    return matched
                k += 1
                i += 1
                matched += 1
            node = child
        return matched

    # ------------------------------------------------------------------
    def flatten(self) -> FlatSuffixTree:
        """Breadth-first array encoding (node 0 = root)."""
        order: List[_Node] = [self.root]
        index: Dict[int, int] = {id(self.root): 0}
        head = 0
        while head < len(order):
            node = order[head]
            head += 1
            for c in sorted(node.children):
                child = node.children[c]
                index[id(child)] = len(order)
                order.append(child)
        n_nodes = len(order)
        children = np.zeros(n_nodes * SIGMA, dtype=np.int32)
        edge_start = np.zeros(n_nodes, dtype=np.int32)
        edge_len = np.zeros(n_nodes, dtype=np.int32)
        for node in order:
            ni = index[id(node)]
            if node is not self.root:
                edge_start[ni] = node.start
                edge_len[ni] = node.end - node.start
            for c, child in node.children.items():
                children[ni * SIGMA + c] = index[id(child)]
        return FlatSuffixTree(children, edge_start, edge_len, self.text)


def flat_match_length(tree: FlatSuffixTree, pattern: np.ndarray) -> int:
    """Walk the flattened tree (pure-python mirror of the GPU kernel)."""
    node = 0
    matched = 0
    i = 0
    m = len(pattern)
    text = tree.text
    while i < m:
        child = int(tree.children[node * SIGMA + int(pattern[i])])
        if child == 0:
            return matched
        start = int(tree.edge_start[child])
        elen = int(tree.edge_len[child])
        k = 0
        while k < elen and i < m:
            if int(text[start + k]) != int(pattern[i]):
                return matched
            k += 1
            i += 1
            matched += 1
        node = child
    return matched
