"""Needleman-Wunsch (Rodinia) — Dynamic Programming dwarf.

Paper problem size: 2048x2048 data points.

Global sequence alignment fills an (n+1)^2 score matrix with wavefront
dependencies.  The CUDA implementation processes 16x16 tiles along
anti-diagonals (one launch per tile diagonal, so early/late launches
have very few blocks); inside a block, 16 threads sweep the tile's 31
cell anti-diagonals through shared memory with at most 16 lanes active.
The paper calls out both effects: limited parallelism per launch
(Section III-B) and copious shared-memory bank conflicts from the
diagonal strips (Section III-E).  The OpenMP version parallelizes over
tiles within each anti-diagonal.
"""

from __future__ import annotations

import numpy as np

from repro.common.config import SimScale
from repro.cpusim import Machine
from repro.gpusim import GPU
from repro.inputs.sequences import blosum_like_matrix, random_sequence
from repro.workloads.base import WorkloadDef, WorkloadMeta, register

META = WorkloadMeta(
    name="nw",
    suite="rodinia",
    dwarf="Dynamic Programming",
    domain="Bioinformatics",
    paper_size="2048x2048 data points",
    short="NW",
    description="Global sequence alignment, wavefront over 16x16 tiles",
)

_B = 16
_PENALTY = 10


def gpu_sizes(scale: SimScale) -> dict:
    n = {SimScale.TINY: 64, SimScale.SMALL: 256, SimScale.MEDIUM: 512,
         SimScale.LARGE: 1024}[scale]
    return {"n": n}


def cpu_sizes(scale: SimScale) -> dict:
    n = {SimScale.TINY: 64, SimScale.SMALL: 192, SimScale.MEDIUM: 384,
         SimScale.LARGE: 768}[scale]
    return {"n": n}


def _inputs(p: dict):
    n = p["n"]
    seq1 = random_sequence(n, seed_tag="nw1")
    seq2 = random_sequence(n, seed_tag="nw2")
    sub = blosum_like_matrix()
    return seq1, seq2, sub


def reference(p: dict) -> np.ndarray:
    """Classic quadratic DP; returns the (n+1)x(n+1) score matrix."""
    seq1, seq2, sub = _inputs(p)
    n = p["n"]
    score = np.zeros((n + 1, n + 1), dtype=np.int32)
    score[0, :] = -_PENALTY * np.arange(n + 1)
    score[:, 0] = -_PENALTY * np.arange(n + 1)
    for i in range(1, n + 1):
        match = sub[seq1[i - 1], seq2]  # row of substitution scores
        row_prev = score[i - 1]
        row = score[i]
        for j in range(1, n + 1):
            row[j] = max(
                row_prev[j - 1] + match[j - 1],
                row_prev[j] - _PENALTY,
                row[j - 1] - _PENALTY,
            )
    return score


def _nw_tile_kernel(ctx, score, seq1d, seq2d, subd, n, diag, is_lower):
    """One block = one 16x16 tile on tile-anti-diagonal ``diag``.

    16 threads sweep the 31 cell anti-diagonals; thread t owns tile
    column t.  The (17x17) shared tile carries the halo row/column.
    """
    nb = n // _B
    if is_lower:
        ty_tile = (nb - 1) - ctx.bidx
        tx_tile = diag - ty_tile
    else:
        ty_tile = diag - ctx.bidx
        tx_tile = ctx.bidx
    t_dim = _B + 1
    tile = ctx.shared((t_dim, t_dim), dtype=np.int32, name="tile")
    lane = ctx.tidx  # 16 threads

    # Stage halo: top row and left column of the tile from global memory.
    ctx.alu(6)
    row0 = ty_tile * _B
    col0 = tx_tile * _B
    # Lane t loads halo row cell t+1 and halo column cell t+1.
    ctx.store(tile, lane + 1,
              ctx.load(score, row0 * (n + 1) + col0 + lane + 1))
    ctx.store(tile, (lane + 1) * t_dim,
              ctx.load(score, (row0 + lane + 1) * (n + 1) + col0))
    with ctx.masked(lane == 0):
        ctx.store(tile, ctx.const(0, np.int64),
                  ctx.load(score, row0 * (n + 1) + col0))
    ctx.sync()

    # Per-lane sequence characters (lane t -> tile column t).
    c2 = ctx.load(seq2d, col0 + lane)  # query char for this lane's column
    for step in range(2 * _B - 1):
        i = step - lane  # tile row handled by this lane at this step
        on_diag = (i >= 0) & (i < _B)
        ctx.alu(3)
        with ctx.masked(on_diag):
            iy = np.clip(i, 0, _B - 1)
            c1 = ctx.load(seq1d, np.clip(row0 + iy, 0, n - 1))
            ctx.alu(2)
            sc = ctx.load(subd, c1 * 4 + c2)
            nw = ctx.load(tile, iy * t_dim + lane)
            up = ctx.load(tile, iy * t_dim + lane + 1)
            lf = ctx.load(tile, (iy + 1) * t_dim + lane)
            ctx.alu(5)
            best = np.maximum(nw + sc, np.maximum(up - _PENALTY, lf - _PENALTY))
            ctx.store(tile, (iy + 1) * t_dim + lane + 1, best)
        ctx.sync()

    # Write the tile body back to the global score matrix.
    for r in range(_B):
        ctx.alu(2)
        ctx.store(score, (row0 + r + 1) * (n + 1) + col0 + lane + 1,
                  ctx.load(tile, (r + 1) * t_dim + lane + 1))


def gpu_run(gpu: GPU, scale: SimScale = SimScale.SMALL) -> np.ndarray:
    """Version 2 (released): tiled wavefront through shared memory."""
    p = gpu_sizes(scale)
    n = p["n"]
    seq1, seq2, sub = _inputs(p)
    nb = n // _B
    score_init = np.zeros((n + 1, n + 1), dtype=np.int32)
    score_init[0, :] = -_PENALTY * np.arange(n + 1)
    score_init[:, 0] = -_PENALTY * np.arange(n + 1)
    score = gpu.to_device(score_init, name="score")
    seq1d = gpu.to_device(seq1.astype(np.int32), name="seq1")
    seq2d = gpu.to_device(seq2.astype(np.int32), name="seq2")
    subd = gpu.to_device(sub.reshape(-1), name="subst")
    # Upper-left wavefront, then lower-right, as in Rodinia.
    for diag in range(nb):
        gpu.launch(_nw_tile_kernel, diag + 1, _B, score, seq1d, seq2d, subd,
                   n, diag, False, regs_per_thread=20, name="nw_upper")
    for diag in range(nb, 2 * nb - 1):
        n_blocks = 2 * nb - 1 - diag
        gpu.launch(_nw_tile_kernel, n_blocks, _B, score, seq1d, seq2d, subd,
                   n, diag, True, regs_per_thread=20, name="nw_lower")
    return score.to_host().reshape(n + 1, n + 1)


# ----------------------------------------------------------------------
# Version 1: one kernel launch per *cell* anti-diagonal, all accesses to
# the global score matrix (the paper's "incremental code versions of
# ... Needleman-Wunsch" starting point).
# ----------------------------------------------------------------------
def _nw_naive_kernel(ctx, score, seq1d, seq2d, subd, n, diag):
    """Cells (i, j) with i + j == diag + 2, i,j in [1, n]."""
    lo = max(1, diag + 2 - n)
    hi = min(n, diag + 1)
    count = hi - lo + 1
    k = ctx.gtid
    with ctx.masked(k < count):
        ctx.alu(6)
        i = lo + k
        j = diag + 2 - i
        i_c = np.clip(i, 1, n)
        j_c = np.clip(j, 1, n)
        c1 = ctx.load(seq1d, i_c - 1)
        c2 = ctx.load(seq2d, j_c - 1)
        ctx.alu(2)
        sc = ctx.load(subd, c1 * 4 + c2)
        w = n + 1
        nw = ctx.load(score, (i_c - 1) * w + j_c - 1)
        up = ctx.load(score, (i_c - 1) * w + j_c)
        lf = ctx.load(score, i_c * w + j_c - 1)
        ctx.alu(5)
        best = np.maximum(nw + sc, np.maximum(up - _PENALTY, lf - _PENALTY))
        ctx.store(score, i_c * w + j_c, best)


def gpu_run_v1(gpu: GPU, scale: SimScale = SimScale.SMALL) -> np.ndarray:
    p = gpu_sizes(scale)
    n = p["n"]
    seq1, seq2, sub = _inputs(p)
    score_init = np.zeros((n + 1, n + 1), dtype=np.int32)
    score_init[0, :] = -_PENALTY * np.arange(n + 1)
    score_init[:, 0] = -_PENALTY * np.arange(n + 1)
    score = gpu.to_device(score_init, name="score")
    seq1d = gpu.to_device(seq1.astype(np.int32), name="seq1")
    seq2d = gpu.to_device(seq2.astype(np.int32), name="seq2")
    subd = gpu.to_device(sub.reshape(-1), name="subst")
    block = 128
    for diag in range(2 * n - 1):
        lo = max(1, diag + 2 - n)
        hi = min(n, diag + 1)
        count = hi - lo + 1
        gpu.launch(_nw_naive_kernel, (count + block - 1) // block, block,
                   score, seq1d, seq2d, subd, n, diag,
                   regs_per_thread=14, name="nw_naive_v1")
    return score.to_host().reshape(n + 1, n + 1)


def cpu_run(machine: Machine, scale: SimScale = SimScale.SMALL) -> np.ndarray:
    p = cpu_sizes(scale)
    n = p["n"]
    seq1, seq2, sub = _inputs(p)
    nb = n // _B
    score_init = np.zeros((n + 1, n + 1), dtype=np.int32)
    score_init[0, :] = -_PENALTY * np.arange(n + 1)
    score_init[:, 0] = -_PENALTY * np.arange(n + 1)
    score = machine.array(score_init, name="score")
    s1 = machine.array(seq1.astype(np.int32), name="seq1")
    s2 = machine.array(seq2.astype(np.int32), name="seq2")
    subm = machine.array(sub.reshape(-1), name="subst")
    w = n + 1

    def do_tile(t, ty, tx):
        row0, col0 = ty * _B, tx * _B
        chars2 = t.load(s2, col0 + np.arange(_B))
        for i in range(_B):
            c1 = int(t.load(s1, np.array([row0 + i]))[0])
            scores = t.load(subm, c1 * 4 + chars2)
            nw_row = t.load(score, (row0 + i) * w + col0 + np.arange(_B + 1))
            left = int(t.load(score, np.array([(row0 + i + 1) * w + col0]))[0])
            t.alu(5 * _B)
            t.branch(_B)
            out = np.empty(_B, dtype=np.int64)
            for j in range(_B):
                best = max(nw_row[j] + scores[j], nw_row[j + 1] - _PENALTY,
                           left - _PENALTY)
                out[j] = best
                left = best
            t.store(score, (row0 + i + 1) * w + col0 + 1 + np.arange(_B), out)

    def diag_worker(t, tiles):
        for k in range(t.tid, len(tiles), t.nthreads):
            do_tile(t, *tiles[k])

    for d in range(2 * nb - 1):
        tiles = [(ty, d - ty) for ty in range(nb) if 0 <= d - ty < nb]
        machine.parallel(diag_worker, tiles)
    return score.to_host().reshape(w, w)


def check_gpu(result: np.ndarray, scale: SimScale) -> None:
    np.testing.assert_array_equal(result, reference(gpu_sizes(scale)))


def check_cpu(result: np.ndarray, scale: SimScale) -> None:
    np.testing.assert_array_equal(result, reference(cpu_sizes(scale)))


register(
    WorkloadDef(
        META, cpu_fn=cpu_run, gpu_fn=gpu_run,
        gpu_versions={1: gpu_run_v1, 2: gpu_run},
        check_cpu=check_cpu, check_gpu=check_gpu,
    )
)
