"""Kmeans (Rodinia) — Dense Linear Algebra dwarf, data mining domain.

Paper problem size: 204800 points, 34 features.

The CUDA implementation follows Rodinia's structure: one thread per
point computes its nearest center each iteration; the feature matrix is
stored feature-major and bound to **texture memory**, with centers in
**constant memory** (the optimizations the paper credits for Kmeans'
insensitivity to memory channels, Fig. 4); new centers are reduced on
the host, as in Rodinia.  The OpenMP implementation partitions points
across threads with per-thread partial sums merged serially, reloading
features per (center, feature) pair exactly as the C loop nest does.
"""

from __future__ import annotations

import numpy as np

from repro.common.config import SimScale
from repro.cpusim import Machine
from repro.gpusim import GPU
from repro.inputs.points import clustered_points
from repro.workloads.base import WorkloadDef, WorkloadMeta, register

META = WorkloadMeta(
    name="kmeans",
    suite="rodinia",
    dwarf="Dense Linear Algebra",
    domain="Data Mining",
    paper_size="204800 data points, 34 features",
    short="KM",
    description="Iterative nearest-center clustering with host-side center update",
)

_BLOCK = 128


def gpu_sizes(scale: SimScale) -> dict:
    n, f = {
        SimScale.TINY: (1024, 8),
        SimScale.SMALL: (8192, 16),
        SimScale.MEDIUM: (16384, 34),
        SimScale.LARGE: (32768, 34),
    }[scale]
    return {"n": n, "f": f, "k": 5, "max_iters": 5}


def cpu_sizes(scale: SimScale) -> dict:
    n, f = {
        SimScale.TINY: (512, 8),
        SimScale.SMALL: (2048, 16),
        SimScale.MEDIUM: (8192, 34),
        SimScale.LARGE: (16384, 34),
    }[scale]
    return {"n": n, "f": f, "k": 5, "max_iters": 5}


def _inputs(p: dict):
    points, _ = clustered_points(p["n"], p["f"], p["k"], seed_tag="kmeans")
    centers0 = points[: p["k"]].copy()
    return points.astype(np.float32), centers0.astype(np.float32)


def reference(p: dict) -> np.ndarray:
    """Pure-numpy kmeans with identical init/update; returns membership.

    As in Rodinia, iteration continues until no point changes cluster
    (capped at ``max_iters``).
    """
    points, centers = _inputs(p)
    membership = np.full(p["n"], -1, dtype=np.int64)
    for _ in range(p["max_iters"]):
        d = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        new_membership = d.argmin(axis=1)
        changed = int((new_membership != membership).sum())
        membership = new_membership
        for c in range(p["k"]):
            sel = points[membership == c]
            if sel.size:
                centers[c] = sel.mean(axis=0)
        if changed == 0:
            break
    return membership


def _nearest_center_kernel(ctx, tex_feat, const_centers, membership, n, f, k):
    i = ctx.gtid
    with ctx.masked(i < n):
        best = ctx.const(0, dtype=np.int64)
        best_dist = ctx.const(np.inf, dtype=np.float64)
        for c in range(k):
            dist = ctx.const(0.0, dtype=np.float64)
            for j in range(f):
                x = ctx.load(tex_feat, j * n + i)        # feature-major: coalesced
                cv = ctx.load(const_centers, c * f + j)  # uniform -> broadcast
                ctx.alu(3)
                diff = x.astype(np.float64) - cv
                dist = dist + diff * diff
            upd = dist < best_dist
            best_dist = ctx.select(upd, dist, best_dist)
            best = ctx.select(upd, c, best)
        ctx.store(membership, i, best)


def gpu_run(gpu: GPU, scale: SimScale = SimScale.SMALL) -> np.ndarray:
    p = gpu_sizes(scale)
    n, f, k = p["n"], p["f"], p["k"]
    points, centers0 = _inputs(p)
    tex_feat = gpu.to_texture(points.T.copy(), name="features")
    centers = gpu.to_const(centers0, name="centers")
    membership = gpu.alloc(n, dtype=np.int64, name="membership")
    grid = (n + _BLOCK - 1) // _BLOCK
    host_centers = centers0.copy()
    prev = np.full(n, -1, dtype=np.int64)
    for _ in range(p["max_iters"]):
        gpu.launch(
            _nearest_center_kernel, grid, _BLOCK,
            tex_feat, centers, membership, n, f, k,
            regs_per_thread=20, name="kmeans_nearest",
        )
        # Host-side center update and convergence test, as in Rodinia.
        member = membership.to_host()
        changed = int((member != prev).sum())
        prev = member
        for c in range(k):
            sel = points[member == c]
            if sel.size:
                host_centers[c] = sel.mean(axis=0)
        centers.data[...] = host_centers
        if changed == 0:
            break
    return membership.to_host()


def cpu_run(machine: Machine, scale: SimScale = SimScale.SMALL) -> np.ndarray:
    p = cpu_sizes(scale)
    n, f, k = p["n"], p["f"], p["k"]
    points, centers0 = _inputs(p)
    feat = machine.array(points, name="features")
    centers = machine.array(centers0.copy(), name="centers")
    membership = machine.alloc(n, dtype=np.int64, name="membership")
    partial_sum = machine.alloc((machine.n_threads, k, f), name="partial_sum")
    partial_cnt = machine.alloc((machine.n_threads, k), dtype=np.int64)

    def assign(t):
        fidx = np.arange(f)
        local_sum = np.zeros((k, f))
        local_cnt = np.zeros(k, dtype=np.int64)
        for i in t.chunk(n):
            d = np.empty(k)
            x = None
            for c in range(k):
                x = t.load(feat, i * f + fidx)
                cv = t.load(centers, c * f + fidx)
                t.alu(3 * f)
                d[c] = ((x - cv) ** 2).sum()
            t.branch(k)
            best = int(d.argmin())
            t.store(membership, i, best)
            local_sum[best] += x
            local_cnt[best] += 1
        base = t.tid * k * f
        t.store(partial_sum, base + np.arange(k * f), local_sum.reshape(-1))
        t.store(partial_cnt, t.tid * k + np.arange(k), local_cnt)

    def update(t):
        sums = t.load(partial_sum, np.arange(machine.n_threads * k * f))
        cnts = t.load(partial_cnt, np.arange(machine.n_threads * k))
        t.alu(sums.size + cnts.size)
        total = sums.reshape(machine.n_threads, k, f).sum(axis=0)
        count = cnts.reshape(machine.n_threads, k).sum(axis=0)
        new_c = t.load(centers, np.arange(k * f)).reshape(k, f)
        nz = count > 0
        new_c[nz] = total[nz] / count[nz, None]
        t.store(centers, np.arange(k * f), new_c.reshape(-1))

    prev = np.full(n, -1, dtype=np.int64)
    for _ in range(p["max_iters"]):
        machine.parallel(assign)
        machine.serial(update)
        member = membership.to_host()
        if (member == prev).all():
            break
        prev = member
    return membership.to_host()


def _check(result: np.ndarray, p: dict) -> None:
    expected = reference(p)
    agreement = float((result == expected).mean())
    if agreement < 0.999:
        raise AssertionError(f"kmeans membership agreement {agreement:.4f} < 0.999")


def check_gpu(result: np.ndarray, scale: SimScale) -> None:
    _check(result, gpu_sizes(scale))


def check_cpu(result: np.ndarray, scale: SimScale) -> None:
    _check(result, cpu_sizes(scale))


register(
    WorkloadDef(
        META,
        cpu_fn=cpu_run,
        gpu_fn=gpu_run,
        check_cpu=check_cpu,
        check_gpu=check_gpu,
    )
)
