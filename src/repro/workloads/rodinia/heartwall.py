"""Heart Wall Tracking (Rodinia) — Structured Grid dwarf, medical imaging.

Paper problem size: 609x590 pixels/frame (104 ultrasound frames).

Tracks the inner and outer walls of a beating mouse heart across an
ultrasound sequence [31].  Following the paper's description, the
program has two stages:

1. **Initial detection** ("the program performs several image processing
   passes — edge detection, ... and dilation — on the first image in the
   sequence in order to detect partial shapes of inner and outer heart
   walls"): Sobel edge detection and a 3x3 dilation run as kernels on
   frame 0; the host reconstructs the two wall radii from the radial
   edge-energy profile and superimposes sample points on the detected
   ellipses.
2. **Tracking**, one kernel launch per frame: one thread block per
   sample point — inner-wall and outer-wall blocks run different
   parameter sets (the "braided parallelism" the paper highlights: task
   parallelism across blocks, data parallelism within).  Each block
   evaluates a 9x9 search window of SSD template matches, reduces the
   argmin through shared memory, and updates the point.  Large
   parameter/template state lives in **constant memory**, exactly the
   trait Figure 2 reports for Heartwall.
"""

from __future__ import annotations

import numpy as np

from repro.common.config import SimScale
from repro.cpusim import Machine
from repro.gpusim import GPU
from repro.inputs.images import heart_sequence
from repro.workloads.base import WorkloadDef, WorkloadMeta, register

META = WorkloadMeta(
    name="heartwall",
    suite="rodinia",
    dwarf="Structured Grid",
    domain="Medical Imaging",
    paper_size="609x590 pixels/frame",
    short="HW",
    description="Braided-parallel template tracking of heart walls",
)

_TPL = 7            # template edge (pixels)
_SEARCH = 4         # search window radius (offsets in [-4, 4])
_WIN = 2 * _SEARCH + 1
_BLOCK = 128        # 81 active lanes + tail


def gpu_sizes(scale: SimScale) -> dict:
    h = {SimScale.TINY: 64, SimScale.SMALL: 96, SimScale.MEDIUM: 192,
         SimScale.LARGE: 320}[scale]
    return {"h": h, "w": h, "frames": 4, "n_inner": 16, "n_outer": 24}


def cpu_sizes(scale: SimScale) -> dict:
    h = {SimScale.TINY: 64, SimScale.SMALL: 96, SimScale.MEDIUM: 128,
         SimScale.LARGE: 224}[scale]
    return {"h": h, "w": h, "frames": 4, "n_inner": 16, "n_outer": 24}


def _inputs(p: dict):
    frames, inner_r, outer_r = heart_sequence(
        p["frames"], p["h"], p["w"], seed_tag="heartwall"
    )
    return frames.astype(np.float32), inner_r, outer_r


def _initial_points(p: dict, inner_r0: float, outer_r0: float):
    """Sample points on the two detected walls (task id 0=inner, 1=outer)."""
    cy, cx = p["h"] / 2.0, p["w"] / 2.0
    pts = []
    tasks = []
    for i in range(p["n_inner"]):
        a = 2 * np.pi * i / p["n_inner"]
        pts.append((cy + inner_r0 * np.sin(a), cx + inner_r0 * np.cos(a)))
        tasks.append(0)
    for i in range(p["n_outer"]):
        a = 2 * np.pi * i / p["n_outer"]
        pts.append((cy + outer_r0 * np.sin(a), cx + outer_r0 * np.cos(a)))
        tasks.append(1)
    return (np.array(pts).round().astype(np.int64),
            np.array(tasks, dtype=np.int64))


# ----------------------------------------------------------------------
# Stage 1: initial wall detection (edge detection + dilation + profile)
# ----------------------------------------------------------------------
def _sobel_reference(frame: np.ndarray) -> np.ndarray:
    """|gx| + |gy| Sobel magnitude in float32, zero border."""
    f = frame.astype(np.float32)
    out = np.zeros_like(f)
    c = f[1:-1, 1:-1]
    gx = (
        (f[:-2, 2:] + 2.0 * f[1:-1, 2:] + f[2:, 2:])
        - (f[:-2, :-2] + 2.0 * f[1:-1, :-2] + f[2:, :-2])
    )
    gy = (
        (f[2:, :-2] + 2.0 * f[2:, 1:-1] + f[2:, 2:])
        - (f[:-2, :-2] + 2.0 * f[:-2, 1:-1] + f[:-2, 2:])
    )
    out[1:-1, 1:-1] = np.abs(gx) + np.abs(gy)
    return out


def _dilate_reference(edges: np.ndarray) -> np.ndarray:
    """3x3 max filter (out-of-bounds excluded), float32."""
    h, w = edges.shape
    out = edges.copy()
    for dy in (-1, 0, 1):
        for dx in (-1, 0, 1):
            ys = slice(max(0, dy), h + min(0, dy))
            xs = slice(max(0, dx), w + min(0, dx))
            ys_s = slice(max(0, -dy), h + min(0, -dy))
            xs_s = slice(max(0, -dx), w + min(0, -dx))
            out[ys_s, xs_s] = np.maximum(out[ys_s, xs_s], edges[ys, xs])
    return out


def _radii_from_edges(dilated: np.ndarray) -> tuple:
    """Wall radii from the radial edge-energy profile of frame 0."""
    h, w = dilated.shape
    cy, cx = h / 2.0, w / 2.0
    m = min(h, w)
    ys, xs = np.mgrid[0:h, 0:w]
    r = np.sqrt((ys - cy) ** 2 + (xs - cx) ** 2)
    bins = r.astype(np.int64)
    max_r = int(m / 2) - 1
    energy = np.bincount(
        bins.reshape(-1), weights=dilated.reshape(-1).astype(np.float64),
        minlength=max_r + 2,
    )[: max_r + 1]
    counts = np.bincount(bins.reshape(-1), minlength=max_r + 2)[: max_r + 1]
    profile = energy / np.maximum(counts, 1)
    # Smooth with a 3-tap box before peak picking.
    smooth = np.convolve(profile, np.ones(3) / 3.0, mode="same")
    split = int(0.26 * m)
    lo = max(3, int(0.08 * m))
    hi = min(max_r, int(0.46 * m))
    inner = lo + int(np.argmax(smooth[lo:split]))
    outer = split + int(np.argmax(smooth[split:hi]))
    return float(inner), float(outer)


def _extract_templates(frame0: np.ndarray, points: np.ndarray) -> np.ndarray:
    h, w = frame0.shape
    r = _TPL // 2
    out = np.empty((points.shape[0], _TPL, _TPL), dtype=np.float32)
    for k, (py, px) in enumerate(points):
        ys = np.clip(np.arange(py - r, py + r + 1), 0, h - 1)
        xs = np.clip(np.arange(px - r, px + r + 1), 0, w - 1)
        out[k] = frame0[np.ix_(ys, xs)]
    return out


def _best_offset(frame: np.ndarray, tpl: np.ndarray, py: int, px: int,
                 search: int):
    """Argmin-SSD offset within the search window (float32 reference)."""
    h, w = frame.shape
    r = _TPL // 2
    best = (np.float32(np.inf), 0, 0)
    for oy in range(-search, search + 1):
        for ox in range(-search, search + 1):
            ssd = np.float32(0.0)
            for ty in range(_TPL):
                for tx in range(_TPL):
                    sy = min(max(py + oy + ty - r, 0), h - 1)
                    sx = min(max(px + ox + tx - r, 0), w - 1)
                    d = np.float32(frame[sy, sx]) - tpl[ty, tx]
                    ssd = np.float32(ssd + d * d)
            if ssd < best[0]:
                best = (ssd, oy, ox)
    return best[1], best[2]


def detect_radii(frame0: np.ndarray) -> tuple:
    """Stage-1 reference: Sobel -> dilate -> radial profile peaks."""
    return _radii_from_edges(_dilate_reference(_sobel_reference(frame0)))


def reference(p: dict) -> np.ndarray:
    """Tracked point positions after every frame: (frames, npts, 2)."""
    frames, inner_r, outer_r = _inputs(p)
    ri, ro = detect_radii(frames[0])
    points, tasks = _initial_points(p, ri, ro)
    templates = _extract_templates(frames[0], points)
    out = np.empty((p["frames"], points.shape[0], 2), dtype=np.int64)
    out[0] = points
    pos = points.copy()
    for f in range(1, p["frames"]):
        for k in range(pos.shape[0]):
            search = _SEARCH if tasks[k] == 0 else _SEARCH - 1
            oy, ox = _best_offset(frames[f], templates[k], pos[k, 0],
                                  pos[k, 1], search)
            pos[k, 0] += oy
            pos[k, 1] += ox
        out[f] = pos
    return out


def _track_kernel(ctx, frame, const_tpl, const_task, positions, h, w, npts):
    """One block per sample point; lanes cover the 9x9 search window."""
    k = ctx.bidx
    # Block-uniform task selector, fetched through constant memory.
    ctx.load(const_task, np.full(ctx.nthreads, k))
    task = int(const_task.data[k])
    # Braided parallelism: inner blocks search the full window, outer
    # blocks a narrower one — a block-level divergent code path.
    search = _SEARCH if task == 0 else _SEARCH - 1
    win = 2 * search + 1
    lanes = ctx.tidx
    active = lanes < win * win
    ssd_sh = ctx.shared(_BLOCK, dtype=np.float32, name="ssd")
    idx_sh = ctx.shared(_BLOCK, dtype=np.int32, name="idx")
    r = _TPL // 2
    py = ctx.load(positions, np.full(ctx.nthreads, 2 * k))
    px = ctx.load(positions, np.full(ctx.nthreads, 2 * k + 1))
    with ctx.masked(active):
        ctx.alu(6)
        oy = lanes // win - search
        ox = lanes % win - search
        acc = ctx.const(0.0, dtype=np.float32)
        for ty in range(_TPL):
            for tx in range(_TPL):
                tpl_v = ctx.load(const_tpl, k * _TPL * _TPL + ty * _TPL + tx)
                ctx.alu(8)
                sy = np.clip(py + oy + ty - r, 0, h - 1)
                sx = np.clip(px + ox + tx - r, 0, w - 1)
                fv = ctx.load(frame, sy * w + sx)
                ctx.alu(3)
                d = fv - tpl_v
                acc = (acc + d * d).astype(np.float32)
        ctx.store(ssd_sh, lanes, acc)
        ctx.store(idx_sh, lanes, lanes)
    ctx.sync()
    # Shared-memory argmin reduction over the window.
    stride = 64
    while stride >= 1:
        with ctx.masked(active & (lanes < stride) & (lanes + stride < win * win)):
            a = ctx.load(ssd_sh, lanes)
            b = ctx.load(ssd_sh, lanes + stride)
            ia = ctx.load(idx_sh, lanes)
            ib = ctx.load(idx_sh, lanes + stride)
            ctx.alu(2)
            take_b = b < a
            ctx.store(ssd_sh, lanes, np.where(take_b, b, a))
            ctx.store(idx_sh, lanes, np.where(take_b, ib, ia))
        ctx.sync()
        stride //= 2
    with ctx.masked(lanes == 0):
        best = ctx.load(idx_sh, ctx.const(0, np.int64))
        ctx.alu(6)
        oy = best // win - search
        ox = best % win - search
        ctx.store(positions, np.full(ctx.nthreads, 2 * k), py + oy)
        ctx.store(positions, np.full(ctx.nthreads, 2 * k + 1), px + ox)


def _sobel_kernel(ctx, frame, edges, h, w):
    """Stage 1a: Sobel magnitude (|gx| + |gy|), zero border."""
    i = ctx.gtid
    with ctx.masked(i < h * w):
        ctx.alu(4)
        y = i // w
        x = i % w
        interior = (y >= 1) & (y < h - 1) & (x >= 1) & (x < w - 1)
        with ctx.masked(interior):
            ys = np.clip(y, 1, h - 2)
            xs = np.clip(x, 1, w - 2)
            nbr = {}
            for dy in (-1, 0, 1):
                for dx in (-1, 0, 1):
                    if dy == 0 and dx == 0:
                        continue
                    nbr[(dy, dx)] = ctx.load(frame, (ys + dy) * w + (xs + dx))
            ctx.alu(14)
            gx = (
                (nbr[(-1, 1)] + 2.0 * nbr[(0, 1)] + nbr[(1, 1)])
                - (nbr[(-1, -1)] + 2.0 * nbr[(0, -1)] + nbr[(1, -1)])
            ).astype(np.float32)
            gy = (
                (nbr[(1, -1)] + 2.0 * nbr[(1, 0)] + nbr[(1, 1)])
                - (nbr[(-1, -1)] + 2.0 * nbr[(-1, 0)] + nbr[(-1, 1)])
            ).astype(np.float32)
            ctx.store(edges, ys * w + xs,
                      (np.abs(gx) + np.abs(gy)).astype(np.float32))


def _dilate3_kernel(ctx, edges, dilated, h, w):
    """Stage 1b: 3x3 max filter over the edge map."""
    i = ctx.gtid
    with ctx.masked(i < h * w):
        ctx.alu(4)
        y = i // w
        x = i % w
        best = ctx.load(edges, i)
        for dy in (-1, 0, 1):
            for dx in (-1, 0, 1):
                if dy == 0 and dx == 0:
                    continue
                ctx.alu(5)
                inb = (y + dy >= 0) & (y + dy < h) & (x + dx >= 0) & (x + dx < w)
                v = ctx.load(edges,
                             np.clip(y + dy, 0, h - 1) * w
                             + np.clip(x + dx, 0, w - 1))
                best = np.where(inb, np.maximum(best, v), best)
        ctx.store(dilated, i, best)


def gpu_run(gpu: GPU, scale: SimScale = SimScale.SMALL) -> np.ndarray:
    p = gpu_sizes(scale)
    frames, inner_r, outer_r = _inputs(p)
    h, w = p["h"], p["w"]
    n = h * w
    # Stage 1: detect the walls on frame 0 (edge detection + dilation
    # kernels; radial profile reconstruction on the host).
    frame0 = gpu.to_device(frames[0].reshape(-1), name="frame0")
    edges = gpu.alloc(n, name="edges")
    dil = gpu.alloc(n, name="dilated")
    grid = (n + _BLOCK - 1) // _BLOCK
    gpu.launch(_sobel_kernel, grid, _BLOCK, frame0, edges, h, w,
               regs_per_thread=22, name="heartwall_sobel")
    gpu.launch(_dilate3_kernel, grid, _BLOCK, edges, dil, h, w,
               regs_per_thread=16, name="heartwall_dilate")
    ri, ro = _radii_from_edges(dil.to_host().reshape(h, w))
    points, tasks = _initial_points(p, ri, ro)
    templates = _extract_templates(frames[0], points)
    npts = points.shape[0]
    const_tpl = gpu.to_const(templates.reshape(-1), name="templates")
    const_task = gpu.to_const(tasks, name="tasks")
    positions = gpu.to_device(points.reshape(-1), name="positions")
    out = np.empty((p["frames"], npts, 2), dtype=np.int64)
    out[0] = points
    for f in range(1, p["frames"]):
        frame = gpu.to_device(frames[f].reshape(-1), name=f"frame{f}")
        gpu.launch(_track_kernel, npts, _BLOCK, frame, const_tpl, const_task,
                   positions, h, w, npts, regs_per_thread=28,
                   name="heartwall_track")
        out[f] = positions.to_host().reshape(npts, 2)
    return out


def cpu_run(machine: Machine, scale: SimScale = SimScale.SMALL) -> np.ndarray:
    p = cpu_sizes(scale)
    frames, inner_r, outer_r = _inputs(p)
    h, w = p["h"], p["w"]

    # Stage 1: instrumented Sobel + dilation over frame 0, row-parallel.
    frame0 = machine.array(frames[0].reshape(-1), name="frame0")
    edges = machine.array(np.zeros(h * w, dtype=np.float32), name="edges")
    dil = machine.array(np.zeros(h * w, dtype=np.float32), name="dilated")
    xs_in = np.arange(1, w - 1)

    def sobel(t):
        for y in t.chunk(h):
            if y == 0 or y == h - 1:
                continue
            rows = {dy: {dx: t.load(frame0, (y + dy) * w + xs_in + dx)
                         for dx in (-1, 0, 1)}
                    for dy in (-1, 0, 1)}
            t.alu(14 * xs_in.size)
            gx = ((rows[-1][1] + 2.0 * rows[0][1] + rows[1][1])
                  - (rows[-1][-1] + 2.0 * rows[0][-1] + rows[1][-1])
                  ).astype(np.float32)
            gy = ((rows[1][-1] + 2.0 * rows[1][0] + rows[1][1])
                  - (rows[-1][-1] + 2.0 * rows[-1][0] + rows[-1][1])
                  ).astype(np.float32)
            t.store(edges, y * w + xs_in,
                    (np.abs(gx) + np.abs(gy)).astype(np.float32))

    def dilate(t):
        all_x = np.arange(w)
        for y in t.chunk(h):
            best = t.load(edges, y * w + all_x)
            for dy in (-1, 0, 1):
                yy = y + dy
                if yy < 0 or yy >= h:
                    continue
                row = t.load(edges, yy * w + all_x)
                t.alu(3 * w)
                for dx in (-1, 0, 1):
                    shifted = np.roll(row, dx)
                    if dx > 0:
                        shifted[:dx] = -np.inf
                    elif dx < 0:
                        shifted[dx:] = -np.inf
                    best = np.maximum(best, shifted)
            t.store(dil, y * w + all_x, best)

    machine.parallel(sobel)
    machine.parallel(dilate)
    ri, ro = _radii_from_edges(dil.to_host().reshape(h, w))
    points, tasks = _initial_points(p, ri, ro)
    templates = _extract_templates(frames[0], points)
    npts = points.shape[0]
    tpl_arr = machine.array(templates.reshape(-1), name="templates")
    pos_arr = machine.array(points.reshape(-1), name="positions")
    out = np.empty((p["frames"], npts, 2), dtype=np.int64)
    out[0] = points
    r = _TPL // 2
    txs = np.arange(_TPL)

    def track(t, frame_arr):
        for k in t.strided(npts):
            task = tasks[k]
            t.branch(1)
            search = _SEARCH if task == 0 else _SEARCH - 1
            py = int(t.load(pos_arr, 2 * k))
            px = int(t.load(pos_arr, 2 * k + 1))
            best = (np.float32(np.inf), 0, 0)
            for oy in range(-search, search + 1):
                for ox in range(-search, search + 1):
                    ssd = np.float32(0.0)
                    for ty in range(_TPL):
                        tpl_row = t.load(tpl_arr,
                                         k * _TPL * _TPL + ty * _TPL + txs)
                        sy = min(max(py + oy + ty - r, 0), h - 1)
                        sx = np.clip(px + ox + txs - r, 0, w - 1)
                        fr = t.load(frame_arr, sy * w + sx)
                        t.alu(3 * _TPL)
                        d = fr.astype(np.float32) - tpl_row
                        ssd = np.float32(ssd + np.float32((d * d).sum()))
                    t.branch(1)
                    if ssd < best[0]:
                        best = (ssd, oy, ox)
            t.store(pos_arr, 2 * k, py + best[1])
            t.store(pos_arr, 2 * k + 1, px + best[2])

    for f in range(1, p["frames"]):
        frame_arr = machine.array(frames[f].reshape(-1), name=f"frame{f}")
        machine.parallel(track, frame_arr)
        out[f] = pos_arr.to_host().reshape(npts, 2)
    return out


def _check(result: np.ndarray, p: dict) -> None:
    frames, inner_r, outer_r = _inputs(p)
    # Stage 1 accuracy: the detected walls must sit on the true rings.
    ri, ro = detect_radii(frames[0])
    if abs(ri - inner_r[0]) > 3.0 or abs(ro - outer_r[0]) > 3.0:
        raise AssertionError(
            f"wall detection off: inner {ri:.1f} vs {inner_r[0]:.1f}, "
            f"outer {ro:.1f} vs {outer_r[0]:.1f}"
        )
    expected = reference(p)
    # Positions must match the reference tracker except for rare SSD
    # near-ties; tolerate a pixel of drift on a few points.
    diff = np.abs(result - expected).max(axis=2)
    if (diff > 1).mean() > 0.05:
        raise AssertionError(
            f"heartwall tracking diverged from reference: "
            f"{(diff > 1).mean():.1%} of points off by >1px"
        )
    # Tracked radii must follow the ground-truth oscillation.
    cy, cx = p["h"] / 2.0, p["w"] / 2.0
    n_in = p["n_inner"]
    for f in range(p["frames"]):
        pts = result[f, :n_in]
        est_r = np.sqrt(((pts - [cy, cx]) ** 2).sum(axis=1)).mean()
        if abs(est_r - inner_r[f]) > 5.0:
            raise AssertionError(
                f"frame {f}: inner radius {est_r:.1f} vs truth {inner_r[f]:.1f}"
            )


def check_gpu(result: np.ndarray, scale: SimScale) -> None:
    _check(result, gpu_sizes(scale))


def check_cpu(result: np.ndarray, scale: SimScale) -> None:
    _check(result, cpu_sizes(scale))


register(
    WorkloadDef(
        META, cpu_fn=cpu_run, gpu_fn=gpu_run,
        check_cpu=check_cpu, check_gpu=check_gpu,
    )
)
