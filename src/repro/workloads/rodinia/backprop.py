"""Back Propagation (Rodinia) — Unstructured Grid dwarf, pattern recognition.

Paper problem size: 65536 input nodes.

One full training pass of a 2-layer perceptron, with Rodinia's exact
CPU/GPU split: the GPU runs the wide input->hidden forward pass (one
16x16 block per 16 input nodes x 16 hidden units, partial products
reduced through **shared memory** by the strided halving tree whose
shrinking active sets the paper uses as its unfilled-warp example:
"the number of active threads during the four iterations are 8, 4, 2
and 1", Section III-B) and the input->hidden weight adjustment; the
tiny hidden->output layer, the output error, and the backpropagated
hidden deltas are computed on the host, as in backprop.c.
"""

from __future__ import annotations

import numpy as np

from repro.common.config import SimScale
from repro.common.rng import make_rng
from repro.cpusim import Machine
from repro.gpusim import GPU
from repro.workloads.base import WorkloadDef, WorkloadMeta, register

META = WorkloadMeta(
    name="backprop",
    suite="rodinia",
    dwarf="Unstructured Grid",
    domain="Pattern Recognition",
    paper_size="65536 input nodes",
    short="BP",
    description="2-layer perceptron training pass with shared-memory reduction",
)

_B = 16          # block tile edge: 16 input nodes x 16 hidden units
_HIDDEN = 16
_ETA = 0.3
_TARGET = 0.7


def gpu_sizes(scale: SimScale) -> dict:
    n = {SimScale.TINY: 1024, SimScale.SMALL: 8192, SimScale.MEDIUM: 32768,
         SimScale.LARGE: 65536}[scale]
    return {"n_in": n, "n_hidden": _HIDDEN}


def cpu_sizes(scale: SimScale) -> dict:
    n = {SimScale.TINY: 1024, SimScale.SMALL: 4096, SimScale.MEDIUM: 16384,
         SimScale.LARGE: 32768}[scale]
    return {"n_in": n, "n_hidden": _HIDDEN}


def _inputs(p: dict):
    rng = make_rng("backprop", p["n_in"])
    units = rng.uniform(0.0, 1.0, p["n_in"]).astype(np.float32)
    w1 = rng.uniform(-0.5, 0.5, (p["n_in"], p["n_hidden"])).astype(np.float32)
    w2 = rng.uniform(-0.5, 0.5, p["n_hidden"]).astype(np.float32)
    return units, w1, w2


def _sigmoid(x):
    return 1.0 / (1.0 + np.exp(-x))


def _output_layer(hidden_sums: np.ndarray, w2: np.ndarray):
    """Host-side part of the pass (Rodinia keeps this on the CPU).

    Returns (hidden activations, output, hidden deltas, adjusted w2).
    """
    hidden = _sigmoid(hidden_sums / hidden_sums.size)
    out = float(_sigmoid((hidden * w2).sum()))
    delta_o = out * (1.0 - out) * (_TARGET - out)
    delta_h = hidden * (1.0 - hidden) * (w2 * delta_o)
    new_w2 = w2 + _ETA * delta_o * hidden
    return hidden, out, delta_h.astype(np.float32), new_w2.astype(np.float32)


def reference(p: dict):
    """Full pass in numpy: (hidden_sums, output, new_w1, new_w2)."""
    units, w1, w2 = _inputs(p)
    w1d = w1.astype(np.float64)
    hidden_sums = (units[:, None].astype(np.float64) * w1d).sum(axis=0)
    hidden, out, delta_h, new_w2 = _output_layer(hidden_sums, w2)
    new_w1 = w1d + _ETA * np.outer(units, delta_h)
    return hidden_sums, out, new_w1.astype(np.float32), new_w2


def _forward_kernel(ctx, units, weights, partial, n_in, n_hidden):
    """Products into shared memory, then a halving-tree column reduction."""
    blk_row = ctx.bidx
    ctx.alu(4)
    in_idx = blk_row * _B + ctx.ty
    smem = ctx.shared((_B, _B), dtype=np.float32, name="products")
    lin = ctx.ty * _B + ctx.tx
    with ctx.masked(in_idx < n_in):
        u = ctx.load(units, np.minimum(in_idx, n_in - 1))
        w = ctx.load(weights, in_idx * n_hidden + ctx.tx)
        ctx.alu(1)
        ctx.store(smem, lin, u * w)
    ctx.sync()
    # Strided tree reduction along the input (ty) dimension, exactly as
    # Rodinia's bpnn_layerforward_CUDA does: surviving lanes are spread
    # out (ty % 2^k == 0), so warps run at 16, 8, 4, then 2 active
    # threads — the paper's "8, 4, 2 and 1" shrinking-warp example.
    step = 1
    while step < _B:
        ctx.alu(2)
        with ctx.masked(ctx.ty % (2 * step) == 0):
            a = ctx.load(smem, lin)
            b = ctx.load(smem, (ctx.ty + step) * _B + ctx.tx)
            ctx.alu(1)
            ctx.store(smem, lin, a + b)
        ctx.sync()
        step *= 2
    with ctx.masked(ctx.ty == 0):
        ctx.store(partial, blk_row * n_hidden + ctx.tx, ctx.load(smem, ctx.tx))


def _adjust_kernel(ctx, units, weights, deltas, n_in, n_hidden):
    blk_row = ctx.bidx
    ctx.alu(4)
    in_idx = blk_row * _B + ctx.ty
    with ctx.masked(in_idx < n_in):
        u = ctx.load(units, np.minimum(in_idx, n_in - 1))
        d = ctx.load(deltas, ctx.tx)
        w = ctx.load(weights, in_idx * n_hidden + ctx.tx)
        ctx.alu(3)
        ctx.store(weights, in_idx * n_hidden + ctx.tx, w + _ETA * u * d)


def gpu_run(gpu: GPU, scale: SimScale = SimScale.SMALL):
    p = gpu_sizes(scale)
    n_in, n_hidden = p["n_in"], p["n_hidden"]
    units_h, w1_h, w2_h = _inputs(p)
    units = gpu.to_device(units_h, name="units")
    weights = gpu.to_device(w1_h, name="weights")
    n_blocks = (n_in + _B - 1) // _B
    partial = gpu.alloc(n_blocks * n_hidden, dtype=np.float32, name="partial")
    gpu.launch(_forward_kernel, n_blocks, (_B, _B), units, weights, partial,
               n_in, n_hidden, regs_per_thread=16, name="bpnn_layerforward")
    hidden_sums = (
        partial.to_host().reshape(n_blocks, n_hidden).astype(np.float64).sum(axis=0)
    )
    # Hidden->output layer and error backpropagation on the host.
    hidden, out, delta_h, new_w2 = _output_layer(hidden_sums, w2_h)
    deltas = gpu.to_device(delta_h, name="deltas")
    gpu.launch(_adjust_kernel, n_blocks, (_B, _B), units, weights, deltas,
               n_in, n_hidden, regs_per_thread=12, name="bpnn_adjust_weights")
    return hidden_sums, out, weights.to_host(), new_w2


def cpu_run(machine: Machine, scale: SimScale = SimScale.SMALL):
    p = cpu_sizes(scale)
    n_in, n_hidden = p["n_in"], p["n_hidden"]
    units_h, w1_h, w2_h = _inputs(p)
    units = machine.array(units_h, name="units")
    weights = machine.array(w1_h, name="weights")
    w2 = machine.array(w2_h, name="weights2")
    partial = machine.alloc((machine.n_threads, n_hidden), name="partial")
    deltas = machine.alloc(n_hidden, dtype=np.float32, name="deltas")
    box = {}

    def forward(t):
        acc = np.zeros(n_hidden)
        cols = np.arange(n_hidden)
        for i in t.chunk(n_in):
            u = t.load(units, i)
            w = t.load(weights, i * n_hidden + cols)
            t.alu(2 * n_hidden)
            acc += np.float64(u) * w
        t.store(partial, t.tid * n_hidden + cols, acc)

    def output_layer(t):
        cols = np.arange(n_hidden)
        sums = t.load(partial, np.arange(machine.n_threads * n_hidden))
        t.alu(sums.size + 8 * n_hidden)
        hidden_sums = sums.reshape(machine.n_threads, n_hidden).sum(axis=0)
        w2_now = t.load(w2, cols).astype(np.float32)
        hidden, out, delta_h, new_w2 = _output_layer(hidden_sums, w2_now)
        t.store(w2, cols, new_w2)
        t.store(deltas, cols, delta_h)
        box["hidden_sums"] = hidden_sums
        box["out"] = out

    def adjust(t):
        cols = np.arange(n_hidden)
        d = t.load(deltas, cols)
        for i in t.chunk(n_in):
            u = t.load(units, i)
            w = t.load(weights, i * n_hidden + cols)
            t.alu(3 * n_hidden)
            t.store(weights, i * n_hidden + cols, w + _ETA * u * d)

    machine.parallel(forward)
    machine.serial(output_layer)
    machine.parallel(adjust)
    return box["hidden_sums"], box["out"], weights.to_host(), w2.to_host()


def _check(result, p) -> None:
    hidden_sums, out, new_w1, new_w2 = result
    ref_sums, ref_out, ref_w1, ref_w2 = reference(p)
    np.testing.assert_allclose(hidden_sums, ref_sums, rtol=1e-3)
    assert abs(out - ref_out) < 1e-4
    np.testing.assert_allclose(new_w1, ref_w1, rtol=1e-3, atol=1e-5)
    np.testing.assert_allclose(new_w2, ref_w2, rtol=1e-5)


def check_gpu(result, scale: SimScale) -> None:
    _check(result, gpu_sizes(scale))


def check_cpu(result, scale: SimScale) -> None:
    _check(result, cpu_sizes(scale))


register(
    WorkloadDef(
        META, cpu_fn=cpu_run, gpu_fn=gpu_run,
        check_cpu=check_cpu, check_gpu=check_gpu,
    )
)
