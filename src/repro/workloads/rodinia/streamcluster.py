"""StreamCluster (Rodinia and Parsec) — Dense Linear Algebra dwarf.

Paper problem sizes: 65536 points, 256 dimensions (Rodinia);
16384 points per block (Parsec sim-large).

Online clustering: for each candidate center, the pgain kernel computes
every point's potential savings from switching to the candidate; a
host-side decision opens the center if total gain is positive.  The
candidate's coordinates are staged in **shared memory** (the GPU port
the paper describes as "relatively easy to reorganize for the GPU",
Section V-B).  StreamCluster is the one workload in *both* suites —
Figure 6 labels it "(R, P)" — so this module registers the CPU
implementation for Rodinia and :mod:`repro.workloads.parsec` aliases it.
"""

from __future__ import annotations

import numpy as np

from repro.common.config import SimScale
from repro.cpusim import Machine
from repro.gpusim import GPU
from repro.inputs.points import clustered_points
from repro.workloads.base import WorkloadDef, WorkloadMeta, register

META = WorkloadMeta(
    name="streamcluster",
    suite="rodinia",
    dwarf="Dense Linear Algebra",
    domain="Data Mining",
    paper_size="65536 points, 256 dimensions",
    short="SC",
    description="Online clustering: pgain candidate evaluation kernel",
)

_BLOCK = 128


def gpu_sizes(scale: SimScale) -> dict:
    n, d = {
        SimScale.TINY: (1024, 16),
        SimScale.SMALL: (8192, 32),
        SimScale.MEDIUM: (16384, 64),
        SimScale.LARGE: (32768, 64),
    }[scale]
    return {"n": n, "dims": d, "n_candidates": 8}


def cpu_sizes(scale: SimScale) -> dict:
    n, d = {
        SimScale.TINY: (512, 16),
        SimScale.SMALL: (2048, 32),
        SimScale.MEDIUM: (8192, 64),
        SimScale.LARGE: (16384, 64),
    }[scale]
    return {"n": n, "dims": d, "n_candidates": 8}


def _inputs(p: dict):
    points, _ = clustered_points(p["n"], p["dims"], 8, seed_tag="streamcluster")
    rng_candidates = np.linspace(0, p["n"] - 1, p["n_candidates"]).astype(np.int64)
    return points.astype(np.float32), rng_candidates


def reference(p: dict):
    """Greedy facility assignment; returns (assignment, final cost)."""
    points, candidates = _inputs(p)
    points = points.astype(np.float64)
    n = p["n"]
    assign = np.zeros(n, dtype=np.int64)        # all points on center 0
    cost = ((points - points[0]) ** 2).sum(axis=1)
    centers = [0]
    for c in candidates[1:]:
        d = ((points - points[c]) ** 2).sum(axis=1)
        gain = (cost - d).clip(min=0.0).sum()
        open_cost = 0.1 * cost.mean() * n / len(candidates)
        if gain > open_cost:
            better = d < cost
            assign[better] = c
            cost = np.minimum(cost, d)
            centers.append(int(c))
    return assign, float(cost.sum())


def _pgain_kernel(ctx, pts, candidate_coords, cost, gain_partial, n, dims):
    """Per-point savings vs. the candidate center (coords in shared)."""
    i = ctx.gtid
    # Cooperative staging of the candidate's coordinates.
    cand = ctx.shared(dims, dtype=np.float32, name="candidate")
    lanes = ctx.tidx
    with ctx.masked(lanes < dims):
        ctx.store(cand, np.minimum(lanes, dims - 1),
                  ctx.load(candidate_coords, np.minimum(lanes, dims - 1)))
    ctx.sync()
    smem = ctx.shared(ctx.nthreads, dtype=np.float64, name="red")
    with ctx.masked(i < n):
        d = ctx.const(0.0, dtype=np.float64)
        for j in range(dims):
            x = ctx.load(pts, j * n + i)   # dim-major: coalesced
            c = ctx.load(cand, j)
            ctx.alu(3)
            diff = x.astype(np.float64) - c
            d = d + diff * diff
        old = ctx.load(cost, i)
        ctx.alu(2)
        saving = np.maximum(old - d, 0.0)
    total = ctx.block_reduce_sum(
        np.where(ctx.mask & (i < n), saving, 0.0), smem
    )
    with ctx.masked(ctx.tidx == 0):
        ctx.store(gain_partial, ctx.const(ctx.bidx, np.int64), total)


def _reassign_kernel(ctx, pts, candidate_coords, cost, assign, cand_id, n, dims):
    i = ctx.gtid
    cand = ctx.shared(dims, dtype=np.float32, name="candidate")
    lanes = ctx.tidx
    with ctx.masked(lanes < dims):
        ctx.store(cand, np.minimum(lanes, dims - 1),
                  ctx.load(candidate_coords, np.minimum(lanes, dims - 1)))
    ctx.sync()
    with ctx.masked(i < n):
        d = ctx.const(0.0, dtype=np.float64)
        for j in range(dims):
            x = ctx.load(pts, j * n + i)   # dim-major: coalesced
            c = ctx.load(cand, j)
            ctx.alu(3)
            diff = x.astype(np.float64) - c
            d = d + diff * diff
        old = ctx.load(cost, i)
        better = d < old
        ctx.branch()
        with ctx.masked(better):
            ctx.store(cost, i, d)
            ctx.store(assign, i, cand_id)


def gpu_run(gpu: GPU, scale: SimScale = SimScale.SMALL):
    p = gpu_sizes(scale)
    n, dims = p["n"], p["dims"]
    points, candidates = _inputs(p)
    pts = gpu.to_device(points.T.copy().reshape(-1), name="points")  # dim-major
    pts64 = points.astype(np.float64)
    cost0 = ((pts64 - pts64[0]) ** 2).sum(axis=1)
    cost = gpu.to_device(cost0, name="cost")
    assign = gpu.alloc(n, dtype=np.int64, name="assign")
    grid = (n + _BLOCK - 1) // _BLOCK
    gain_partial = gpu.alloc(grid, dtype=np.float64, name="gain")
    for c in candidates[1:]:
        cc = gpu.to_device(points[c], name="candidate")
        gpu.launch(_pgain_kernel, grid, _BLOCK, pts, cc, cost, gain_partial,
                   n, dims, regs_per_thread=22, name="sc_pgain")
        gain = gain_partial.to_host().sum()
        open_cost = 0.1 * cost.to_host().mean() * n / len(candidates)
        if gain > open_cost:
            gpu.launch(_reassign_kernel, grid, _BLOCK, pts, cc, cost, assign,
                       int(c), n, dims, regs_per_thread=20, name="sc_reassign")
    return assign.to_host(), float(cost.to_host().sum())


def cpu_run(machine: Machine, scale: SimScale = SimScale.SMALL):
    p = cpu_sizes(scale)
    n, dims = p["n"], p["dims"]
    points, candidates = _inputs(p)
    pts = machine.array(points.reshape(-1), name="points")
    pts64 = points.astype(np.float64)
    cost0 = ((pts64 - pts64[0]) ** 2).sum(axis=1)
    cost = machine.array(cost0, name="cost")
    assign = machine.alloc(n, dtype=np.int64, name="assign")
    partial = machine.alloc(machine.n_threads, name="gain_partial")
    didx = np.arange(dims)

    def pgain(t, c):
        cand = t.load(pts, c * dims + didx).astype(np.float64)
        total = 0.0
        for i in t.chunk(n):
            x = t.load(pts, i * dims + didx).astype(np.float64)
            t.alu(3 * dims + 2)
            d = ((x - cand) ** 2).sum()
            old = t.load(cost, i)
            total += max(old - d, 0.0)
            t.branch(1)
        t.store(partial, t.tid, total)

    def reassign(t, c):
        cand = t.load(pts, c * dims + didx).astype(np.float64)
        for i in t.chunk(n):
            x = t.load(pts, i * dims + didx).astype(np.float64)
            t.alu(3 * dims + 1)
            d = ((x - cand) ** 2).sum()
            old = t.load(cost, i)
            t.branch(1)
            if d < old:
                t.store(cost, i, d)
                t.store(assign, i, c)

    for c in candidates[1:]:
        machine.parallel(pgain, int(c))
        gain = partial.data.sum()
        open_cost = 0.1 * cost.data.mean() * n / len(candidates)
        if gain > open_cost:
            machine.parallel(reassign, int(c))
    return assign.to_host(), float(cost.data.sum())


def _check(result, p) -> None:
    assign, total = result
    ref_assign, ref_total = reference(p)
    np.testing.assert_array_equal(assign, ref_assign)
    np.testing.assert_allclose(total, ref_total, rtol=1e-5)


def check_gpu(result, scale: SimScale) -> None:
    _check(result, gpu_sizes(scale))


def check_cpu(result, scale: SimScale) -> None:
    _check(result, cpu_sizes(scale))


register(
    WorkloadDef(
        META, cpu_fn=cpu_run, gpu_fn=gpu_run,
        check_cpu=check_cpu, check_gpu=check_gpu,
    )
)
