"""MUMmerGPU (Rodinia) — Graph Traversal dwarf, bioinformatics.

Paper problem size: 50000 25-character queries.

High-throughput pairwise local sequence alignment (Schatz et al. [28]):
the reference's suffix tree is built on the CPU with Ukkonen's algorithm
and shipped to the GPU **encoded in texture memory**; each GPU thread
walks the tree for one query, reporting its maximal match length.  The
data-dependent tree walk gives MUMmer the paper's signature pathologies:
more than 60% of warps with fewer than 5 active threads (Fig. 3), heavy
global/texture traffic (Fig. 4), the largest working set of either suite
(Fig. 8), and the biggest code+data footprints (Figs. 11-12).
"""

from __future__ import annotations

import numpy as np

from repro.common.config import SimScale
from repro.cpusim import Machine
from repro.gpusim import GPU
from repro.inputs.sequences import random_sequence, reads_from_reference
from repro.workloads.base import WorkloadDef, WorkloadMeta, register
from repro.workloads.rodinia.suffixtree import (
    SIGMA,
    FlatSuffixTree,
    SuffixTree,
    flat_match_length,
)

META = WorkloadMeta(
    name="mummer",
    suite="rodinia",
    dwarf="Graph Traversal",
    domain="Bioinformatics",
    paper_size="50000 25-character queries",
    short="MUM",
    description="Suffix-tree sequence alignment; tree in texture memory",
)

_BLOCK = 128
_READ_LEN = 25


def gpu_sizes(scale: SimScale) -> dict:
    ref, nq = {
        SimScale.TINY: (2000, 512),
        SimScale.SMALL: (12000, 4096),
        SimScale.MEDIUM: (40000, 12288),
        SimScale.LARGE: (80000, 24576),
    }[scale]
    return {"ref_len": ref, "n_queries": nq, "read_len": _READ_LEN}


def cpu_sizes(scale: SimScale) -> dict:
    ref, nq = {
        SimScale.TINY: (2000, 512),
        SimScale.SMALL: (8000, 2048),
        SimScale.MEDIUM: (30000, 8192),
        SimScale.LARGE: (60000, 16384),
    }[scale]
    return {"ref_len": ref, "n_queries": nq, "read_len": _READ_LEN}


def _inputs(p: dict):
    reference_seq = random_sequence(p["ref_len"], seed_tag="mummer-ref")
    queries = reads_from_reference(
        reference_seq, p["n_queries"], p["read_len"], error_rate=0.08,
        seed_tag="mummer-reads",
    )
    return reference_seq, queries


def reference(p: dict) -> np.ndarray:
    """Maximal prefix-match length per query, via the object-form tree."""
    ref_seq, queries = _inputs(p)
    tree = SuffixTree(ref_seq)
    return np.array(
        [tree.match_length(queries[i]) for i in range(queries.shape[0])],
        dtype=np.int32,
    )


def _mummer_kernel(ctx, children, edge_start, edge_len, text, queries,
                   out, n_queries, read_len):
    """One thread = one query; char-at-a-time walk of the flat tree.

    Each iteration either descends to a child (at an edge boundary) or
    compares one edge character — lanes diverge immediately on their
    private tree paths, producing the paper's near-empty warps.
    """
    q = ctx.gtid
    with ctx.masked(q < n_queries):
        node = ctx.const(0, dtype=np.int64)
        edge_off = ctx.const(0, dtype=np.int64)
        elen = ctx.const(0, dtype=np.int64)
        qpos = ctx.const(0, dtype=np.int64)
        matched = ctx.const(0, dtype=np.int64)
        alive = ctx.const(True, dtype=bool)

        def cond():
            return alive & (qpos < read_len)

        for _ in ctx.while_(cond):
            ctx.alu(2)
            at_boundary = edge_off >= elen
            with ctx.masked(at_boundary):
                qc = ctx.load(queries, q * read_len + np.minimum(qpos, read_len - 1))
                ctx.alu(2)
                child = ctx.load(children, node * SIGMA + qc)
                ok = child > 0
                node = np.where(ctx.mask & ok, child, node)
                alive = np.where(ctx.mask, alive & ok, alive)
                estart_new = ctx.load(edge_start, np.where(child > 0, child, 0))
                elen_new = ctx.load(edge_len, np.where(child > 0, child, 0))
                elen = np.where(ctx.mask & ok, elen_new, elen)
                edge_off = np.where(ctx.mask & ok, 0, edge_off)
            with ctx.masked(~at_boundary & alive):
                estart = ctx.load(edge_start, node)
                rc = ctx.load(text, np.minimum(estart + edge_off, text.size - 1))
                qc = ctx.load(queries, q * read_len + np.minimum(qpos, read_len - 1))
                ctx.alu(4)
                ok = rc == qc
                matched = np.where(ctx.mask & ok, matched + 1, matched)
                qpos = np.where(ctx.mask & ok, qpos + 1, qpos)
                edge_off = np.where(ctx.mask & ok, edge_off + 1, edge_off)
                alive = np.where(ctx.mask, alive & ok, alive)
        ctx.store(out, q, matched)


def gpu_run(gpu: GPU, scale: SimScale = SimScale.SMALL) -> np.ndarray:
    p = gpu_sizes(scale)
    ref_seq, queries = _inputs(p)
    tree = SuffixTree(ref_seq).flatten()
    # Tree arrays bound to texture memory, as in MUMmerGPU.
    children = gpu.to_texture(tree.children, name="tree_children")
    edge_start = gpu.to_texture(tree.edge_start, name="tree_edge_start")
    edge_len = gpu.to_texture(tree.edge_len, name="tree_edge_len")
    text = gpu.to_texture(tree.text, name="tree_text")
    qdev = gpu.to_device(queries.reshape(-1), name="queries")
    nq = p["n_queries"]
    out = gpu.alloc(nq, dtype=np.int64, name="match_len")
    grid = (nq + _BLOCK - 1) // _BLOCK
    gpu.launch(_mummer_kernel, grid, _BLOCK, children, edge_start, edge_len,
               text, qdev, out, nq, p["read_len"],
               regs_per_thread=28, name="mummergpu_kernel")
    return out.to_host().astype(np.int32)


def cpu_run(machine: Machine, scale: SimScale = SimScale.SMALL) -> np.ndarray:
    p = cpu_sizes(scale)
    ref_seq, queries = _inputs(p)
    tree = SuffixTree(ref_seq).flatten()
    children = machine.array(tree.children, name="tree_children")
    edge_start = machine.array(tree.edge_start, name="tree_edge_start")
    edge_len = machine.array(tree.edge_len, name="tree_edge_len")
    text = machine.array(tree.text, name="tree_text")
    qarr = machine.array(queries.reshape(-1), name="queries")
    nq = p["n_queries"]
    out = machine.alloc(nq, dtype=np.int32, name="match_len")
    read_len = p["read_len"]

    def match(t):
        for q in t.chunk(nq):
            pat = t.load(qarr, q * read_len + np.arange(read_len))
            node = 0
            matched = 0
            i = 0
            while i < read_len:
                t.branch(1)
                child = int(t.load(children, node * SIGMA + int(pat[i])))
                if child == 0:
                    break
                start = int(t.load(edge_start, child))
                elen = int(t.load(edge_len, child))
                stop = False
                k = 0
                while k < elen and i < read_len:
                    rc = int(t.load(text, start + k))
                    t.alu(2)
                    t.branch(1)
                    if rc != int(pat[i]):
                        stop = True
                        break
                    k += 1
                    i += 1
                    matched += 1
                if stop:
                    break
                node = child
            t.store(out, q, matched)

    machine.parallel(match)
    return out.to_host()


def check_gpu(result: np.ndarray, scale: SimScale) -> None:
    np.testing.assert_array_equal(result, reference(gpu_sizes(scale)))


def check_cpu(result: np.ndarray, scale: SimScale) -> None:
    np.testing.assert_array_equal(result, reference(cpu_sizes(scale)))


register(
    WorkloadDef(
        META, cpu_fn=cpu_run, gpu_fn=gpu_run,
        check_cpu=check_cpu, check_gpu=check_gpu,
    )
)
