"""Breadth-First Search (Rodinia) — Graph Traversal dwarf.

Paper problem size: 1,000,000 nodes.

The CUDA implementation mirrors Rodinia's two-kernel level-synchronous
algorithm: kernel 1 expands the frontier (every node checks its mask,
frontier nodes walk their adjacency list), kernel 2 commits the updating
mask and raises the continue flag.  The paper attributes BFS's low IPC
to dominant global-memory traffic and its low warp occupancy to the
frontier test's branch divergence — both emerge directly from this
structure.  The OpenMP implementation scans the mask array in parallel
chunks per level, as Rodinia's CPU version does.
"""

from __future__ import annotations

import numpy as np

from repro.common.config import SimScale
from repro.cpusim import Machine
from repro.gpusim import GPU
from repro.inputs.graphs import bfs_source, random_graph_csr
from repro.workloads.base import WorkloadDef, WorkloadMeta, register

META = WorkloadMeta(
    name="bfs",
    suite="rodinia",
    dwarf="Graph Traversal",
    domain="Graph Algorithms",
    paper_size="1000000 nodes",
    short="BFS",
    description="Level-synchronous frontier BFS over a CSR random graph",
)

_BLOCK = 256


def gpu_sizes(scale: SimScale) -> dict:
    n = {SimScale.TINY: 2048, SimScale.SMALL: 16384, SimScale.MEDIUM: 65536,
         SimScale.LARGE: 131072}[scale]
    return {"n": n, "deg": 6}


def cpu_sizes(scale: SimScale) -> dict:
    n = {SimScale.TINY: 2048, SimScale.SMALL: 8192, SimScale.MEDIUM: 32768,
         SimScale.LARGE: 65536}[scale]
    return {"n": n, "deg": 6}


def _inputs(p: dict):
    row, col = random_graph_csr(p["n"], p["deg"], seed_tag="bfs")
    return row, col, bfs_source(p["n"], seed_tag="bfs")


def reference(p: dict) -> np.ndarray:
    """Level-synchronous BFS in plain numpy; returns distance per node."""
    row, col, src = _inputs(p)
    n = p["n"]
    cost = np.full(n, -1, dtype=np.int64)
    cost[src] = 0
    frontier = np.array([src])
    level = 0
    while frontier.size:
        nbrs = np.concatenate(
            [col[row[u] : row[u + 1]] for u in frontier]
        ) if frontier.size else np.empty(0, dtype=np.int64)
        nbrs = np.unique(nbrs)
        fresh = nbrs[cost[nbrs] < 0]
        cost[fresh] = level + 1
        frontier = fresh
        level += 1
    return cost


def _kernel1(ctx, row, col, mask, updating, visited, cost, n):
    tid = ctx.gtid
    with ctx.masked(tid < n):
        active = ctx.load(mask, tid) != 0
        with ctx.masked(active):
            ctx.store(mask, tid, 0)
            my_cost = ctx.load(cost, tid)
            start = ctx.load(row, tid)
            end = ctx.load(row, np.minimum(tid + 1, n))
            off = start.copy()

            def cond():
                return off < end

            for _ in ctx.while_(cond):
                nb = ctx.load(col, off)
                vis = ctx.load(visited, nb)
                with ctx.masked(vis == 0):
                    # Benign race: all frontier nodes write level + 1.
                    ctx.store(cost, nb, my_cost + 1)
                    ctx.store(updating, nb, 1)
                ctx.alu(1)
                off = off + 1


def _kernel2(ctx, mask, updating, visited, stop, n):
    tid = ctx.gtid
    with ctx.masked(tid < n):
        upd = ctx.load(updating, tid) != 0
        with ctx.masked(upd):
            ctx.store(mask, tid, 1)
            ctx.store(visited, tid, 1)
            ctx.store(stop, ctx.const(0, dtype=np.int64), 1)
            ctx.store(updating, tid, 0)


def gpu_run(gpu: GPU, scale: SimScale = SimScale.SMALL) -> np.ndarray:
    p = gpu_sizes(scale)
    n = p["n"]
    row_h, col_h, src = _inputs(p)
    row = gpu.to_device(row_h.astype(np.int32), name="row_offsets")
    col = gpu.to_device(col_h.astype(np.int32), name="col_indices")
    mask = gpu.alloc(n, dtype=np.int8, name="mask")
    updating = gpu.alloc(n, dtype=np.int8, name="updating")
    visited = gpu.alloc(n, dtype=np.int8, name="visited")
    cost = gpu.to_device(np.full(n, -1, dtype=np.int32), name="cost")
    stop = gpu.alloc(1, dtype=np.int64, name="stop")
    mask.data[src] = 1
    visited.data[src] = 1
    cost.data[src] = 0
    grid = (n + _BLOCK - 1) // _BLOCK
    while True:
        stop.data[0] = 0
        gpu.launch(_kernel1, grid, _BLOCK, row, col, mask, updating, visited,
                   cost, n, regs_per_thread=12, name="bfs_kernel1")
        gpu.launch(_kernel2, grid, _BLOCK, mask, updating, visited, stop, n,
                   regs_per_thread=8, name="bfs_kernel2")
        if stop.data[0] == 0:
            break
    return cost.to_host()


def cpu_run(machine: Machine, scale: SimScale = SimScale.SMALL) -> np.ndarray:
    p = cpu_sizes(scale)
    n = p["n"]
    row_h, col_h, src = _inputs(p)
    row = machine.array(row_h, name="row_offsets")
    col = machine.array(col_h, name="col_indices")
    mask = machine.array(np.zeros(n, dtype=np.int8), name="mask")
    updating = machine.array(np.zeros(n, dtype=np.int8), name="updating")
    visited = machine.array(np.zeros(n, dtype=np.int8), name="visited")
    cost = machine.array(np.full(n, -1, dtype=np.int64), name="cost")
    mask.data[src] = 1
    visited.data[src] = 1
    cost.data[src] = 0
    progressed = {"v": True}

    def expand(t):
        chunk = t.chunk(n)
        idx = np.arange(chunk.start, chunk.stop)
        if idx.size == 0:
            return
        active = t.load(mask, idx) != 0
        t.branch(idx.size)
        for u in idx[active]:
            t.store(mask, u, 0)
            my_cost = t.load(cost, u)
            lo = int(t.load(row, u))
            hi = int(t.load(row, u + 1))
            if hi > lo:
                nbrs = t.load(col, np.arange(lo, hi))
                vis = t.load(visited, nbrs)
                t.branch(nbrs.size)
                fresh = nbrs[vis == 0]
                if fresh.size:
                    t.store(cost, fresh, my_cost + 1)
                    t.store(updating, fresh, 1)

    def commit(t):
        chunk = t.chunk(n)
        idx = np.arange(chunk.start, chunk.stop)
        if idx.size == 0:
            return
        upd = t.load(updating, idx) != 0
        t.branch(idx.size)
        hot = idx[upd]
        if hot.size:
            t.store(mask, hot, 1)
            t.store(visited, hot, 1)
            t.store(updating, hot, 0)
            progressed["v"] = True

    while progressed["v"]:
        progressed["v"] = False
        machine.parallel(expand)
        machine.parallel(commit)
    return cost.to_host()


def check_gpu(result: np.ndarray, scale: SimScale) -> None:
    np.testing.assert_array_equal(result, reference(gpu_sizes(scale)))


def check_cpu(result: np.ndarray, scale: SimScale) -> None:
    np.testing.assert_array_equal(result, reference(cpu_sizes(scale)))


register(
    WorkloadDef(
        META, cpu_fn=cpu_run, gpu_fn=gpu_run,
        check_cpu=check_cpu, check_gpu=check_gpu,
    )
)
