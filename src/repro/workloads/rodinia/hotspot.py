"""HotSpot (Rodinia) — Structured Grid dwarf, physics simulation.

Paper problem size: 500x500 data points.

HotSpot iterates a 5-point thermal stencil.  The CUDA implementation
uses the ghost-zone ("pyramid") optimization the paper cites ([24]):
each block loads a 16x16 tile (with apron) into **shared memory** and
advances PYRAMID=2 time steps per kernel launch, shrinking the valid
region each step — so most memory instructions hit shared memory, which
is why Figure 4 shows HotSpot benefiting little from extra memory
channels.  The OpenMP implementation is a row-banded double-buffered
stencil.
"""

from __future__ import annotations

import numpy as np

from repro.common.config import SimScale
from repro.common.rng import make_rng
from repro.cpusim import Machine
from repro.gpusim import GPU
from repro.workloads.base import WorkloadDef, WorkloadMeta, register

META = WorkloadMeta(
    name="hotspot",
    suite="rodinia",
    dwarf="Structured Grid",
    domain="Physics Simulation",
    paper_size="500x500 data points",
    short="HS",
    description="Thermal stencil with ghost-zone shared-memory tiling",
)

_TILE = 16
_PYRAMID = 2

# Thermal model constants (Rodinia's hotspot.c).
_CAP = 0.5
_RX = 1.0
_RY = 1.0
_RZ = 4.0
_AMB = 80.0
_STEP = 0.001


def gpu_sizes(scale: SimScale) -> dict:
    r = {SimScale.TINY: 48, SimScale.SMALL: 144, SimScale.MEDIUM: 288,
         SimScale.LARGE: 1152}[scale]
    return {"rows": r, "cols": r,
            "steps": 28 if scale is SimScale.LARGE else 6}


def cpu_sizes(scale: SimScale) -> dict:
    r = {SimScale.TINY: 32, SimScale.SMALL: 64, SimScale.MEDIUM: 128,
         SimScale.LARGE: 448}[scale]
    return {"rows": r, "cols": r,
            "steps": 8 if scale is SimScale.LARGE else 4}


def _inputs(p: dict):
    rng = make_rng("hotspot", p["rows"], p["cols"])
    temp = rng.uniform(320.0, 340.0, (p["rows"], p["cols"]))
    power = rng.uniform(0.0, 0.02, (p["rows"], p["cols"]))
    return temp, power


def _step_numpy(temp: np.ndarray, power: np.ndarray) -> np.ndarray:
    """One explicit stencil step with clamped (replicated) borders."""
    up = np.vstack([temp[:1], temp[:-1]])
    down = np.vstack([temp[1:], temp[-1:]])
    left = np.hstack([temp[:, :1], temp[:, :-1]])
    right = np.hstack([temp[:, 1:], temp[:, -1:]])
    delta = (_STEP / _CAP) * (
        power
        + (up + down - 2.0 * temp) / _RY
        + (left + right - 2.0 * temp) / _RX
        + (_AMB - temp) / _RZ
    )
    return temp + delta


def reference(p: dict) -> np.ndarray:
    temp, power = _inputs(p)
    for _ in range(p["steps"]):
        temp = _step_numpy(temp, power)
    return temp


def _hotspot_kernel(ctx, temp_in, temp_out, power, rows, cols, steps):
    """Ghost-zone tile kernel: 16x16 tile, ``steps`` stencil iterations."""
    inner = _TILE - 2 * _PYRAMID
    # Tile origin in the output grid.
    ctx.alu(6)  # tile-origin and global-coordinate arithmetic
    oy = ctx.by * inner - _PYRAMID
    ox = ctx.bx * inner - _PYRAMID
    gy = np.clip(oy + ctx.ty, 0, rows - 1)
    gx = np.clip(ox + ctx.tx, 0, cols - 1)
    tile = ctx.shared((_TILE, _TILE), dtype=np.float32, name="tile")
    ptile = ctx.shared((_TILE, _TILE), dtype=np.float32, name="ptile")
    ctx.alu(2)
    lin = ctx.ty * _TILE + ctx.tx
    ctx.store(tile, lin, ctx.load(temp_in, gy * cols + gx))
    ctx.store(ptile, lin, ctx.load(power, gy * cols + gx))
    ctx.sync()

    for s in range(steps):
        halo = s + 1
        # The boundary-condition predicates are real per-thread integer
        # work in the CUDA kernel (computed by every lane, every step).
        ctx.alu(24)
        valid = (
            (ctx.tx >= halo) & (ctx.tx < _TILE - halo)
            & (ctx.ty >= halo) & (ctx.ty < _TILE - halo)
        )
        # Border cells of the *global* grid clamp instead of shrinking.
        on_edge = (
            ((oy + ctx.ty) <= 0) | ((oy + ctx.ty) >= rows - 1)
            | ((ox + ctx.tx) <= 0) | ((ox + ctx.tx) >= cols - 1)
        )
        in_grid = (
            ((oy + ctx.ty) >= 0) & ((oy + ctx.ty) < rows)
            & ((ox + ctx.tx) >= 0) & ((ox + ctx.tx) < cols)
        )
        compute = valid & ~on_edge & in_grid
        with ctx.masked(compute):
            c = ctx.load(tile, lin)
            up = ctx.load(tile, lin - _TILE)
            dn = ctx.load(tile, lin + _TILE)
            lf = ctx.load(tile, lin - 1)
            rt = ctx.load(tile, lin + 1)
            pw = ctx.load(ptile, lin)
            ctx.alu(12)
            new = c + (_STEP / _CAP) * (
                pw
                + (up + dn - 2.0 * c) / _RY
                + (lf + rt - 2.0 * c) / _RX
                + (_AMB - c) / _RZ
            )
        ctx.sync()
        with ctx.masked(compute):
            ctx.store(tile, lin, new)
        ctx.sync()

    # Write back the inner region this block owns.
    own = (
        (ctx.tx >= _PYRAMID) & (ctx.tx < _TILE - _PYRAMID)
        & (ctx.ty >= _PYRAMID) & (ctx.ty < _TILE - _PYRAMID)
        & ((oy + ctx.ty) < rows) & ((ox + ctx.tx) < cols)
        & ((oy + ctx.ty) >= 0) & ((ox + ctx.tx) >= 0)
    )
    with ctx.masked(own):
        ctx.store(temp_out, (oy + ctx.ty) * cols + (ox + ctx.tx),
                  ctx.load(tile, lin))


def gpu_run(gpu: GPU, scale: SimScale = SimScale.SMALL) -> np.ndarray:
    p = gpu_sizes(scale)
    rows, cols, steps = p["rows"], p["cols"], p["steps"]
    temp_h, power_h = _inputs(p)
    a = gpu.to_device(temp_h.astype(np.float32), name="temp_a")
    b = gpu.to_device(temp_h.astype(np.float32), name="temp_b")
    power = gpu.to_device(power_h.astype(np.float32), name="power")
    inner = _TILE - 2 * _PYRAMID
    gx = (cols + inner - 1) // inner
    gy = (rows + inner - 1) // inner
    done = 0
    src, dst = a, b
    while done < steps:
        batch = min(_PYRAMID, steps - done)
        gpu.launch(
            _hotspot_kernel, (gx, gy), (_TILE, _TILE),
            src, dst, power, rows, cols, batch,
            regs_per_thread=24, name="hotspot_tile",
        )
        src, dst = dst, src
        done += batch
    return src.to_host()


def cpu_run(machine: Machine, scale: SimScale = SimScale.SMALL) -> np.ndarray:
    p = cpu_sizes(scale)
    rows, cols, steps = p["rows"], p["cols"], p["steps"]
    temp_h, power_h = _inputs(p)
    src = machine.array(temp_h, name="temp_a")
    dst = machine.array(temp_h.copy(), name="temp_b")
    power = machine.array(power_h, name="power")

    def band(t, src, dst):
        cols_idx = np.arange(1, cols - 1)
        for r in t.chunk(rows):
            if r == 0 or r == rows - 1:
                row_vals = t.load(src, r * cols + np.arange(cols))
                t.store(dst, r * cols + np.arange(cols), row_vals)
                continue
            c = t.load(src, r * cols + cols_idx)
            up = t.load(src, (r - 1) * cols + cols_idx)
            dn = t.load(src, (r + 1) * cols + cols_idx)
            lf = t.load(src, r * cols + cols_idx - 1)
            rt = t.load(src, r * cols + cols_idx + 1)
            pw = t.load(power, r * cols + cols_idx)
            t.alu(12 * cols_idx.size)
            new = c + (_STEP / _CAP) * (
                pw + (up + dn - 2 * c) / _RY + (lf + rt - 2 * c) / _RX
                + (_AMB - c) / _RZ
            )
            t.store(dst, r * cols + cols_idx, new)
            edge = t.load(src, np.array([r * cols, r * cols + cols - 1]))
            t.store(dst, np.array([r * cols, r * cols + cols - 1]), edge)

    for _ in range(steps):
        machine.parallel(band, src, dst)
        src, dst = dst, src
    return src.to_host()


def _reference_cpu(p: dict) -> np.ndarray:
    """CPU variant clamps only left/right of interior rows; rows 0 and
    rows-1 are copied verbatim, matching the banded implementation."""
    temp, power = _inputs(p)
    for _ in range(p["steps"]):
        new = _step_numpy(temp, power)
        new[0] = temp[0]
        new[-1] = temp[-1]
        new[1:-1, 0] = temp[1:-1, 0]
        new[1:-1, -1] = temp[1:-1, -1]
        temp = new
    return temp


def check_gpu(result: np.ndarray, scale: SimScale) -> None:
    p = gpu_sizes(scale)
    expected = _reference_gpu(p)
    np.testing.assert_allclose(result, expected, rtol=1e-4)


def _reference_gpu(p: dict) -> np.ndarray:
    """GPU variant holds global-edge cells constant (on_edge mask)."""
    temp, power = _inputs(p)
    for _ in range(p["steps"]):
        new = _step_numpy(temp, power)
        new[0], new[-1] = temp[0], temp[-1]
        new[:, 0], new[:, -1] = temp[:, 0], temp[:, -1]
        temp = new
    return temp


def check_cpu(result: np.ndarray, scale: SimScale) -> None:
    np.testing.assert_allclose(result, _reference_cpu(cpu_sizes(scale)), rtol=1e-10)


register(
    WorkloadDef(
        META, cpu_fn=cpu_run, gpu_fn=gpu_run,
        check_cpu=check_cpu, check_gpu=check_gpu,
    )
)
