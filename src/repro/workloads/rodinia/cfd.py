"""CFD Solver (Rodinia) — Unstructured Grid dwarf, fluid dynamics.

Paper problem size: 97k elements.

An unstructured-grid finite-volume solver for the 3-D Euler equations
(Corrigan et al. [11]).  Per element and Runge-Kutta stage, the flux
kernel gathers the 4 face neighbors' conserved variables (density,
momentum, energy), evaluates upwind-ish face fluxes with the stored face
normals, and accumulates the residual.  Variables are stored
**structure-of-arrays** (variable-major) so same-variable gathers
coalesce — the data-layout optimization the paper highlights.  The
neighbor gathers still generate abundant global traffic, which is why
Figure 4 shows CFD among the most channel-sensitive workloads.
"""

from __future__ import annotations

import numpy as np

from repro.common.config import SimScale
from repro.common.rng import make_rng
from repro.cpusim import Machine
from repro.gpusim import GPU
from repro.inputs.meshes import cfd_mesh
from repro.workloads.base import WorkloadDef, WorkloadMeta, register

META = WorkloadMeta(
    name="cfd",
    suite="rodinia",
    dwarf="Unstructured Grid",
    domain="Fluid Dynamics",
    paper_size="97k elements",
    short="CFD",
    description="Unstructured finite-volume Euler solver, SoA layout",
)

_NVAR = 5      # rho, mx, my, mz, energy
_NFACE = 4
_RK = 3
_BLOCK = 128
_DT = 1e-3


def gpu_sizes(scale: SimScale) -> dict:
    nx, ny = {SimScale.TINY: (24, 24), SimScale.SMALL: (64, 48),
              SimScale.MEDIUM: (96, 96),
              SimScale.LARGE: (160, 160)}[scale]
    return {"nx": nx, "ny": ny, "nz": 2, "iters": 2}


def cpu_sizes(scale: SimScale) -> dict:
    nx, ny = {SimScale.TINY: (16, 16), SimScale.SMALL: (40, 32),
              SimScale.MEDIUM: (64, 64),
              SimScale.LARGE: (112, 112)}[scale]
    return {"nx": nx, "ny": ny, "nz": 2, "iters": 2}


def _inputs(p: dict):
    mesh = cfd_mesh(p["nx"], p["ny"], p["nz"], seed_tag="cfd")
    rng = make_rng("cfd-state", mesh.n_elements)
    state = np.empty((_NVAR, mesh.n_elements), dtype=np.float64)
    state[0] = rng.uniform(0.9, 1.1, mesh.n_elements)          # density
    state[1:4] = rng.normal(0.0, 0.05, (3, mesh.n_elements))   # momentum
    state[4] = rng.uniform(2.4, 2.6, mesh.n_elements)          # energy
    return mesh, state


def _flux_numpy(state: np.ndarray, mesh) -> np.ndarray:
    """Residual of every element (vectorized reference)."""
    n = mesh.n_elements
    nbr = mesh.neighbors           # (n, 4)
    normals = mesh.face_normals    # (n, 4, 3)
    res = np.zeros_like(state)
    own = state                            # (5, n)
    for f in range(_NFACE):
        valid = nbr[:, f] >= 0
        other = np.where(valid, nbr[:, f], 0)
        s_o = state[:, other]              # (5, n)
        # Boundary faces reflect (use own state).
        s_o = np.where(valid[None, :], s_o, own)
        avg = 0.5 * (own + s_o)
        nx, ny, nz = normals[:, f, 0], normals[:, f, 1], normals[:, f, 2]
        vel_n = (avg[1] * nx + avg[2] * ny + avg[3] * nz) / avg[0]
        for v in range(_NVAR):
            res[v] += vel_n * avg[v] - 0.1 * (s_o[v] - own[v])
    res /= mesh.volumes[None, :]
    return res


def reference(p: dict) -> np.ndarray:
    mesh, state = _inputs(p)
    for _ in range(p["iters"]):
        old = state.copy()
        for rk in range(_RK, 0, -1):
            res = _flux_numpy(state, mesh)
            state = old - (_DT / rk) * res
    return state


def _flux_kernel(ctx, state, nbr, normals, volumes, res, n):
    """Per-element residual with SoA gathers of 4 face neighbors."""
    i = ctx.gtid
    with ctx.masked(i < n):
        own = []
        for v in range(_NVAR):
            own.append(ctx.load(state, v * n + i))
        acc = [ctx.const(0.0, np.float64) for _ in range(_NVAR)]
        for f in range(_NFACE):
            ctx.alu(2)
            nb = ctx.load(nbr, i * _NFACE + f)
            valid = nb >= 0
            nb_safe = np.where(valid, nb, 0)
            other = []
            for v in range(_NVAR):
                ov = ctx.load(state, v * n + nb_safe)
                ctx.alu(1)
                other.append(np.where(valid, ov, own[v]))
            # Normals in SoA layout ((f, axis)-major) for coalescing.
            nx = ctx.load(normals, (f * 3 + 0) * n + i)
            ny = ctx.load(normals, (f * 3 + 1) * n + i)
            nz = ctx.load(normals, (f * 3 + 2) * n + i)
            ctx.alu(12)
            avg = [0.5 * (own[v] + other[v]) for v in range(_NVAR)]
            vel_n = (avg[1] * nx + avg[2] * ny + avg[3] * nz) / avg[0]
            ctx.alu(4 * _NVAR)
            for v in range(_NVAR):
                acc[v] = acc[v] + vel_n * avg[v] - 0.1 * (other[v] - own[v])
        vol = ctx.load(volumes, i)
        ctx.alu(_NVAR)
        for v in range(_NVAR):
            ctx.store(res, v * n + i, acc[v] / vol)


def _rk_update_kernel(ctx, state, old, res, factor, n):
    i = ctx.gtid
    with ctx.masked(i < n):
        for v in range(_NVAR):
            o = ctx.load(old, v * n + i)
            r = ctx.load(res, v * n + i)
            ctx.alu(2)
            ctx.store(state, v * n + i, o - factor * r)


def _copy_kernel(ctx, dst, src, total):
    i = ctx.gtid
    with ctx.masked(i < total):
        ctx.store(dst, i, ctx.load(src, i))


def gpu_run(gpu: GPU, scale: SimScale = SimScale.SMALL) -> np.ndarray:
    p = gpu_sizes(scale)
    mesh, state_h = _inputs(p)
    n = mesh.n_elements
    state = gpu.to_device(state_h.astype(np.float32).reshape(-1), name="state")
    old = gpu.alloc(_NVAR * n, dtype=np.float32, name="old")
    res = gpu.alloc(_NVAR * n, dtype=np.float32, name="res")
    nbr = gpu.to_device(mesh.neighbors.astype(np.int32).reshape(-1), name="nbr")
    # (n, 4, 3) -> (4*3, n): SoA so each (face, axis) plane coalesces.
    normals = gpu.to_device(
        mesh.face_normals.astype(np.float32).reshape(-1, 12).T.copy().reshape(-1),
        name="normals",
    )
    volumes = gpu.to_device(mesh.volumes.astype(np.float32), name="volumes")
    grid = (n + _BLOCK - 1) // _BLOCK
    copy_grid = (_NVAR * n + _BLOCK - 1) // _BLOCK
    for _ in range(p["iters"]):
        gpu.launch(_copy_kernel, copy_grid, _BLOCK, old, state, _NVAR * n,
                   regs_per_thread=8, name="cfd_copy")
        for rk in range(_RK, 0, -1):
            gpu.launch(_flux_kernel, grid, _BLOCK, state, nbr, normals,
                       volumes, res, n, regs_per_thread=40, name="cfd_flux")
            gpu.launch(_rk_update_kernel, grid, _BLOCK, state, old, res,
                       _DT / rk, n, regs_per_thread=12, name="cfd_rk_update")
    return state.to_host().reshape(_NVAR, n)


def cpu_run(machine: Machine, scale: SimScale = SimScale.SMALL) -> np.ndarray:
    p = cpu_sizes(scale)
    mesh, state_h = _inputs(p)
    n = mesh.n_elements
    state = machine.array(state_h.reshape(-1), name="state")
    old = machine.alloc(_NVAR * n, name="old")
    res = machine.alloc(_NVAR * n, name="res")
    nbrs = machine.array(mesh.neighbors.reshape(-1), name="nbr")
    normals = machine.array(mesh.face_normals.reshape(-1), name="normals")
    volumes = machine.array(mesh.volumes, name="volumes")

    def copy_state(t):
        for i in t.chunk(_NVAR * n):
            t.store(old, i, t.load(state, i))

    def flux(t):
        for i in t.chunk(n):
            own = t.load(state, np.arange(_NVAR) * n + i)
            acc = np.zeros(_NVAR)
            nb4 = t.load(nbrs, i * _NFACE + np.arange(_NFACE))
            for f in range(_NFACE):
                nb = int(nb4[f])
                t.branch(1)
                if nb >= 0:
                    other = t.load(state, np.arange(_NVAR) * n + nb)
                else:
                    other = own
                nrm = t.load(normals, (i * _NFACE + f) * 3 + np.arange(3))
                t.alu(12 + 4 * _NVAR)
                avg = 0.5 * (own + other)
                vel_n = (avg[1] * nrm[0] + avg[2] * nrm[1] + avg[3] * nrm[2]) / avg[0]
                acc += vel_n * avg - 0.1 * (other - own)
            vol = t.load(volumes, i)
            t.alu(_NVAR)
            t.store(res, np.arange(_NVAR) * n + i, acc / vol)

    def rk_update(t, factor):
        for i in t.chunk(n):
            idx = np.arange(_NVAR) * n + i
            o = t.load(old, idx)
            r = t.load(res, idx)
            t.alu(2 * _NVAR)
            t.store(state, idx, o - factor * r)

    for _ in range(p["iters"]):
        machine.parallel(copy_state)
        for rk in range(_RK, 0, -1):
            machine.parallel(flux)
            machine.parallel(rk_update, _DT / rk)
    return state.to_host().reshape(_NVAR, n)


def check_gpu(result: np.ndarray, scale: SimScale) -> None:
    # GPU state is float32 (as in the CUDA original); reference is float64.
    np.testing.assert_allclose(result, reference(gpu_sizes(scale)), rtol=2e-3, atol=1e-5)


def check_cpu(result: np.ndarray, scale: SimScale) -> None:
    np.testing.assert_allclose(result, reference(cpu_sizes(scale)), rtol=1e-5, atol=1e-8)


register(
    WorkloadDef(
        META, cpu_fn=cpu_run, gpu_fn=gpu_run,
        check_cpu=check_cpu, check_gpu=check_gpu,
    )
)
