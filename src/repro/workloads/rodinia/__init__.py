"""Rodinia workload implementations."""
