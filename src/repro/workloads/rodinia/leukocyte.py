"""Leukocyte Tracking (Rodinia) — Structured Grid dwarf, medical imaging.

Paper problem size: 219x640 pixels/frame.

Detects white blood cells in in-vivo microscopy with the GICOV score
(gradient inner product along sample circles) followed by a dilation
(local max) pass — the pipeline of Boyer et al. [6], which the paper's
Table III tracks across two optimization levels:

- **Version 1**: one thread per pixel; sin/cos sample tables in
  **constant memory**, gradient images in **texture memory**; scores
  written to global memory, dilation reads them back through texture.
- **Version 2**: persistent thread blocks (grid = number of SMs; each
  block loops over image strips) keep scores in shared memory through
  dilation, eliminating nearly all global traffic — Table III's
  "Global: 0.0%" row — and improving IPC.
"""

from __future__ import annotations

import numpy as np

from repro.common.config import SimScale
from repro.cpusim import Machine
from repro.gpusim import GPU
from repro.inputs.images import cell_image
from repro.workloads.base import WorkloadDef, WorkloadMeta, register

META = WorkloadMeta(
    name="leukocyte",
    suite="rodinia",
    dwarf="Structured Grid",
    domain="Medical Imaging",
    paper_size="219x640 pixels/frame",
    short="LC",
    description="GICOV cell detection + dilation; const/tex-heavy kernels",
)

_BLOCK = 128        # v1: one thread per pixel
_BLOCK_V2 = 512     # v2: persistent blocks sized to keep each SM fed
_N_SAMPLES = 24
_RADIUS = 6.0
_DILATE_R = 3


def gpu_sizes(scale: SimScale) -> dict:
    h, w = {SimScale.TINY: (40, 80), SimScale.SMALL: (80, 160),
            SimScale.MEDIUM: (160, 320),
            SimScale.LARGE: (256, 512)}[scale]
    return {"h": h, "w": w, "n_cells": 4}


def cpu_sizes(scale: SimScale) -> dict:
    h, w = {SimScale.TINY: (40, 80), SimScale.SMALL: (64, 128),
            SimScale.MEDIUM: (128, 256),
            SimScale.LARGE: (192, 384)}[scale]
    return {"h": h, "w": w, "n_cells": 4}


def _inputs(p: dict):
    img, centers = cell_image(p["h"], p["w"], p["n_cells"], _RADIUS,
                              seed_tag="leukocyte")
    gy, gx = np.gradient(img)
    sample = np.arange(_N_SAMPLES) * (2.0 * np.pi / _N_SAMPLES)
    sin_t = np.sin(sample)
    cos_t = np.cos(sample)
    return (img.astype(np.float32), gy.astype(np.float32),
            gx.astype(np.float32), sin_t.astype(np.float32),
            cos_t.astype(np.float32), centers)


def _gicov_numpy(gy, gx, sin_t, cos_t, h, w):
    """GICOV score per pixel: mean^2/var of the radial gradient samples."""
    ys, xs = np.mgrid[0:h, 0:w]
    scores = np.zeros((h, w))
    samples = np.zeros((_N_SAMPLES, h, w))
    for s in range(_N_SAMPLES):
        sy = np.clip((ys + _RADIUS * sin_t[s]).astype(np.int64), 0, h - 1)
        sx = np.clip((xs + _RADIUS * cos_t[s]).astype(np.int64), 0, w - 1)
        samples[s] = gy[sy, sx] * sin_t[s] + gx[sy, sx] * cos_t[s]
    mean = samples.mean(axis=0)
    var = samples.var(axis=0) + 1e-6
    return mean * mean / var


def _dilate_numpy(scores, h, w):
    out = np.zeros_like(scores)
    for y in range(h):
        lo_y, hi_y = max(0, y - _DILATE_R), min(h, y + _DILATE_R + 1)
        for x in range(w):
            lo_x, hi_x = max(0, x - _DILATE_R), min(w, x + _DILATE_R + 1)
            out[y, x] = scores[lo_y:hi_y, lo_x:hi_x].max()
    return out


def reference(p: dict) -> np.ndarray:
    """Dilated GICOV map (float32 pipeline, matching the kernels)."""
    img, gy, gx, sin_t, cos_t, _ = _inputs(p)
    h, w = p["h"], p["w"]
    scores = _gicov_numpy(
        gy.astype(np.float64), gx.astype(np.float64),
        sin_t.astype(np.float64), cos_t.astype(np.float64), h, w
    )
    return _dilate_numpy(scores, h, w)


def detected_centers(dilated: np.ndarray, scores_needed: int = 4):
    """Local maxima of the dilated map (host-side peak picking)."""
    h, w = dilated.shape
    flat = dilated.reshape(-1)
    order = np.argsort(flat)[::-1]
    picked = []
    for idx in order:
        y, x = divmod(int(idx), w)
        if all((y - py) ** 2 + (x - px) ** 2 > (4 * _RADIUS) ** 2
               for py, px in picked):
            picked.append((y, x))
        if len(picked) == scores_needed:
            break
    return np.array(picked, dtype=np.float64)


def _gicov_kernel_v1(ctx, tex_gy, tex_gx, const_sin, const_cos, scores, h, w):
    """One thread per pixel; writes the score to global memory."""
    i = ctx.gtid
    with ctx.masked(i < h * w):
        ctx.alu(3)
        y = i // w
        x = i % w
        acc = ctx.const(0.0, dtype=np.float64)
        acc2 = ctx.const(0.0, dtype=np.float64)
        for s in range(_N_SAMPLES):
            st = ctx.load(const_sin, s)
            ct = ctx.load(const_cos, s)
            ctx.alu(8)
            sy = np.clip((y + _RADIUS * st).astype(np.int64), 0, h - 1)
            sx = np.clip((x + _RADIUS * ct).astype(np.int64), 0, w - 1)
            gy_v = ctx.load(tex_gy, sy * w + sx)
            gx_v = ctx.load(tex_gx, sy * w + sx)
            ctx.alu(5)
            v = gy_v * st + gx_v * ct
            acc = acc + v
            acc2 = acc2 + v * v
        ctx.alu(8)
        mean = acc / _N_SAMPLES
        var = acc2 / _N_SAMPLES - mean * mean + 1e-6
        ctx.store(scores, i, mean * mean / var)


def _dilate_kernel_v1(ctx, tex_scores, dilated, h, w):
    i = ctx.gtid
    with ctx.masked(i < h * w):
        ctx.alu(3)
        y = i // w
        x = i % w
        best = ctx.const(-np.inf, dtype=np.float64)
        for dy in range(-_DILATE_R, _DILATE_R + 1):
            for dx in range(-_DILATE_R, _DILATE_R + 1):
                ctx.alu(4)
                sy = np.clip(y + dy, 0, h - 1)
                sx = np.clip(x + dx, 0, w - 1)
                inb = (y + dy >= 0) & (y + dy < h) & (x + dx >= 0) & (x + dx < w)
                v = ctx.load(tex_scores, sy * w + sx)
                ctx.alu(1)
                best = np.where(inb, np.maximum(best, v), best)
        ctx.store(dilated, i, best)


def _fused_kernel_v2(ctx, tex_gy, tex_gx, const_sin, const_cos, dilated,
                     h, w, n_sms):
    """Persistent-block version: each block loops over row strips, keeps
    the strip's scores (plus apron) in shared memory, and writes only the
    final dilated values."""
    n = h * w
    rows_per_strip = max(1, ctx.nthreads // w)
    strip_px = rows_per_strip * w
    n_strips = (n + strip_px - 1) // strip_px
    apron = _DILATE_R
    smem_rows = rows_per_strip + 2 * apron
    strip_scores = ctx.shared((smem_rows, w), dtype=np.float32, name="scores")

    def gicov_at(flat_idx, valid):
        """Score of pixels at flat image positions (masked by valid)."""
        ctx.alu(3)
        yy = np.clip(flat_idx // w, 0, h - 1)
        xx = flat_idx % w
        acc = ctx.const(0.0, dtype=np.float64)
        acc2 = ctx.const(0.0, dtype=np.float64)
        with ctx.masked(valid):
            for s in range(_N_SAMPLES):
                st = ctx.load(const_sin, s)
                ct = ctx.load(const_cos, s)
                ctx.alu(8)
                sy = np.clip((yy + _RADIUS * st).astype(np.int64), 0, h - 1)
                sx = np.clip((xx + _RADIUS * ct).astype(np.int64), 0, w - 1)
                gy_v = ctx.load(tex_gy, sy * w + sx)
                gx_v = ctx.load(tex_gx, sy * w + sx)
                ctx.alu(5)
                v = gy_v * st + gx_v * ct
                acc = acc + v
                acc2 = acc2 + v * v
        ctx.alu(8)
        mean = acc / _N_SAMPLES
        var = acc2 / _N_SAMPLES - mean * mean + 1e-6
        return mean * mean / var

    def compute_row(img_row: int) -> None:
        """Score one image row into its ring-buffer slot."""
        if img_row < 0 or img_row >= h:
            return
        slot = img_row % smem_rows
        for cbase in range(0, w, ctx.nthreads):
            ctx.alu(3)
            lanes_x = cbase + ctx.tidx
            valid = lanes_x < w
            flat = img_row * w + np.minimum(lanes_x, w - 1)
            sc = gicov_at(flat, valid)
            with ctx.masked(valid):
                ctx.store(strip_scores,
                          slot * w + np.minimum(lanes_x, w - 1), sc)

    # Persistent blocks own *contiguous* strip ranges, so the shared
    # ring buffer slides down the image and every row's GICOV score is
    # computed exactly once (the point of the persistent-block version).
    chunk = (n_strips + n_sms - 1) // n_sms
    start = ctx.bidx * chunk
    end = min(start + chunk, n_strips)
    computed_hi = None
    for strip in range(start, end):
        base_row = strip * rows_per_strip
        lo_needed = base_row - apron
        hi_needed = base_row + rows_per_strip + apron
        lo_compute = lo_needed if computed_hi is None else computed_hi
        for img_row in range(lo_compute, hi_needed):
            compute_row(img_row)
        computed_hi = hi_needed
        ctx.sync()
        # Dilate within shared memory; write final values to global.
        for r in range(rows_per_strip):
            img_row = base_row + r
            if img_row >= h:
                break
            for cbase in range(0, w, ctx.nthreads):
                ctx.alu(3)
                lanes_x = cbase + ctx.tidx
                valid = lanes_x < w
                with ctx.masked(valid):
                    best = ctx.const(-np.inf, dtype=np.float64)
                    for dy in range(-_DILATE_R, _DILATE_R + 1):
                        for dx in range(-_DILATE_R, _DILATE_R + 1):
                            ctx.alu(3)
                            sx = np.clip(lanes_x + dx, 0, w - 1)
                            srow = ((img_row + dy) % smem_rows + smem_rows) % smem_rows
                            inb = ((lanes_x + dx >= 0) & (lanes_x + dx < w)
                                   & (img_row + dy >= 0)
                                   & (img_row + dy < h))
                            v = ctx.load(strip_scores, srow * w + sx)
                            ctx.alu(1)
                            best = np.where(inb, np.maximum(best, v), best)
                    ctx.store(dilated, img_row * w + np.minimum(lanes_x, w - 1),
                              best)
        ctx.sync()


def _gpu_common(gpu: GPU, scale: SimScale):
    p = gpu_sizes(scale)
    img, gy, gx, sin_t, cos_t, centers = _inputs(p)
    h, w = p["h"], p["w"]
    tex_gy = gpu.to_texture(gy.reshape(-1), name="grad_y")
    tex_gx = gpu.to_texture(gx.reshape(-1), name="grad_x")
    const_sin = gpu.to_const(sin_t, name="sin_table")
    const_cos = gpu.to_const(cos_t, name="cos_table")
    return p, h, w, tex_gy, tex_gx, const_sin, const_cos


def gpu_run_v1(gpu: GPU, scale: SimScale = SimScale.SMALL) -> np.ndarray:
    p, h, w, tex_gy, tex_gx, const_sin, const_cos = _gpu_common(gpu, scale)
    n = h * w
    scores = gpu.alloc(n, name="scores")
    dilated = gpu.alloc(n, dtype=np.float64, name="dilated")
    grid = (n + _BLOCK - 1) // _BLOCK
    gpu.launch(_gicov_kernel_v1, grid, _BLOCK, tex_gy, tex_gx, const_sin,
               const_cos, scores, h, w, regs_per_thread=24,
               name="gicov_v1")
    tex_scores = gpu.to_texture(scores.to_host(), name="scores_tex")
    gpu.launch(_dilate_kernel_v1, grid, _BLOCK, tex_scores, dilated, h, w,
               regs_per_thread=16, name="dilate_v1")
    return dilated.to_host().reshape(h, w)


def gpu_run(gpu: GPU, scale: SimScale = SimScale.SMALL) -> np.ndarray:
    """Version 2 (persistent thread blocks), the released implementation."""
    p, h, w, tex_gy, tex_gx, const_sin, const_cos = _gpu_common(gpu, scale)
    dilated = gpu.alloc(h * w, dtype=np.float64, name="dilated")
    n_sms = gpu.config.n_sms
    gpu.launch(_fused_kernel_v2, n_sms, _BLOCK_V2, tex_gy, tex_gx, const_sin,
               const_cos, dilated, h, w, n_sms, regs_per_thread=32,
               name="gicov_dilate_v2")
    return dilated.to_host().reshape(h, w)


def cpu_run(machine: Machine, scale: SimScale = SimScale.SMALL) -> np.ndarray:
    p = cpu_sizes(scale)
    img, gy_h, gx_h, sin_t, cos_t, centers = _inputs(p)
    h, w = p["h"], p["w"]
    gy = machine.array(gy_h.astype(np.float64), name="grad_y")
    gx = machine.array(gx_h.astype(np.float64), name="grad_x")
    scores = machine.alloc(h * w, name="scores")
    dilated = machine.alloc(h * w, name="dilated")
    sin64 = sin_t.astype(np.float64)
    cos64 = cos_t.astype(np.float64)

    def gicov(t):
        xs = np.arange(w)
        for y in t.chunk(h):
            acc = np.zeros(w)
            acc2 = np.zeros(w)
            for s in range(_N_SAMPLES):
                sy = int(np.clip(np.trunc(y + _RADIUS * sin64[s]), 0, h - 1))
                sx = np.clip((xs + _RADIUS * cos64[s]).astype(np.int64), 0, w - 1)
                gy_v = t.load(gy, sy * w + sx)
                gx_v = t.load(gx, sy * w + sx)
                t.alu(5 * w)
                v = gy_v * sin64[s] + gx_v * cos64[s]
                acc += v
                acc2 += v * v
            t.alu(8 * w)
            mean = acc / _N_SAMPLES
            var = acc2 / _N_SAMPLES - mean * mean + 1e-6
            t.store(scores, y * w + xs, mean * mean / var)

    def dilate(t):
        xs = np.arange(w)
        for y in t.chunk(h):
            best = np.full(w, -np.inf)
            for dy in range(-_DILATE_R, _DILATE_R + 1):
                yy = y + dy
                if yy < 0 or yy >= h:
                    continue
                row = t.load(scores, yy * w + xs)
                t.alu(2 * w)
                for dx in range(-_DILATE_R, _DILATE_R + 1):
                    shifted = np.roll(row, dx)
                    if dx > 0:
                        shifted[:dx] = -np.inf
                    elif dx < 0:
                        shifted[dx:] = -np.inf
                    best = np.maximum(best, shifted)
            t.store(dilated, y * w + xs, best)

    machine.parallel(gicov)
    machine.parallel(dilate)
    return dilated.to_host().reshape(h, w)


def _check(result: np.ndarray, p: dict) -> None:
    img, gy, gx, sin_t, cos_t, centers = _inputs(p)
    h, w = p["h"], p["w"]
    expected = reference(p)
    # The float32 texture path introduces small numeric differences;
    # verify the dilated score map and that detection still finds the
    # planted cells.
    np.testing.assert_allclose(result, expected, rtol=5e-3, atol=1e-4)
    found = detected_centers(result, p["n_cells"])
    for cy, cx in centers:
        d = np.sqrt(((found - [cy, cx]) ** 2).sum(axis=1)).min()
        if d > 2.5 * _RADIUS:
            raise AssertionError(f"cell at ({cy:.0f},{cx:.0f}) not detected")


def check_gpu(result: np.ndarray, scale: SimScale) -> None:
    _check(result, gpu_sizes(scale))


def check_cpu(result: np.ndarray, scale: SimScale) -> None:
    _check(result, cpu_sizes(scale))


register(
    WorkloadDef(
        META,
        cpu_fn=cpu_run,
        gpu_fn=gpu_run,
        gpu_versions={1: gpu_run_v1, 2: gpu_run},
        check_cpu=check_cpu,
        check_gpu=check_gpu,
    )
)
