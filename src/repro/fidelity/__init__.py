"""Fidelity & regression observability for the reproduction.

The experiment layer *produces* the paper's numbers; this package
*watches* them.  Three pieces, layered on :mod:`repro.telemetry` and the
typed :class:`~repro.experiments.ExperimentResult`:

- **Run registry** (:mod:`repro.fidelity.registry`) — every
  ``run_experiment()`` invocation (and every CLI run) can be persisted
  as a content-keyed JSON :class:`RunRecord` under a configurable
  directory, capturing the reproduced metrics, telemetry counter
  totals, span timings, and wall-clock durations.  Identical results
  hash to the identical record, so the registry stores *distinct
  outcomes*, not noise.

- **Golden references** (:mod:`repro.fidelity.goldens`) — pinned
  reference values for the paper-facing figures (Fig 1 IPC, Fig 3
  occupancy buckets, Fig 10 miss rates at 4 MB) with per-metric
  relative tolerances.

- **Drift gate** (:mod:`repro.fidelity.drift`) — diff a run against the
  paper goldens or any prior :class:`RunRecord` and get a typed
  :class:`DriftReport` with a pass/warn/fail verdict per metric and a
  nonzero exit code for CI (``runner ... --baseline paper``).

Entry points::

    from repro.fidelity import (
        RunRecord, RunRegistry, record_from_results,
        check_drift, paper_goldens,
    )
"""

from __future__ import annotations

from repro.fidelity.drift import (
    DEFAULT_FAIL_RATIO,
    DriftReport,
    MetricDrift,
    Tolerance,
    check_drift,
    tolerance_for,
)
from repro.fidelity.goldens import (
    GOLDEN_EXPERIMENTS,
    build_goldens,
    golden_scales,
    paper_goldens,
)
from repro.fidelity.registry import (
    RunRecord,
    RunRegistry,
    flatten_metrics,
    record_from_results,
)

__all__ = [
    "DEFAULT_FAIL_RATIO",
    "DriftReport",
    "GOLDEN_EXPERIMENTS",
    "MetricDrift",
    "RunRecord",
    "RunRegistry",
    "Tolerance",
    "build_goldens",
    "check_drift",
    "flatten_metrics",
    "golden_scales",
    "paper_goldens",
    "record_from_results",
    "tolerance_for",
]
