"""Drift gate: diff reproduced metrics against a reference, with verdicts.

:func:`check_drift` compares a flat ``metric -> value`` mapping (from a
fresh run) against a baseline (the paper goldens or a prior
:class:`~repro.fidelity.registry.RunRecord`) and returns a typed
:class:`DriftReport`:

- **pass** — within the metric's tolerance budget.
- **warn** — outside the budget but within ``fail_ratio`` times it
  (drifting, not yet broken).
- **fail** — beyond the warn band, or present in the baseline but
  missing from the run.
- **new**  — produced by the run but absent from the baseline
  (informational; new workloads/fields are not regressions).

Only experiments covered by *both* sides are compared, so gating a
``fig1``-only run against the full golden table does not drown in
"missing" noise for figures that never ran.

Tolerances are resolved per metric path by longest-prefix rule
(:func:`tolerance_for`); the budget for an expected value ``e`` is
``max(abs_floor, rel * |e|)``, so near-zero expectations (empty
occupancy buckets, 0% miss rates) do not demand infinite relative
precision.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.tables import Table

#: A metric "fails" beyond ``fail_ratio`` times its tolerance budget;
#: between 1x and this it "warns".
DEFAULT_FAIL_RATIO = 2.0


@dataclasses.dataclass(frozen=True)
class Tolerance:
    """Per-metric error budget: relative band with an absolute floor."""

    rel: float = 0.05
    abs_floor: float = 1e-6

    def budget(self, expected: float) -> float:
        return max(self.abs_floor, self.rel * abs(expected))


#: Longest-prefix tolerance rules for known metric families.  IPC is in
#: instructions/cycle (hundreds), occupancy buckets are warp fractions,
#: miss rates are misses per reference — each gets an absolute floor in
#: its own units.
TOLERANCE_RULES: Tuple[Tuple[str, Tolerance], ...] = (
    ("fig1/", Tolerance(rel=0.05, abs_floor=0.5)),
    ("fig3/", Tolerance(rel=0.05, abs_floor=0.01)),
    ("fig10/", Tolerance(rel=0.05, abs_floor=5e-4)),
    # Simulated-GPU counter sets (repro.gpusim.profiler).  Counters are
    # deterministic functions of (trace, config), so the budget is tight:
    # 1% relative catches real model drift while absorbing benign float
    # noise from dependency-version changes in the cache/bincount paths.
    ("gpuprof/", Tolerance(rel=0.01, abs_floor=1e-6)),
    # Service-level metrics (repro.service observability).  Latencies
    # are wall-clock milliseconds on shared CI machines, so the band is
    # wide: 50% relative with a 1ms floor tolerates scheduler noise
    # while still catching order-of-magnitude regressions.  Rates are
    # fractions in [0, 1] and get floors in their own units.
    ("service/", Tolerance(rel=0.5, abs_floor=1.0)),
    ("service/error_rate", Tolerance(rel=0.5, abs_floor=0.01)),
    ("service/warm_hit_rate", Tolerance(rel=0.5, abs_floor=0.05)),
    ("service/coalescing_ratio", Tolerance(rel=0.5, abs_floor=0.05)),
)

DEFAULT_TOLERANCE = Tolerance()


def tolerance_for(metric: str) -> Tolerance:
    """The tolerance budget for a metric path (longest matching prefix)."""
    best: Optional[Tuple[str, Tolerance]] = None
    for prefix, tol in TOLERANCE_RULES:
        if metric.startswith(prefix):
            if best is None or len(prefix) > len(best[0]):
                best = (prefix, tol)
    return best[1] if best else DEFAULT_TOLERANCE


@dataclasses.dataclass(frozen=True)
class MetricDrift:
    """One metric's verdict."""

    metric: str
    expected: Optional[float]
    actual: Optional[float]
    error: float          # |actual - expected|; 0.0 for new/missing
    budget: float         # allowed error for this metric
    status: str           # "pass" | "warn" | "fail" | "missing" | "new"

    @property
    def ratio(self) -> float:
        """Error as a multiple of the budget (sort key for 'worst')."""
        if self.status == "missing":
            return float("inf")
        return self.error / self.budget if self.budget else 0.0

    def row(self) -> List[object]:
        """Table cells (column order of :meth:`DriftReport.to_table`)."""
        return [
            self.metric,
            "-" if self.expected is None else self.expected,
            "-" if self.actual is None else self.actual,
            self.error,
            self.budget,
            "inf" if self.ratio == float("inf") else round(self.ratio, 2),
            self.status,
        ]


@dataclasses.dataclass
class DriftReport:
    """Typed outcome of one drift check; renders as a table, gates CI."""

    baseline: str                 # label: "paper", a record id, a path
    scale: str
    entries: List[MetricDrift]
    experiments: List[str]        # experiment ids actually compared
    skipped: List[str]            # run experiments the baseline lacks

    def _count(self, status: str) -> int:
        return sum(1 for e in self.entries if e.status == status)

    @property
    def n_pass(self) -> int:
        return self._count("pass")

    @property
    def n_warn(self) -> int:
        return self._count("warn")

    @property
    def n_fail(self) -> int:
        return self._count("fail") + self._count("missing")

    @property
    def n_new(self) -> int:
        return self._count("new")

    @property
    def ok(self) -> bool:
        return self.n_fail == 0

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    @property
    def failures(self) -> List[MetricDrift]:
        return [e for e in self.entries if e.status in ("fail", "missing")]

    def worst(self, n: int = 10) -> List[MetricDrift]:
        """The n entries closest to (or beyond) their budget."""
        ranked = [e for e in self.entries if e.status != "new"]
        ranked.sort(key=lambda e: -e.ratio)
        return ranked[:n]

    def summary_line(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        parts = [
            f"{self.n_pass} pass",
            f"{self.n_warn} warn",
            f"{self.n_fail} fail",
        ]
        if self.n_new:
            parts.append(f"{self.n_new} new")
        exps = ",".join(self.experiments) or "none"
        return (
            f"drift vs {self.baseline} @ {self.scale} [{exps}]: "
            f"{verdict} ({', '.join(parts)})"
        )

    def to_table(
        self, entries: Optional[Sequence[MetricDrift]] = None
    ) -> Table:
        """Render entries (all of them by default) as a plain-text table."""
        table = Table(
            f"Drift vs {self.baseline} (scale={self.scale})",
            ["Metric", "Expected", "Actual", "Error", "Budget",
             "xBudget", "Status"],
        )
        for e in (self.entries if entries is None else entries):
            table.add_row(e.row())
        return table


def check_drift(
    metrics: Dict[str, float],
    baseline: Dict[str, float],
    baseline_label: str = "baseline",
    scale: str = "?",
    experiments: Optional[Sequence[str]] = None,
    fail_ratio: float = DEFAULT_FAIL_RATIO,
) -> DriftReport:
    """Compare a run's metrics against a baseline mapping.

    ``experiments`` optionally restricts the run side (defaults to every
    experiment appearing in ``metrics``); the comparison then covers the
    intersection of those with the experiments the baseline knows about.
    """

    def exp_of(metric: str) -> str:
        return metric.split("/", 1)[0]

    run_exps = {exp_of(m) for m in metrics}
    if experiments is not None:
        run_exps &= set(experiments)
    base_exps = {exp_of(m) for m in baseline}
    covered = sorted(run_exps & base_exps)
    skipped = sorted(run_exps - base_exps)
    covered_set = set(covered)

    entries: List[MetricDrift] = []
    for metric in sorted(baseline):
        if exp_of(metric) not in covered_set:
            continue
        expected = baseline[metric]
        tol = tolerance_for(metric)
        budget = tol.budget(expected)
        if metric not in metrics:
            entries.append(MetricDrift(metric, expected, None, 0.0,
                                       budget, "missing"))
            continue
        actual = metrics[metric]
        error = abs(actual - expected)
        if error <= budget:
            status = "pass"
        elif error <= fail_ratio * budget:
            status = "warn"
        else:
            status = "fail"
        entries.append(MetricDrift(metric, expected, actual, error,
                                   budget, status))
    for metric in sorted(metrics):
        if exp_of(metric) in covered_set and metric not in baseline:
            entries.append(MetricDrift(metric, None, metrics[metric], 0.0,
                                       tolerance_for(metric).budget(0.0),
                                       "new"))
    return DriftReport(
        baseline=baseline_label,
        scale=scale,
        entries=entries,
        experiments=covered,
        skipped=skipped,
    )
