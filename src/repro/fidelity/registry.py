"""Run registry: content-keyed JSON records of reproduced metrics.

A :class:`RunRecord` is the durable trace of one reproduction: which
experiments ran at which scale, every numeric metric they produced
(flattened to ``experiment/workload/field`` paths), the telemetry
counter totals and span rollups that were live at the time, and the
wall-clock cost.  :class:`RunRegistry` persists records as one JSON
file each under a directory, named by a content hash over the
*fidelity-relevant* fields (scale, experiments, metrics) — re-running
an unchanged tree rewrites the same file instead of accumulating
duplicates, so the registry's file list is the history of distinct
outcomes.

Timestamps and wall-clock durations are provenance, not content: they
are stored in the record but excluded from the hash.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import numbers
import os
import pathlib
import tempfile
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.common.locks import LockTimeout, store_lock

#: Bump when the record shape changes; refuses cross-version loads.
RECORD_VERSION = 1


def flatten_metrics(experiment: str, data: Any) -> Dict[str, float]:
    """Flatten an ``ExperimentResult.data`` tree into metric paths.

    Numeric leaves become ``experiment/key/.../leaf -> float``; dicts
    recurse, lists/tuples use the element index as the key, and
    non-numeric leaves (labels, markdown payloads, arrays) are skipped.
    Booleans are deliberately not numbers here.
    """
    out: Dict[str, float] = {}

    def walk(prefix: str, value: Any) -> None:
        if isinstance(value, bool):
            return
        if isinstance(value, numbers.Real):
            out[prefix] = float(value)
        elif isinstance(value, dict):
            for key in value:
                walk(f"{prefix}/{key}", value[key])
        elif isinstance(value, (list, tuple)):
            for i, item in enumerate(value):
                walk(f"{prefix}/{i}", item)

    walk(experiment, data)
    return out


@dataclasses.dataclass
class RunRecord:
    """One persisted reproduction outcome.

    kind        -- ``"run"`` (a CLI invocation covering several
                   experiments) or ``"experiment"`` (one
                   ``run_experiment()`` call).
    scale       -- problem-size operating point (``SimScale.value``).
    experiments -- experiment ids covered, in execution order.
    metrics     -- flattened numeric results (see
                   :func:`flatten_metrics`).
    counters    -- telemetry counter totals at record time (empty when
                   telemetry was off).
    span_stats  -- telemetry span rollups ``name -> [count, total_s]``.
    durations   -- per-experiment wall seconds.
    meta        -- free-form provenance (argv, schema hints).
    timestamp   -- local wall-clock time of the run (provenance only).
    run_id      -- content hash; filled by :meth:`stamp`.
    """

    kind: str
    scale: str
    experiments: List[str]
    metrics: Dict[str, float]
    counters: Dict[str, int] = dataclasses.field(default_factory=dict)
    span_stats: Dict[str, List[float]] = dataclasses.field(default_factory=dict)
    durations: Dict[str, float] = dataclasses.field(default_factory=dict)
    meta: Dict[str, Any] = dataclasses.field(default_factory=dict)
    timestamp: str = ""
    run_id: str = ""

    def content_key(self) -> str:
        """Hash of the fidelity-relevant content (not timing/provenance)."""
        payload = json.dumps(
            {
                "kind": self.kind,
                "scale": self.scale,
                "experiments": list(self.experiments),
                "metrics": {k: self.metrics[k] for k in sorted(self.metrics)},
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def stamp(self) -> "RunRecord":
        """Fill ``run_id`` (always) and ``timestamp`` (if empty)."""
        self.run_id = self.content_key()
        if not self.timestamp:
            self.timestamp = time.strftime("%Y-%m-%dT%H:%M:%S%z")
        return self

    def to_json(self) -> str:
        body = dataclasses.asdict(self)
        body["v"] = RECORD_VERSION
        return json.dumps(body, indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "RunRecord":
        body = json.loads(text)
        version = body.pop("v", None)
        if version != RECORD_VERSION:
            raise ValueError(
                f"run record version {version!r}, expected {RECORD_VERSION}"
            )
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(body) - fields
        if unknown:
            raise ValueError(f"run record has unknown fields {sorted(unknown)}")
        return cls(**body)


def record_from_results(
    results: Sequence[Any],
    scale: str,
    kind: str = "run",
    counters: Optional[Dict[str, int]] = None,
    span_stats: Optional[Dict[str, Iterable[float]]] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> RunRecord:
    """Build a (stamped) record from :class:`ExperimentResult` objects."""
    metrics: Dict[str, float] = {}
    durations: Dict[str, float] = {}
    experiments: List[str] = []
    for result in results:
        experiments.append(result.experiment)
        metrics.update(flatten_metrics(result.experiment, result.data))
        dur = result.metadata.get("duration_s")
        if dur is not None:
            durations[result.experiment] = float(dur)
    return RunRecord(
        kind=kind,
        scale=scale,
        experiments=experiments,
        metrics=metrics,
        counters=dict(counters or {}),
        span_stats={k: list(v) for k, v in (span_stats or {}).items()},
        durations=durations,
        meta=dict(meta or {}),
    ).stamp()


class RunRegistry:
    """A directory of :class:`RunRecord` JSON files.

    Files are named ``<kind>-<run_id>.json``; the directory is created
    lazily on first :meth:`save`, so merely constructing a registry (or
    reading an empty one) touches nothing on disk.

    Safe under concurrent cross-process writers: saves publish by
    atomic tmp + rename under a per-run-id-prefix lock, reads are
    lock-free (a complete file or nothing), and directory scans
    tolerate records that a concurrent pruner unlinks mid-scan.
    """

    def __init__(self, root: Union[str, pathlib.Path]):
        self.root = pathlib.Path(root)

    def path_for(self, record: RunRecord) -> pathlib.Path:
        return self.root / f"{record.kind}-{record.run_id}.json"

    def save(self, record: RunRecord) -> pathlib.Path:
        """Persist (stamping if needed); returns the record's path.

        Atomic publish: a concurrent reader never observes a torn
        record.  The lock (sharded on the first two run-id digits)
        keeps same-key writers from churning temp files; on timeout
        the write proceeds unlocked and rename still wins.
        """
        if not record.run_id:
            record.stamp()
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(record)
        lock = store_lock(self.root, f"w-{record.run_id[:2] or '00'}")
        try:
            lock.acquire()
        except LockTimeout:
            pass
        try:
            # ".tmp" suffix keeps in-flight writes out of the "*.json"
            # globs used by records() and prune().
            fd, tmp = tempfile.mkstemp(
                dir=self.root, prefix=path.stem + ".", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    fh.write(record.to_json())
                os.replace(tmp, path)
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
        finally:
            lock.release()
        return path

    def load(self, ref: Union[str, pathlib.Path]) -> RunRecord:
        """Load a record by path, or by run id within this registry."""
        path = pathlib.Path(ref)
        if not path.is_file():
            matches = sorted(self.root.glob(f"*-{ref}.json"))
            if len(matches) != 1:
                raise FileNotFoundError(
                    f"no unique record for {ref!r} in {self.root} "
                    f"({len(matches)} matches)"
                )
            path = matches[0]
        return RunRecord.from_json(path.read_text(encoding="utf-8"))

    def records(self, kind: Optional[str] = None) -> List[RunRecord]:
        """All records, oldest first (by timestamp, then id).

        A record that a concurrent pruner unlinks between the glob and
        the read is silently skipped — scanning a live registry must
        not race its own eviction policy.
        """
        if not self.root.is_dir():
            return []
        out = []
        for p in sorted(self.root.glob("*.json")):
            try:
                out.append(RunRecord.from_json(p.read_text(encoding="utf-8")))
            except FileNotFoundError:
                continue  # pruned mid-scan
        if kind is not None:
            out = [r for r in out if r.kind == kind]
        out.sort(key=lambda r: (r.timestamp, r.run_id))
        return out

    def latest(self, kind: Optional[str] = None) -> Optional[RunRecord]:
        records = self.records(kind)
        return records[-1] if records else None

    def prune(self, max_records: int) -> int:
        """Keep the ``max_records`` most-recent records (mtime-LRU).

        Single-flight across processes (non-blocking prune lock) and
        TOCTOU-safe: every candidate is re-stat'ed before ``unlink``,
        so one refreshed or removed since the scan is left alone.
        Returns the number of records removed.
        """
        if max_records < 1 or not self.root.is_dir():
            return 0
        lock = store_lock(self.root, "prune")
        if not lock.try_acquire():
            return 0
        try:
            entries = []
            for p in self.root.glob("*.json"):
                try:
                    st = p.stat()
                except OSError:
                    continue
                entries.append((st.st_mtime, p))
            entries.sort(reverse=True)
            removed = 0
            for mtime, p in entries[max_records:]:
                try:
                    if p.stat().st_mtime > mtime:
                        continue  # refreshed since the scan
                    p.unlink()
                except OSError:
                    continue
                removed += 1
            return removed
        finally:
            lock.release()
