"""Ingesters: existing measurement surfaces -> perf-history sessions.

Each function maps one source of one-shot timing data into
:class:`~repro.perfwatch.store.SessionRecord` batches with stable
content hashes, so ``runner perf record`` may be pointed at the same
source repeatedly (every CI run, say) and the history only grows by
what is genuinely new:

- :func:`from_bench_file` — ``benchmarks/BENCH_timings.json`` sessions
  (both the historical float-per-test shape and the v2 records with
  outcomes and peak RSS): per-test wall clock, per-test peak RSS, and
  the session total.
- :func:`from_run_record` / :func:`from_registry` — run-registry
  records: per-experiment durations and span rollups for ``run``/
  ``experiment`` kinds, latency/error summaries for ``service``
  lifetime records.
- :func:`from_trace` — any telemetry JSONL trace, rolled up to
  per-span self/total seconds.
- :func:`from_scrape` — one live scrape of a running service's
  ``/v1/stats`` + ``/v1/metrics`` (the programmatic sibling of
  ``runner watch --once``).

Only wall-clock-like quantities become samples; fidelity metrics
(figure values, counter sets) already have their own drift gate and
stay out of the perf trajectory.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Optional, Union

from repro.perfwatch.store import SessionRecord

#: Span names whose rollups are worth a trajectory (the stable spine of
#: the instrumentation; ad-hoc inner spans would churn the metric set).
TRACKED_SPANS = (
    "run", "experiment", "workload", "kernel_launch", "warm_cache",
    "service.execute",
)


# ----------------------------------------------------------------------
# Benchmark sessions (BENCH_timings.json)
# ----------------------------------------------------------------------
def from_bench_record(record: Dict[str, Any]) -> SessionRecord:
    """One BENCH_timings.json session record -> one perf session.

    Handles both shapes: the historical ``tests: {nodeid: seconds}``
    floats and the v2 records where ``outcomes``/``rss_kb`` ride along
    (see :mod:`repro.perfwatch.bench`).  Only passed tests contribute
    timing samples; non-passed outcomes are counted, not timed.
    """
    metrics: Dict[str, float] = {}
    outcomes = record.get("outcomes") or {}
    skipped = failed = 0
    for nodeid, dur in (record.get("tests") or {}).items():
        if outcomes.get(nodeid, "passed") == "passed":
            metrics[f"bench/{nodeid}"] = float(dur)
    for outcome in outcomes.values():
        if outcome == "skipped":
            skipped += 1
        elif outcome != "passed":
            failed += 1
    for nodeid, kb in (record.get("rss_kb") or {}).items():
        metrics[f"benchrss/{nodeid}"] = float(kb)
    if "total_s" in record:
        metrics["bench/total_s"] = float(record["total_s"])
    meta: Dict[str, Any] = {}
    if outcomes:
        meta["skipped"] = skipped
        meta["failed"] = failed
    return SessionRecord(
        source="bench",
        metrics=metrics,
        ts=str(record.get("timestamp", "")),
        scale=str(record.get("scale", "")),
        git=str(record.get("git", "")),
        host=str(record.get("host", "")),
        config=str(record.get("config", "")),
        meta=meta,
    ).stamp()


def from_bench_file(
    path: Union[str, pathlib.Path]
) -> List[SessionRecord]:
    """Every session of a BENCH_timings.json, in recorded order."""
    body = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    if not isinstance(body, list):
        raise ValueError(f"{path}: expected a JSON list of sessions")
    return [from_bench_record(rec) for rec in body
            if isinstance(rec, dict)]


# ----------------------------------------------------------------------
# Run-registry records
# ----------------------------------------------------------------------
def from_run_record(record: Any) -> Optional[SessionRecord]:
    """A :class:`~repro.fidelity.registry.RunRecord` -> perf session.

    ``run``/``experiment`` kinds yield per-experiment durations plus
    rollups of the stable span spine; ``service`` kinds yield their
    latency/rate summary metrics.  Kinds with no wall-clock content
    (``gpuprof`` counter records) return None.
    """
    metrics: Dict[str, float] = {}
    if record.kind in ("run", "experiment"):
        for exp, dur in (record.durations or {}).items():
            metrics[f"run/{exp}/duration_s"] = float(dur)
        for name, stat in (record.span_stats or {}).items():
            if name in TRACKED_SPANS and len(stat) >= 2:
                metrics[f"span/{name}/total_s"] = float(stat[1])
                metrics[f"span/{name}/count"] = float(stat[0])
    elif record.kind == "service":
        for path, value in (record.metrics or {}).items():
            if path.startswith("service/"):
                metrics[path] = float(value)
    if not metrics:
        return None
    return SessionRecord(
        source="run" if record.kind in ("run", "experiment")
        else "service",
        metrics=metrics,
        ts=record.timestamp,
        scale=record.scale,
        meta={"kind": record.kind, "run_id": record.run_id},
    ).stamp()


def from_registry(
    registry_dir: Union[str, pathlib.Path]
) -> List[SessionRecord]:
    """Ingestable sessions from every record of a run registry."""
    from repro.fidelity import RunRegistry

    out: List[SessionRecord] = []
    for record in RunRegistry(registry_dir).records():
        session = from_run_record(record)
        if session is not None:
            out.append(session)
    return out


# ----------------------------------------------------------------------
# Telemetry traces
# ----------------------------------------------------------------------
def from_trace(path: Union[str, pathlib.Path]) -> SessionRecord:
    """One telemetry JSONL trace -> per-span self/total rollup session."""
    from repro.telemetry import parse_trace
    from repro.telemetry.profile import aggregate_spans

    events = parse_trace(str(path), allow_truncated=True)
    metrics: Dict[str, float] = {}
    scale = ""
    for event in events:
        if event.get("ev") == "meta":
            scale = str((event.get("attrs") or {}).get("scale", ""))
            break
    for agg in aggregate_spans(events):
        metrics[f"span/{agg.name}/self_s"] = round(agg.self_s, 6)
        metrics[f"span/{agg.name}/total_s"] = round(agg.total_s, 6)
        metrics[f"span/{agg.name}/count"] = float(agg.count)
    return SessionRecord(
        source="trace",
        metrics=metrics,
        scale=scale,
        meta={"trace": pathlib.Path(path).name},
    ).stamp()


# ----------------------------------------------------------------------
# Live service scrape
# ----------------------------------------------------------------------
def from_scrape(host: str, port: int) -> SessionRecord:
    """One scrape of a live service -> its latency-quantile session.

    The CLI twin is ``runner watch --once``; this is the ingestible
    form: warm/cold/coalesced latency quantiles from the scraped
    histogram buckets plus the stats integers, tagged with the scrape
    target.
    """
    from repro.service.client import ServiceClient
    from repro.telemetry.metrics import (
        histogram_buckets,
        parse_prometheus,
        quantile_from_buckets,
    )

    client = ServiceClient(host, port)
    try:
        stats = client.stats()
        parsed = parse_prometheus(client.metrics_text())
    finally:
        client.close()
    metrics: Dict[str, float] = {
        "service/requests": float(stats.get("requests", 0)),
        "service/warm_hit_rate": float(stats.get("warm_hit_rate", 0.0)),
        "service/coalescing_ratio": float(
            stats.get("coalescing_ratio", 0.0)
        ),
    }
    for served in ("warm", "cold", "coalesced"):
        buckets = histogram_buckets(
            parsed, "repro_service_request_latency_seconds",
            served=served,
        )
        if not buckets or buckets[-1][1] == 0:
            continue
        for q, tag in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
            metrics[f"service/{served}_{tag}_ms"] = round(
                quantile_from_buckets(buckets, q) * 1e3, 6
            )
        metrics[f"service/{served}_count"] = float(buckets[-1][1])
    return SessionRecord(
        source="scrape",
        metrics=metrics,
        meta={"target": f"{host}:{port}"},
    ).stamp()
