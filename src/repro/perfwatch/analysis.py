"""Statistical regression detection over a perf-history trajectory.

The newest session in the history is the **candidate**; everything
before it is the baseline.  For each metric the baseline contributes a
trailing window of samples, summarized robustly:

- center   = median(window)
- sigma    = max(1.4826 * MAD, rel_floor * |median|, abs_floor)

``1.4826 * MAD`` is the standard consistency constant making the median
absolute deviation estimate a normal sigma; the relative and absolute
floors keep a bit-deterministic metric (MAD = 0) from demanding
impossible precision of a wall-clock measurement.  The candidate
regresses when it exceeds ``median + k_sigma * sigma`` — only slowdowns
gate; a faster sample passes (improvements are the point).

Verdicts ride the fidelity layer's :class:`~repro.fidelity.drift.DriftReport`
verbatim: one :class:`~repro.fidelity.drift.MetricDrift` per checked
metric, ``status="missing"`` (which counts as a failure) when a metric
the recent baseline tracks vanishes from the candidate — a deleted
benchmark must be noticed, not silently un-gated — and ``status="new"``
(informational) for metrics the candidate introduces.

A metric is *required* of the candidate only when it appeared in each
of the ``min_samples`` most recent baseline sessions **that measure the
same source**: histories mix sources (bench sessions, service
lifetimes, scrapes), and a bench-only CI job must not fail for service
metrics it never measures.

:func:`scan_changepoints` is the trajectory-wide companion: a simple
two-window scan that flags the largest sustained level shift per
metric, for "when did this get slower" archaeology rather than gating.
"""

from __future__ import annotations

import dataclasses
import statistics
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.tables import Table
from repro.fidelity.drift import DriftReport, MetricDrift
from repro.perfwatch.store import PerfHistory, SessionRecord

#: MAD -> sigma consistency constant (normal distribution).
MAD_SIGMA = 1.4826


@dataclasses.dataclass(frozen=True)
class GateParams:
    """Tuning of the regression gate.

    k_sigma     -- how many robust sigmas above the baseline median the
                   candidate may sit before it fails (CI uses 4: wide
                   enough for shared-runner noise, narrow enough that a
                   10x slowdown is unmissable).
    window      -- trailing baseline samples considered per metric.
    min_samples -- baseline depth below which a metric is not judged
                   (and not required of the candidate).
    rel_floor   -- sigma floor as a fraction of |median|.
    abs_floor   -- absolute sigma floor, in the metric's own units.
    """

    k_sigma: float = 4.0
    window: int = 20
    min_samples: int = 3
    rel_floor: float = 0.05
    abs_floor: float = 1e-4


def robust_sigma(values: Sequence[float], params: GateParams) -> float:
    """Floored MAD-based sigma estimate of a baseline window."""
    med = statistics.median(values)
    mad = statistics.median(abs(v - med) for v in values)
    return max(MAD_SIGMA * mad,
               params.rel_floor * abs(med),
               params.abs_floor)


@dataclasses.dataclass(frozen=True)
class Changepoint:
    """One detected level shift in a metric's trajectory."""

    metric: str
    index: int          # first sample of the "after" regime
    session: str        # session id at that index
    before: float       # median of the window before the split
    after: float        # median of the window after the split
    shift_sigma: float  # |after - before| as multiples of before-sigma

    def row(self) -> List[object]:
        return [self.metric, self.index, self.session[:12],
                round(self.before, 6), round(self.after, 6),
                round(self.shift_sigma, 2)]


def scan_changepoints(
    series: Dict[str, List[Tuple[SessionRecord, float]]],
    params: GateParams,
) -> List[Changepoint]:
    """Largest two-window level shift per metric, if any clears k-sigma.

    For every split point the medians of the trailing/leading windows
    (capped at ``params.window``) are compared in units of the leading
    window's robust sigma; the best-scoring split per metric is kept
    when it exceeds ``k_sigma``.  Deterministic: ties keep the earliest
    split, metrics are reported in sorted order.
    """
    out: List[Changepoint] = []
    for metric in sorted(series):
        points = series[metric]
        values = [v for _, v in points]
        n = len(values)
        if n < 2 * params.min_samples:
            continue
        best: Optional[Changepoint] = None
        for i in range(params.min_samples, n - params.min_samples + 1):
            left = values[max(0, i - params.window):i]
            right = values[i:i + params.window]
            sigma = robust_sigma(left, params)
            shift = abs(statistics.median(right)
                        - statistics.median(left))
            score = shift / sigma
            if score > params.k_sigma and (
                best is None or score > best.shift_sigma
            ):
                best = Changepoint(
                    metric=metric, index=i,
                    session=points[i][0].session,
                    before=statistics.median(left),
                    after=statistics.median(right),
                    shift_sigma=round(score, 4),
                )
        if best is not None:
            out.append(best)
    return out


@dataclasses.dataclass
class PerfReport:
    """Typed outcome of one regression gate over a history.

    ``drift`` carries the per-metric verdicts in the fidelity layer's
    own report type, so rendering, counting, and the exit-code contract
    are shared with the golden-reference and SLO gates.
    """

    history: str                    # history path (label)
    candidate: str                  # session id judged
    params: GateParams
    drift: DriftReport
    changepoints: List[Changepoint]
    checked: int                    # metrics with enough baseline depth
    unchecked: int                  # metrics skipped for thin baselines
    sessions: int                   # total sessions in the history

    @property
    def ok(self) -> bool:
        return self.drift.ok

    @property
    def exit_code(self) -> int:
        return self.drift.exit_code

    @property
    def regressions(self) -> List[MetricDrift]:
        return self.drift.failures

    def summary_line(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        return (
            f"perf gate vs {self.history} "
            f"[{self.sessions} sessions, candidate "
            f"{self.candidate[:12] or 'none'}]: {verdict} "
            f"({self.checked} checked, {self.unchecked} thin, "
            f"{self.drift.n_fail} regressed, {self.drift.n_new} new, "
            f"k={self.params.k_sigma:g})"
        )

    def changepoint_table(self) -> Table:
        table = Table(
            f"Perf changepoints (two-window scan, k={self.params.k_sigma:g})",
            ["metric", "index", "session", "before", "after", "xsigma"],
        )
        for cp in self.changepoints:
            table.add_row(cp.row())
        return table

    def to_markdown(self) -> str:
        """Deterministic markdown artifact for CI logs and docs."""
        lines = [
            "# Performance report",
            "",
            f"- history: `{self.history}` ({self.sessions} sessions)",
            f"- candidate session: `{self.candidate or 'none'}`",
            f"- gate: k_sigma={self.params.k_sigma:g}, "
            f"window={self.params.window}, "
            f"min_samples={self.params.min_samples}",
            f"- verdict: **{'PASS' if self.ok else 'FAIL'}** "
            f"({self.checked} checked, {self.unchecked} thin, "
            f"{self.drift.n_fail} regressed, {self.drift.n_new} new)",
            "",
            "## Regression gate",
            "",
            "```",
            self.drift.to_table().render(),
            "```",
        ]
        if self.changepoints:
            lines += ["", "## Changepoints", "", "```",
                      self.changepoint_table().render(), "```"]
        return "\n".join(lines) + "\n"


def detect_regressions(
    history: PerfHistory,
    params: GateParams = GateParams(),
    metric_prefix: Optional[str] = None,
) -> PerfReport:
    """Gate the newest session of a history against its own past."""
    sessions = history.sessions()
    label = str(history.path)
    if len(sessions) < 2:
        empty = DriftReport(baseline=label, scale="history",
                            entries=[], experiments=[], skipped=[])
        return PerfReport(
            history=label,
            candidate=sessions[-1].session if sessions else "",
            params=params, drift=empty, changepoints=[],
            checked=0, unchecked=0, sessions=len(sessions),
        )
    candidate = sessions[-1]
    baseline = sessions[:-1]

    def keep(metric: str) -> bool:
        return metric_prefix is None or metric.startswith(metric_prefix)

    # Per-metric baseline series, trajectory order.
    base_series: Dict[str, List[float]] = {}
    for record in baseline:
        for metric, value in record.metrics.items():
            if keep(metric):
                base_series.setdefault(metric, []).append(value)

    # "Required" = tracked by each of the min_samples most recent
    # baseline sessions of the candidate's own source.
    recent_same_source = [r for r in baseline
                          if r.source == candidate.source]
    recent_same_source = recent_same_source[-params.min_samples:]
    required = set()
    if len(recent_same_source) >= params.min_samples:
        required = set.intersection(
            *(set(r.metrics) for r in recent_same_source)
        )
        required = {m for m in required if keep(m)}

    entries: List[MetricDrift] = []
    checked = unchecked = 0
    for metric in sorted(base_series):
        window = base_series[metric][-params.window:]
        if len(window) < params.min_samples:
            unchecked += 1
            continue
        med = statistics.median(window)
        budget = params.k_sigma * robust_sigma(window, params)
        if metric not in candidate.metrics:
            if metric in required:
                checked += 1
                entries.append(MetricDrift(
                    metric=metric, expected=med, actual=None,
                    error=0.0, budget=budget, status="missing",
                ))
            else:
                unchecked += 1
            continue
        checked += 1
        actual = candidate.metrics[metric]
        # Only slowdowns regress: error is the overshoot above median.
        over = max(0.0, actual - med)
        entries.append(MetricDrift(
            metric=metric, expected=med, actual=actual,
            error=over, budget=budget,
            status="pass" if over <= budget else "fail",
        ))
    for metric in sorted(candidate.metrics):
        if keep(metric) and metric not in base_series:
            entries.append(MetricDrift(
                metric=metric, expected=None,
                actual=candidate.metrics[metric],
                error=0.0, budget=0.0, status="new",
            ))

    families = sorted({e.metric.split("/", 1)[0] for e in entries})
    drift = DriftReport(
        baseline=label,
        scale=candidate.scale or "mixed",
        entries=entries,
        experiments=families,
        skipped=[],
    )
    full_series: Dict[str, List[Tuple[SessionRecord, float]]] = {}
    for record in sessions:
        for metric in sorted(record.metrics):
            if keep(metric):
                full_series.setdefault(metric, []).append(
                    (record, record.metrics[metric])
                )
    changepoints = scan_changepoints(full_series, params)
    return PerfReport(
        history=label, candidate=candidate.session, params=params,
        drift=drift, changepoints=changepoints,
        checked=checked, unchecked=unchecked, sessions=len(sessions),
    )
