"""``runner perf`` — the perf-history trajectory's command surface.

Subcommands (all take ``--history PATH``; the default is
``RuntimeConfig.perf_history``, i.e. ``REPRO_PERF_HISTORY`` or
``benchmarks/perf-history.jsonl``):

- ``record`` — ingest measurement sources into the history
  (``--bench`` timings files, ``--registry`` run-record dirs,
  ``--trace`` telemetry JSONL files, ``--scrape host:port`` of a live
  service).  Idempotent: sessions already present are skipped.
- ``gate``   — judge the newest session against the trailing baseline
  (median/MAD, ``--k-sigma``); exits nonzero on a regression or a
  vanished tracked metric.  The CI hook.
- ``report`` — the same analysis as a deterministic markdown artifact
  (``--out`` or stdout).
- ``trend``  — per-family ANSI tables with unicode sparklines of every
  metric's trajectory (the ``watch`` dashboard's primitives, offline).
- ``diff``   — aligned per-span self-time tables for two recorded
  telemetry traces, ranked by "what got slower".

See docs/PERF.md for the history schema and the regression math.
"""

from __future__ import annotations

import argparse
import pathlib
import statistics
import sys
from typing import Dict, List, Optional, Tuple

from repro.common.tables import Table
from repro.perfwatch.analysis import (
    GateParams,
    PerfReport,
    detect_regressions,
)
from repro.perfwatch.store import PerfHistory, SessionRecord

#: Rows of the full drift table printed before falling back to worst-N.
_FULL_TABLE_LIMIT = 40


def _resolve_history(arg: Optional[str]) -> str:
    from repro.common.config import config

    path = arg or config().perf_history
    if not path:
        raise SystemExit(
            "perf: no history path (give --history or set "
            "REPRO_PERF_HISTORY)"
        )
    return path


def _gate_params(args: argparse.Namespace) -> GateParams:
    return GateParams(
        k_sigma=args.k_sigma,
        window=args.window,
        min_samples=args.min_samples,
    )


def _add_gate_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--k-sigma", type=float, default=4.0, metavar="K",
        help="regression threshold in robust sigmas above the baseline "
             "median (default: 4)",
    )
    parser.add_argument(
        "--window", type=int, default=20, metavar="N",
        help="trailing baseline samples per metric (default: 20)",
    )
    parser.add_argument(
        "--min-samples", type=int, default=3, metavar="N",
        help="baseline depth below which a metric is not judged "
             "(default: 3)",
    )
    parser.add_argument(
        "--metric", metavar="PREFIX", default=None,
        help="restrict to metric paths starting with PREFIX "
             "(e.g. 'bench/', 'service/warm')",
    )


def _add_history_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--history", metavar="PATH", default=None,
        help="perf-history JSONL (default: REPRO_PERF_HISTORY or "
             "benchmarks/perf-history.jsonl)",
    )


# ----------------------------------------------------------------------
# record
# ----------------------------------------------------------------------
def _cmd_record(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner perf record",
        description="Ingest measurement sources into the perf history.",
    )
    _add_history_option(parser)
    parser.add_argument(
        "--bench", metavar="PATH", action="append", default=[],
        help="a BENCH_timings.json to ingest (repeatable)",
    )
    parser.add_argument(
        "--registry", metavar="DIR", action="append", default=[],
        help="a run-registry directory to ingest (repeatable)",
    )
    parser.add_argument(
        "--trace", metavar="PATH", action="append", default=[],
        help="a telemetry JSONL trace to roll up and ingest "
             "(repeatable)",
    )
    parser.add_argument(
        "--scrape", metavar="HOST:PORT", action="append", default=[],
        help="scrape a running service's /v1/stats + /v1/metrics once "
             "and ingest the latency quantiles (repeatable)",
    )
    args = parser.parse_args(argv)
    if not (args.bench or args.registry or args.trace or args.scrape):
        parser.error("give at least one source "
                     "(--bench/--registry/--trace/--scrape)")
    from repro.perfwatch import ingest

    history = PerfHistory(_resolve_history(args.history))
    batches: List[Tuple[str, List[SessionRecord]]] = []
    for path in args.bench:
        batches.append((f"bench:{path}", ingest.from_bench_file(path)))
    for directory in args.registry:
        batches.append(
            (f"registry:{directory}", ingest.from_registry(directory))
        )
    for path in args.trace:
        batches.append((f"trace:{path}", [ingest.from_trace(path)]))
    for target in args.scrape:
        host, _, port = target.partition(":")
        if not port.isdigit():
            parser.error(f"--scrape {target!r} is not HOST:PORT")
        batches.append(
            (f"scrape:{target}", [ingest.from_scrape(host, int(port))])
        )
    total = written = 0
    for label, sessions in batches:
        n = history.append_many(sessions)
        total += len(sessions)
        written += n
        print(f"[perf record] {label}: {len(sessions)} session(s), "
              f"{n} new", file=sys.stderr)
    print(f"[perf record] {history.path}: {written}/{total} session(s) "
          f"appended", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# gate / report
# ----------------------------------------------------------------------
def _analyze(args: argparse.Namespace) -> PerfReport:
    history = PerfHistory(_resolve_history(args.history))
    return detect_regressions(
        history, _gate_params(args), metric_prefix=args.metric
    )


def _print_report(report: PerfReport) -> None:
    entries = report.drift.entries
    if entries:
        if len(entries) <= _FULL_TABLE_LIMIT:
            print(report.drift.to_table().render())
        else:
            print(report.drift.to_table(
                report.drift.worst(_FULL_TABLE_LIMIT)
            ).render())
    if report.changepoints:
        print()
        print(report.changepoint_table().render())
    print()
    print(report.summary_line())


def _cmd_gate(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner perf gate",
        description="Judge the newest history session against its own "
                    "past; nonzero exit on regression (the CI hook).",
    )
    _add_history_option(parser)
    _add_gate_options(parser)
    args = parser.parse_args(argv)
    report = _analyze(args)
    _print_report(report)
    return report.exit_code


def _cmd_report(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner perf report",
        description="Render the regression analysis as a markdown "
                    "artifact (deterministic for identical inputs).",
    )
    _add_history_option(parser)
    _add_gate_options(parser)
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the markdown here instead of stdout",
    )
    args = parser.parse_args(argv)
    report = _analyze(args)
    text = report.to_markdown() + _trend_markdown(
        PerfHistory(_resolve_history(args.history)), args.metric
    )
    if args.out:
        pathlib.Path(args.out).write_text(text, encoding="utf-8")
        print(f"[perf report] {args.out}", file=sys.stderr)
    else:
        print(text, end="")
    return 0


# ----------------------------------------------------------------------
# trend
# ----------------------------------------------------------------------
def _family_tables(
    history: PerfHistory,
    metric_prefix: Optional[str],
    limit: int,
    width: int,
) -> List[Table]:
    """One sparkline table per metric family, deterministically ordered."""
    from repro.service.watch import sparkline

    series = history.series(metric_prefix)
    families: Dict[str, List[str]] = {}
    for metric in sorted(series):
        families.setdefault(metric.split("/", 1)[0], []).append(metric)
    tables: List[Table] = []
    for family in sorted(families):
        table = Table(
            f"Perf trend: {family}/* "
            f"({len(families[family])} metrics)",
            ["metric", "n", "median", "latest", "delta%", "trend"],
        )
        for metric in families[family][:limit]:
            values = [v for _, v in series[metric]]
            med = statistics.median(values)
            latest = values[-1]
            delta = (latest - med) / med * 100.0 if med else 0.0
            table.add_row([
                metric, len(values), round(med, 4), round(latest, 4),
                round(delta, 1), sparkline(values, width=width),
            ])
        dropped = len(families[family]) - limit
        if dropped > 0:
            table.add_row([f"... {dropped} more (raise --limit)",
                           "", "", "", "", ""])
        tables.append(table)
    return tables


def _trend_markdown(history: PerfHistory,
                    metric_prefix: Optional[str]) -> str:
    tables = _family_tables(history, metric_prefix,
                            limit=15, width=30)
    if not tables:
        return ""
    parts = ["", "## Trend", ""]
    for table in tables:
        parts += ["```", table.render(), "```", ""]
    return "\n".join(parts)


def _cmd_trend(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner perf trend",
        description="Sparkline tables of every metric family's "
                    "trajectory.",
    )
    _add_history_option(parser)
    parser.add_argument(
        "--metric", metavar="PREFIX", default=None,
        help="restrict to metric paths starting with PREFIX",
    )
    parser.add_argument(
        "--limit", type=int, default=25, metavar="N",
        help="max metrics shown per family (default: 25)",
    )
    parser.add_argument(
        "--width", type=int, default=30, metavar="N",
        help="sparkline width in samples (default: 30)",
    )
    args = parser.parse_args(argv)
    history = PerfHistory(_resolve_history(args.history))
    tables = _family_tables(history, args.metric, args.limit,
                            args.width)
    if not tables:
        print(f"[perf trend] {history.path}: no sessions recorded",
              file=sys.stderr)
        return 0
    sessions = len(history.sessions())
    print(f"perf history {history.path} — {sessions} session(s)")
    for table in tables:
        print()
        print(table.render())
    return 0


# ----------------------------------------------------------------------
# diff
# ----------------------------------------------------------------------
def _cmd_diff(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner perf diff",
        description="Aligned per-span self-time diff of two telemetry "
                    "traces; ranks what got slower.",
    )
    parser.add_argument("trace_a", help="baseline telemetry JSONL trace")
    parser.add_argument("trace_b", help="candidate telemetry JSONL trace")
    parser.add_argument(
        "--top", type=int, default=20, metavar="N",
        help="rows shown (default: 20)",
    )
    args = parser.parse_args(argv)
    from repro.perfwatch.spandiff import (
        diff_traces,
        slower_spans,
        span_diff_table,
    )

    deltas = diff_traces(args.trace_a, args.trace_b)
    table = span_diff_table(
        deltas,
        label_a=pathlib.Path(args.trace_a).name,
        label_b=pathlib.Path(args.trace_b).name,
        n=args.top,
    )
    print(table.render())
    slower = slower_spans(deltas, n=3)
    if slower:
        worst = ", ".join(
            f"{d.name} (+{d.d_self:.6f}s self)" for d in slower
        )
        print(f"\nslower: {worst}")
    else:
        print("\nslower: nothing — candidate is no slower anywhere")
    return 0


_PERF_SUBCOMMANDS = {
    "record": _cmd_record,
    "gate": _cmd_gate,
    "report": _cmd_report,
    "trend": _cmd_trend,
    "diff": _cmd_diff,
}


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        names = "|".join(sorted(_PERF_SUBCOMMANDS))
        print(f"usage: python -m repro.experiments.runner perf "
              f"{{{names}}} ...\n\n{__doc__}")
        return 0 if argv else 2
    if argv[0] not in _PERF_SUBCOMMANDS:
        print(f"perf: unknown subcommand {argv[0]!r} "
              f"(expected one of {sorted(_PERF_SUBCOMMANDS)})",
              file=sys.stderr)
        return 2
    return _PERF_SUBCOMMANDS[argv[0]](argv[1:])
