"""Durable perf-history store: append-only JSONL of measurement sessions.

One line per **session** — a batch of performance samples measured
together (a benchmark run, one CLI invocation's durations, a service
lifetime, one ``/v1/metrics`` scrape).  Each line carries the full
provenance the trend analysis needs:

- ``session`` — a content hash over (source, timestamp, scale, metrics),
  so re-ingesting the same measurement is idempotent: the store skips
  sessions it already holds instead of duplicating the trajectory.
- ``git`` / ``host`` / ``config`` — where the numbers came from: the
  repo SHA, the machine, and a fingerprint of the active
  :class:`~repro.common.config.RuntimeConfig` (two runs with different
  cache/batch toggles are different operating points, not noise).
- ``metrics`` — flat ``family/path -> float`` samples, the same path
  grammar the fidelity layer uses (``bench/...``, ``run/...``,
  ``span/...``, ``service/...``).

Appends hold a cross-process :class:`~repro.common.locks.FileLock`
(``<history>.lock``) around read-check + append-write, so concurrent
benchmark sessions and CI jobs interleave whole lines, never bytes.
Reads are lock-free: a reader sees complete lines plus at most one
truncated final line (a writer killed mid-append), which is skipped the
same way :func:`repro.telemetry.parse_trace` forgives torn tails.

The schema is versioned (``"v"`` on every line); a line carrying an
unknown version is a hard error, not a silent skip — mixing schemas in
a statistics pipeline corrupts the baseline quietly, which is exactly
what this subsystem exists to prevent.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import socket
import subprocess
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.common.locks import FileLock, LockTimeout

#: Bump when the line shape changes; readers refuse unknown versions.
SCHEMA_VERSION = 1

#: Session sources the ingesters emit (free-form strings are allowed;
#: these are the ones the bundled ingesters use).
KNOWN_SOURCES = ("bench", "run", "service", "trace", "scrape", "synthetic")


def _git_sha() -> str:
    """Current repo SHA (12 hex), or "" when not in a repo/CI env."""
    sha = os.environ.get("GITHUB_SHA", "").strip()
    if sha:
        return sha[:12]
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return ""
    return out.stdout.strip() if out.returncode == 0 else ""


def config_fingerprint() -> str:
    """8-hex digest of the active RuntimeConfig.

    Two sessions measured under different toggles (cache off, batch
    engine off, different lane budgets) are different operating points;
    the fingerprint lets the analysis layer keep them apart without
    storing the whole config on every line.
    """
    from repro.common.config import config

    payload = json.dumps(
        dataclasses.asdict(config()), sort_keys=True, default=str
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:8]


def environment_tags() -> Dict[str, str]:
    """Provenance tags for a session measured *here and now*."""
    return {
        "git": _git_sha(),
        "host": socket.gethostname(),
        "config": config_fingerprint(),
    }


@dataclasses.dataclass
class SessionRecord:
    """One measurement session: tagged batch of ``metric -> value``.

    ``ts`` is an ISO-8601 wall-clock string (provenance and ordering
    hint; the store's append order is the authoritative sequence).
    ``session`` is filled by :meth:`stamp` as a content hash, so
    identical measurements hash identically wherever they are ingested.
    """

    source: str
    metrics: Dict[str, float]
    ts: str = ""
    scale: str = ""
    git: str = ""
    host: str = ""
    config: str = ""
    meta: Dict[str, Any] = dataclasses.field(default_factory=dict)
    session: str = ""

    def content_key(self) -> str:
        payload = json.dumps(
            {
                "source": self.source,
                "ts": self.ts,
                "scale": self.scale,
                "metrics": {k: self.metrics[k]
                            for k in sorted(self.metrics)},
            },
            sort_keys=True, separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def stamp(self, tags: Optional[Dict[str, str]] = None) -> "SessionRecord":
        """Fill ``session`` (always), ``ts`` if empty, and env tags."""
        if not self.ts:
            self.ts = time.strftime("%Y-%m-%dT%H:%M:%S%z")
        if tags:
            self.git = self.git or tags.get("git", "")
            self.host = self.host or tags.get("host", "")
            self.config = self.config or tags.get("config", "")
        self.session = self.content_key()
        return self

    def to_line(self) -> str:
        body: Dict[str, Any] = {
            "v": SCHEMA_VERSION,
            "session": self.session,
            "ts": self.ts,
            "source": self.source,
            "scale": self.scale,
            "git": self.git,
            "host": self.host,
            "config": self.config,
            "metrics": {k: self.metrics[k] for k in sorted(self.metrics)},
        }
        if self.meta:
            body["meta"] = self.meta
        return json.dumps(body, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, body: Dict[str, Any]) -> "SessionRecord":
        return cls(
            source=str(body.get("source", "")),
            metrics={str(k): float(v)
                     for k, v in (body.get("metrics") or {}).items()},
            ts=str(body.get("ts", "")),
            scale=str(body.get("scale", "")),
            git=str(body.get("git", "")),
            host=str(body.get("host", "")),
            config=str(body.get("config", "")),
            meta=dict(body.get("meta") or {}),
            session=str(body.get("session", "")),
        )


class PerfHistory:
    """An append-only JSONL trajectory of :class:`SessionRecord` lines.

    Construction touches nothing on disk; a missing file reads as an
    empty history.  ``append`` is idempotent per session id and safe
    under concurrent cross-process writers (see module docstring).
    """

    def __init__(self, path: Union[str, os.PathLike],
                 lock_timeout: float = 10.0):
        self.path = pathlib.Path(path)
        self.lock_timeout = lock_timeout

    def _lock(self) -> FileLock:
        return FileLock(self.path.with_name(self.path.name + ".lock"),
                        timeout=self.lock_timeout)

    # -- reading ---------------------------------------------------------
    def sessions(self) -> List[SessionRecord]:
        """Every session, in append (trajectory) order.

        Raises ``ValueError`` on an unknown schema version or a
        malformed line anywhere but the very end of the file (one torn
        final line — a writer killed mid-append — is forgiven).
        """
        if not self.path.is_file():
            return []
        lines = self.path.read_text(encoding="utf-8").splitlines()
        numbered = [(i, l.strip()) for i, l in enumerate(lines, 1)
                    if l.strip()]
        out: List[SessionRecord] = []
        for pos, (lineno, line) in enumerate(numbered):
            last = pos == len(numbered) - 1
            try:
                body = json.loads(line)
            except ValueError:
                if last:
                    break  # torn tail: writer died mid-append
                raise ValueError(
                    f"{self.path}:{lineno}: malformed perf-history line"
                ) from None
            if body.get("v") != SCHEMA_VERSION:
                raise ValueError(
                    f"{self.path}:{lineno}: schema version "
                    f"{body.get('v')!r}, expected {SCHEMA_VERSION}"
                )
            out.append(SessionRecord.from_dict(body))
        # A lock-timeout append may have raced a duplicate line in;
        # first occurrence wins so the trajectory order is stable.
        seen: set = set()
        unique = []
        for record in out:
            if record.session in seen:
                continue
            seen.add(record.session)
            unique.append(record)
        return unique

    def session_ids(self) -> List[str]:
        return [s.session for s in self.sessions()]

    def series(
        self, prefix: Optional[str] = None
    ) -> Dict[str, List[Tuple[SessionRecord, float]]]:
        """Per-metric sample series, in trajectory order.

        ``prefix`` restricts to metric paths starting with it (a family
        like ``bench/`` or a single full path).
        """
        out: Dict[str, List[Tuple[SessionRecord, float]]] = {}
        for record in self.sessions():
            for metric in sorted(record.metrics):
                if prefix is not None and not metric.startswith(prefix):
                    continue
                out.setdefault(metric, []).append(
                    (record, record.metrics[metric])
                )
        return out

    # -- writing ---------------------------------------------------------
    def append(self, record: SessionRecord) -> bool:
        """Append one session; False when its id is already present.

        The dedup check and the write happen under the history lock, so
        two processes ingesting the same measurement race to one line.
        On lock timeout the append proceeds unlocked — a duplicated
        session is a smaller failure than a lost one, and the analysis
        layer dedups by session id anyway.
        """
        return self.append_many([record]) == 1

    def append_many(self, records: Iterable[SessionRecord]) -> int:
        """Append several sessions under one lock hold; returns #written."""
        pending = []
        for record in records:
            if not record.session:
                record.stamp()
            pending.append(record)
        if not pending:
            return 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        lock = self._lock()
        try:
            lock.acquire()
        except LockTimeout:
            pass
        try:
            seen = set(self.session_ids())
            written = 0
            with open(self.path, "a", encoding="utf-8") as fh:
                for record in pending:
                    if record.session in seen:
                        continue
                    fh.write(record.to_line() + "\n")
                    seen.add(record.session)
                    written += 1
                fh.flush()
                os.fsync(fh.fileno())
            return written
        finally:
            lock.release()
