"""Performance observatory: a durable, analyzable perf trajectory.

The paper this repo reproduces is a characterization study; this
package lets the reproduction characterize *itself* over time instead
of discarding every measurement at session end:

- :mod:`.store` — the append-only, schema-versioned, lock-protected
  ``perf-history.jsonl`` of tagged measurement sessions.
- :mod:`.ingest` — adapters from every existing measurement surface
  (benchmark timings, run-registry records, telemetry traces, live
  service scrapes) into history sessions.
- :mod:`.analysis` — median/MAD k-sigma regression detection and a
  two-window changepoint scan, reported through the fidelity layer's
  :class:`~repro.fidelity.drift.DriftReport` so missing metrics fail
  loudly.
- :mod:`.spandiff` — cross-run span-tree diffing: aligned self-time
  tables with a "what got slower" ranking.
- :mod:`.bench` — the benchmark-harness session recorder behind
  ``benchmarks/conftest.py`` (outcomes, peak RSS, locked appends,
  dual-write into the history).
- :mod:`.cli` — ``runner perf record|gate|report|trend|diff``.

See docs/PERF.md.
"""

from repro.perfwatch.analysis import (
    Changepoint,
    GateParams,
    PerfReport,
    detect_regressions,
    scan_changepoints,
)
from repro.perfwatch.spandiff import (
    SpanDelta,
    diff_spans,
    diff_traces,
    slower_spans,
    span_diff_table,
)
from repro.perfwatch.store import (
    SCHEMA_VERSION,
    PerfHistory,
    SessionRecord,
    environment_tags,
)

__all__ = [
    "Changepoint",
    "GateParams",
    "PerfHistory",
    "PerfReport",
    "SCHEMA_VERSION",
    "SessionRecord",
    "SpanDelta",
    "detect_regressions",
    "diff_spans",
    "diff_traces",
    "environment_tags",
    "scan_changepoints",
    "slower_spans",
    "span_diff_table",
]
