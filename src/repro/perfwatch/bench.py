"""Benchmark-session recording behind ``benchmarks/conftest.py``.

The conftest used to hold an inline, untested read-modify-write of
``BENCH_timings.json`` that only saw passing tests — a skipped or
failed benchmark simply vanished from the record, indistinguishable
from a fast session.  This module is the testable replacement:

- :class:`BenchRecorder` consumes pytest report objects (duck-typed:
  ``when``/``nodeid``/``passed``/``failed``/``skipped``/``duration``)
  and tracks per-test wall clock, **outcome**, and **peak RSS** (the
  process high-water mark from ``resource.getrusage`` sampled at each
  test's end — monotone within a session, so per-test values read as
  "the footprint by the time this test finished").
- :func:`append_bench_record` appends one session to the JSON-array
  timings file under a cross-process
  :class:`~repro.common.locks.FileLock`, so concurrent sessions (CI
  shards, a developer racing CI) interleave whole records.
- :func:`dual_write_history` mirrors the same session into the
  perfwatch history (:mod:`repro.perfwatch.store`), which is what makes
  ``BENCH_timings.json`` no longer write-only: every appended session
  immediately extends the analyzable trajectory.

Record schema (``schema: 2``)::

    {"schema": 2, "timestamp": ..., "scale": ...,
     "git": ..., "host": ..., "config": ...,
     "total_s": <sum of passed-test seconds>,
     "tests":    {nodeid: seconds},        # passed tests only
     "outcomes": {nodeid: "passed"|"failed"|"skipped"},
     "rss_kb":   {nodeid: peak-kB}}

Historical records (no ``schema`` field, float-only ``tests``) remain
readable by every consumer.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Any, Dict, List, Optional, Union

from repro.common.locks import FileLock, LockTimeout

#: Version of the session-record shape written to BENCH_timings.json.
BENCH_SCHEMA_VERSION = 2

#: Outcome precedence: a test that failed in any phase is failed, then
#: skipped, then passed.
_OUTCOME_RANK = {"passed": 0, "skipped": 1, "failed": 2}


def _peak_rss_kb() -> Optional[float]:
    """Process peak RSS in kB (Linux ``ru_maxrss`` units), or None."""
    try:
        import resource
    except ImportError:  # non-POSIX platform
        return None
    return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


class BenchRecorder:
    """Accumulates one benchmark session from pytest report objects."""

    def __init__(self, scale: str = ""):
        self.scale = scale
        self.timings: Dict[str, float] = {}
        self.outcomes: Dict[str, str] = {}
        self.rss_kb: Dict[str, float] = {}

    def observe(self, report: Any) -> None:
        """Fold one pytest ``TestReport`` (any phase) into the session."""
        nodeid = report.nodeid
        outcome = (
            "failed" if report.failed
            else "skipped" if report.skipped
            else "passed"
        )
        prev = self.outcomes.get(nodeid, "passed")
        if _OUTCOME_RANK[outcome] >= _OUTCOME_RANK[prev]:
            self.outcomes[nodeid] = outcome
        if report.when == "call":
            if report.passed:
                self.timings[nodeid] = round(report.duration, 4)
            rss = _peak_rss_kb()
            if rss is not None:
                self.rss_kb[nodeid] = rss

    @property
    def empty(self) -> bool:
        return not self.outcomes

    def record(self, tags: Optional[Dict[str, str]] = None) -> Dict[str, Any]:
        """The session as a v2 BENCH_timings.json record."""
        tags = tags or {}
        return {
            "schema": BENCH_SCHEMA_VERSION,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "scale": self.scale,
            "git": tags.get("git", ""),
            "host": tags.get("host", ""),
            "config": tags.get("config", ""),
            "total_s": round(sum(self.timings.values()), 4),
            "tests": dict(sorted(self.timings.items())),
            "outcomes": dict(sorted(self.outcomes.items())),
            "rss_kb": dict(sorted(self.rss_kb.items())),
        }


def read_bench_history(
    path: Union[str, pathlib.Path]
) -> List[Dict[str, Any]]:
    """The timings file as a list; missing/corrupt reads as empty."""
    try:
        body = json.loads(
            pathlib.Path(path).read_text(encoding="utf-8")
        )
    except (OSError, ValueError):
        return []
    return body if isinstance(body, list) else []


def append_bench_record(
    path: Union[str, pathlib.Path],
    record: Dict[str, Any],
    lock_timeout: float = 10.0,
) -> List[Dict[str, Any]]:
    """Append one session record under the timings-file lock.

    The whole read-append-rewrite happens inside the lock, so two
    concurrent sessions both land (in some order) instead of one
    clobbering the other.  On lock timeout the append proceeds
    unlocked — matching the stores' "duplicated work beats lost work"
    policy.  Returns the history as written.
    """
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    lock = FileLock(target.with_name(target.name + ".lock"),
                    timeout=lock_timeout)
    try:
        lock.acquire()
    except LockTimeout:
        pass
    try:
        history = read_bench_history(target)
        history.append(record)
        target.write_text(json.dumps(history, indent=2) + "\n",
                          encoding="utf-8")
        return history
    finally:
        lock.release()


def dual_write_history(
    history_path: Union[str, pathlib.Path],
    record: Dict[str, Any],
    tags: Optional[Dict[str, str]] = None,
) -> bool:
    """Mirror one bench session into the perfwatch trajectory.

    Returns True when a new history line was written (False: the
    session was already present).  Tags default to the live
    environment's (git SHA, hostname, config fingerprint).
    """
    from repro.perfwatch.ingest import from_bench_record
    from repro.perfwatch.store import PerfHistory, environment_tags

    session = from_bench_record(record)
    session.stamp(tags if tags is not None else environment_tags())
    return PerfHistory(history_path).append(session)
