"""Cross-run span diffing: aligned self-time tables for two sessions.

Two telemetry traces (JSONL files from ``runner --trace``, or parsed
event lists) are each rolled up with
:func:`repro.telemetry.profile.aggregate_spans` — the same self-vs-child
attribution ``--profile`` prints live — then aligned by span name into
one table with per-span deltas and a "what got slower" ranking by
self-time increase.

Everything here is a pure function of its inputs: values are rounded at
fixed precision, rows sort on (delta, name), and no wall clock or
environment leaks in, so diffing the same two traces twice yields
byte-identical tables — the property the perf-history acceptance gate
pins.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterable, List

from repro.common.tables import Table
from repro.telemetry import parse_trace
from repro.telemetry.profile import SpanAgg, aggregate_spans


@dataclasses.dataclass(frozen=True)
class SpanDelta:
    """One span name's aggregate timing in both sessions.

    Counts/times are 0 for a span absent from one side (a span that
    appeared or vanished between runs is itself a finding).
    """

    name: str
    count_a: int
    count_b: int
    self_a: float
    self_b: float
    total_a: float
    total_b: float

    @property
    def d_self(self) -> float:
        """Self-time change, B minus A (positive = got slower)."""
        return round(self.self_b - self.self_a, 6)

    @property
    def d_total(self) -> float:
        return round(self.total_b - self.total_a, 6)

    @property
    def ratio(self) -> float:
        """B/A self-time ratio; inf for spans new in B."""
        if self.self_a <= 0.0:
            return float("inf") if self.self_b > 0.0 else 1.0
        return round(self.self_b / self.self_a, 4)

    def row(self) -> List[object]:
        ratio = self.ratio
        return [
            self.name, self.count_a, self.count_b,
            round(self.self_a, 6), round(self.self_b, 6), self.d_self,
            "inf" if ratio == float("inf") else ratio,
        ]


def diff_spans(
    events_a: Iterable[Dict[str, Any]],
    events_b: Iterable[Dict[str, Any]],
) -> List[SpanDelta]:
    """Aligned per-span deltas between two parsed traces.

    Ordered by descending self-time increase, then name — the hot-path
    "what got slower" ranking; improvements land at the bottom.
    """

    def by_name(events: Iterable[Dict[str, Any]]) -> Dict[str, SpanAgg]:
        return {agg.name: agg for agg in aggregate_spans(events)}

    a, b = by_name(events_a), by_name(events_b)
    out: List[SpanDelta] = []
    for name in sorted(set(a) | set(b)):
        agg_a, agg_b = a.get(name), b.get(name)
        out.append(SpanDelta(
            name=name,
            count_a=agg_a.count if agg_a else 0,
            count_b=agg_b.count if agg_b else 0,
            self_a=agg_a.self_s if agg_a else 0.0,
            self_b=agg_b.self_s if agg_b else 0.0,
            total_a=agg_a.total_s if agg_a else 0.0,
            total_b=agg_b.total_s if agg_b else 0.0,
        ))
    out.sort(key=lambda d: (-d.d_self, d.name))
    return out


def diff_traces(path_a: str, path_b: str) -> List[SpanDelta]:
    """:func:`diff_spans` over two JSONL trace files.

    Truncated final lines are forgiven the same way the profiler's
    offline path forgives them — a crashed run's trace is exactly the
    kind of session worth diffing against a healthy one.
    """
    return diff_spans(parse_trace(path_a, allow_truncated=True),
                      parse_trace(path_b, allow_truncated=True))


def slower_spans(deltas: List[SpanDelta], n: int = 10) -> List[SpanDelta]:
    """The top-n spans by self-time increase (slowdowns only)."""
    return [d for d in deltas if d.d_self > 0.0][:n]


def span_diff_table(
    deltas: List[SpanDelta],
    label_a: str = "A",
    label_b: str = "B",
    n: int = 20,
) -> Table:
    """Renderable aligned table of the top-n deltas."""
    table = Table(
        f"Span diff: {label_a} -> {label_b} "
        f"(top {min(n, len(deltas))} by self-time change)",
        ["span", "n_a", "n_b", "self_a_s", "self_b_s",
         "d_self_s", "b/a"],
    )
    for delta in deltas[:n]:
        table.add_row(delta.row())
    return table
