"""Figure 4 — performance vs. number of memory channels.

The paper plots per-workload improvement with 4, 6, and 8 channels,
normalized to the 4-channel configuration.
"""

from __future__ import annotations

from repro.common.config import SimScale
from repro.common.tables import Table
from repro.experiments import ExperimentResult
from repro.experiments.gpu_common import gpu_workload_names, short_name, time_all, traces
from repro.gpusim import GPUConfig

CHANNELS = (4, 6, 8)


def run_fig4(scale: SimScale = SimScale.SMALL) -> ExperimentResult:
    trace_map = traces(scale)
    results = {
        ch: time_all(trace_map, GPUConfig.sim_default().replace(n_mem_channels=ch))
        for ch in CHANNELS
    }
    table = Table(
        "Figure 4: speedup over the 4-channel configuration",
        ["Workload", "4 channels", "6 channels", "8 channels"],
    )
    data = {}
    for name in gpu_workload_names():
        base = results[4][name].cycles
        speedups = {ch: base / results[ch][name].cycles for ch in CHANNELS}
        table.add_row([short_name(name)] + [speedups[ch] for ch in CHANNELS])
        data[name] = speedups
    return ExperimentResult("fig4", [table], data)
