"""Figures 7, 8, 9 — PCA scatter plots of feature subsets.

Each figure projects one family of characteristics onto its first two
principal components: instruction mix (Fig. 7), working sets (Fig. 8),
sharing behaviour (Fig. 9).  The tables list each workload's (PC1, PC2)
coordinates — the data behind the paper's scatter plots — plus the
outliers by distance from the centroid, which the paper annotates.
"""

from __future__ import annotations

import numpy as np

from repro.common.config import SimScale
from repro.common.tables import Table
from repro.core import PCA
from repro.core.features import display_label, feature_matrix, suite_workloads
from repro.experiments import ExperimentResult

_FIGS = {
    "fig7": ("mix", "Figure 7: instruction-mix PCA"),
    "fig8": ("workingset", "Figure 8: working-set PCA"),
    "fig9": ("sharing", "Figure 9: sharing PCA"),
}


def _run(figure: str, scale: SimScale) -> ExperimentResult:
    subset, title = _FIGS[figure]
    names = suite_workloads()
    x, feature_names = feature_matrix(names, subset=subset, scale=scale)
    pca = PCA(n_components=2).fit(x)
    coords = pca.transform(x)
    dist = np.sqrt((coords ** 2).sum(axis=1))
    order = np.argsort(-dist)

    table = Table(title, ["Workload", "Suite", "PC1", "PC2", "Outlier rank"])
    rank = {int(i): r + 1 for r, i in enumerate(order)}
    data = {"names": names, "coords": coords,
            "explained": pca.explained_variance_ratio_.tolist(),
            "features": feature_names, "outliers": []}
    for i, name in enumerate(names):
        suite = "R" if "(R" in display_label(name) else "P"
        table.add_row([name, suite, coords[i, 0], coords[i, 1], rank[i]])
    data["outliers"] = [names[i] for i in order[:5]]
    return ExperimentResult(figure, [table], data)


def run_fig7(scale: SimScale = SimScale.SMALL) -> ExperimentResult:
    return _run("fig7", scale)


def run_fig8(scale: SimScale = SimScale.SMALL) -> ExperimentResult:
    return _run("fig8", scale)


def run_fig9(scale: SimScale = SimScale.SMALL) -> ExperimentResult:
    return _run("fig9", scale)
