"""Figure 10 — miss rates under a 4 MB shared cache.

Misses per memory reference for every Rodinia and Parsec workload on
the 8-core shared 4-way cache with 64 B lines (exact simulation).
"""

from __future__ import annotations

from repro.common.config import SimScale
from repro.common.tables import Table
from repro.core.features import cpu_metrics_for, display_label, suite_workloads
from repro.experiments import ExperimentResult


def run_fig10(scale: SimScale = SimScale.SMALL) -> ExperimentResult:
    names = suite_workloads()
    table = Table(
        "Figure 10: misses per memory reference, 4 MB shared cache",
        ["Workload", "Miss rate", "Memory references"],
    )
    data = {}
    ordered = sorted(names, key=lambda n: -cpu_metrics_for(n, scale).miss_rate_4mb)
    for name in ordered:
        met = cpu_metrics_for(name, scale)
        table.add_row([display_label(name), met.miss_rate_4mb, met.mem_refs])
        data[name] = met.miss_rate_4mb
    return ExperimentResult("fig10", [table], data)
