"""Extension experiments: the paper's Section VII future-work items.

- ``ext_divergence`` — branch-divergence sensitivity of the Rodinia GPU
  workloads ("more detailed characterizations ... such as branch
  divergence sensitivity").
- ``ext_concurrent`` — simultaneous kernel execution: which workload
  pairs co-schedule profitably ("adding new features to the suite,
  including ... simultaneous kernel execution").
- ``ext_coverage`` — quantitative application-space coverage and
  redundancy of the two suites ("performing an application-space
  coverage study of existing multithreaded workloads").
- ``ext_crossarch`` — correlating program characteristics across the
  CPU and the GPU ("correlating program characteristics across the CPU
  and the GPU").
- ``ext_coherence`` — private-cache coherence traffic, extending the
  shared-cache methodology of Section IV-B.
"""

from __future__ import annotations

import itertools
from typing import Dict

import numpy as np

from repro.common.config import SimScale
from repro.common.tables import Table
from repro.core import PCA
from repro.core.coverage import (
    coverage_report,
    greedy_representative_subset,
    marginal_coverage,
)
from repro.core.features import (
    cpu_metrics_for,
    feature_matrix,
    gpu_trace_for,
    suite_workloads,
)
from repro.cpusim.coherence import simulate_coherent_caches_chunked
from repro.experiments import ExperimentResult
from repro.experiments.gpu_common import gpu_workload_names, short_name, traces
from repro.gpusim import GPUConfig, TimingModel
from repro.gpusim.divergence import analyze_divergence, simd_width_sensitivity
from repro.gpusim.sharing import analyze_gpu_sharing
from repro.workloads import base as wl


# ----------------------------------------------------------------------
# Divergence sensitivity
# ----------------------------------------------------------------------
def run_ext_divergence(scale: SimScale = SimScale.SMALL) -> ExperimentResult:
    trace_map = traces(scale)
    table = Table(
        "Extension: branch-divergence characterization",
        ["Workload", "SIMD efficiency", "Branch %", "Warps underfilled",
         "Perfect-reconvergence speedup bound", "Tx per mem warp-inst"],
    )
    data = {}
    for name in gpu_workload_names():
        stats = analyze_divergence(trace_map[name])
        table.add_row([
            short_name(name), stats.simd_efficiency, stats.branch_fraction,
            stats.frac_warps_underfilled, stats.divergence_speedup_bound,
            stats.memory_divergence,
        ])
        data[name] = stats.as_dict()

    widths = Table(
        "IPC across SIMD widths (divergent workloads pay less for width)",
        ["Workload", "SIMD 8", "SIMD 16", "SIMD 32"],
    )
    for name in ("bfs", "mummer", "nw", "hotspot", "kmeans"):
        res = simd_width_sensitivity(trace_map[name])
        widths.add_row([short_name(name)] + [res[w].ipc for w in (8, 16, 32)])
        data[name]["ipc_by_width"] = {w: res[w].ipc for w in (8, 16, 32)}
    return ExperimentResult("ext_divergence", [table, widths], data)


# ----------------------------------------------------------------------
# Simultaneous kernel execution
# ----------------------------------------------------------------------
_PAIR_CANDIDATES = [
    ("bfs", "hotspot"),        # bandwidth-bound + issue-bound
    ("mummer", "kmeans"),      # divergent/memory + compute
    ("bfs", "mummer"),         # both bandwidth-bound (should not help)
    ("hotspot", "kmeans"),     # both issue-bound (should not help)
    ("cfd", "leukocyte"),      # bandwidth + tex-cached compute
]


def run_ext_concurrent(scale: SimScale = SimScale.SMALL) -> ExperimentResult:
    trace_map = traces(scale)
    model = TimingModel(GPUConfig.sim_default())
    table = Table(
        "Extension: simultaneous kernel execution (co-run vs back-to-back)",
        ["Pair", "Serial cycles", "Concurrent cycles", "Co-run speedup"],
    )
    data = {}
    for a, b in _PAIR_CANDIDATES:
        co = model.time_concurrent([trace_map[a], trace_map[b]])
        table.add_row([
            f"{short_name(a)}+{short_name(b)}",
            co.serial_cycles, co.concurrent_cycles, co.speedup,
        ])
        data[(a, b)] = co.speedup
    return ExperimentResult("ext_concurrent", [table], data)


# ----------------------------------------------------------------------
# GPU inter-block data sharing
# ----------------------------------------------------------------------
def run_ext_gpusharing(scale: SimScale = SimScale.SMALL) -> ExperimentResult:
    """Future work: "data sharing among threads" on the GPU side."""
    trace_map = traces(scale)
    table = Table(
        "Extension: inter-thread-block data sharing (off-chip lines)",
        ["Workload", "Lines shared by >1 block", "Traffic to shared lines",
         "Mean blocks/line", "Max blocks/line"],
    )
    data = {}
    for name in gpu_workload_names():
        stats = analyze_gpu_sharing(trace_map[name])
        table.add_row([
            short_name(name), stats.frac_lines_shared,
            stats.shared_traffic_ratio, stats.mean_blocks_per_line,
            stats.max_blocks_per_line,
        ])
        data[name] = stats.as_dict()
    return ExperimentResult("ext_gpusharing", [table], data)


# ----------------------------------------------------------------------
# Hardware thread-block scheduling
# ----------------------------------------------------------------------
def run_ext_scheduler(scale: SimScale = SimScale.SMALL) -> ExperimentResult:
    """Future work: "the impact of hardware thread scheduling mechanisms".

    Compares round-robin vs chunked CTA-to-SM assignment on the cached
    Fermi configuration: chunked placement keeps spatially adjacent
    blocks (which share halo/frontier lines) on the same SM's L1.
    """
    trace_map = traces(scale)
    base = GPUConfig.gtx480_l1_bias()
    nol2 = base.replace(l2_size=0, name="gtx480-l1-only")
    models = {
        "rr": TimingModel(base.replace(cta_scheduler="round_robin")),
        "ch": TimingModel(base.replace(cta_scheduler="chunked")),
        "rr_nol2": TimingModel(nol2.replace(cta_scheduler="round_robin")),
        "ch_nol2": TimingModel(nol2.replace(cta_scheduler="chunked")),
    }
    table = Table(
        "Extension: CTA scheduler policy on Fermi (chunked speedup over "
        "round-robin; with and without the unified L2)",
        ["Workload", "Speedup (L1+L2)", "Speedup (L1 only)",
         "DRAM saved by chunking (L1 only)"],
    )
    data = {}
    for name in gpu_workload_names():
        t = {k: m.time(trace_map[name]) for k, m in models.items()}
        sp_l2 = t["rr"].cycles / t["ch"].cycles if t["ch"].cycles else 1.0
        sp_nol2 = (t["rr_nol2"].cycles / t["ch_nol2"].cycles
                   if t["ch_nol2"].cycles else 1.0)
        saved = t["rr_nol2"].dram_bytes - t["ch_nol2"].dram_bytes
        table.add_row([short_name(name), sp_l2, sp_nol2, saved])
        data[name] = {
            "speedup_with_l2": sp_l2,
            "speedup_no_l2": sp_nol2,
            "dram_saved_no_l2": int(saved),
        }
    # Headline: the unified L2 makes CTA placement nearly irrelevant;
    # without it, locality-sensitive workloads prefer chunked placement.
    data["max_speedup_with_l2"] = max(
        v["speedup_with_l2"] for k, v in data.items() if isinstance(v, dict)
    )
    data["max_speedup_no_l2"] = max(
        v["speedup_no_l2"] for k, v in data.items() if isinstance(v, dict)
    )
    return ExperimentResult("ext_scheduler", [table], data)


# ----------------------------------------------------------------------
# Application-space coverage
# ----------------------------------------------------------------------
def run_ext_coverage(scale: SimScale = SimScale.SMALL) -> ExperimentResult:
    names = suite_workloads()
    x, _ = feature_matrix(names, subset="all", scale=scale)
    pca = PCA().fit(x)
    k = max(2, pca.n_components_for_variance(0.90))
    coords = pca.transform(x)[:, :k]
    suites = {n: wl.get(n).meta.suite for n in names}
    idx_r = [i for i, n in enumerate(names) if suites[n] == "rodinia"]
    idx_p = [i for i, n in enumerate(names) if suites[n] == "parsec"]

    rep_all = coverage_report(coords, names)
    rep_r = coverage_report(coords[idx_r], [names[i] for i in idx_r])
    rep_p = coverage_report(coords[idx_p], [names[i] for i in idx_p])
    gain_r = marginal_coverage(coords[idx_p], coords[idx_r])
    gain_p = marginal_coverage(coords[idx_r], coords[idx_p])
    subset = greedy_representative_subset(coords, names, 0.9)

    table = Table(
        "Extension: application-space coverage and redundancy",
        ["Suite", "Volume", "Mean NN distance", "Min NN distance",
         "Redundant pairs"],
    )
    for label, rep in (("Rodinia", rep_r), ("Parsec", rep_p),
                       ("Joint", rep_all)):
        table.add_row([label, rep.volume, rep.mean_nn_distance,
                       rep.min_nn_distance, len(rep.redundant_pairs)])

    gains = Table(
        "Marginal coverage (volume growth from adding one suite to the other)",
        ["Addition", "Volume growth"],
    )
    gains.add_row(["Rodinia added to Parsec", gain_r])
    gains.add_row(["Parsec added to Rodinia", gain_p])

    rep_table = Table(
        f"Greedy representative subset covering 90% of joint volume "
        f"({len(subset)} of {len(names)} workloads)",
        ["Workloads"],
    )
    rep_table.add_row([", ".join(subset)])

    data = {
        "rodinia": rep_r.as_dict(),
        "parsec": rep_p.as_dict(),
        "joint": rep_all.as_dict(),
        "gain_rodinia_over_parsec": gain_r,
        "gain_parsec_over_rodinia": gain_p,
        "representative_subset": subset,
        "redundant_pairs": rep_all.redundant_pairs,
    }
    return ExperimentResult("ext_coverage", [table, gains, rep_table], data)


# ----------------------------------------------------------------------
# CPU <-> GPU cross-architecture correlation
# ----------------------------------------------------------------------
def _rank_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation (no scipy dependency at runtime)."""
    ra = np.argsort(np.argsort(a)).astype(np.float64)
    rb = np.argsort(np.argsort(b)).astype(np.float64)
    ra -= ra.mean()
    rb -= rb.mean()
    denom = np.sqrt((ra * ra).sum() * (rb * rb).sum())
    return float((ra * rb).sum() / denom) if denom else 0.0


def run_ext_crossarch(scale: SimScale = SimScale.SMALL) -> ExperimentResult:
    names = gpu_workload_names()
    trace_map = traces(scale)
    model = TimingModel(GPUConfig.sim_default())

    rows = []
    for name in names:
        tr = trace_map[name]
        met = cpu_metrics_for(name, scale)
        timing = model.time(tr)
        rows.append({
            "name": name,
            "gpu_mem_intensity": tr.mem_mix()["global"],
            "gpu_simd_eff": tr.thread_insts / (tr.issued_warp_insts * 32),
            "gpu_bw_util": timing.bw_utilization,
            "cpu_mem_fraction": met.inst_mix["load"] + met.inst_mix["store"],
            "cpu_branch_fraction": met.inst_mix["branch"],
            "cpu_miss_4mb": met.miss_rate_4mb,
        })

    pairs = [
        ("cpu_mem_fraction", "gpu_mem_intensity",
         "memory-instruction intensity"),
        ("cpu_branch_fraction", "gpu_simd_eff",
         "CPU branchiness vs GPU SIMD efficiency"),
        ("cpu_miss_4mb", "gpu_bw_util",
         "CPU miss rate vs GPU bandwidth pressure"),
    ]
    table = Table(
        "Extension: CPU vs GPU characteristic correlation "
        "(Spearman rank, 12 Rodinia workloads)",
        ["Characteristic pair", "Rank correlation"],
    )
    data: Dict[str, float] = {}
    for cpu_key, gpu_key, label in pairs:
        rho = _rank_correlation(
            np.array([r[cpu_key] for r in rows]),
            np.array([r[gpu_key] for r in rows]),
        )
        table.add_row([label, rho])
        data[f"{cpu_key}~{gpu_key}"] = rho

    detail = Table(
        "Per-workload cross-architecture profile",
        ["Workload", "CPU mem %", "GPU global mem-mix", "CPU branch %",
         "GPU SIMD eff", "CPU miss@4MB", "GPU BW util"],
    )
    for r in rows:
        detail.add_row([
            short_name(r["name"]), r["cpu_mem_fraction"],
            r["gpu_mem_intensity"], r["cpu_branch_fraction"],
            r["gpu_simd_eff"], r["cpu_miss_4mb"], r["gpu_bw_util"],
        ])
    data["rows"] = rows
    return ExperimentResult("ext_crossarch", [table, detail], data)


# ----------------------------------------------------------------------
# Coherence (private caches)
# ----------------------------------------------------------------------
def run_ext_coherence(scale: SimScale = SimScale.SMALL) -> ExperimentResult:
    from repro.cpusim import Machine

    names = suite_workloads()
    table = Table(
        "Extension: private 512 kB caches with write-invalidate coherence",
        ["Workload", "Miss rate", "Coherence-miss fraction",
         "Invalidations / kiloref", "False-sharing fraction",
         "Shared-cache miss rate (Fig. 10)"],
    )
    data = {}
    for name in names:
        defn = wl.get(name)
        machine = Machine()
        defn.cpu_fn(machine, scale)
        stats = simulate_coherent_caches_chunked(machine.iter_trace_chunks)
        shared_rate = cpu_metrics_for(name, scale).miss_rate_4mb
        table.add_row([
            name, stats.miss_rate, stats.coherence_miss_fraction,
            stats.invalidations_per_kiloref, stats.false_sharing_fraction,
            shared_rate,
        ])
        data[name] = {
            "miss_rate": stats.miss_rate,
            "coherence_fraction": stats.coherence_miss_fraction,
            "invals_per_kiloref": stats.invalidations_per_kiloref,
            "false_sharing_fraction": stats.false_sharing_fraction,
        }
    ordered = sorted(data, key=lambda n: -data[n]["invals_per_kiloref"])
    data["most_coherence_bound"] = ordered[:5]
    return ExperimentResult("ext_coherence", [table], data)
