"""Figure 2 — memory-instruction breakdown by space per workload."""

from __future__ import annotations

from repro.common.config import SimScale
from repro.common.tables import Table
from repro.experiments import ExperimentResult
from repro.experiments.gpu_common import gpu_workload_names, short_name, traces

_SPACES = ("shared", "tex", "const", "param", "global")


def run_fig2(scale: SimScale = SimScale.SMALL) -> ExperimentResult:
    trace_map = traces(scale)
    table = Table(
        "Figure 2: memory operation breakdown (fraction of memory instructions)",
        ["Workload"] + [s.capitalize() for s in _SPACES],
    )
    data = {}
    for name in gpu_workload_names():
        mix = trace_map[name].mem_mix()
        table.add_row([short_name(name)] + [mix[s] for s in _SPACES])
        data[name] = mix
    return ExperimentResult("fig2", [table], data)
