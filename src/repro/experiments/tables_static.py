"""Tables I, IV, and V — suite enumerations and the feature comparison.

Tables I and V are regenerated from the workload registry (application,
dwarf, domain, paper problem size, plus our scaled simulation size);
Table IV is the paper's qualitative feature comparison, reproduced
verbatim since it describes the suites rather than a measurement.
"""

from __future__ import annotations

import importlib

from repro.common.config import SimScale
from repro.common.tables import Table
from repro.experiments import ExperimentResult
from repro.workloads import base as wl


def _sizes_note(name: str, scale: SimScale) -> str:
    if name == "streamcluster_p":
        # Shared implementation lives in the Rodinia module.
        mod_name, suite = "streamcluster", "rodinia"
    else:
        mod_name, suite = name, wl.get(name).meta.suite
    module = importlib.import_module(
        f"repro.workloads.{'rodinia' if suite == 'rodinia' else 'parsec'}.{mod_name}"
    )
    fn = getattr(module, "cpu_sizes", None)
    if fn is None:
        return "-"
    p = fn(scale)
    return ", ".join(f"{k}={v}" for k, v in p.items())


def run_table1(scale: SimScale = SimScale.SMALL) -> ExperimentResult:
    t = Table(
        "Table I: Rodinia applications and kernels",
        ["Application", "Short", "Dwarf", "Domain", "Paper size", "Sim size"],
    )
    data = {}
    for defn in wl.all_rodinia():
        m = defn.meta
        sim = _sizes_note(m.name, scale)
        t.add_row([m.name, m.short, m.dwarf, m.domain, m.paper_size, sim])
        data[m.name] = {"dwarf": m.dwarf, "domain": m.domain}
    return ExperimentResult("table1", [t], data)


def run_table5(scale: SimScale = SimScale.SMALL) -> ExperimentResult:
    t = Table(
        "Table V: Parsec applications and problem sizes",
        ["Application", "Domain", "Paper size", "Description", "Sim size"],
    )
    data = {}
    for defn in wl.all_parsec():
        m = defn.meta
        t.add_row([m.name, m.domain, m.paper_size, m.description,
                   _sizes_note(m.name, scale)])
        data[m.name] = {"domain": m.domain}
    return ExperimentResult("table5", [t], data)


_TABLE4_ROWS = [
    ("Platform", "CPU", "CPU and GPU"),
    ("Programming Model", "Pthreads, OpenMP, and TBB", "OpenMP and CUDA"),
    ("Machine Model", "Shared Memory", "Shared Memory and Offloading"),
    ("Application Domains",
     "Scientific, Engineering, Finance, Multimedia",
     "Scientific, Engineering, Data Mining"),
    ("Application Count", "3 Kernels and 9 Applications",
     "6 Kernels and 6 Applications"),
    ("Optimized for...", "Multicore", "Manycore and Accelerator"),
    ("Incremental Versions", "No", "Yes"),
    ("Memory Space", "HW Cache", "HW and SW Caches"),
    ("Problem Sizes", "Small-Large", "Small-Large"),
    ("Special SW Techniques", "SW Pipelining",
     "Ghost-zone and Persistent Thread Blocks"),
    ("Synchronization", "Barriers, Locks, and Conditions", "Barriers"),
]


def run_table4(scale: SimScale = SimScale.SMALL) -> ExperimentResult:
    t = Table(
        "Table IV: Comparison between Parsec and Rodinia",
        ["Feature", "Parsec", "Rodinia"],
    )
    for row in _TABLE4_ROWS:
        t.add_row(row)
    # Cross-check the qualitative claims the registry can verify.
    wl.load_all()
    data = {
        "rodinia_count": len(wl.all_rodinia()),
        "parsec_count": len(wl.all_parsec()),
        "rodinia_has_versions": sorted(
            d.meta.name for d in wl.all_rodinia() if d.gpu_versions
        ),
    }
    return ExperimentResult("table4", [t], data)
