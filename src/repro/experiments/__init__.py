"""Experiment drivers: one module per paper table/figure.

Every driver exposes ``run(scale) -> ExperimentResult`` where the result
carries rendered tables (what the paper printed/plotted) plus the raw
data series for tests and benchmarks.  ``REGISTRY`` maps experiment ids
(e.g. ``fig1``, ``table3``, ``pb``) to drivers; the CLI is
``python -m repro.experiments.runner <id>``.
"""

from __future__ import annotations

import dataclasses
import importlib
from typing import Callable, Dict, List

from repro.common.tables import Table


@dataclasses.dataclass
class ExperimentResult:
    """Rendered tables plus raw data of one experiment."""

    experiment: str
    tables: List[Table]
    data: dict

    def render(self) -> str:
        return "\n\n".join(t.render() for t in self.tables)


_MODULES = {
    "table1": "tables_static",
    "table4": "tables_static",
    "table5": "tables_static",
    "fig1": "fig1_ipc",
    "fig2": "fig2_memmix",
    "fig3": "fig3_occupancy",
    "fig4": "fig4_channels",
    "table3": "table3_versions",
    "fig5": "fig5_fermi",
    "pb": "pb_sensitivity",
    "fig6": "fig6_dendrogram",
    "fig7": "fig789_pca",
    "fig8": "fig789_pca",
    "fig9": "fig789_pca",
    "fig10": "fig10_missrates",
    "fig11": "fig1112_footprints",
    "fig12": "fig1112_footprints",
    # Extensions: the paper's Section VII future-work items.
    "ext_divergence": "extensions",
    "ext_concurrent": "extensions",
    "ext_coverage": "extensions",
    "ext_crossarch": "extensions",
    "ext_coherence": "extensions",
    "ext_gpusharing": "extensions",
    "ext_scheduler": "extensions",
    "ext_workingsets": "extensions2",
    "ext_sharing_size": "extensions2",
    "ext_prediction": "extensions2",
    "ext_parsec_ports": "extensions2",
}

ALL_EXPERIMENTS = tuple(_MODULES)


def get_driver(experiment: str) -> Callable:
    """The ``run(scale)`` callable for an experiment id."""
    if experiment not in _MODULES:
        raise KeyError(
            f"unknown experiment {experiment!r}; known: {sorted(_MODULES)}"
        )
    mod = importlib.import_module(f"repro.experiments.{_MODULES[experiment]}")
    return getattr(mod, f"run_{experiment}")
