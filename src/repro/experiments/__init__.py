"""Experiment drivers: one module per paper table/figure.

Every driver exposes ``run_<id>(scale) -> ExperimentResult``; drivers
are looked up by id (``fig1``, ``table3``, ``pb``, ``report``, ...) and
invoked through the one typed entry point, :func:`run_experiment`, which
wraps the driver in a telemetry span and fills in the result's
``title``/``metadata``/``span_id``.  The CLI is
``python -m repro.experiments.runner <id>``.

:class:`ExperimentResult` is the single return type of the whole
experiment layer: rendered tables (what the paper printed/plotted), an
optional non-tabular ``text`` payload (dendrograms, the Markdown
report), and the raw ``data`` series for tests and benchmarks.
"""

from __future__ import annotations

import contextlib
import dataclasses
import importlib
import time
import warnings
from typing import Any, Callable, Dict, List, Optional, Union

from repro import telemetry
from repro.api import ExperimentRequest
from repro.common.config import SimScale, config, override
from repro.common.tables import Table


@dataclasses.dataclass
class ExperimentResult:
    """Typed outcome of one experiment run.

    experiment -- the experiment id (``fig1``, ``table3``, ``report``).
    tables     -- rendered :class:`~repro.common.tables.Table` objects.
    data       -- raw data series keyed however the driver documents.
    title      -- human title; defaults to the first table's title.
    text       -- non-tabular rendered payload appended by
                  :meth:`render` (fig6's dendrogram, the report's
                  Markdown body).
    metadata   -- run provenance: scale, wall-clock duration, counts.
    span_id    -- id of the ``experiment`` telemetry span that covered
                  the driver call (None when telemetry was off).
    """

    experiment: str
    tables: List[Table]
    data: dict
    title: str = ""
    text: str = ""
    metadata: Dict[str, Any] = dataclasses.field(default_factory=dict)
    span_id: Optional[str] = None

    @property
    def id(self) -> str:
        """Alias of ``experiment`` for the typed-API vocabulary."""
        return self.experiment

    @property
    def rows(self) -> List[Dict[str, Any]]:
        """Every table row as a dict, tagged with its table's title."""
        return [
            dict(zip(t.columns, row), _table=t.title)
            for t in self.tables
            for row in t.rows
        ]

    def render(self) -> str:
        parts = [t.render() for t in self.tables]
        if self.text:
            parts.append(self.text)
        return "\n\n".join(parts)


_MODULES = {
    "table1": "tables_static",
    "table4": "tables_static",
    "table5": "tables_static",
    "fig1": "fig1_ipc",
    "fig2": "fig2_memmix",
    "fig3": "fig3_occupancy",
    "fig4": "fig4_channels",
    "table3": "table3_versions",
    "fig5": "fig5_fermi",
    "pb": "pb_sensitivity",
    "fig6": "fig6_dendrogram",
    "fig7": "fig789_pca",
    "fig8": "fig789_pca",
    "fig9": "fig789_pca",
    "fig10": "fig10_missrates",
    "fig11": "fig1112_footprints",
    "fig12": "fig1112_footprints",
    # Extensions: the paper's Section VII future-work items.
    "ext_divergence": "extensions",
    "ext_concurrent": "extensions",
    "ext_coverage": "extensions",
    "ext_crossarch": "extensions",
    "ext_coherence": "extensions",
    "ext_gpusharing": "extensions",
    "ext_scheduler": "extensions",
    "ext_workingsets": "extensions2",
    "ext_sharing_size": "extensions2",
    "ext_prediction": "extensions2",
    "ext_parsec_ports": "extensions2",
}

ALL_EXPERIMENTS = tuple(_MODULES)


def get_driver(experiment: str) -> Callable:
    """The ``run(scale)`` callable for an experiment id."""
    if experiment == "report":
        # The full Markdown characterization; not part of
        # ALL_EXPERIMENTS (it re-renders what the others measure) but a
        # first-class driver for the typed entry point and the CLI.
        from repro.core.report import run_report

        return run_report
    if experiment not in _MODULES:
        raise KeyError(
            f"unknown experiment {experiment!r}; known: {sorted(_MODULES)}"
        )
    mod = importlib.import_module(f"repro.experiments.{_MODULES[experiment]}")
    return getattr(mod, f"run_{experiment}")


def run_experiment(
    request: Union[ExperimentRequest, str],
    scale: Optional[SimScale] = None,
) -> ExperimentResult:
    """Run one experiment under a telemetry span; the typed entry point.

    The canonical spelling takes an
    :class:`~repro.api.ExperimentRequest` — the same encoding the CLI,
    the HTTP service, and the run registry speak — and applies its
    validated config overrides around the driver call::

        run_experiment(ExperimentRequest("fig1", SimScale.SMALL))

    The historical ``run_experiment("fig1", scale)`` spelling still
    works but emits a :class:`DeprecationWarning`; it is a shim that
    builds the request object for you.

    Every consumer of the experiment layer (the CLI runner, the
    benchmark harness, the report, the service) goes through here, so
    every result arrives with a uniform title, provenance metadata
    (including the request encoding itself), and — when telemetry is
    active — the id of the span covering the driver call.
    """
    if isinstance(request, ExperimentRequest):
        if scale is not None:
            raise TypeError(
                "scale travels inside ExperimentRequest; "
                "don't pass it separately"
            )
        req = request
    else:
        warnings.warn(
            "run_experiment('id', scale) is deprecated; pass "
            "repro.api.ExperimentRequest('id', scale) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        req = ExperimentRequest(
            experiment=request,
            scale=SimScale.SMALL if scale is None else scale,
        )
    experiment, req_scale = req.experiment, req.scale
    driver = get_driver(experiment)
    ctx = override(**req.config) if req.config else contextlib.nullcontext()
    t0 = time.perf_counter()
    with ctx:
        with telemetry.span(
            "experiment", experiment=experiment, scale=req_scale.value
        ) as sp:
            result = driver(req_scale)
            # Timestamped cumulative totals per experiment boundary:
            # gives JSONL traces a counter time series (rendered as
            # stepped "C" tracks by the Chrome exporter) at one sample
            # per experiment.
            telemetry.sample_counters()
    if not isinstance(result, ExperimentResult):
        raise TypeError(
            f"driver for {experiment!r} returned {type(result).__name__}, "
            "expected ExperimentResult"
        )
    if not result.title:
        result.title = result.tables[0].title if result.tables else experiment
    result.metadata.setdefault("scale", req_scale.value)
    result.metadata.setdefault(
        "duration_s", round(time.perf_counter() - t0, 3)
    )
    result.metadata.setdefault("n_tables", len(result.tables))
    result.metadata.setdefault("request", req.to_dict())
    result.span_id = sp.id
    registry_dir = config().registry_dir
    if registry_dir:
        _record_invocation(result, req, registry_dir)
    return result


def _record_invocation(
    result: ExperimentResult, req: ExperimentRequest, registry_dir: str
) -> None:
    """Persist one invocation's metrics to the run registry.

    Best-effort observability: a read-only filesystem must not turn a
    successful experiment into a failure, so registry errors are
    reported via the result's metadata rather than raised.
    """
    from repro.fidelity import RunRegistry, record_from_results

    record = record_from_results(
        [result],
        req.scale.value,
        kind="experiment",
        counters=telemetry.counters(),
        # The registry record carries the request in the same typed
        # encoding the service wire format uses (repro.api).
        meta={"span_id": result.span_id, "request": req.to_dict()},
    )
    try:
        path = RunRegistry(registry_dir).save(record)
    except OSError as exc:
        result.metadata["registry_error"] = str(exc)
    else:
        result.metadata["registry_record"] = str(path)
