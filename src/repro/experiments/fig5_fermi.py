"""Figure 5 — Fermi (GTX480) kernel time vs. GTX280.

Kernel execution times on the cached Fermi configurations (shared bias:
48 kB shared + 16 kB L1; L1 bias: 16 kB shared + 48 kB L1), normalized
to the GTX280 (no general-purpose caches).  Lower is better; the paper's
headline observations are that global-heavy workloads (MUMmer, BFS)
improve under L1 bias while shared-memory-tuned workloads (SRAD, NW,
Leukocyte) prefer shared bias.
"""

from __future__ import annotations

from repro.common.config import SimScale
from repro.common.tables import Table
from repro.experiments import ExperimentResult
from repro.experiments.gpu_common import gpu_workload_names, short_name, time_all, traces
from repro.gpusim import GPUConfig


def run_fig5(scale: SimScale = SimScale.SMALL) -> ExperimentResult:
    trace_map = traces(scale)
    t280 = time_all(trace_map, GPUConfig.gtx280())
    t_shared = time_all(trace_map, GPUConfig.gtx480_shared_bias())
    t_l1 = time_all(trace_map, GPUConfig.gtx480_l1_bias())
    table = Table(
        "Figure 5: normalized kernel time (GTX280 = 1.0; lower is better)",
        ["Workload", "GTX480 shared-bias", "GTX480 L1-bias",
         "L1-bias speedup over shared-bias"],
    )
    data = {}
    for name in gpu_workload_names():
        base = t280[name].time_s
        ns = t_shared[name].time_s / base
        nl = t_l1[name].time_s / base
        table.add_row([short_name(name), ns, nl, ns / nl])
        data[name] = {"shared_bias": ns, "l1_bias": nl, "l1_speedup": ns / nl}
    return ExperimentResult("fig5", [table], data)
