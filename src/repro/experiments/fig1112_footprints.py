"""Figures 11 and 12 — instruction and data footprints.

Figure 11: distinct 64-byte instruction blocks executed (here: executed
Python bytecode, the substitution documented in DESIGN.md).  Figure 12:
distinct 4 kB data pages touched.
"""

from __future__ import annotations

from repro.common.config import SimScale
from repro.common.tables import Table
from repro.core.features import cpu_metrics_for, display_label, suite_workloads
from repro.experiments import ExperimentResult


def run_fig11(scale: SimScale = SimScale.SMALL) -> ExperimentResult:
    names = suite_workloads()
    table = Table(
        "Figure 11: instruction footprint (64 B bytecode blocks executed)",
        ["Workload", "Instruction blocks"],
    )
    data = {}
    for name in sorted(names, key=lambda n: -cpu_metrics_for(n, scale).code_footprint_64b):
        met = cpu_metrics_for(name, scale)
        table.add_row([display_label(name), met.code_footprint_64b])
        data[name] = met.code_footprint_64b
    return ExperimentResult("fig11", [table], data)


def run_fig12(scale: SimScale = SimScale.SMALL) -> ExperimentResult:
    names = suite_workloads()
    table = Table(
        "Figure 12: data footprint (4 kB pages touched)",
        ["Workload", "Data pages", "~bytes"],
    )
    data = {}
    for name in sorted(names, key=lambda n: -cpu_metrics_for(n, scale).data_footprint_4kb):
        met = cpu_metrics_for(name, scale)
        table.add_row([display_label(name), met.data_footprint_4kb,
                       met.data_footprint_4kb * 4096])
        data[name] = met.data_footprint_4kb
    return ExperimentResult("fig12", [table], data)
