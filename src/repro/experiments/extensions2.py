"""Second batch of extension experiments.

- ``ext_workingsets`` — Bienia-style working-set (WS1/WS2) knee
  detection from each workload's miss-rate curve: the quantitative
  version of Figure 8's "how much cache does it want".
- ``ext_sharing_size`` — sharing as a function of cache size
  (the paper measures sharing at eight cache sizes; the main pipeline
  reports whole-run sharing — this experiment removes that
  simplification by measuring sharing within cache residency).
- ``ext_prediction`` — similarity-based cross-architecture performance
  prediction (refs [15][16]): leave-one-out k-NN prediction of GPU IPC
  from (a) CPU characteristics alone, (b) structural GPU
  characteristics, (c) both — quantifying which metrics the paper's
  sought "cross-architecture correlation" actually needs.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.common.config import SimScale
from repro.common.tables import Table
from repro.core.features import cpu_metrics_for, feature_matrix, suite_workloads
from repro.core.prediction import leave_one_out
from repro.cpusim import Machine
from repro.cpusim.sharing import sharing_at_size_chunked
from repro.cpusim.workingset import detect_working_sets, fine_miss_curve_chunked
from repro.experiments import ExperimentResult
from repro.experiments.gpu_common import (
    gpu_workload_names,
    short_name,
    time_all,
    traces,
)
from repro.gpusim import GPUConfig
from repro.workloads import base as wl

_SHARING_SIZES = (256 * 1024, 4 * 1024 * 1024, 16 * 1024 * 1024)


def _machine_for(name: str, scale: SimScale) -> Machine:
    defn = wl.get(name)
    machine = Machine()
    defn.cpu_fn(machine, scale)
    return machine


# ----------------------------------------------------------------------
# Working-set knees
# ----------------------------------------------------------------------
def run_ext_workingsets(scale: SimScale = SimScale.SMALL) -> ExperimentResult:
    names = suite_workloads()
    table = Table(
        "Extension: detected working sets (miss-rate knees, Bienia-style)",
        ["Workload", "WS1", "WS2", "Miss rate before/after WS1"],
    )
    data: Dict[str, List] = {}
    for name in names:
        machine = _machine_for(name, scale)
        sets = detect_working_sets(fine_miss_curve_chunked(machine.iter_trace_chunks))
        def fmt(i):
            if i >= len(sets):
                return "-"
            return f"{sets[i].size_bytes // 1024} kB"
        before_after = (
            f"{sets[0].miss_rate_before:.3f} -> {sets[0].miss_rate_after:.3f}"
            if sets else "-"
        )
        table.add_row([name, fmt(0), fmt(1), before_after])
        data[name] = [
            {"size": ws.size_bytes, "drop": ws.drop} for ws in sets
        ]
    return ExperimentResult("ext_workingsets", [table], data)


# ----------------------------------------------------------------------
# Sharing vs cache size
# ----------------------------------------------------------------------
def run_ext_sharing_size(scale: SimScale = SimScale.SMALL) -> ExperimentResult:
    # A representative subset keeps the three exact-simulation passes
    # per workload affordable; chosen to span the sharing spectrum.
    names = ["canneal", "dedup", "facesim", "fluidanimate", "bfs",
             "hotspot", "streamcluster", "blackscholes"]
    table = Table(
        "Extension: shared-access ratio within cache residency, by size",
        ["Workload"] + [f"{s // 1024} kB" for s in _SHARING_SIZES]
        + ["Whole-run (Fig. 9 pipeline)"],
    )
    data = {}
    for name in names:
        machine = _machine_for(name, scale)
        ratios = {}
        for size in _SHARING_SIZES:
            ratios[size] = sharing_at_size_chunked(
                machine.iter_trace_chunks, size
            ).shared_access_ratio
        whole = cpu_metrics_for(name, scale).sharing.shared_access_ratio
        table.add_row([name] + [ratios[s] for s in _SHARING_SIZES] + [whole])
        data[name] = {"by_size": ratios, "whole_run": whole}
    return ExperimentResult("ext_sharing_size", [table], data)


# ----------------------------------------------------------------------
# Porting Parsec to the GPU (Section V-B)
# ----------------------------------------------------------------------
def run_ext_parsec_ports(scale: SimScale = SimScale.SMALL) -> ExperimentResult:
    """Section V-B asks whether Parsec maps to heterogeneous platforms.

    Two experimental ports answer with data: Blackscholes (the easy
    case — embarrassingly parallel, no synchronization) and Raytrace
    (the hard case — per-ray BVH walks with private traversal stacks).
    Both are verified against their CPU references, then characterized
    exactly as the Rodinia workloads are in Figures 1-3.
    """
    from repro.gpusim import GPU, TimingModel
    from repro.gpusim.divergence import analyze_divergence
    from repro.workloads.parsec import blackscholes as bs_mod
    from repro.workloads.parsec import raytrace as rt_mod

    model = TimingModel(GPUConfig.sim_default())
    model8 = TimingModel(GPUConfig.sim_8sm())
    ports = [
        ("blackscholes(P)", bs_mod.gpu_port_run, bs_mod.check_gpu_port),
        ("raytrace(P)", rt_mod.gpu_port_run, rt_mod.check_gpu_port),
    ]
    table = Table(
        "Extension: experimental Parsec GPU ports, characterized like Fig. 1-3",
        ["Workload", "IPC (28 SM)", "Scaling 8->28", "SIMD efficiency",
         "Warps <=16 active", "Dominant memory space"],
    )
    data = {}
    rows = {}
    for label, run_fn, check_fn in ports:
        gpu = GPU(app_name=label)
        result = run_fn(gpu, scale)
        check_fn(result, scale)
        trace = gpu.trace
        t28 = model.time(trace)
        t8 = model8.time(trace)
        div = analyze_divergence(trace)
        mix = trace.mem_mix()
        buckets = trace.occupancy_buckets()
        dominant = max(mix, key=mix.get)
        table.add_row([
            label, t28.ipc, t28.ipc / max(t8.ipc, 1e-9),
            div.simd_efficiency, buckets["1-8"] + buckets["9-16"], dominant,
        ])
        rows[label] = {
            "ipc28": t28.ipc,
            "scaling": t28.ipc / max(t8.ipc, 1e-9),
            "simd_eff": div.simd_efficiency,
            "low_occ": buckets["1-8"] + buckets["9-16"],
        }
    # Rodinia context: where do the ports land relative to the suite?
    t28_rodinia = time_all(traces(scale), GPUConfig.sim_default())
    rodinia_ipcs = sorted(t28_rodinia[n].ipc for n in gpu_workload_names())
    data.update(rows)
    data["rodinia_median_ipc"] = float(rodinia_ipcs[len(rodinia_ipcs) // 2])
    note = Table(
        "Context",
        ["Metric", "Value"],
    )
    note.add_row(["Rodinia median IPC (28 SM)", data["rodinia_median_ipc"]])
    note.add_row(["Easy port (blackscholes) vs median",
                  rows["blackscholes(P)"]["ipc28"] / data["rodinia_median_ipc"]])
    note.add_row(["Hard port (raytrace) vs median",
                  rows["raytrace(P)"]["ipc28"] / data["rodinia_median_ipc"]])
    return ExperimentResult("ext_parsec_ports", [table, note], data)


# ----------------------------------------------------------------------
# Cross-architecture performance prediction
# ----------------------------------------------------------------------
def _gpu_structural_features(scale: SimScale) -> np.ndarray:
    """Timing-independent structural features of the GPU traces."""
    rows = []
    for name in gpu_workload_names():
        t = traces(scale)[name]
        mix = t.mem_mix()
        buckets = t.occupancy_buckets()
        rows.append([
            t.thread_insts / max(t.issued_warp_insts * 32, 1),
            mix["global"],
            mix["shared"],
            mix["tex"] + mix["const"],
            buckets["1-8"] + buckets["9-16"],
            np.log10(max(t.n_launches, 1)),
            np.log10(max(t.thread_insts, 1))
            - np.log10(max(t.n_transactions, 1)),
        ])
    return np.array(rows)


def run_ext_prediction(scale: SimScale = SimScale.SMALL) -> ExperimentResult:
    names = gpu_workload_names()
    x_cpu, _ = feature_matrix(names, subset="all", scale=scale)
    x_gpu = _gpu_structural_features(scale)
    t28 = time_all(traces(scale), GPUConfig.sim_default())
    y = np.array([t28[n].ipc for n in names])

    variants = {
        "CPU features only": x_cpu,
        "GPU structural features": x_gpu,
        "Combined": np.hstack([x_cpu, x_gpu]),
    }
    summary = Table(
        "Extension: leave-one-out prediction of GPU IPC (k-NN, k=3)",
        ["Feature set", "Rank correlation", "Mean |log2 error|"],
    )
    data = {}
    best = None
    for label, x in variants.items():
        res = leave_one_out(x, y, names, k=3)
        summary.add_row([label, res.rank_correlation, res.mean_abs_log_error])
        data[label] = {
            "rho": res.rank_correlation,
            "log2err": res.mean_abs_log_error,
        }
        best = res if label == "Combined" else best

    detail = Table(
        "Per-workload prediction (combined feature set)",
        ["Workload", "Actual IPC", "Predicted IPC", "Factor"],
    )
    for name, a, p, f in zip(names, best.actual, best.predicted,
                             best.errors_factor()):
        detail.add_row([short_name(name), a, p, f])
    data["per_workload"] = {
        n: {"actual": float(a), "predicted": float(p)}
        for n, a, p in zip(names, best.actual, best.predicted)
    }
    return ExperimentResult("ext_prediction", [summary, detail], data)
