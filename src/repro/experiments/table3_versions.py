"""Table III — incrementally optimized versions of SRAD and Leukocyte."""

from __future__ import annotations

from repro.common.config import SimScale
from repro.common.tables import Table
from repro.core.features import gpu_trace_for
from repro.experiments import ExperimentResult
from repro.gpusim import GPUConfig, TimingModel


def run_table3(scale: SimScale = SimScale.SMALL) -> ExperimentResult:
    """Table III shows SRAD and Leukocyte; the paper says versions of
    LUD and Needleman-Wunsch were also being prepared — all four are
    implemented and reported here."""
    model = TimingModel(GPUConfig.sim_default())
    table = Table(
        "Table III: incrementally optimized versions",
        ["Benchmark", "Version", "IPC", "BW utilization",
         "Shared %", "Tex %", "Const %", "Global %"],
    )
    data = {}
    for bench in ("srad", "leukocyte", "lud", "nw"):
        for version in (1, 2):
            trace = gpu_trace_for(bench, scale, version=version)
            timing = model.time(trace)
            mix = trace.mem_mix()
            table.add_row([
                bench, f"v{version}", timing.ipc, timing.bw_utilization,
                mix["shared"], mix["tex"], mix["const"], mix["global"],
            ])
            data[(bench, version)] = {
                "ipc": timing.ipc,
                "bw_util": timing.bw_utilization,
                **mix,
            }
    return ExperimentResult("table3", [table], data)
