"""Figure 3 — warp occupancy (active threads per issued warp)."""

from __future__ import annotations

from repro.common.config import SimScale
from repro.common.tables import Table
from repro.experiments import ExperimentResult
from repro.experiments.gpu_common import gpu_workload_names, short_name, traces

_BUCKETS = ("1-8", "9-16", "17-24", "25-32")


def run_fig3(scale: SimScale = SimScale.SMALL) -> ExperimentResult:
    trace_map = traces(scale)
    table = Table(
        "Figure 3: warp occupancy distribution (fraction of issued warps)",
        ["Workload"] + list(_BUCKETS) + ["Mean active"],
    )
    data = {}
    for name in gpu_workload_names():
        tr = trace_map[name]
        buckets = tr.occupancy_buckets()
        table.add_row(
            [short_name(name)] + [buckets[b] for b in _BUCKETS]
            + [tr.mean_warp_occupancy]
        )
        data[name] = {**buckets, "mean": tr.mean_warp_occupancy}
    return ExperimentResult("fig3", [table], data)
