"""Figure 1 — IPC of every Rodinia workload at 8 and 28 shaders."""

from __future__ import annotations

from repro.common.config import SimScale
from repro.common.tables import Table
from repro.experiments import ExperimentResult
from repro.experiments.gpu_common import gpu_workload_names, short_name, time_all, traces
from repro.gpusim import GPUConfig


def run_fig1(scale: SimScale = SimScale.SMALL) -> ExperimentResult:
    trace_map = traces(scale)
    t28 = time_all(trace_map, GPUConfig.sim_default())
    t8 = time_all(trace_map, GPUConfig.sim_8sm())
    table = Table(
        "Figure 1: IPC at 8 and 28 shaders",
        ["Workload", "IPC (8 SM)", "IPC (28 SM)", "Scaling", "Bound (28 SM)"],
    )
    data = {}
    for name in gpu_workload_names():
        ipc8, ipc28 = t8[name].ipc, t28[name].ipc
        bound = max(t28[name].bound_mix(), key=t28[name].bound_mix().get)
        table.add_row([short_name(name), ipc8, ipc28,
                       ipc28 / ipc8 if ipc8 else 0.0, bound])
        data[name] = {"ipc8": ipc8, "ipc28": ipc28, "bound": bound}
    return ExperimentResult("fig1", [table], data)
