"""Section III-E — Plackett-Burman GPU parameter sensitivity study.

Nine architectural parameters are swept between low and high levels with
an 11-column PB-12 design; the response is total execution cycles.  The
paper's finding: SIMD width and the number of memory channels have the
largest impacts, often an order of magnitude above other parameters,
with per-application exceptions (e.g. shared memory matters as much as
channels for SRAD; bank conflicts matter for NW).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.common.config import SimScale
from repro.common.tables import Table
from repro.core.plackett_burman import pb_design, rank_factors
from repro.experiments import ExperimentResult
from repro.experiments.gpu_common import gpu_workload_names, short_name, time_all, traces
from repro.gpusim import GPUConfig, TimingModel

#: (name, low, high) — the paper's ranges, with memory throughput levels
#: scaled by the model calibration documented in DESIGN.md.
FACTORS = [
    ("core_clock_ghz", 1.2, 1.5),
    ("simd_width", 16, 32),
    ("shared_mem_per_sm", 16 * 1024, 32 * 1024),
    ("model_bank_conflicts", True, False),   # high level = conflict-free
    ("regs_per_sm", 16384, 32768),
    ("max_threads_per_sm", 1024, 2048),
    ("mem_clock_ghz", 0.8, 1.2),
    ("n_mem_channels", 4, 8),
    ("bus_width_bytes", 8, 16),
]


def _config_for(row: np.ndarray) -> GPUConfig:
    kwargs = {}
    for (name, low, high), level in zip(FACTORS, row):
        kwargs[name] = high if level > 0 else low
    return GPUConfig.sim_default().replace(**kwargs)


def run_pb(scale: SimScale = SimScale.SMALL) -> ExperimentResult:
    design = pb_design(len(FACTORS))
    trace_map = traces(scale)
    names = gpu_workload_names()
    factor_names = [f[0] for f in FACTORS]

    # Response matrix: cycles per (run, workload).
    cycles = np.empty((design.shape[0], len(names)))
    for r in range(design.shape[0]):
        results = time_all(trace_map, _config_for(design[r]))
        for c, name in enumerate(names):
            cycles[r, c] = results[name].cycles

    per_workload: Dict[str, list] = {}
    share_sum = np.zeros(len(FACTORS))
    table = Table(
        "Plackett-Burman sensitivity: top-3 factors per workload "
        "(share of total |effect| on log-cycles)",
        ["Workload", "#1", "#2", "#3"],
    )
    for c, name in enumerate(names):
        ranked = rank_factors(design, np.log(cycles[:, c]), factor_names)
        per_workload[name] = ranked
        for fname, _, share in ranked:
            share_sum[factor_names.index(fname)] += share
        table.add_row(
            [short_name(name)]
            + [f"{fn} ({share:.0%})" for fn, _, share in ranked[:3]]
        )

    overall = Table(
        "Overall factor importance (mean share across workloads)",
        ["Factor", "Mean share"],
    )
    mean_share = share_sum / len(names)
    order = np.argsort(-mean_share)
    for i in order:
        overall.add_row([factor_names[i], mean_share[i]])
    data = {
        "per_workload": per_workload,
        "overall": {factor_names[i]: float(mean_share[i]) for i in range(len(FACTORS))},
    }
    return ExperimentResult("pb", [table, overall], data)
