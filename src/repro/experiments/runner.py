"""Experiment CLI: ``python -m repro.experiments.runner fig1 [--scale small]``.

``all`` runs the complete evaluation in paper order and prints every
table; the per-process memoization in :mod:`repro.core.features` means
the workload executions are shared across experiments, and the on-disk
artifact cache (:mod:`repro.core.artifacts`) shares them across *runs*.

``--jobs N`` warms the artifact cache first by executing workloads in a
process pool: functional executions are independent per workload, so
they parallelize perfectly; the experiments themselves then run in the
parent against the warm cache.  ``--no-cache`` disables artifact
persistence for the run (equivalent to ``REPRO_CACHE=off``).
"""

from __future__ import annotations

import argparse
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed

from repro.common.config import SimScale
from repro.experiments import ALL_EXPERIMENTS, get_driver


def _warm_cache(scale: SimScale, jobs: int) -> None:
    """Execute every suite workload across a process pool."""
    from repro.core.features import suite_workloads, warm_workload

    names = suite_workloads(dedupe_shared=False)
    t0 = time.time()
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = {
            pool.submit(warm_workload, name, scale.value): name
            for name in names
        }
        for fut in as_completed(futures):
            name, produced = fut.result()
            print(
                f"[warm] {name}: {'+'.join(produced) or 'nothing to run'}",
                file=sys.stderr,
            )
    print(
        f"[warm] {len(names)} workloads in {time.time() - t0:.1f}s "
        f"({jobs} jobs)",
        file=sys.stderr,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figure data."
    )
    parser.add_argument(
        "experiments", nargs="+",
        help=f"experiment ids ({', '.join(ALL_EXPERIMENTS)}), "
             "'report' (full Markdown characterization), or 'all'",
    )
    parser.add_argument(
        "--scale", default="small", choices=[s.value for s in SimScale],
        help="problem-size operating point (default: small)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="warm the artifact cache with N parallel workload "
             "executions before running experiments (default: 1, no "
             "warm-up pass)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent artifact cache for this run",
    )
    args = parser.parse_args(argv)
    scale = SimScale(args.scale)
    if args.no_cache:
        from repro.core.artifacts import set_artifact_cache

        set_artifact_cache(None)
    if args.jobs > 1:
        if args.no_cache:
            parser.error("--jobs needs the artifact cache; drop --no-cache")
        _warm_cache(scale, args.jobs)
    ids = list(ALL_EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    for exp_id in ids:
        t0 = time.time()
        if exp_id == "report":
            from repro.core.report import build_report

            print(build_report(scale))
        else:
            driver = get_driver(exp_id)
            result = driver(scale)
            print(result.render())
            if exp_id == "fig6":
                print()
                print(result.data["dendrogram"])
        print(f"\n[{exp_id} completed in {time.time() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
