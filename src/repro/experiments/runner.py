"""Experiment CLI: ``python -m repro.experiments.runner fig1 [--scale small]``.

``all`` runs the complete evaluation in paper order and prints every
table; the per-process memoization in :mod:`repro.core.features` means
the workload executions are shared across experiments, and the on-disk
artifact cache (:mod:`repro.core.artifacts`) shares them across *runs*.

``--jobs N`` warms the artifact cache first by executing workloads in a
process pool: functional executions are independent per workload, so
they parallelize perfectly; the experiments themselves then run in the
parent against the warm cache.  ``--no-cache`` disables artifact
persistence for the run (equivalent to ``REPRO_CACHE=off``) and is
therefore incompatible with ``--jobs``.

Observability (:mod:`repro.telemetry`): ``--trace out.jsonl`` writes
every span and counter as JSONL (``REPRO_TRACE`` is the environment
fallback); ``--metrics`` prints the aggregated summary tables after the
run.  Every experiment invocation goes through the typed entry point
:func:`repro.experiments.run_experiment`, so each one is covered by an
``experiment`` span nested under the CLI's ``run`` span.
"""

from __future__ import annotations

import argparse
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed

from repro import telemetry
from repro.common.config import SimScale, config
from repro.experiments import ALL_EXPERIMENTS, run_experiment


def _warm_cache(scale: SimScale, jobs: int) -> None:
    """Execute every suite workload across a process pool."""
    from repro.core.features import suite_workloads, warm_workload

    names = suite_workloads(dedupe_shared=False)
    t0 = time.time()
    with telemetry.span("warm_cache", jobs=jobs, workloads=len(names)):
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {
                pool.submit(warm_workload, name, scale.value): name
                for name in names
            }
            for fut in as_completed(futures):
                name, produced = fut.result()
                print(
                    f"[warm] {name}: {'+'.join(produced) or 'nothing to run'}",
                    file=sys.stderr,
                )
    print(
        f"[warm] {len(names)} workloads in {time.time() - t0:.1f}s "
        f"({jobs} jobs)",
        file=sys.stderr,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figure data."
    )
    parser.add_argument(
        "experiments", nargs="+",
        help=f"experiment ids ({', '.join(ALL_EXPERIMENTS)}), "
             "'report' (full Markdown characterization), or 'all'",
    )
    parser.add_argument(
        "--scale", default="small", choices=[s.value for s in SimScale],
        help="problem-size operating point (default: small)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="warm the artifact cache with N parallel workload "
             "executions before running experiments (default: 1, no "
             "warm-up pass)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent artifact cache for this run",
    )
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a JSONL telemetry trace (spans + counters) to PATH; "
             "REPRO_TRACE is the environment fallback",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="print aggregated telemetry tables (spans, counters, "
             "gauges) after the run",
    )
    args = parser.parse_args(argv)
    # Validate flag interactions before touching any global state, so an
    # argparse error cannot leave the artifact cache disabled behind the
    # caller's back.
    if args.jobs > 1 and args.no_cache:
        parser.error("--jobs needs the artifact cache; drop --no-cache")
    scale = SimScale(args.scale)
    if args.no_cache:
        from repro.core.artifacts import set_artifact_cache

        set_artifact_cache(None)
    ids = list(ALL_EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    trace_path = args.trace or config().trace
    started = (
        telemetry.start(
            trace_path=trace_path,
            meta={"argv": ids, "scale": scale.value},
        )
        if (trace_path or args.metrics)
        else False
    )
    try:
        with telemetry.span("run", scale=scale.value, experiments=len(ids)):
            if args.jobs > 1:
                _warm_cache(scale, args.jobs)
            for exp_id in ids:
                result = run_experiment(exp_id, scale)
                print(result.render())
                print(
                    f"\n[{exp_id} completed in "
                    f"{result.metadata['duration_s']:.1f}s]\n"
                )
        if args.metrics:
            for table in telemetry.summary():
                print(table.render())
                print()
    finally:
        if started:
            telemetry.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
