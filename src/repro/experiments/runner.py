"""Experiment CLI: ``python -m repro.experiments.runner fig1 [--scale small]``.

``all`` runs the complete evaluation in paper order and prints every
table; the per-process memoization in :mod:`repro.core.features` means
the workload executions are shared across experiments.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.common.config import SimScale
from repro.experiments import ALL_EXPERIMENTS, get_driver


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figure data."
    )
    parser.add_argument(
        "experiments", nargs="+",
        help=f"experiment ids ({', '.join(ALL_EXPERIMENTS)}), "
             "'report' (full Markdown characterization), or 'all'",
    )
    parser.add_argument(
        "--scale", default="small", choices=[s.value for s in SimScale],
        help="problem-size operating point (default: small)",
    )
    args = parser.parse_args(argv)
    scale = SimScale(args.scale)
    ids = list(ALL_EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    for exp_id in ids:
        t0 = time.time()
        if exp_id == "report":
            from repro.core.report import build_report

            print(build_report(scale))
        else:
            driver = get_driver(exp_id)
            result = driver(scale)
            print(result.render())
            if exp_id == "fig6":
                print()
                print(result.data["dendrogram"])
        print(f"\n[{exp_id} completed in {time.time() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
