"""Experiment CLI: ``python -m repro.experiments.runner <command> ...``.

Subcommands:

- ``run``     — regenerate tables/figures (the historical behaviour);
  ``python -m repro.experiments.runner fig1 --scale small`` without a
  subcommand is an alias for ``run fig1 --scale small``, so existing
  docs, CI pipelines, and muscle memory keep working.
- ``serve``   — start the experiment service daemon
  (:mod:`repro.service`, see docs/SERVICE.md).
- ``bench``   — drive a load-generation run against a service (an
  already-running one, or ``--spawn`` a temporary in-process daemon).
- ``watch``   — live ANSI dashboard for a running service
  (``--once`` prints a single scrape snapshot for CI logs).
- ``perf``    — the perf-history trajectory: ``perf
  record|gate|report|trend|diff`` over ``perf-history.jsonl``
  (:mod:`repro.perfwatch`, see docs/PERF.md).
- ``goldens`` — regenerate the pinned golden references
  (``repro.fidelity.goldens``).

``run all`` runs the complete evaluation in paper order and prints
every table; the per-process memoization in :mod:`repro.core.features`
means the workload executions are shared across experiments, and the
on-disk artifact cache (:mod:`repro.core.artifacts`) shares them
across *runs*.

``--jobs N`` warms the artifact cache first by executing workloads in a
process pool: functional executions are independent per workload, so
they parallelize perfectly; the experiments themselves then run in the
parent against the warm cache.  ``--no-cache`` disables artifact
persistence for the run (equivalent to ``REPRO_CACHE=off``) and is
therefore incompatible with ``--jobs``.

``--gpu-plan {on,off}`` toggles traced launch plans
(:mod:`repro.gpusim.plans`, ``REPRO_GPU_PLAN`` is the environment
fallback): repeat launches of a kernel replay a recorded whole-batch
schedule instead of re-interpreting the DSL.  Plans persist in the
artifact cache (``--no-cache`` keeps them session-only) and per-kernel
routing is visible as ``gpusim.plan.route.*`` counters in
``--metrics``.

Observability (:mod:`repro.telemetry`): ``--trace out.jsonl`` writes
every span and counter as JSONL (``REPRO_TRACE`` is the environment
fallback) — with ``--jobs`` each pool worker appends its own
``out.<pid>.jsonl`` and its counters are merged into the parent;
``--metrics`` prints the aggregated summary tables after the run;
``--profile`` adds span self-time attribution and a peak-memory gauge.

Fidelity (:mod:`repro.fidelity`): every run is recorded in the run
registry (``--registry DIR``, default ``.repro_runs``; ``--registry
off`` or ``REPRO_REGISTRY=off`` disables).  ``--baseline paper`` gates
the run against the pinned golden references and exits nonzero on
drift — the recommended post-change check; ``--baseline PATH`` gates
against a prior record (e.g. one written by ``--save-baseline PATH``).

``--gpu-profile`` (usable alone, no experiment ids needed) profiles the
simulated GPU itself: per-kernel counter sets, bit-exact stall
attribution, roofline tables, a ``gpuprof`` registry record whose
counters drift-gate like figure data, and a simulated-cycles Chrome
timeline — see ``docs/GPUPROF.md``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Optional

from repro import telemetry
from repro.api import ExperimentRequest
from repro.common.config import (
    DEFAULT_REGISTRY_DIR,
    FALSE_VALUES,
    SimScale,
    config,
    override,
)
from repro.experiments import ALL_EXPERIMENTS, run_experiment


def _warm_cache(scale: SimScale, jobs: int,
                trace_path: Optional[str] = None) -> None:
    """Execute every suite workload across a process pool."""
    from repro.core.features import suite_workloads, warm_workload

    names = suite_workloads(dedupe_shared=False)
    collect = telemetry.active()
    t0 = time.time()
    with telemetry.span("warm_cache", jobs=jobs, workloads=len(names)):
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {
                pool.submit(warm_workload, name, scale.value,
                            trace_path if collect else None, collect): name
                for name in names
            }
            for fut in as_completed(futures):
                name, produced, counters = fut.result()
                telemetry.merge_counters(counters)
                print(
                    f"[warm] {name}: {'+'.join(produced) or 'nothing to run'}",
                    file=sys.stderr,
                )
    print(
        f"[warm] {len(names)} workloads in {time.time() - t0:.1f}s "
        f"({jobs} jobs)",
        file=sys.stderr,
    )


def _gpu_profile(scale: SimScale):
    """Run the simulated-GPU profiler over every GPU workload.

    Prints the suite hot-kernel table plus each app's stall-attribution
    and counter-ladder tables; returns ``{app: AppProfile}``.
    """
    from repro.experiments.gpu_common import profile_all, traces
    from repro.gpusim import GPUConfig
    from repro.gpusim.profiler import suite_table

    with telemetry.span("gpu_profile_suite", scale=scale.value):
        profiles = profile_all(traces(scale), GPUConfig.sim_default())
    print(suite_table(list(profiles.values())).render())
    print()
    for prof in profiles.values():
        print(prof.kernel_table().render())
        print()
        print(prof.counter_table().render())
        print()
    return profiles


def _gpu_timeline_path(
    trace_path: Optional[str], registry_dir: Optional[str], run_id: str
) -> Optional[str]:
    """Where the simulated-cycles Chrome timeline lands.

    Next to the telemetry trace when one is being written, else in the
    registry; with both off there is nowhere durable to put it.
    """
    if trace_path:
        root = pathlib.Path(trace_path)
        return str(root.with_name(root.stem + ".gpu.chrome.json"))
    if registry_dir:
        return str(
            pathlib.Path(registry_dir) / f"gpuprof-{run_id}.chrome.json"
        )
    return None


def _resolve_registry_dir(arg: Optional[str]) -> Optional[str]:
    """CLI flag beats config; ``off`` (or REPRO_REGISTRY=off) disables."""
    if arg is None:
        return config().registry_dir or DEFAULT_REGISTRY_DIR
    if arg.strip().lower() in FALSE_VALUES:
        return None
    return arg


def _baseline_metrics(ref: str, scale: SimScale, registry_dir: Optional[str]):
    """Resolve ``--baseline`` to (metrics, label); raises ValueError."""
    if ref == "paper":
        from repro.fidelity import paper_goldens

        return paper_goldens(scale), "paper"
    from repro.fidelity import RunRegistry

    record = RunRegistry(registry_dir or DEFAULT_REGISTRY_DIR).load(ref)
    if record.scale != scale.value:
        raise ValueError(
            f"baseline {ref} was recorded at scale {record.scale!r}, "
            f"this run is {scale.value!r} — not comparable"
        )
    return record.metrics, f"{record.kind}-{record.run_id}"


def _cmd_run(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner run",
        description="Regenerate the paper's tables and figure data.",
    )
    parser.add_argument(
        "experiments", nargs="*",
        help=f"experiment ids ({', '.join(ALL_EXPERIMENTS)}), "
             "'report' (full Markdown characterization), or 'all'; "
             "may be omitted with --gpu-profile",
    )
    parser.add_argument(
        "--scale", default="small", choices=[s.value for s in SimScale],
        help="problem-size operating point (default: small)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="warm the artifact cache with N parallel workload "
             "executions before running experiments (default: 1, no "
             "warm-up pass)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent artifact cache for this run",
    )
    parser.add_argument(
        "--gpu-plan", choices=["on", "off"], default=None,
        help="traced launch plans for the batched GPU engine: replay a "
             "recorded whole-batch schedule for repeat kernel launches "
             "(default: on; REPRO_GPU_PLAN is the environment fallback; "
             "per-kernel routing shows up under gpusim.plan.route.* in "
             "--metrics)",
    )
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a JSONL telemetry trace (spans + counters) to PATH; "
             "REPRO_TRACE is the environment fallback",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="print aggregated telemetry tables (spans, counters, "
             "gauges) after the run",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="attribute wall time to spans (self vs children) and track "
             "peak memory; prints the hot-span table after the run "
             "(REPRO_PROFILE is the environment fallback)",
    )
    parser.add_argument(
        "--registry", metavar="DIR", default=None,
        help="run-registry directory for persisted run records "
             f"(default: {DEFAULT_REGISTRY_DIR}; 'off' disables; "
             "REPRO_REGISTRY is the environment fallback)",
    )
    parser.add_argument(
        "--baseline", metavar="PATH|paper", default=None,
        help="drift-gate the run: compare reproduced metrics against "
             "the pinned paper goldens ('paper') or a prior run record "
             "(a path or a registry run id); exits nonzero on drift "
             "beyond tolerance",
    )
    parser.add_argument(
        "--save-baseline", metavar="PATH", default=None,
        help="write this run's record to PATH for use as a future "
             "--baseline",
    )
    parser.add_argument(
        "--gpu-profile", action="store_true",
        help="profile the simulated GPU after the experiments: prints "
             "per-kernel counter sets, stall attribution, and roofline "
             "tables for every GPU workload, writes a gpuprof record to "
             "the registry (drift-gated by --baseline like figure "
             "data), and exports a simulated-cycles Chrome timeline",
    )
    args = parser.parse_args(argv)
    # Validate flag interactions before touching any global state, so an
    # argparse error cannot leave the artifact cache disabled behind the
    # caller's back.
    if args.jobs > 1 and args.no_cache:
        parser.error("--jobs needs the artifact cache; drop --no-cache")
    if not args.experiments and not args.gpu_profile:
        parser.error("give at least one experiment id (or --gpu-profile)")
    scale = SimScale(args.scale)
    if args.no_cache:
        from repro.core.artifacts import set_artifact_cache

        set_artifact_cache(None)
    ids = list(ALL_EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    trace_path = args.trace or config().trace
    profile = args.profile or config().profile
    registry_dir = _resolve_registry_dir(args.registry)
    started = (
        telemetry.start(
            trace_path=trace_path,
            meta={"argv": ids, "scale": scale.value},
            profile=profile,
        )
        if (trace_path or args.metrics or profile)
        else False
    )
    exit_code = 0
    try:
        results = []
        gpu_profiles = None
        run_overrides = {"registry_dir": registry_dir}
        if args.gpu_plan is not None:
            run_overrides["gpu_plan"] = args.gpu_plan == "on"
        with override(**run_overrides):
            with telemetry.span("run", scale=scale.value,
                                experiments=len(ids)):
                if args.jobs > 1:
                    _warm_cache(scale, args.jobs, trace_path)
                for exp_id in ids:
                    result = run_experiment(ExperimentRequest(exp_id, scale))
                    results.append(result)
                    print(result.render())
                    print(
                        f"\n[{exp_id} completed in "
                        f"{result.metadata['duration_s']:.1f}s]\n"
                    )
                if args.gpu_profile:
                    gpu_profiles = _gpu_profile(scale)
        if (registry_dir or args.save_baseline or args.baseline
                or gpu_profiles is not None):
            from repro.fidelity import RunRegistry, record_from_results

            record = record_from_results(
                results, scale.value, kind="run",
                counters=telemetry.counters(),
                span_stats=telemetry.span_stats(),
                meta={
                    "argv": ids,
                    # Provenance in the same typed encoding the service
                    # wire format and run_experiment() use (repro.api).
                    "requests": [
                        ExperimentRequest(e, scale).to_dict() for e in ids
                    ],
                },
            )
            if gpu_profiles is not None:
                from repro.fidelity import RunRecord
                from repro.gpusim.profiler import suite_metrics

                prof_metrics = suite_metrics(list(gpu_profiles.values()))
                gpu_record = RunRecord(
                    kind="gpuprof", scale=scale.value,
                    experiments=["gpuprof"], metrics=prof_metrics,
                    counters=telemetry.counters(),
                    meta={"config": "sim-default",
                          "apps": sorted(gpu_profiles)},
                ).stamp()
                # Counter drift gates exactly like figure drift: fold
                # the gpuprof family into the run record so
                # --save-baseline/--baseline roundtrips cover it.
                record.metrics.update(prof_metrics)
                record.experiments.append("gpuprof")
                record.stamp()
                if registry_dir:
                    gpath = RunRegistry(registry_dir).save(gpu_record)
                    print(f"[gpuprof] {gpath}", file=sys.stderr)
                timeline = _gpu_timeline_path(
                    trace_path, registry_dir, gpu_record.run_id
                )
                if timeline:
                    from repro.telemetry.chrome import profiles_to_chrome

                    profiles_to_chrome(
                        list(gpu_profiles.values()), timeline
                    )
                    print(f"[gpuprof timeline] {timeline}",
                          file=sys.stderr)
            if registry_dir:
                path = RunRegistry(registry_dir).save(record)
                print(f"[registry] {path}", file=sys.stderr)
            if args.save_baseline:
                pathlib.Path(args.save_baseline).write_text(
                    record.to_json(), encoding="utf-8"
                )
                print(f"[baseline saved] {args.save_baseline}",
                      file=sys.stderr)
            if args.baseline:
                from repro.core.report import render_drift
                from repro.fidelity import check_drift

                try:
                    baseline, label = _baseline_metrics(
                        args.baseline, scale, registry_dir
                    )
                except (ValueError, FileNotFoundError) as exc:
                    print(f"[drift] error: {exc}", file=sys.stderr)
                    return 2
                drift = check_drift(
                    record.metrics, baseline,
                    baseline_label=label, scale=scale.value,
                )
                print(render_drift(drift))
                exit_code = drift.exit_code
        if args.metrics:
            for table in telemetry.summary():
                print(table.render())
                print()
    finally:
        if started:
            snapshot = telemetry.stop()
            if profile:
                if not args.metrics:
                    from repro.telemetry.profile import (
                        hot_spans_table,
                        live_aggregate,
                    )

                    aggs = live_aggregate(snapshot["span_stats"],
                                          snapshot["self_stats"])
                    print(hot_spans_table(aggs).render())
                peak = snapshot["gauges"].get("profile.mem.peak_kb")
                if peak is not None:
                    print(f"[profile] peak traced memory: {peak:.0f} kB",
                          file=sys.stderr)
    return exit_code


def _cmd_serve(argv) -> int:
    from repro.service import serve

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner serve",
        description="Run the experiment service daemon (docs/SERVICE.md).",
    )
    cfg = config()
    parser.add_argument(
        "--host", default=None,
        help=f"bind address (default: {cfg.service_host}; "
             "REPRO_SERVICE_HOST is the environment fallback)",
    )
    parser.add_argument(
        "--port", type=int, default=None,
        help=f"port to listen on; 0 lets the OS pick (default: "
             f"{cfg.service_port}; REPRO_SERVICE_PORT fallback)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help=f"cold-execution process-pool width (default: "
             f"{cfg.service_workers}; REPRO_SERVICE_WORKERS fallback)",
    )
    parser.add_argument(
        "--queue-limit", type=int, default=None, metavar="N",
        help="max distinct in-flight cold requests before answering "
             f"429 (default: {cfg.service_queue}; REPRO_SERVICE_QUEUE "
             "fallback)",
    )
    parser.add_argument(
        "--registry", metavar="DIR", default=None,
        help="run-registry directory for executed experiments "
             f"(default: {DEFAULT_REGISTRY_DIR}; 'off' disables)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="serve without the persistent artifact cache (every "
             "request is cold; coalescing still applies)",
    )
    parser.add_argument(
        "--access-log", metavar="PATH", default=None,
        help="structured JSONL access log, one object per request "
             f"(default: {cfg.service_access_log or 'off'}; "
             "REPRO_SERVICE_ACCESS_LOG fallback)",
    )
    parser.add_argument(
        "--slow-ms", type=float, default=None, metavar="MS",
        help="persist a span-trace exemplar to the registry for any "
             f"cold request slower than MS (default: "
             f"{cfg.service_slow_ms:g}; REPRO_SERVICE_SLOW_MS fallback)",
    )
    parser.add_argument(
        "--slo", metavar="SPEC", default=None,
        help="service-level objectives checked at shutdown, e.g. "
             "'warm_p99_ms=50,error_rate=0.01'; a violated ceiling "
             "makes the process exit nonzero (docs/SERVICE.md)",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="compare this lifetime's service/* metrics against a "
             "saved baseline via the fidelity drift gate; exit "
             "nonzero on failure",
    )
    parser.add_argument(
        "--save-baseline", metavar="PATH", default=None,
        help="write this lifetime's service/* metrics as a baseline "
             "file for future --baseline gating",
    )
    args = parser.parse_args(argv)
    if args.slo:  # fail on a typo'd gate before binding the port
        from repro.service.slo import parse_slo_spec

        try:
            parse_slo_spec(args.slo)
        except ValueError as exc:
            parser.error(str(exc))
    registry_dir = _resolve_registry_dir(args.registry)
    cache_dir = "" if args.no_cache else None
    return serve(
        host=args.host, port=args.port, workers=args.workers,
        queue_limit=args.queue_limit, cache_dir=cache_dir,
        registry_dir=registry_dir or "",
        access_log=args.access_log,
        slow_request_s=(
            None if args.slow_ms is None else args.slow_ms / 1e3
        ),
        slo=args.slo, baseline=args.baseline,
        save_baseline=args.save_baseline,
    )


def _cmd_bench(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner bench",
        description="Load-generate against an experiment service and "
                    "print latency/hit-rate tables.",
    )
    parser.add_argument(
        "experiments", nargs="+",
        help=f"experiment ids to request ({', '.join(ALL_EXPERIMENTS)})",
    )
    parser.add_argument(
        "--scale", default="small", choices=[s.value for s in SimScale],
    )
    parser.add_argument("--host", default=None, help="service host")
    parser.add_argument("--port", type=int, default=None,
                        help="service port")
    parser.add_argument(
        "--spawn", action="store_true",
        help="start a temporary in-process service on a free port for "
             "the duration of the run (ignores --host/--port)",
    )
    parser.add_argument(
        "--clients", type=int, default=4, metavar="N",
        help="concurrent client connections (default: 4)",
    )
    parser.add_argument(
        "--repeat", type=int, default=8, metavar="M",
        help="times each experiment id is requested (default: 8); "
             "identical repeats exercise coalescing and the warm path",
    )
    parser.add_argument(
        "--retry", action="store_true",
        help="install the client retry policy (capped exponential "
             "backoff honoring Retry-After on 429) instead of the "
             "legacy fixed-delay wait; the report counts the rounds",
    )
    args = parser.parse_args(argv)
    scale = SimScale(args.scale)
    requests = [
        ExperimentRequest(exp, scale)
        for exp in args.experiments
        for _ in range(max(1, args.repeat))
    ]

    from repro.service import RetryPolicy, run_load

    retry = RetryPolicy() if args.retry else None
    if args.spawn:
        from repro.service import spawn_service

        with spawn_service(port=0) as service:
            report = run_load(service.host, service.port, requests,
                              clients=args.clients, retry=retry)
    else:
        cfg = config()
        host = args.host or cfg.service_host
        port = args.port or cfg.service_port
        report = run_load(host, port, requests, clients=args.clients,
                          retry=retry)
    print(report.table().render())
    return 1 if report.errors else 0


def _cmd_watch(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner watch",
        description="Live terminal dashboard for a running experiment "
                    "service: polls /v1/stats + /v1/metrics and renders "
                    "latency quantiles, route counts, and sparklines.",
    )
    cfg = config()
    parser.add_argument("--host", default=None,
                        help=f"service host (default: {cfg.service_host})")
    parser.add_argument("--port", type=int, default=None,
                        help=f"service port (default: {cfg.service_port})")
    parser.add_argument(
        "--interval", type=float, default=2.0, metavar="S",
        help="seconds between polls (default: 2.0)",
    )
    parser.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help="stop after N polls (default: run until Ctrl-C)",
    )
    parser.add_argument(
        "--no-clear", action="store_true",
        help="append frames instead of repainting (for logs/pipes)",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="print a single scrape snapshot and exit (CI logs; the "
             "CLI twin of `perf record --scrape`)",
    )
    args = parser.parse_args(argv)
    from repro.service.watch import watch

    return watch(
        host=args.host or cfg.service_host,
        port=args.port or cfg.service_port,
        interval_s=args.interval,
        iterations=1 if args.once else args.iterations,
        clear=not args.no_clear and not args.once,
    )


def _cmd_perf(argv) -> int:
    from repro.perfwatch.cli import main as perf_main

    return perf_main(argv)


def _cmd_goldens(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner goldens",
        description="Regenerate the pinned golden references "
                    "(repro.fidelity.goldens_data) from the current "
                    "tree; review the diff like any other code.",
    )
    parser.parse_args(argv)
    from repro.fidelity.goldens import regenerate

    regenerate()
    return 0


#: Subcommand table.  A first argument that is *not* one of these is
#: treated as ``run``'s first argument, so the historical flat-flag
#: invocation (``runner fig1 --scale small``) keeps working unchanged.
_SUBCOMMANDS = {
    "run": _cmd_run,
    "serve": _cmd_serve,
    "bench": _cmd_bench,
    "watch": _cmd_watch,
    "perf": _cmd_perf,
    "goldens": _cmd_goldens,
}


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in _SUBCOMMANDS:
        return _SUBCOMMANDS[argv[0]](argv[1:])
    return _cmd_run(argv)


if __name__ == "__main__":
    sys.exit(main())
