"""Shared helpers for the GPU-side experiments (Figs. 1-5, Table III, PB).

All GPU experiments consume the same per-workload functional traces
(memoized in :mod:`repro.core.features`) and only re-run the timing
model, so a full GPU characterization costs one functional execution per
workload regardless of how many configurations are priced.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.config import SimScale
from repro.core.features import gpu_trace_for
from repro.gpusim import (
    AppProfile,
    GPUConfig,
    KernelTrace,
    TimingModel,
    TimingResult,
)
from repro.workloads import base as wl

#: Paper's bar-chart ordering (Figs. 1-5).
GPU_ORDER = ["backprop", "bfs", "cfd", "heartwall", "hotspot", "kmeans",
             "leukocyte", "lud", "mummer", "nw", "srad", "streamcluster"]


def gpu_workload_names() -> List[str]:
    wl.load_all()
    return list(GPU_ORDER)


def traces(scale: SimScale) -> Dict[str, KernelTrace]:
    return {name: gpu_trace_for(name, scale) for name in gpu_workload_names()}


def time_all(
    trace_map: Dict[str, KernelTrace], config: GPUConfig
) -> Dict[str, TimingResult]:
    model = TimingModel(config)
    return {name: model.time(tr) for name, tr in trace_map.items()}


def profile_all(
    trace_map: Dict[str, KernelTrace], config: GPUConfig
) -> Dict[str, "AppProfile"]:
    """Counter-set profile (``runner --gpu-profile``) of every app."""
    model = TimingModel(config)
    return {name: model.profile(tr) for name, tr in trace_map.items()}


def short_name(name: str) -> str:
    return wl.get(name).meta.short or name.upper()
