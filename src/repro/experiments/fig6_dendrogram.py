"""Figure 6 — hierarchical clustering dendrogram of both suites.

All CPU characteristics (instruction mix + working sets + sharing) are
standardized, projected onto the principal components covering 90% of
variance, and clustered with average linkage — the methodology of
Section IV-C.  StreamCluster appears once, labeled "(R, P)".
"""

from __future__ import annotations

from repro.common.config import SimScale
from repro.common.tables import Table
from repro.core import PCA, Dendrogram, fcluster, linkage
from repro.core.features import display_label, feature_matrix, suite_workloads
from repro.experiments import ExperimentResult


def run_fig6(scale: SimScale = SimScale.SMALL) -> ExperimentResult:
    names = suite_workloads()
    x, feature_names = feature_matrix(names, subset="all", scale=scale)
    pca = PCA().fit(x)
    k = pca.n_components_for_variance(0.90)
    coords = pca.transform(x)[:, :k]
    z = linkage(coords, method="average")
    labels = [display_label(n) for n in names]
    dendro = Dendrogram(z, labels)
    clusters = fcluster(z, n_clusters=8)

    table = Table(
        "Figure 6: flat clusters (8-way cut of the average-linkage tree)",
        ["Cluster", "Members"],
    )
    by_cluster = {}
    for name, label, c in zip(names, labels, clusters):
        by_cluster.setdefault(int(c), []).append(label)
    for c in sorted(by_cluster):
        table.add_row([c, ", ".join(sorted(by_cluster[c]))])

    data = {
        "names": names,
        "linkage": z,
        "clusters": {n: int(c) for n, c in zip(names, clusters)},
        "n_components": k,
        "explained": pca.explained_variance_ratio_[:k].sum(),
        "dendrogram": dendro.render(),
        "n_features": len(feature_names),
    }
    # The dendrogram rides in ``text`` so render() shows it without the
    # runner special-casing fig6; ``data["dendrogram"]`` stays for tests.
    return ExperimentResult("fig6", [table], data, text=data["dendrogram"])
