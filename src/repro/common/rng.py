"""Deterministic random number generation.

Every synthetic input in the reproduction is generated from a
:class:`numpy.random.Generator` seeded through :func:`make_rng`, so every
experiment is bit-reproducible across runs and machines.
"""

from __future__ import annotations

import zlib

import numpy as np

_GLOBAL_SEED = 0x0D1A  # "Rodinia"


def make_rng(*tags: object) -> np.random.Generator:
    """Return a Generator whose seed is derived from the given tags.

    Tags are typically ``(workload_name, purpose)`` pairs; hashing them
    into the seed keeps streams independent between workloads while
    remaining fully deterministic.
    """
    text = "/".join(str(t) for t in tags)
    seed = (_GLOBAL_SEED << 32) ^ zlib.crc32(text.encode("utf-8"))
    return np.random.default_rng(seed)
