"""Shared utilities: configuration scales, deterministic RNG, table rendering."""

from repro.common.config import SimScale
from repro.common.rng import make_rng
from repro.common.tables import Table

__all__ = ["SimScale", "make_rng", "Table"]
