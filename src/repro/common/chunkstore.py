"""Chunked columnar storage for trace streams.

Traces are the memory ceiling of the whole stack: a LARGE functional run
records tens of millions of (address, origin, is_store) records, and the
historical representation — Python lists of ad-hoc numpy fragments,
concatenated into one dense array per consumer — peaks at several copies
of the full stream.  A :class:`ChunkStore` replaces that with a sequence
of fixed-size column chunks:

- **Appends** are split at ``chunk_rows`` boundaries, so chunk layout is
  a deterministic function of the record stream, not of the append
  pattern (the batched engine and the scalar interpreter produce the
  same chunks for the same trace).
- **Sealed chunks** participate in a process-wide byte ledger.  When the
  ledger exceeds the budget (``REPRO_TRACE_BUDGET``), sealed chunks
  spill — oldest first, spilling store first, then other live stores in
  creation order — to compressed ``.npz`` segments in a private temp
  directory, and are streamed back transparently during iteration.
- **Consumers** iterate :meth:`iter_chunks` (re-iterable, launch/chunk
  order) and carry their own state between chunks; the dense
  :meth:`columns` view remains for oracles and short traces.

Budget and chunk geometry resolve through
:func:`repro.common.config.config` (``REPRO_TRACE_BUDGET``,
``REPRO_TRACE_CHUNK``) at construction time, so tests pin them with
``config.override(...)``.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import weakref
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro import telemetry

__all__ = ["ChunkStore"]

#: Process-wide in-memory bytes held by sealed (unspilled) chunks.
_LEDGER = {"bytes": 0}

#: Live stores in creation order (weakrefs; dead entries pruned lazily).
_STORES: List["weakref.ref[ChunkStore]"] = []


def ledger_bytes() -> int:
    """In-memory bytes currently held by sealed chunks (all stores)."""
    return _LEDGER["bytes"]


def _release_store(mem: dict, dir_holder: dict) -> None:
    """Finalizer: return a dead store's ledger share, drop its spill dir."""
    _LEDGER["bytes"] -= mem["bytes"]
    mem["bytes"] = 0
    path = dir_holder.get("dir")
    if path:
        shutil.rmtree(path, ignore_errors=True)


class _Chunk:
    """One sealed column chunk: in memory, or spilled to an npz segment."""

    __slots__ = ("arrays", "path", "n_rows", "nbytes")

    def __init__(self, arrays: Tuple[np.ndarray, ...]):
        self.arrays: Optional[Tuple[np.ndarray, ...]] = arrays
        self.path: Optional[str] = None
        self.n_rows = int(arrays[0].size) if arrays else 0
        self.nbytes = sum(int(a.nbytes) for a in arrays)

    @property
    def in_memory(self) -> bool:
        return self.arrays is not None


class ChunkStore:
    """An append-only columnar record stream in fixed-size chunks."""

    def __init__(
        self,
        dtypes: Tuple[np.dtype, ...],
        chunk_rows: Optional[int] = None,
        budget_bytes: Optional[int] = None,
        label: str = "",
    ):
        from repro.common.config import config

        cfg = config()
        self.dtypes = tuple(np.dtype(d) for d in dtypes)
        self.chunk_rows = int(
            cfg.trace_chunk_rows if chunk_rows is None else chunk_rows
        )
        if self.chunk_rows < 1:
            raise ValueError("chunk_rows must be >= 1")
        self.budget_bytes = (
            cfg.trace_budget if budget_bytes is None else int(budget_bytes)
        )
        self.label = label
        self._sealed: List[_Chunk] = []
        # Open (tail) chunk: per-column lists of pieces, < chunk_rows total.
        self._open: Tuple[List[np.ndarray], ...] = tuple(
            [] for _ in self.dtypes
        )
        self._open_rows = 0
        self._n_rows = 0
        # Ledger share of this store (sealed in-memory bytes), shared
        # with the GC finalizer so a collected store returns its bytes.
        self._mem = {"bytes": 0}
        self._dir_holder: dict = {}
        self._spill_seq = 0
        _STORES.append(weakref.ref(self))
        self._finalizer = weakref.finalize(
            self, _release_store, self._mem, self._dir_holder
        )

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def n_cols(self) -> int:
        return len(self.dtypes)

    @property
    def nbytes(self) -> int:
        """Logical (uncompressed) bytes of the full stream."""
        rowbytes = sum(d.itemsize for d in self.dtypes)
        return self._n_rows * rowbytes

    def append(self, *cols: np.ndarray) -> None:
        """Append aligned column slices; splits at chunk boundaries."""
        if len(cols) != len(self.dtypes):
            raise ValueError(
                f"expected {len(self.dtypes)} columns, got {len(cols)}"
            )
        arrs = [
            np.ascontiguousarray(c, dtype=d).reshape(-1)
            for c, d in zip(cols, self.dtypes)
        ]
        n = arrs[0].size
        for a in arrs[1:]:
            if a.size != n:
                raise ValueError("column lengths differ")
        if n == 0:
            return
        pos = 0
        while pos < n:
            take = min(n - pos, self.chunk_rows - self._open_rows)
            for pieces, a in zip(self._open, arrs):
                # Copy the slice so the open tail never pins a caller's
                # (potentially much larger) backing array.
                piece = a[pos : pos + take]
                pieces.append(piece if piece.base is None else piece.copy())
            self._open_rows += take
            self._n_rows += take
            pos += take
            if self._open_rows == self.chunk_rows:
                self._seal()

    def _seal(self) -> None:
        arrays = tuple(
            np.concatenate(pieces) if len(pieces) != 1 else pieces[0]
            for pieces in self._open
        )
        for pieces in self._open:
            pieces.clear()
        self._open_rows = 0
        chunk = _Chunk(arrays)
        self._sealed.append(chunk)
        self._mem["bytes"] += chunk.nbytes
        _LEDGER["bytes"] += chunk.nbytes
        _enforce_budget(self)

    # ------------------------------------------------------------------
    # Spill
    # ------------------------------------------------------------------
    def _spill_dir(self) -> str:
        path = self._dir_holder.get("dir")
        if not path:
            path = tempfile.mkdtemp(prefix="repro-chunks-")
            self._dir_holder["dir"] = path
        return path

    def _spill_oldest(self) -> int:
        """Spill this store's oldest in-memory sealed chunk; bytes freed."""
        for chunk in self._sealed:
            if chunk.in_memory:
                return self._spill(chunk)
        return 0

    def _spill(self, chunk: _Chunk) -> int:
        path = os.path.join(
            self._spill_dir(), f"chunk-{self._spill_seq:06d}.npz"
        )
        self._spill_seq += 1
        np.savez_compressed(
            path, **{f"c{i}": a for i, a in enumerate(chunk.arrays)}
        )
        freed = chunk.nbytes
        chunk.arrays = None
        chunk.path = path
        self._mem["bytes"] -= freed
        _LEDGER["bytes"] -= freed
        telemetry.count("chunkstore.spill.chunks")
        telemetry.count("chunkstore.spill.bytes", freed)
        return freed

    def _load(self, chunk: _Chunk) -> Tuple[np.ndarray, ...]:
        with np.load(chunk.path) as data:
            return tuple(data[f"c{i}"] for i in range(len(self.dtypes)))

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def iter_chunks(self) -> Iterator[Tuple[np.ndarray, ...]]:
        """Yield ``(col0, col1, ...)`` chunks in record order.

        Spilled chunks are loaded transiently (they stay on disk), so a
        full pass holds at most one chunk beyond the open tail.
        Re-iterable: every call starts a fresh pass.
        """
        for chunk in self._sealed:
            if chunk.in_memory:
                yield chunk.arrays
            else:
                yield self._load(chunk)
        if self._open_rows:
            yield tuple(
                np.concatenate(pieces) if len(pieces) != 1 else pieces[0]
                for pieces in self._open
            )

    def columns(self) -> Tuple[np.ndarray, ...]:
        """Dense materialization of every column (compat / oracle view)."""
        if self._n_rows == 0:
            return tuple(np.empty(0, dtype=d) for d in self.dtypes)
        parts: List[Tuple[np.ndarray, ...]] = list(self.iter_chunks())
        if len(parts) == 1:
            return parts[0]
        return tuple(
            np.concatenate([p[i] for p in parts])
            for i in range(len(self.dtypes))
        )

    # ------------------------------------------------------------------
    # Pickling (process pools, deepcopy): materialize, rebuild fresh.
    # ------------------------------------------------------------------
    def __getstate__(self):
        return {
            "dtypes": self.dtypes,
            "chunk_rows": self.chunk_rows,
            "budget_bytes": self.budget_bytes,
            "label": self.label,
            "columns": self.columns(),
        }

    def __setstate__(self, state):
        self.__init__(
            state["dtypes"],
            chunk_rows=state["chunk_rows"],
            budget_bytes=state["budget_bytes"],
            label=state["label"],
        )
        cols = state["columns"]
        if cols and cols[0].size:
            self.append(*cols)


def _live_stores() -> List[ChunkStore]:
    """Live stores in creation order; prunes dead weakrefs in place."""
    out: List[ChunkStore] = []
    alive: List["weakref.ref[ChunkStore]"] = []
    for ref in _STORES:
        store = ref()
        if store is not None:
            alive.append(ref)
            out.append(store)
    _STORES[:] = alive
    return out


def _enforce_budget(trigger: ChunkStore) -> None:
    """Spill sealed chunks until the global ledger fits the budget.

    The triggering store spills its own oldest chunks first (it is the
    one growing), then other live stores in creation order.  A budget of
    0 or less disables spilling.
    """
    budget = trigger.budget_bytes
    if budget <= 0:
        return
    if _LEDGER["bytes"] <= budget:
        return
    while _LEDGER["bytes"] > budget and trigger._spill_oldest():
        pass
    if _LEDGER["bytes"] <= budget:
        return
    for store in _live_stores():
        if store is trigger:
            continue
        while _LEDGER["bytes"] > budget and store._spill_oldest():
            pass
        if _LEDGER["bytes"] <= budget:
            return
