"""Problem-size scaling.

The paper runs native binaries; this reproduction runs an instrumenting
interpreter, so every workload supports a scale knob.  ``SimScale`` names
the three standard operating points used across tests, examples, and the
benchmark harness.
"""

from __future__ import annotations

import enum


class SimScale(enum.Enum):
    """Standard problem-size operating points.

    TINY   -- smoke-test sizes for unit tests (sub-second per workload).
    SMALL  -- default characterization sizes; preserves each workload's
              qualitative regime (working sets exceed small caches,
              parallelism far exceeds machine width).
    MEDIUM -- closer to paper sizes; used when extra fidelity is wanted.
    """

    TINY = "tiny"
    SMALL = "small"
    MEDIUM = "medium"

    @property
    def factor(self) -> int:
        """Linear-dimension multiplier relative to TINY."""
        return {SimScale.TINY: 1, SimScale.SMALL: 2, SimScale.MEDIUM: 4}[self]


def scaled(base: int, scale: SimScale, minimum: int = 1) -> int:
    """Scale a TINY-relative base dimension to the requested operating point."""
    return max(minimum, base * scale.factor)
