"""Problem-size scaling and runtime configuration.

The paper runs native binaries; this reproduction runs an instrumenting
interpreter, so every workload supports a scale knob.  ``SimScale`` names
the three standard operating points used across tests, examples, and the
benchmark harness.

:class:`RuntimeConfig` consolidates every ``REPRO_*`` environment toggle
into one typed record resolved in a single place.  Call sites ask
:func:`config` instead of touching ``os.environ``; tests push explicit
values with the :func:`override` context manager instead of patching the
environment.
"""

from __future__ import annotations

import contextlib
import dataclasses
import enum
import os
from typing import Iterator, List, Optional, Tuple


class SimScale(enum.Enum):
    """Standard problem-size operating points.

    TINY   -- smoke-test sizes for unit tests (sub-second per workload).
    SMALL  -- default characterization sizes; preserves each workload's
              qualitative regime (working sets exceed small caches,
              parallelism far exceeds machine width).
    MEDIUM -- closer to paper sizes; used when extra fidelity is wanted.
    LARGE  -- out-of-core tier: >= 10M recorded accesses on the anchor
              workloads (hotspot, srad), runnable under a fixed memory
              budget via the chunked trace pipeline
              (``REPRO_TRACE_BUDGET``, see docs/TRACES.md).
    """

    TINY = "tiny"
    SMALL = "small"
    MEDIUM = "medium"
    LARGE = "large"

    @property
    def factor(self) -> int:
        """Linear-dimension multiplier relative to TINY."""
        return {
            SimScale.TINY: 1,
            SimScale.SMALL: 2,
            SimScale.MEDIUM: 4,
            SimScale.LARGE: 8,
        }[self]


def scaled(base: int, scale: SimScale, minimum: int = 1) -> int:
    """Scale a TINY-relative base dimension to the requested operating point."""
    return max(minimum, base * scale.factor)


# ----------------------------------------------------------------------
# Runtime configuration (REPRO_* environment toggles)
# ----------------------------------------------------------------------
#: Values that turn a boolean toggle off, matching the historical
#: per-module parsers (``REPRO_CACHE=off``, ``REPRO_GPU_BATCH=0``, ...).
FALSE_VALUES = ("off", "0", "no", "false")

#: Default lane budget per batched-GPU step (see repro.gpusim.batch).
DEFAULT_BATCH_LANES = 1 << 18

#: Default artifact-cache root, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro_cache"

#: Default run-registry root used by the experiment CLI (the library
#: default leaves the registry off; see ``RuntimeConfig.registry_dir``).
DEFAULT_REGISTRY_DIR = ".repro_runs"

#: Default in-memory budget for sealed trace chunks before they spill
#: to compressed segments (see repro.common.chunkstore / docs/TRACES.md).
DEFAULT_TRACE_BUDGET = 512 * 1024 * 1024

#: Default rows per column chunk of a trace store.
DEFAULT_TRACE_CHUNK_ROWS = 1 << 20

#: Experiment-service defaults (see repro.service / docs/SERVICE.md).
DEFAULT_SERVICE_HOST = "127.0.0.1"
DEFAULT_SERVICE_PORT = 8177
DEFAULT_SERVICE_WORKERS = 2
DEFAULT_SERVICE_QUEUE = 8

#: Cold requests slower than this persist a span-trace exemplar
#: (milliseconds; see repro.service.observability).
DEFAULT_SERVICE_SLOW_MS = 1000.0

#: Default perf-history trajectory (repro.perfwatch / docs/PERF.md).
#: Lives next to BENCH_timings.json: the benchmark harness dual-writes
#: its sessions there, and `runner perf` reads it by default.
DEFAULT_PERF_HISTORY = "benchmarks/perf-history.jsonl"

_ENV_VARS = (
    "REPRO_GPU_BATCH",
    "REPRO_GPU_BATCH_LANES",
    "REPRO_GPU_PLAN",
    "REPRO_CACHE",
    "REPRO_CACHE_DIR",
    "REPRO_CACHE_BUDGET",
    "REPRO_CACHE_ENTRIES",
    "REPRO_TRACE",
    "REPRO_TRACE_BUDGET",
    "REPRO_TRACE_CHUNK",
    "REPRO_PROFILE",
    "REPRO_REGISTRY",
    "REPRO_SERVICE_HOST",
    "REPRO_SERVICE_PORT",
    "REPRO_SERVICE_WORKERS",
    "REPRO_SERVICE_QUEUE",
    "REPRO_SERVICE_ACCESS_LOG",
    "REPRO_SERVICE_SLOW_MS",
    "REPRO_PERF_HISTORY",
)


def _parse_bytes(value: Optional[str], default: int) -> int:
    """Parse a byte count with optional k/m/g suffix (``'256m'``)."""
    if value is None or not value.strip():
        return default
    text = value.strip().lower()
    mult = 1
    if text[-1] in "kmg":
        mult = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}[text[-1]]
        text = text[:-1]
    try:
        return int(float(text) * mult)
    except ValueError:
        return default


def _env_true(value: Optional[str], default: bool = True) -> bool:
    if value is None or not value.strip():
        return default
    return value.strip().lower() not in FALSE_VALUES


@dataclasses.dataclass(frozen=True)
class RuntimeConfig:
    """Every runtime toggle of the stack, as one typed, immutable record.

    gpu_batch       -- route kernel launches through the block-batched
                       engine (``REPRO_GPU_BATCH``, default on).
    gpu_batch_lanes -- lane budget per batch step
                       (``REPRO_GPU_BATCH_LANES``).
    gpu_plan        -- trace kernel launches into replayable launch
                       plans (``REPRO_GPU_PLAN``, default on; only
                       effective while ``gpu_batch`` is on).
    cache           -- persist workload artifacts on disk
                       (``REPRO_CACHE``, default on).
    cache_dir       -- artifact-cache root (``REPRO_CACHE_DIR``).
    trace           -- telemetry JSONL output path (``REPRO_TRACE``),
                       None when tracing is off.
    trace_budget    -- in-memory bytes of sealed trace chunks before
                       they spill to compressed segments
                       (``REPRO_TRACE_BUDGET``, suffixes k/m/g; 0 or
                       ``off`` disables spilling).
    trace_chunk_rows-- rows per trace column chunk
                       (``REPRO_TRACE_CHUNK``).
    profile         -- span self-time attribution + tracemalloc peak
                       gauges when a telemetry session starts
                       (``REPRO_PROFILE``, default off).
    registry_dir    -- run-registry root (``REPRO_REGISTRY``); None (the
                       default) disables persisting run records.  The
                       experiment CLI turns this on with
                       ``DEFAULT_REGISTRY_DIR`` unless told otherwise.
    cache_budget_bytes   -- artifact-cache size budget enforced by
                       ``ArtifactCache.prune`` after writes
                       (``REPRO_CACHE_BUDGET``, suffixes k/m/g;
                       0, the default, means unbounded).
    cache_budget_entries -- artifact-cache entry-count budget
                       (``REPRO_CACHE_ENTRIES``; 0 means unbounded).
    service_host    -- experiment-service bind address
                       (``REPRO_SERVICE_HOST``).
    service_port    -- experiment-service port (``REPRO_SERVICE_PORT``;
                       0 lets the OS pick).
    service_workers -- cold-execution process-pool width
                       (``REPRO_SERVICE_WORKERS``).
    service_queue   -- max in-flight cold requests before the service
                       answers 429 (``REPRO_SERVICE_QUEUE``).
    service_access_log -- structured JSONL access-log path, or None for
                       no access log (``REPRO_SERVICE_ACCESS_LOG``).
    service_slow_ms -- slow-request exemplar threshold in milliseconds
                       (``REPRO_SERVICE_SLOW_MS``).
    perf_history    -- perf-history JSONL trajectory read/written by
                       ``runner perf`` and the benchmark harness
                       (``REPRO_PERF_HISTORY``; ``off`` disables the
                       harness dual-write and makes the CLI demand an
                       explicit ``--history``).
    """

    gpu_batch: bool = True
    gpu_batch_lanes: int = DEFAULT_BATCH_LANES
    gpu_plan: bool = True
    cache: bool = True
    cache_dir: str = DEFAULT_CACHE_DIR
    trace: Optional[str] = None
    trace_budget: int = DEFAULT_TRACE_BUDGET
    trace_chunk_rows: int = DEFAULT_TRACE_CHUNK_ROWS
    profile: bool = False
    registry_dir: Optional[str] = None
    cache_budget_bytes: int = 0
    cache_budget_entries: int = 0
    service_host: str = DEFAULT_SERVICE_HOST
    service_port: int = DEFAULT_SERVICE_PORT
    service_workers: int = DEFAULT_SERVICE_WORKERS
    service_queue: int = DEFAULT_SERVICE_QUEUE
    service_access_log: Optional[str] = None
    service_slow_ms: float = DEFAULT_SERVICE_SLOW_MS
    perf_history: Optional[str] = DEFAULT_PERF_HISTORY

    @classmethod
    def from_env(cls) -> "RuntimeConfig":
        """Resolve every field from the environment (the fallback source)."""
        try:
            lanes = max(1, int(os.environ.get("REPRO_GPU_BATCH_LANES", "")))
        except ValueError:
            lanes = DEFAULT_BATCH_LANES
        registry = os.environ.get("REPRO_REGISTRY", "").strip()
        if not registry or registry.lower() in FALSE_VALUES:
            registry_dir = None
        else:
            registry_dir = registry
        budget_raw = os.environ.get("REPRO_TRACE_BUDGET")
        if budget_raw and budget_raw.strip().lower() in FALSE_VALUES:
            trace_budget = 0
        else:
            trace_budget = _parse_bytes(budget_raw, DEFAULT_TRACE_BUDGET)
        chunk_rows = _parse_bytes(
            os.environ.get("REPRO_TRACE_CHUNK"), DEFAULT_TRACE_CHUNK_ROWS
        )
        perf_raw = os.environ.get("REPRO_PERF_HISTORY", "").strip()
        if not perf_raw:
            perf_history: Optional[str] = DEFAULT_PERF_HISTORY
        elif perf_raw.lower() in FALSE_VALUES:
            perf_history = None
        else:
            perf_history = perf_raw

        def _int_env(var: str, default: int, minimum: int = 0) -> int:
            try:
                return max(minimum, int(os.environ.get(var, "")))
            except ValueError:
                return default

        def _float_env(var: str, default: float,
                       minimum: float = 0.0) -> float:
            try:
                return max(minimum, float(os.environ.get(var, "")))
            except ValueError:
                return default

        return cls(
            gpu_batch=_env_true(os.environ.get("REPRO_GPU_BATCH")),
            gpu_batch_lanes=lanes,
            gpu_plan=_env_true(os.environ.get("REPRO_GPU_PLAN")),
            cache=_env_true(os.environ.get("REPRO_CACHE")),
            cache_dir=os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR),
            trace=os.environ.get("REPRO_TRACE") or None,
            trace_budget=trace_budget,
            trace_chunk_rows=max(1, chunk_rows),
            profile=_env_true(os.environ.get("REPRO_PROFILE"), default=False),
            registry_dir=registry_dir,
            cache_budget_bytes=_parse_bytes(
                os.environ.get("REPRO_CACHE_BUDGET"), 0
            ),
            cache_budget_entries=_int_env("REPRO_CACHE_ENTRIES", 0),
            service_host=os.environ.get(
                "REPRO_SERVICE_HOST", DEFAULT_SERVICE_HOST
            ) or DEFAULT_SERVICE_HOST,
            service_port=_int_env("REPRO_SERVICE_PORT", DEFAULT_SERVICE_PORT),
            service_workers=_int_env(
                "REPRO_SERVICE_WORKERS", DEFAULT_SERVICE_WORKERS, minimum=1
            ),
            service_queue=_int_env(
                "REPRO_SERVICE_QUEUE", DEFAULT_SERVICE_QUEUE, minimum=1
            ),
            service_access_log=(
                os.environ.get("REPRO_SERVICE_ACCESS_LOG") or None
            ),
            service_slow_ms=_float_env(
                "REPRO_SERVICE_SLOW_MS", DEFAULT_SERVICE_SLOW_MS
            ),
            perf_history=perf_history,
        )


_overrides: List[RuntimeConfig] = []
# Cache of the env-derived config, keyed on the raw REPRO_* values so a
# test that monkeypatches the environment still observes its change
# while steady-state callers pay five dict reads, not a full re-parse.
_env_cache: Optional[Tuple[Tuple[Optional[str], ...], RuntimeConfig]] = None


def config() -> RuntimeConfig:
    """The active runtime configuration.

    Innermost :func:`override` wins; otherwise the environment-derived
    config (re-resolved only when a ``REPRO_*`` variable changed since
    the last call, so repeated reads are effectively free).
    """
    global _env_cache
    if _overrides:
        return _overrides[-1]
    key = tuple(os.environ.get(v) for v in _ENV_VARS)
    if _env_cache is None or _env_cache[0] != key:
        _env_cache = (key, RuntimeConfig.from_env())
    return _env_cache[1]


@contextlib.contextmanager
def override(**fields) -> Iterator[RuntimeConfig]:
    """Temporarily replace selected config fields (tests, tools).

        with override(gpu_batch=False):
            ...  # every launch takes the scalar path

    Overrides nest; each layer is the previous active config with the
    named fields replaced.
    """
    cfg = dataclasses.replace(config(), **fields)
    _overrides.append(cfg)
    try:
        yield cfg
    finally:
        _overrides.pop()
