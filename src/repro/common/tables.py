"""Plain-text table rendering for experiment output.

The benchmark harness reproduces the paper's tables and figure data as
printed rows/series; :class:`Table` provides consistent fixed-width
formatting for that output without any plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


class Table:
    """A titled, column-aligned text table.

    >>> t = Table("Demo", ["name", "value"])
    >>> t.add_row(["alpha", 1.5])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, row: Iterable[object]) -> None:
        cells = [_fmt(c) for c in row]
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(cells)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def column(self, name: str) -> List[str]:
        """Return the raw cells of a named column."""
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
