"""Cross-process file locks for the content-addressed stores.

The artifact cache and the run registry are written by many processes
at once (the parallel runner's pool, the experiment service's workers,
concurrent CLI invocations).  Readers stay lock-free — every payload is
published with an atomic rename, so a reader either sees a complete
file or no file.  Writers and pruners coordinate through ``O_EXCL``
lockfiles so two processes never interleave a read-modify-write (LRU
eviction, budget accounting) on the same key range.

Design points:

- **Lockfile = ``os.open(path, O_CREAT | O_EXCL)``** — the only
  primitive that is atomic on every POSIX filesystem (including NFS
  for practical purposes) without fcntl ranges, which do not survive
  ``fork`` + ``ProcessPoolExecutor`` cleanly.
- **Stale breaking** — a holder that died leaves its lockfile behind;
  any waiter may break a lock whose mtime is older than
  ``stale_after`` seconds.  Holders are short-lived (one atomic write
  or one prune pass), so the default window is generous.
- **Best-effort callers** — the stores treat lock acquisition failure
  as "proceed unlocked": payload writes are individually atomic, so
  the worst case is duplicated work, never corruption.  Only the
  pruners *require* the lock (they skip the pass instead), because
  concurrent eviction is the one genuinely racy read-modify-write.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Optional, Union


class LockTimeout(OSError):
    """Raised by :meth:`FileLock.acquire` when the wait budget runs out."""


class FileLock:
    """An ``O_EXCL`` lockfile with stale-holder breaking.

    Usable as a context manager (blocking acquire with ``timeout``) or
    via :meth:`try_acquire` for non-blocking "skip if busy" callers.
    Re-entrant it is not; one instance guards one acquire/release pair.
    """

    def __init__(
        self,
        path: Union[str, os.PathLike],
        timeout: float = 10.0,
        stale_after: float = 30.0,
        poll: float = 0.005,
    ):
        self.path = Path(path)
        self.timeout = timeout
        self.stale_after = stale_after
        self.poll = poll
        self._held = False

    # -- core ------------------------------------------------------------
    def _try_create(self) -> bool:
        try:
            fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except FileNotFoundError:
            # Parent directory vanished (or never existed): create and
            # retry once; a second FileNotFoundError propagates.
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        try:
            os.write(fd, f"{os.getpid()}\n".encode("ascii"))
        finally:
            os.close(fd)
        self._held = True
        return True

    def _break_stale(self) -> None:
        """Unlink the lockfile if its holder looks dead (old mtime)."""
        try:
            age = time.time() - self.path.stat().st_mtime
        except OSError:
            return  # gone already — the holder released it
        if age > self.stale_after:
            try:
                self.path.unlink()
            except OSError:
                pass  # a racing waiter broke it first

    def try_acquire(self) -> bool:
        """One non-blocking attempt; True when the lock is now held."""
        if self._try_create():
            return True
        self._break_stale()
        return self._try_create()

    def acquire(self, timeout: Optional[float] = None) -> "FileLock":
        """Block (polling) until held; :class:`LockTimeout` on expiry."""
        budget = self.timeout if timeout is None else timeout
        deadline = time.monotonic() + budget
        delay = self.poll
        while True:
            if self._try_create():
                return self
            self._break_stale()
            if time.monotonic() >= deadline:
                raise LockTimeout(f"could not acquire {self.path}")
            time.sleep(delay)
            delay = min(delay * 2, 0.1)

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        try:
            self.path.unlink()
        except OSError:
            pass  # broken as stale by a waiter; nothing left to release

    @property
    def held(self) -> bool:
        return self._held

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.release()
        return False


def store_lock(root: Union[str, os.PathLike], name: str,
               **kwargs) -> FileLock:
    """The lock guarding one key range of a store rooted at ``root``.

    Lockfiles live under ``<root>/.locks/`` so a store directory stays
    human-listable (`ls` shows artifacts, not lock litter) and pruners
    can glob payload files without excluding lock names.
    """
    return FileLock(Path(root) / ".locks" / f"{name}.lock", **kwargs)
