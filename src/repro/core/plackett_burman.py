"""Plackett-Burman designs and effect analysis (Section III-E).

Yi et al. [36]'s methodology: with n architectural parameters, a PB
design needs only ~2n simulations (vs 2^n for full factorial) to rank
main effects.  The paper uses the 11-column PB-12 matrix over 9 GPU
parameters; we provide the standard cyclic constructions for runs of
12, 20, and 24.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

# First rows of the standard cyclic Plackett-Burman constructions
# (Plackett & Burman 1946); +1 = high level, -1 = low level.
_FIRST_ROWS = {
    12: "++-+++---+-",
    20: "++--++++-+-+----++-",
    24: "+++++-+-++--++--+-+----",
}


def pb_design(n_factors: int, foldover: bool = False) -> np.ndarray:
    """PB design matrix with >= ``n_factors`` columns.

    Returns an (n_runs, n_factors) matrix of +-1 levels.  With
    ``foldover=True`` the mirrored runs are appended (the enhanced PB
    design Yi et al. recommend to cancel interaction aliasing).
    """
    if n_factors < 1:
        raise ValueError("need at least one factor")
    for n_runs in sorted(_FIRST_ROWS):
        if n_factors <= n_runs - 1:
            break
    else:
        raise ValueError(f"designs support at most {max(_FIRST_ROWS) - 1} factors")
    row = np.array([1 if c == "+" else -1 for c in _FIRST_ROWS[n_runs]])
    k = n_runs - 1
    mat = np.empty((n_runs, k), dtype=np.int64)
    for r in range(n_runs - 1):
        mat[r] = np.roll(row, r)
    mat[n_runs - 1] = -1
    design = mat[:, :n_factors]
    if foldover:
        design = np.vstack([design, -design])
    return design


def pb_effects(design: np.ndarray, response: np.ndarray) -> np.ndarray:
    """Main effect of each factor: mean(high) - mean(low)."""
    design = np.asarray(design, dtype=np.float64)
    response = np.asarray(response, dtype=np.float64)
    if design.shape[0] != response.shape[0]:
        raise ValueError("one response per design run is required")
    n_runs = design.shape[0]
    return 2.0 * (design.T @ response) / n_runs


def rank_factors(
    design: np.ndarray, response: np.ndarray, names: Sequence[str]
) -> List[Tuple[str, float, float]]:
    """Factors ranked by |effect|: (name, effect, share of total |effect|)."""
    effects = pb_effects(design, response)
    total = np.abs(effects).sum() or 1.0
    ranked = sorted(
        zip(names, effects, np.abs(effects) / total),
        key=lambda t: -abs(t[1]),
    )
    return [(n, float(e), float(s)) for n, e, s in ranked]
