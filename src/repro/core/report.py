"""Full characterization report generation.

Assembles everything the library measures into one Markdown document —
a per-workload "card" (the GPU profile of Section III plus the CPU
profile of Section IV) and suite-level summaries — the artifact an
architect would circulate after running the characterization.

    from repro.core.report import build_report
    text = build_report(scale=SimScale.SMALL)
    Path("report.md").write_text(text)

or ``python -m repro.experiments.runner report``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.common.config import SimScale
from repro.core import PCA, Dendrogram, linkage
from repro.core.features import (
    cpu_metrics_for,
    display_label,
    feature_matrix,
    gpu_trace_for,
    suite_workloads,
)
from repro.gpusim import GPUConfig, TimingModel, analyze_divergence
from repro.gpusim.sharing import analyze_gpu_sharing
from repro.workloads import base as wl


def _pct(x: float) -> str:
    return f"{x:.1%}"


def render_drift(report, limit: int = 20) -> str:
    """Render a :class:`repro.fidelity.DriftReport` for humans.

    One verdict line, the worst offenders (every failure always shown,
    then the entries nearest their budget up to ``limit`` rows), and a
    note for any experiment the baseline could not cover.  Used by
    ``runner --baseline ...``; kept here so the report layer owns all
    presentation of fidelity results.
    """
    lines = [report.summary_line(), ""]
    failed = {e.metric for e in report.failures}
    entries = report.failures + [
        e for e in report.worst(limit) if e.metric not in failed
    ]
    entries = entries[:max(limit, len(report.failures))]
    lines.append(report.to_table(entries).render())
    if report.skipped:
        lines.append("")
        lines.append(
            "(no baseline coverage for: " + ", ".join(report.skipped) + ")"
        )
    return "\n".join(lines)


def render_response(response) -> str:
    """Render an :class:`repro.api.ExperimentResponse` for humans.

    The service and the registry exchange responses as canonical JSON;
    this is the presentation of that same encoding — used by the
    service client CLI paths so a response fetched over HTTP prints
    exactly like a locally-run experiment, plus a provenance footer.
    """
    lines = []
    if response.ok:
        if response.rendered:
            lines.append(response.rendered)
    else:
        lines.append(f"ERROR: {response.error}")
    footer = (
        f"[{response.experiment}@{response.scale.value} "
        f"status={response.status} key={response.request_key}"
    )
    if response.run_id:
        footer += f" run={response.run_id}"
    footer += f" cold_duration={response.duration_s:.3f}s]"
    lines.append(footer)
    return "\n\n".join(lines)


def _gpu_section(name: str, scale: SimScale) -> List[str]:
    trace = gpu_trace_for(name, scale)
    model28 = TimingModel(GPUConfig.sim_default())
    prof = model28.profile(trace)
    t28 = model28.time(trace)
    t8 = TimingModel(GPUConfig.sim_8sm()).time(trace)
    div = analyze_divergence(trace)
    share = analyze_gpu_sharing(trace)
    mix = trace.mem_mix()
    bound = max(t28.bound_mix(), key=t28.bound_mix().get)
    lines = [
        "**GPU (CUDA-style) profile**",
        "",
        f"- IPC: {t8.ipc:.0f} @ 8 SMs, {t28.ipc:.0f} @ 28 SMs "
        f"(scaling {t28.ipc / max(t8.ipc, 1e-9):.2f}x); bound: {bound}",
        f"- Kernel launches: {trace.n_launches}; "
        f"DRAM traffic: {t28.dram_bytes / 1e6:.2f} MB "
        f"(bandwidth utilization {_pct(t28.bw_utilization)})",
        "- Memory mix: "
        + ", ".join(f"{k} {_pct(v)}" for k, v in mix.items() if v > 0.001),
        f"- SIMD efficiency: {_pct(div.simd_efficiency)} "
        f"(mean {div.mean_active:.1f} active lanes/warp; "
        f"perfect-reconvergence bound {div.divergence_speedup_bound:.2f}x)",
        f"- Inter-block sharing: {_pct(share.frac_lines_shared)} of lines, "
        f"{_pct(share.shared_traffic_ratio)} of traffic",
    ]
    hot = prof.hot_kernels(1)
    if hot and prof.total_cycles:
        roll = hot[0]
        stall = roll.stall_mix()
        lines.append(
            f"- Hot kernel: `{roll.kernel_name}` "
            f"({_pct(roll.cycles / prof.total_cycles)} of cycles; "
            f"stalls {_pct(stall['issue'])} issue / "
            f"{_pct(stall['bandwidth'])} bandwidth / "
            f"{_pct(stall['latency'])} latency; "
            f"roofline {prof.roofline()}-bound)"
        )
    lines.append("")
    return lines


def _cpu_section(name: str, scale: SimScale) -> List[str]:
    met = cpu_metrics_for(name, scale)
    mix = met.inst_mix
    return [
        "**CPU (OpenMP-style) profile**",
        "",
        "- Instruction mix: "
        + ", ".join(f"{k} {_pct(v)}" for k, v in mix.items()),
        f"- Miss rate @ 4 MB shared cache: {_pct(met.miss_rate_4mb)} "
        f"({met.mem_refs:,} memory references)",
        f"- Sharing: {_pct(met.sharing.frac_lines_shared)} of lines, "
        f"{_pct(met.sharing.shared_access_ratio)} of accesses; "
        f"communication {_pct(met.sharing.consumer_read_ratio)}",
        f"- Footprints: {met.data_footprint_4kb} data pages, "
        f"{met.code_footprint_64b} code blocks",
        "",
    ]


def run_report(scale: SimScale = SimScale.SMALL) -> "ExperimentResult":
    """The report as an experiment driver (id ``report``).

    Lets the runner and the typed entry point
    (:func:`repro.experiments.run_experiment`) treat the full Markdown
    characterization exactly like any table/figure driver: the document
    body travels in ``text``, so ``render()`` is the report.
    """
    from repro.experiments import ExperimentResult

    text = build_report(scale)
    return ExperimentResult(
        "report", [], {"markdown": text},
        title="Workload characterization report", text=text,
    )


def build_report(
    scale: SimScale = SimScale.SMALL,
    names: Optional[Sequence[str]] = None,
) -> str:
    """Render the complete characterization as Markdown."""
    names = list(names) if names is not None else suite_workloads()
    out: List[str] = [
        "# Workload characterization report",
        "",
        f"Scale: `{scale.value}`.  Reproduction of Che et al., IISWC 2010;",
        "see EXPERIMENTS.md for paper-vs-measured comparisons.",
        "",
        "## Suite similarity",
        "",
    ]
    x, feats = feature_matrix(names, subset="all", scale=scale)
    pca = PCA().fit(x)
    k = pca.n_components_for_variance(0.90)
    coords = pca.transform(x)[:, :k]
    z = linkage(coords, method="average")
    out.append(f"{len(feats)} characteristics -> {k} principal components "
               f"({_pct(pca.explained_variance_ratio_[:k].sum())} of variance).")
    out.append("")
    out.append("```")
    out.append(Dendrogram(z, [display_label(n) for n in names]).render(48))
    out.append("```")
    out.append("")
    out.append("## Per-workload cards")
    out.append("")
    for name in names:
        defn = wl.get(name)
        meta = defn.meta
        out.append(f"### {display_label(name)}")
        out.append("")
        out.append(f"*{meta.dwarf} — {meta.domain}.* {meta.description}.  "
                   f"Paper size: {meta.paper_size}.")
        out.append("")
        if defn.has_gpu:
            out.extend(_gpu_section(name, scale))
        out.extend(_cpu_section(name, scale))
    return "\n".join(out)
