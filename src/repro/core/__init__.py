"""The paper's methodology: feature extraction, PCA, hierarchical
clustering, and Plackett-Burman sensitivity analysis.

This package is the reproduction's "primary contribution" layer — it
implements Section IV's comparison pipeline (instrument workloads,
assemble characteristic vectors, reduce with PCA, cluster, render
dendrograms) and Section III-E's Plackett-Burman design-of-experiments
study, all on numpy (validated against scipy in the test suite).
"""

from repro.core.clustering import Dendrogram, fcluster, linkage
from repro.core.coverage import (
    coverage_report,
    greedy_representative_subset,
    marginal_coverage,
)
from repro.core.features import (
    cpu_metrics_for,
    feature_matrix,
    gpu_trace_for,
    suite_workloads,
)
from repro.core.pca import PCA
from repro.core.plackett_burman import pb_design, pb_effects
from repro.core.report import build_report

__all__ = [
    "PCA",
    "linkage",
    "fcluster",
    "Dendrogram",
    "pb_design",
    "pb_effects",
    "cpu_metrics_for",
    "gpu_trace_for",
    "feature_matrix",
    "suite_workloads",
    "coverage_report",
    "marginal_coverage",
    "greedy_representative_subset",
    "build_report",
]
