"""Application-space coverage and redundancy metrics.

Section V-B asks: "How well is the application space covered by the two
suites? ... a thorough examination requires a comprehensive evaluation
and comparison of all the current multithreaded benchmark suites ... to
establish a single set of workloads with sufficient coverage and little
redundancy."  This module provides the quantitative tooling that study
needs:

- **coverage volume**: the product of per-axis spans in the standardized
  PCA space (a bounding-box proxy for the region a suite reaches);
- **redundancy**: per-workload nearest-neighbor distances — a pair of
  benchmarks closer than ``redundancy_threshold`` measures duplicated
  behaviour;
- **marginal coverage**: how much a workload (or a whole suite) enlarges
  the covered region beyond the other suite — the paper's "do the suites
  complement each other" question, made numeric;
- **greedy subset selection**: the smallest workload subset preserving a
  target fraction of the joint coverage (the "single set with sufficient
  coverage and little redundancy").
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.clustering import pdist


@dataclasses.dataclass
class CoverageReport:
    names: List[str]
    volume: float
    mean_nn_distance: float
    min_nn_distance: float
    redundant_pairs: List[Tuple[str, str, float]]

    def as_dict(self) -> Dict[str, float]:
        return {
            "volume": self.volume,
            "mean_nn_distance": self.mean_nn_distance,
            "min_nn_distance": self.min_nn_distance,
            "n_redundant_pairs": len(self.redundant_pairs),
        }


def bounding_volume(coords: np.ndarray) -> float:
    """Product of per-axis spans (log-friendly coverage proxy)."""
    if coords.shape[0] < 2:
        return 0.0
    spans = coords.max(axis=0) - coords.min(axis=0)
    return float(np.prod(np.maximum(spans, 1e-12)))


def nearest_neighbor_distances(coords: np.ndarray) -> np.ndarray:
    d = pdist(coords)
    np.fill_diagonal(d, np.inf)
    return d.min(axis=1)


def coverage_report(
    coords: np.ndarray,
    names: Sequence[str],
    redundancy_threshold: float = 0.5,
) -> CoverageReport:
    """Coverage and redundancy summary of one suite in a shared space."""
    coords = np.asarray(coords, dtype=np.float64)
    nn = nearest_neighbor_distances(coords)
    d = pdist(coords)
    pairs = []
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            if d[i, j] < redundancy_threshold:
                pairs.append((names[i], names[j], float(d[i, j])))
    pairs.sort(key=lambda t: t[2])
    return CoverageReport(
        names=list(names),
        volume=bounding_volume(coords),
        mean_nn_distance=float(nn.mean()),
        min_nn_distance=float(nn.min()),
        redundant_pairs=pairs,
    )


def marginal_coverage(
    base_coords: np.ndarray, added_coords: np.ndarray
) -> float:
    """Fractional volume growth from adding ``added`` to ``base``.

    1.0 means the additions double the bounding volume; 0.0 means they
    lie entirely inside the base suite's region.
    """
    base = bounding_volume(base_coords)
    joint = bounding_volume(np.vstack([base_coords, added_coords]))
    if base <= 0:
        return float("inf") if joint > 0 else 0.0
    return joint / base - 1.0


def greedy_representative_subset(
    coords: np.ndarray,
    names: Sequence[str],
    target_fraction: float = 0.9,
) -> List[str]:
    """Smallest greedy subset whose bounding volume reaches the target.

    Classic farthest-point-first selection: start from the pair spanning
    the largest distance, repeatedly add the workload farthest from the
    current subset, stop when the subset's volume covers
    ``target_fraction`` of the full suite's.
    """
    coords = np.asarray(coords, dtype=np.float64)
    n = coords.shape[0]
    if n <= 2:
        return list(names)
    full = bounding_volume(coords)
    d = pdist(coords)
    i, j = np.unravel_index(np.argmax(d), d.shape)
    chosen = [int(i), int(j)]
    while len(chosen) < n:
        if bounding_volume(coords[chosen]) >= target_fraction * full:
            break
        rest = [k for k in range(n) if k not in chosen]
        dist_to_set = [min(d[k, c] for c in chosen) for k in rest]
        chosen.append(rest[int(np.argmax(dist_to_set))])
    return [names[k] for k in sorted(chosen)]
