"""Principal component analysis.

The paper standardizes each workload characteristic and projects onto
the leading principal components before clustering (Section IV-C).
Implemented via eigendecomposition of the correlation matrix; component
signs follow the largest-|loading| convention so results are
deterministic across platforms.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class PCA:
    """Standardizing PCA.

    Parameters
    ----------
    n_components:
        Number of components to keep; ``None`` keeps all.
    """

    def __init__(self, n_components: Optional[int] = None):
        self.n_components = n_components
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None
        self.components_: Optional[np.ndarray] = None      # (k, d)
        self.explained_variance_: Optional[np.ndarray] = None
        self.explained_variance_ratio_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray) -> "PCA":
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError("PCA expects a 2-D (samples, features) matrix")
        n, d = x.shape
        if n < 2:
            raise ValueError("PCA needs at least two samples")
        self.mean_ = x.mean(axis=0)
        std = x.std(axis=0, ddof=1)
        self.scale_ = np.where(std > 1e-12, std, 1.0)   # constant features
        z = (x - self.mean_) / self.scale_
        cov = (z.T @ z) / (n - 1)
        eigvals, eigvecs = np.linalg.eigh(cov)
        order = np.argsort(eigvals)[::-1]
        eigvals = np.clip(eigvals[order], 0.0, None)
        eigvecs = eigvecs[:, order]
        # Deterministic sign: the largest-|loading| entry is positive.
        for j in range(eigvecs.shape[1]):
            pivot = np.argmax(np.abs(eigvecs[:, j]))
            if eigvecs[pivot, j] < 0:
                eigvecs[:, j] = -eigvecs[:, j]
        k = self.n_components or d
        k = min(k, d)
        self.components_ = eigvecs[:, :k].T
        self.explained_variance_ = eigvals[:k]
        total = eigvals.sum()
        self.explained_variance_ratio_ = (
            eigvals[:k] / total if total > 0 else np.zeros(k)
        )
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.components_ is None:
            raise RuntimeError("fit() before transform()")
        z = (np.asarray(x, dtype=np.float64) - self.mean_) / self.scale_
        return z @ self.components_.T

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def n_components_for_variance(self, fraction: float) -> int:
        """Smallest k whose cumulative explained variance >= fraction."""
        if self.explained_variance_ratio_ is None:
            raise RuntimeError("fit() first")
        cum = np.cumsum(self.explained_variance_ratio_)
        return int(np.searchsorted(cum, fraction) + 1)
