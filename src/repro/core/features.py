"""Workload characterization drivers and feature-vector assembly.

This is the glue between the substrates and the analysis: it runs
workloads on the instrumented CPU machine (with the code-footprint
tracer) or the GPU simulator, memoizes the expensive results per
process, and assembles the characteristic matrices the paper feeds into
PCA: instruction mix (Fig. 7), working sets (Fig. 8), sharing (Fig. 9),
or all of them together (Fig. 6).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.common.config import SimScale
from repro.core.artifacts import get_artifact_cache
from repro.cpusim import CodeFootprintTracer, CPUMetrics, Machine, characterize_trace
from repro.gpusim import BLOCK_BATCHES, GPU, GPUConfig, KernelTrace
from repro.workloads import base as wl

_cpu_cache: Dict[Tuple[str, SimScale], CPUMetrics] = {}
_gpu_cache: Dict[Tuple[str, SimScale, int], KernelTrace] = {}

#: Probe: one entry per *actual* workload execution (cache misses only).
#: Tests use this to assert that a warm artifact cache skips execution.
EXECUTIONS: List[Tuple[str, str, str]] = []

#: ``BLOCK_BATCHES`` (imported above) is re-exported here: one entry per
#: launch handled by the block-batched GPU engine, ``(kernel_name,
#: "batched" | "fallback", n_blocks)``.  It is the same list object as
#: :data:`repro.gpusim.gpu.BLOCK_BATCHES`, so tests and benchmarks can
#: assert the fast path actually engaged.


#: Feature-subset names accepted by :func:`feature_matrix`.
SUBSETS = ("mix", "workingset", "sharing", "all")


def suite_workloads(dedupe_shared: bool = True) -> List[str]:
    """Workload names for the suite comparison, Rodinia then Parsec.

    StreamCluster belongs to both suites; with ``dedupe_shared`` the
    Parsec twin is dropped and the shared entry is labeled once, as in
    the paper's Figure 6 ("streamcluster(R, P)").
    """
    names = [w.meta.name for w in wl.all_rodinia()]
    for w in wl.all_parsec():
        if dedupe_shared and w.meta.name == "streamcluster_p":
            continue
        names.append(w.meta.name)
    return names


def display_label(name: str) -> str:
    """Figure 6-style label: name(R), name(P), or the shared (R, P)."""
    defn = wl.get(name)
    if name == "streamcluster":
        return "streamcluster(R, P)"
    suffix = "R" if defn.meta.suite == "rodinia" else "P"
    return f"{name}({suffix})"


def _machine_config() -> Dict[str, int]:
    """Substrate parameters entering the CPU artifact key."""
    m = Machine()
    return {
        "n_threads": m.n_threads,
        "line_size": m.line_size,
        "quantum": m.quantum,
    }


def cpu_metrics_for(
    name: str, scale: SimScale = SimScale.SMALL, check: bool = True
) -> CPUMetrics:
    """Run a workload's CPU implementation and characterize its trace.

    Results are memoized per process and persisted in the artifact cache
    (see :mod:`repro.core.artifacts`), so a workload executes at most
    once per (implementation, scale, machine config) across all runs.
    """
    key = (name, scale)
    if key in _cpu_cache:
        telemetry.count("features.memo.cpu.hit")
        return _cpu_cache[key]
    telemetry.count("features.memo.cpu.miss")
    defn = wl.get(name)
    if defn.cpu_fn is None:
        raise ValueError(f"{name} has no CPU implementation")
    disk = get_artifact_cache()
    dkey = None
    if disk is not None:
        dkey = disk.cpu_key(name, scale, defn.cpu_fn, _machine_config())
        cached = disk.get_cpu(name, scale, dkey)
        if cached is not None:
            _cpu_cache[key] = cached
            return cached
    EXECUTIONS.append(("cpu", name, scale.value))
    with telemetry.span("workload", name=name, kind="cpu",
                        scale=scale.value):
        machine = Machine()
        tracer = CodeFootprintTracer()
        with tracer:
            result = defn.cpu_fn(machine, scale)
        if check and defn.check_cpu is not None:
            defn.check_cpu(result, scale)
        metrics = characterize_trace(
            machine, name, code_footprint_64b=tracer.footprint_blocks()
        )
    _cpu_cache[key] = metrics
    if disk is not None:
        disk.put_cpu(name, scale, dkey, metrics)
    return metrics


def gpu_trace_for(
    name: str,
    scale: SimScale = SimScale.SMALL,
    version: Optional[int] = None,
    check: bool = True,
) -> KernelTrace:
    """Run a workload's GPU implementation; returns its kernel trace.

    The trace is timing-independent, so every timing experiment (Figs.
    1, 4, 5, and the PB study) reuses one functional execution.
    """
    key = (name, scale, version or 0)
    if key in _gpu_cache:
        telemetry.count("features.memo.gpu.hit")
        return _gpu_cache[key]
    telemetry.count("features.memo.gpu.miss")
    defn = wl.get(name)
    fn = defn.gpu_fn
    if version is not None:
        if not defn.gpu_versions or version not in defn.gpu_versions:
            raise ValueError(f"{name} has no GPU version {version}")
        fn = defn.gpu_versions[version]
    if fn is None:
        raise ValueError(f"{name} has no GPU implementation")
    disk = get_artifact_cache()
    dkey = None
    if disk is not None:
        dkey = disk.gpu_key(name, scale, version or 0, fn)
        cached = disk.get_gpu(name, scale, dkey)
        if cached is not None:
            _gpu_cache[key] = cached
            return cached
    EXECUTIONS.append(("gpu", name, scale.value))
    with telemetry.span("workload", name=name, kind="gpu",
                        scale=scale.value, version=version or 0):
        gpu = GPU(app_name=name)
        result = fn(gpu, scale)
        if check and version is None and defn.check_gpu is not None:
            defn.check_gpu(result, scale)
    _gpu_cache[key] = gpu.trace
    if disk is not None:
        disk.put_gpu(name, scale, dkey, gpu.trace)
    return gpu.trace


def clear_caches() -> None:
    _cpu_cache.clear()
    _gpu_cache.clear()


def warm_workload(
    name: str,
    scale_value: str,
    trace_path: Optional[str] = None,
    collect: bool = False,
) -> Tuple[str, List[str], Dict[str, int]]:
    """Execute one workload's implementations, persisting the artifacts.

    Process-pool worker for ``runner --jobs N``: each worker process
    fills the shared on-disk artifact cache, after which the parent's
    experiments run without executing any workload.  Takes/returns only
    picklable primitives.

    When the parent has telemetry on, its counters must not silently
    lose the child work: with ``collect`` (or ``trace_path``) the task
    runs under its own telemetry session and returns the session's
    counter totals for the parent to fold back in
    (:func:`repro.telemetry.merge_counters`).  ``trace_path``
    additionally appends the child's span/counter events to
    ``<trace_path stem>.<pid>.jsonl`` — one trace file per worker
    process, safe against pool-level interleaving.
    """
    import os

    scale = SimScale(scale_value)
    started = False
    if collect or trace_path is not None:
        # A forked worker inherits the parent's live session (whose
        # sinks wrap the parent's file descriptors); abandon it before
        # opening this task's own.
        telemetry.discard()
        sink = None
        if trace_path is not None:
            root, ext = os.path.splitext(trace_path)
            child_path = f"{root}.{os.getpid()}{ext or '.jsonl'}"
            # Pool workers outlive tasks: append so each task's session
            # extends the worker's per-pid trace instead of clobbering it.
            sink = telemetry.JsonlSink(child_path, append=True)
        started = telemetry.start(sink=sink, meta={"worker": os.getpid(),
                                                   "workload": name})
    counters: Dict[str, int] = {}
    try:
        defn = wl.get(name)
        produced: List[str] = []
        if defn.cpu_fn is not None:
            cpu_metrics_for(name, scale)
            produced.append("cpu")
        if defn.has_gpu:
            gpu_trace_for(name, scale)
            produced.append("gpu")
    finally:
        if started:
            counters = telemetry.stop()["counters"]
    return name, produced, counters


def feature_matrix(
    names: Sequence[str],
    subset: str = "all",
    scale: SimScale = SimScale.SMALL,
) -> Tuple[np.ndarray, List[str]]:
    """Characteristic matrix (workloads x features) for a feature subset."""
    if subset not in SUBSETS:
        raise ValueError(f"subset must be one of {SUBSETS}")
    rows = []
    feature_names: List[str] = []
    for name in names:
        met = cpu_metrics_for(name, scale)
        feats: Dict[str, float] = {}
        if subset in ("mix", "all"):
            feats.update(met.mix_features())
        if subset in ("workingset", "all"):
            feats.update(met.working_set_features())
        if subset in ("sharing", "all"):
            feats.update(met.sharing_features())
        if not feature_names:
            feature_names = list(feats)
        rows.append([feats[f] for f in feature_names])
    return np.array(rows), feature_names
