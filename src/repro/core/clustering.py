"""Agglomerative hierarchical clustering and dendrograms.

The paper clusters the PCA-projected workloads with classical
hierarchical clustering (MATLAB's statistics toolbox) and reports
dendrograms (Fig. 6).  This module implements the Lance-Williams family
(single, complete, average, ward) over Euclidean distances, producing a
scipy-compatible merge matrix, plus a text dendrogram renderer.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

_LW = {
    # method: (alpha_i, alpha_j, beta, gamma) as functions of sizes
    "single": lambda ni, nj, nk: (0.5, 0.5, 0.0, -0.5),
    "complete": lambda ni, nj, nk: (0.5, 0.5, 0.0, 0.5),
    "average": lambda ni, nj, nk: (ni / (ni + nj), nj / (ni + nj), 0.0, 0.0),
    "ward": lambda ni, nj, nk: (
        (ni + nk) / (ni + nj + nk),
        (nj + nk) / (ni + nj + nk),
        -nk / (ni + nj + nk),
        0.0,
    ),
}


def pdist(x: np.ndarray) -> np.ndarray:
    """Full Euclidean distance matrix."""
    x = np.asarray(x, dtype=np.float64)
    sq = (x * x).sum(axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (x @ x.T)
    d = np.sqrt(np.clip(d2, 0.0, None))
    np.fill_diagonal(d, 0.0)  # cancellation can leave ~1e-7 residue
    return d


def linkage(x: np.ndarray, method: str = "average") -> np.ndarray:
    """Hierarchical clustering; returns a scipy-style (n-1, 4) matrix.

    Row k merges clusters ``Z[k,0]`` and ``Z[k,1]`` (original points are
    0..n-1, merged clusters n+k) at distance ``Z[k,2]`` with combined
    size ``Z[k,3]``.
    """
    if method not in _LW:
        raise ValueError(f"unknown linkage method {method!r}; options: {sorted(_LW)}")
    update = _LW[method]
    x = np.asarray(x, dtype=np.float64)
    n = x.shape[0]
    if n < 2:
        raise ValueError("need at least two observations")
    dist = pdist(x)
    if method == "ward":
        # Ward operates on squared Euclidean distances internally.
        dist = dist ** 2
    np.fill_diagonal(dist, np.inf)
    active = {i: (i, 1) for i in range(n)}  # slot -> (cluster id, size)
    z = np.zeros((n - 1, 4))
    next_id = n
    for step in range(n - 1):
        slots = sorted(active)
        sub = dist[np.ix_(slots, slots)]
        flat = np.argmin(sub)
        a, b = divmod(flat, len(slots))
        si, sj = slots[a], slots[b]
        if si > sj:
            si, sj = sj, si
        d = dist[si, sj]
        id_i, n_i = active[si]
        id_j, n_j = active[sj]
        merged_d = np.sqrt(d) if method == "ward" else d
        lo, hi = sorted((id_i, id_j))
        z[step] = (lo, hi, merged_d, n_i + n_j)
        # Lance-Williams distance update into slot si.
        for sk in slots:
            if sk in (si, sj):
                continue
            _, n_k = active[sk]
            ai, aj, beta, gamma = update(n_i, n_j, n_k)
            new = (
                ai * dist[si, sk]
                + aj * dist[sj, sk]
                + beta * d
                + gamma * abs(dist[si, sk] - dist[sj, sk])
            )
            dist[si, sk] = dist[sk, si] = new
        dist[sj, :] = np.inf
        dist[:, sj] = np.inf
        active[si] = (next_id, n_i + n_j)
        del active[sj]
        next_id += 1
    return z


def fcluster(z: np.ndarray, n_clusters: int) -> np.ndarray:
    """Cut the tree into ``n_clusters`` flat clusters (labels 0..k-1)."""
    n = z.shape[0] + 1
    if not 1 <= n_clusters <= n:
        raise ValueError("n_clusters out of range")
    parent = list(range(2 * n - 1))

    def find(i):
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    # Apply merges in order, stopping before the last (n_clusters - 1).
    for step in range(n - n_clusters):
        a, b = int(z[step, 0]), int(z[step, 1])
        parent[find(a)] = n + step
        parent[find(b)] = n + step
    roots: Dict[int, int] = {}
    labels = np.empty(n, dtype=np.int64)
    for i in range(n):
        r = find(i)
        labels[i] = roots.setdefault(r, len(roots))
    return labels


def cophenetic_distances(z: np.ndarray) -> np.ndarray:
    """Pairwise merge heights (cophenetic distance matrix)."""
    n = z.shape[0] + 1
    members: Dict[int, List[int]] = {i: [i] for i in range(n)}
    out = np.zeros((n, n))
    for step in range(n - 1):
        a, b = int(z[step, 0]), int(z[step, 1])
        d = z[step, 2]
        for i in members[a]:
            for j in members[b]:
                out[i, j] = out[j, i] = d
        members[n + step] = members.pop(a) + members.pop(b)
    return out


class Dendrogram:
    """Text rendering of a linkage tree with leaf labels (Fig. 6)."""

    def __init__(self, z: np.ndarray, labels: Sequence[str]):
        self.z = z
        self.labels = list(labels)
        n = z.shape[0] + 1
        if len(self.labels) != n:
            raise ValueError("label count does not match tree size")

    def leaf_order(self) -> List[int]:
        """Left-to-right leaf ordering of the tree."""
        n = self.z.shape[0] + 1

        def walk(node: int) -> List[int]:
            if node < n:
                return [node]
            row = self.z[node - n]
            return walk(int(row[0])) + walk(int(row[1]))

        return walk(2 * n - 2)

    def render(self, width: int = 60) -> str:
        """ASCII dendrogram: one leaf per line, bars scale with height."""
        n = self.z.shape[0] + 1
        max_d = float(self.z[:, 2].max()) or 1.0
        join_height: Dict[int, float] = {}
        # Height at which each leaf is first merged (for display only).
        members: Dict[int, List[int]] = {i: [i] for i in range(n)}
        for step in range(n - 1):
            a, b = int(self.z[step, 0]), int(self.z[step, 1])
            d = float(self.z[step, 2])
            for leaf in members[a] + members[b]:
                join_height.setdefault(leaf, d)
            members[n + step] = members.pop(a) + members.pop(b)
        order = self.leaf_order()
        label_w = max(len(self.labels[i]) for i in order)
        lines = []
        for leaf in order:
            bar = int(round(join_height.get(leaf, max_d) / max_d * width))
            lines.append(
                f"{self.labels[leaf].rjust(label_w)} |{'#' * bar}"
            )
        scale = f"{' ' * label_w}  0{'-' * (width - 8)}{max_d:.3g}"
        return "\n".join(lines + [scale])
