"""Similarity-based performance prediction (the paper's refs [15][16]).

Hoste et al. predict a program's performance on a target machine from
its *microarchitecture-independent* characteristics: find the most
similar already-measured programs in a standardized feature space and
interpolate their scores.  The paper cites this line of work and asks
(Section VII) for metrics correlating program characteristics across
architectures; this module closes the loop — predicting each Rodinia
workload's **GPU IPC from its CPU-side characteristics alone**, with
leave-one-out evaluation over the suite.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.pca import PCA


@dataclasses.dataclass
class PredictionResult:
    names: List[str]
    actual: np.ndarray
    predicted: np.ndarray

    @property
    def rank_correlation(self) -> float:
        """Spearman rho between predicted and actual."""
        ra = np.argsort(np.argsort(self.actual)).astype(np.float64)
        rb = np.argsort(np.argsort(self.predicted)).astype(np.float64)
        ra -= ra.mean()
        rb -= rb.mean()
        denom = np.sqrt((ra * ra).sum() * (rb * rb).sum())
        return float((ra * rb).sum() / denom) if denom else 0.0

    @property
    def mean_abs_log_error(self) -> float:
        """Mean |log2(pred / actual)| — 1.0 means off by 2x on average."""
        a = np.maximum(self.actual, 1e-12)
        p = np.maximum(self.predicted, 1e-12)
        return float(np.abs(np.log2(p / a)).mean())

    def errors_factor(self) -> np.ndarray:
        """Per-workload prediction factor (pred / actual)."""
        return self.predicted / np.maximum(self.actual, 1e-12)


def knn_predict(
    train_coords: np.ndarray,
    train_targets: np.ndarray,
    query: np.ndarray,
    k: int = 3,
    log_target: bool = True,
) -> float:
    """Inverse-distance-weighted k-NN regression for one query point."""
    d = np.sqrt(((train_coords - query) ** 2).sum(axis=1))
    order = np.argsort(d)[:k]
    w = 1.0 / (d[order] + 1e-9)
    w /= w.sum()
    t = train_targets[order]
    if log_target:
        return float(np.exp((w * np.log(np.maximum(t, 1e-12))).sum()))
    return float((w * t).sum())


def leave_one_out(
    features: np.ndarray,
    targets: np.ndarray,
    names: Sequence[str],
    k: int = 3,
    n_components: Optional[int] = None,
    log_target: bool = True,
) -> PredictionResult:
    """Leave-one-out k-NN prediction over a suite.

    Each workload is held out; PCA is fit on the remaining workloads
    (no leakage), the held-out point is projected, and its target is
    interpolated from its ``k`` nearest training neighbors.
    """
    features = np.asarray(features, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    n = features.shape[0]
    if n < k + 2:
        raise ValueError("too few workloads for leave-one-out")
    preds = np.empty(n)
    for i in range(n):
        mask = np.arange(n) != i
        pca = PCA(n_components=n_components).fit(features[mask])
        kdim = n_components or pca.n_components_for_variance(0.90)
        train = pca.transform(features[mask])[:, :kdim]
        query = pca.transform(features[i : i + 1])[0, :kdim]
        preds[i] = knn_predict(train, targets[mask], query, k=k,
                               log_target=log_target)
    return PredictionResult(list(names), targets.copy(), preds)
