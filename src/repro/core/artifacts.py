"""Persistent, content-keyed artifact cache.

The expensive products of a characterization run are the functional
executions: a workload's CPU trace characterization
(:class:`~repro.cpusim.metrics.CPUMetrics`) and its GPU kernel trace
(:class:`~repro.gpusim.trace.KernelTrace`).  Everything downstream
(timing models, PCA, tables) is cheap.  This module persists those two
artifact kinds under a cache directory so repeated experiment runs —
and parallel runs in other processes — skip re-execution entirely.

Keys are content hashes: workload name, scale, GPU code version, the
*source code* of the workload function (so editing a workload
invalidates its artifacts), the substrate configuration (machine
geometry / functional-trace parameters), and a format version.  A stale
entry is therefore impossible by construction; there is no TTL and no
manual invalidation step.

Layout: ``<root>/<kind>-<name>-<scale>-<hash12>.{json,npz}`` — flat,
human-listable, safe for concurrent writers (atomic tmp + rename).

Control (all resolved through :func:`repro.common.config.config`):

- ``REPRO_CACHE_DIR`` — cache root (default ``.repro_cache`` under the
  current directory).
- ``REPRO_CACHE=off`` (or ``0``/``no``) — disable persistence entirely.
- :func:`set_artifact_cache` — programmatic override (tests, runner
  ``--no-cache``).

When telemetry is active every lookup lands on an
``artifacts.{cpu,gpu}.{hit,miss}`` counter and every store on
``artifacts.{cpu,gpu}.put``, so a trace shows exactly how effective the
cache was for a run.

Concurrency contract (the experiment service leans on this):

- **Reads are lock-free.**  Payloads are only ever published by atomic
  rename, so a reader sees a complete file or a miss — never a torn
  write.  A file that a concurrent pruner unlinks between ``glob`` and
  ``open`` (the mtime-LRU TOCTOU) degrades to a miss; the read-side
  mtime touch tolerates the same race.
- **Writes take a per-key-prefix lock** (``O_EXCL`` lockfile under
  ``<root>/.locks/``, see :mod:`repro.common.locks`) keyed on the
  first two hex digits of the content hash, so concurrent writers of
  *different* key ranges never contend while same-key writers
  serialize.  Lock acquisition failure downgrades to an unlocked (but
  still atomic) write: duplicated work, never corruption.
- **Pruning is single-flight.**  :meth:`ArtifactCache.prune` and
  :meth:`ArtifactCache.prune_plans` take a non-blocking prune lock and
  simply skip the pass when another process is already evicting; every
  candidate is re-stat'ed immediately before ``unlink`` so a file that
  was touched (used) or removed since the scan survives / is skipped.
"""

from __future__ import annotations

import dataclasses
import hashlib
import inspect
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterable, Optional

from repro import telemetry
from repro.common.config import SimScale, config as runtime_config
from repro.common.locks import LockTimeout, store_lock
from repro.cpusim.metrics import CPUMetrics
from repro.cpusim.sharing import SharingStats
from repro.gpusim.trace import KernelTrace
from repro.gpusim.trace_io import load_trace, save_trace

#: Bump when the serialized layout or the meaning of a cached artifact
#: changes; old entries are simply never matched again.
#: 2: GPU traces persist in the v2 chunked columnar layout.
ARTIFACT_FORMAT = 2

#: Budget for persisted launch plans (see ``ArtifactCache.prune_plans``):
#: plans are cheap to regenerate (one traced launch), so the cache keeps
#: a bounded working set with mtime-LRU eviction.
PLAN_CACHE_MAX_ENTRIES = 256
PLAN_CACHE_MAX_BYTES = 256 * 1024 * 1024


def _source_fingerprint(fn) -> str:
    """Hashable identity of a workload function's implementation."""
    if fn is None:
        return "none"
    try:
        return inspect.getsource(fn)
    except (OSError, TypeError):
        return getattr(fn, "__qualname__", repr(fn))


def artifact_key(
    kind: str,
    name: str,
    scale: SimScale,
    source: str = "",
    config: Optional[Dict[str, Any]] = None,
) -> str:
    """Content hash identifying one artifact (first 12 hex digits)."""
    payload = json.dumps(
        {
            "format": ARTIFACT_FORMAT,
            "kind": kind,
            "name": name,
            "scale": scale.value,
            "source": source,
            "config": config or {},
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


def _metrics_to_dict(metrics: CPUMetrics) -> Dict[str, Any]:
    d = dataclasses.asdict(metrics)
    # JSON turns int dict keys into strings; keep the curve as pairs.
    d["miss_curve"] = sorted(metrics.miss_curve.items())
    return d


def _metrics_from_dict(d: Dict[str, Any]) -> CPUMetrics:
    d = dict(d)
    d["miss_curve"] = {int(size): float(rate) for size, rate in d["miss_curve"]}
    d["sharing"] = SharingStats(**d["sharing"])
    return CPUMetrics(**d)


class ArtifactCache:
    """Filesystem cache of characterization artifacts."""

    def __init__(self, root: os.PathLike):
        self.root = Path(root)

    # -- generic helpers ------------------------------------------------
    def _path(self, kind: str, name: str, scale: SimScale, key: str,
              suffix: str) -> Path:
        return self.root / f"{kind}-{name}-{scale.value}-{key}{suffix}"

    @staticmethod
    def _touch(path: Path) -> None:
        """Refresh mtime on a read so LRU eviction tracks actual use."""
        try:
            os.utime(path)
        except OSError:
            pass

    @staticmethod
    def _key_shard(path: Path) -> str:
        """Lock shard for one artifact: first 2 hex digits of its key."""
        return path.stem.rsplit("-", 1)[-1][:2] or "00"

    def _write_atomic(self, path: Path, write_fn) -> None:
        # The temp file keeps the final suffix (np.savez appends ".npz"
        # to anything else) and lives in the same directory so the
        # rename is atomic on the same filesystem.  The per-key-prefix
        # lock serializes same-range writers (and fences the pruner);
        # on timeout the write proceeds unlocked — rename keeps it
        # atomic, the lock only avoids duplicate temp-file churn.
        self.root.mkdir(parents=True, exist_ok=True)
        lock = store_lock(self.root, f"w-{self._key_shard(path)}")
        try:
            lock.acquire()
        except LockTimeout:
            telemetry.count("artifacts.lock.timeout")
        try:
            fd, tmp = tempfile.mkstemp(
                dir=self.root, prefix=path.stem + ".tmp.", suffix=path.suffix
            )
            os.close(fd)
            try:
                write_fn(tmp)
                os.replace(tmp, path)
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
        finally:
            lock.release()

    # -- CPU metrics ----------------------------------------------------
    def cpu_key(self, name: str, scale: SimScale, cpu_fn,
                config: Optional[Dict[str, Any]] = None) -> str:
        return artifact_key(
            "cpu", name, scale, _source_fingerprint(cpu_fn), config
        )

    def get_cpu(self, name: str, scale: SimScale, key: str) -> Optional[CPUMetrics]:
        path = self._path("cpu", name, scale, key, ".json")
        try:
            with open(path, "r", encoding="utf-8") as fh:
                metrics = _metrics_from_dict(json.load(fh))
        except (OSError, ValueError, KeyError, TypeError):
            telemetry.count("artifacts.cpu.miss")
            return None
        self._touch(path)
        telemetry.count("artifacts.cpu.hit")
        return metrics

    def put_cpu(self, name: str, scale: SimScale, key: str,
                metrics: CPUMetrics) -> None:
        path = self._path("cpu", name, scale, key, ".json")
        payload = json.dumps(_metrics_to_dict(metrics))

        def write(tmp):
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(payload)

        self._write_atomic(path, write)
        telemetry.count("artifacts.cpu.put")
        self.prune()

    # -- GPU kernel traces ----------------------------------------------
    def gpu_key(self, name: str, scale: SimScale, version: int, gpu_fn,
                config: Optional[Dict[str, Any]] = None) -> str:
        cfg = dict(config or {})
        cfg["version"] = version
        return artifact_key(
            "gpu", name, scale, _source_fingerprint(gpu_fn), cfg
        )

    def get_gpu(self, name: str, scale: SimScale, key: str) -> Optional[KernelTrace]:
        path = self._path("gpu", name, scale, key, ".npz")
        try:
            trace = load_trace(path)
        except (OSError, ValueError, KeyError, EOFError):
            telemetry.count("artifacts.gpu.miss")
            return None
        self._touch(path)
        telemetry.count("artifacts.gpu.hit")
        return trace

    def put_gpu(self, name: str, scale: SimScale, key: str,
                trace: KernelTrace) -> None:
        path = self._path("gpu", name, scale, key, ".npz")
        self._write_atomic(path, lambda tmp: save_trace(trace, tmp))
        telemetry.count("artifacts.gpu.put")
        self.prune()

    # -- generic JSON blobs (service responses, future artifact kinds) --
    def get_json(self, kind: str, name: str, scale: SimScale,
                 key: str) -> Optional[str]:
        """Raw text of a JSON artifact, or None on miss.

        Returns the stored bytes *verbatim* (decoded utf-8) after a
        parse check: the experiment service's warm path must serve a
        payload byte-identical to what the cold execution produced, so
        re-serialization here would be a correctness bug.
        """
        path = self._path(kind, name, scale, key, ".json")
        try:
            text = path.read_text(encoding="utf-8")
            json.loads(text)  # corruption check only
        except (OSError, ValueError):
            telemetry.count(f"artifacts.{kind}.miss")
            return None
        self._touch(path)
        telemetry.count(f"artifacts.{kind}.hit")
        return text

    def put_json(self, kind: str, name: str, scale: SimScale, key: str,
                 text: str) -> Path:
        """Atomically persist pre-serialized JSON text under a key."""
        path = self._path(kind, name, scale, key, ".json")

        def write(tmp):
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(text)

        self._write_atomic(path, write)
        telemetry.count(f"artifacts.{kind}.put")
        self.prune()
        return path

    # -- GPU launch plans (repro.gpusim.plans) --------------------------
    def plan_path(self, kernel_name: str, key: str) -> Path:
        safe = "".join(
            ch if ch.isalnum() or ch in "-_" else "_" for ch in kernel_name
        )[:48] or "kernel"
        return self.root / f"plan-{safe}-{key}.npz"

    def get_plan_file(self, kernel_name: str, key: str) -> Optional[Path]:
        """Path of a persisted plan set, or None; touches mtime (LRU)."""
        path = self.plan_path(kernel_name, key)
        if not path.is_file():
            telemetry.count("artifacts.plan.miss")
            return None
        self._touch(path)
        telemetry.count("artifacts.plan.hit")
        return path

    def put_plan_file(self, kernel_name: str, key: str, write_fn) -> Path:
        """Atomically persist one plan set, then enforce the budget."""
        path = self.plan_path(kernel_name, key)
        self._write_atomic(path, write_fn)
        telemetry.count("artifacts.plan.put")
        self.prune_plans()
        return path

    def prune_plans(self, max_entries: int = PLAN_CACHE_MAX_ENTRIES,
                    max_bytes: int = PLAN_CACHE_MAX_BYTES) -> int:
        """Evict least-recently-used plan files past the budget.

        Returns the number of files removed.  The newest file always
        survives so a just-written plan cannot evict itself.
        """
        evicted = self._evict_lru(
            ("plan-*.npz",), max_entries, max_bytes, lock_name="prune-plans"
        )
        if evicted:
            telemetry.count("artifacts.plan.evict", evicted)
        return evicted

    # -- eviction -------------------------------------------------------
    #: Payload globs covered by the general size-budget prune.  Plans
    #: keep their own (tighter) budget in :meth:`prune_plans`.
    ARTIFACT_GLOBS = ("cpu-*.json", "gpu-*.npz", "resp-*.json")

    def prune(self, max_entries: Optional[int] = None,
              max_bytes: Optional[int] = None) -> int:
        """Enforce the artifact size budget with mtime-LRU eviction.

        Budgets default to the runtime config
        (``REPRO_CACHE_BUDGET`` / ``REPRO_CACHE_ENTRIES``); a value of
        0 means unbounded, and with both unbounded this is a no-op.
        Safe (and cheap) to call after every put: concurrent pruners
        single-flight on a lock, and every unlink re-checks that the
        file was not used or removed since the scan.
        """
        cfg = runtime_config()
        if max_entries is None:
            max_entries = cfg.cache_budget_entries
        if max_bytes is None:
            max_bytes = cfg.cache_budget_bytes
        if not max_entries and not max_bytes:
            return 0
        evicted = self._evict_lru(
            self.ARTIFACT_GLOBS,
            max_entries or (1 << 62),
            max_bytes or (1 << 62),
            lock_name="prune",
        )
        if evicted:
            telemetry.count("artifacts.evict", evicted)
        return evicted

    def _evict_lru(self, globs: Iterable[str], max_entries: int,
                   max_bytes: int, lock_name: str) -> int:
        """Shared LRU eviction pass, concurrency-tolerant.

        Single-flight: if another process holds the prune lock the
        pass is skipped (it is doing the same work).  Before each
        unlink the candidate is re-stat'ed — a file that vanished is
        skipped, and one whose mtime advanced since the scan was just
        *used* by a reader, so it is spared this round rather than
        evicted out from under a warm hit.
        """
        lock = store_lock(self.root, lock_name)
        if not lock.try_acquire():
            return 0
        try:
            entries = []
            try:
                for pattern in globs:
                    for p in self.root.glob(pattern):
                        if ".tmp." in p.name:
                            continue  # in-flight write, not a payload
                        try:
                            st = p.stat()
                        except OSError:
                            continue
                        entries.append((st.st_mtime, st.st_size, p))
            except OSError:
                return 0
            entries.sort(key=lambda e: e[0], reverse=True)
            total = 0
            evicted = 0
            for kept, (mtime, size, p) in enumerate(entries, start=1):
                total += size
                if kept == 1 or (kept <= max_entries and total <= max_bytes):
                    continue
                try:
                    st = p.stat()  # re-stat: tolerate concurrent use
                except OSError:
                    continue  # already gone — nothing to evict
                if st.st_mtime > mtime:
                    continue  # touched since the scan: recently used
                try:
                    p.unlink()
                except OSError:
                    continue
                evicted += 1
            return evicted
        finally:
            lock.release()


# ----------------------------------------------------------------------
# Default cache resolution
# ----------------------------------------------------------------------
_override: Optional[ArtifactCache] = None
_override_set = False


def default_cache() -> Optional[ArtifactCache]:
    """The configuration-resolved cache, or ``None`` when disabled."""
    cfg = runtime_config()
    if not cfg.cache:
        return None
    return ArtifactCache(cfg.cache_dir)


def get_artifact_cache() -> Optional[ArtifactCache]:
    """The active cache: explicit override first, then the environment."""
    if _override_set:
        return _override
    return default_cache()


def set_artifact_cache(cache: Optional[ArtifactCache], *,
                       clear: bool = False) -> None:
    """Install (or with ``clear=True`` remove) a cache override.

    ``set_artifact_cache(None)`` forces caching *off* regardless of the
    environment; ``set_artifact_cache(None, clear=True)`` restores
    environment-driven resolution.
    """
    global _override, _override_set
    if clear:
        _override = None
        _override_set = False
    else:
        _override = cache
        _override_set = True
