"""Persistent, content-keyed artifact cache.

The expensive products of a characterization run are the functional
executions: a workload's CPU trace characterization
(:class:`~repro.cpusim.metrics.CPUMetrics`) and its GPU kernel trace
(:class:`~repro.gpusim.trace.KernelTrace`).  Everything downstream
(timing models, PCA, tables) is cheap.  This module persists those two
artifact kinds under a cache directory so repeated experiment runs —
and parallel runs in other processes — skip re-execution entirely.

Keys are content hashes: workload name, scale, GPU code version, the
*source code* of the workload function (so editing a workload
invalidates its artifacts), the substrate configuration (machine
geometry / functional-trace parameters), and a format version.  A stale
entry is therefore impossible by construction; there is no TTL and no
manual invalidation step.

Layout: ``<root>/<kind>-<name>-<scale>-<hash12>.{json,npz}`` — flat,
human-listable, safe for concurrent writers (atomic tmp + rename).

Control (all resolved through :func:`repro.common.config.config`):

- ``REPRO_CACHE_DIR`` — cache root (default ``.repro_cache`` under the
  current directory).
- ``REPRO_CACHE=off`` (or ``0``/``no``) — disable persistence entirely.
- :func:`set_artifact_cache` — programmatic override (tests, runner
  ``--no-cache``).

When telemetry is active every lookup lands on an
``artifacts.{cpu,gpu}.{hit,miss}`` counter and every store on
``artifacts.{cpu,gpu}.put``, so a trace shows exactly how effective the
cache was for a run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import inspect
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

from repro import telemetry
from repro.common.config import SimScale, config as runtime_config
from repro.cpusim.metrics import CPUMetrics
from repro.cpusim.sharing import SharingStats
from repro.gpusim.trace import KernelTrace
from repro.gpusim.trace_io import load_trace, save_trace

#: Bump when the serialized layout or the meaning of a cached artifact
#: changes; old entries are simply never matched again.
#: 2: GPU traces persist in the v2 chunked columnar layout.
ARTIFACT_FORMAT = 2

#: Budget for persisted launch plans (see ``ArtifactCache.prune_plans``):
#: plans are cheap to regenerate (one traced launch), so the cache keeps
#: a bounded working set with mtime-LRU eviction.
PLAN_CACHE_MAX_ENTRIES = 256
PLAN_CACHE_MAX_BYTES = 256 * 1024 * 1024


def _source_fingerprint(fn) -> str:
    """Hashable identity of a workload function's implementation."""
    if fn is None:
        return "none"
    try:
        return inspect.getsource(fn)
    except (OSError, TypeError):
        return getattr(fn, "__qualname__", repr(fn))


def artifact_key(
    kind: str,
    name: str,
    scale: SimScale,
    source: str = "",
    config: Optional[Dict[str, Any]] = None,
) -> str:
    """Content hash identifying one artifact (first 12 hex digits)."""
    payload = json.dumps(
        {
            "format": ARTIFACT_FORMAT,
            "kind": kind,
            "name": name,
            "scale": scale.value,
            "source": source,
            "config": config or {},
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


def _metrics_to_dict(metrics: CPUMetrics) -> Dict[str, Any]:
    d = dataclasses.asdict(metrics)
    # JSON turns int dict keys into strings; keep the curve as pairs.
    d["miss_curve"] = sorted(metrics.miss_curve.items())
    return d


def _metrics_from_dict(d: Dict[str, Any]) -> CPUMetrics:
    d = dict(d)
    d["miss_curve"] = {int(size): float(rate) for size, rate in d["miss_curve"]}
    d["sharing"] = SharingStats(**d["sharing"])
    return CPUMetrics(**d)


class ArtifactCache:
    """Filesystem cache of characterization artifacts."""

    def __init__(self, root: os.PathLike):
        self.root = Path(root)

    # -- generic helpers ------------------------------------------------
    def _path(self, kind: str, name: str, scale: SimScale, key: str,
              suffix: str) -> Path:
        return self.root / f"{kind}-{name}-{scale.value}-{key}{suffix}"

    @staticmethod
    def _touch(path: Path) -> None:
        """Refresh mtime on a read so LRU eviction tracks actual use."""
        try:
            os.utime(path)
        except OSError:
            pass

    def _write_atomic(self, path: Path, write_fn) -> None:
        # The temp file keeps the final suffix (np.savez appends ".npz"
        # to anything else) and lives in the same directory so the
        # rename is atomic on the same filesystem.
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=path.stem + ".tmp.", suffix=path.suffix
        )
        os.close(fd)
        try:
            write_fn(tmp)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)

    # -- CPU metrics ----------------------------------------------------
    def cpu_key(self, name: str, scale: SimScale, cpu_fn,
                config: Optional[Dict[str, Any]] = None) -> str:
        return artifact_key(
            "cpu", name, scale, _source_fingerprint(cpu_fn), config
        )

    def get_cpu(self, name: str, scale: SimScale, key: str) -> Optional[CPUMetrics]:
        path = self._path("cpu", name, scale, key, ".json")
        try:
            with open(path, "r", encoding="utf-8") as fh:
                metrics = _metrics_from_dict(json.load(fh))
        except (OSError, ValueError, KeyError, TypeError):
            telemetry.count("artifacts.cpu.miss")
            return None
        self._touch(path)
        telemetry.count("artifacts.cpu.hit")
        return metrics

    def put_cpu(self, name: str, scale: SimScale, key: str,
                metrics: CPUMetrics) -> None:
        path = self._path("cpu", name, scale, key, ".json")
        payload = json.dumps(_metrics_to_dict(metrics))

        def write(tmp):
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(payload)

        self._write_atomic(path, write)
        telemetry.count("artifacts.cpu.put")

    # -- GPU kernel traces ----------------------------------------------
    def gpu_key(self, name: str, scale: SimScale, version: int, gpu_fn,
                config: Optional[Dict[str, Any]] = None) -> str:
        cfg = dict(config or {})
        cfg["version"] = version
        return artifact_key(
            "gpu", name, scale, _source_fingerprint(gpu_fn), cfg
        )

    def get_gpu(self, name: str, scale: SimScale, key: str) -> Optional[KernelTrace]:
        path = self._path("gpu", name, scale, key, ".npz")
        try:
            trace = load_trace(path)
        except (OSError, ValueError, KeyError, EOFError):
            telemetry.count("artifacts.gpu.miss")
            return None
        self._touch(path)
        telemetry.count("artifacts.gpu.hit")
        return trace

    def put_gpu(self, name: str, scale: SimScale, key: str,
                trace: KernelTrace) -> None:
        path = self._path("gpu", name, scale, key, ".npz")
        self._write_atomic(path, lambda tmp: save_trace(trace, tmp))
        telemetry.count("artifacts.gpu.put")

    # -- GPU launch plans (repro.gpusim.plans) --------------------------
    def plan_path(self, kernel_name: str, key: str) -> Path:
        safe = "".join(
            ch if ch.isalnum() or ch in "-_" else "_" for ch in kernel_name
        )[:48] or "kernel"
        return self.root / f"plan-{safe}-{key}.npz"

    def get_plan_file(self, kernel_name: str, key: str) -> Optional[Path]:
        """Path of a persisted plan set, or None; touches mtime (LRU)."""
        path = self.plan_path(kernel_name, key)
        if not path.is_file():
            telemetry.count("artifacts.plan.miss")
            return None
        self._touch(path)
        telemetry.count("artifacts.plan.hit")
        return path

    def put_plan_file(self, kernel_name: str, key: str, write_fn) -> Path:
        """Atomically persist one plan set, then enforce the budget."""
        path = self.plan_path(kernel_name, key)
        self._write_atomic(path, write_fn)
        telemetry.count("artifacts.plan.put")
        self.prune_plans()
        return path

    def prune_plans(self, max_entries: int = PLAN_CACHE_MAX_ENTRIES,
                    max_bytes: int = PLAN_CACHE_MAX_BYTES) -> int:
        """Evict least-recently-used plan files past the budget.

        Returns the number of files removed.  The newest file always
        survives so a just-written plan cannot evict itself.
        """
        try:
            entries = []
            for p in self.root.glob("plan-*.npz"):
                try:
                    st = p.stat()
                except OSError:
                    continue
                entries.append((st.st_mtime, st.st_size, p))
        except OSError:
            return 0
        entries.sort(key=lambda e: e[0], reverse=True)
        total = 0
        evicted = 0
        for kept, (_, size, p) in enumerate(entries, start=1):
            total += size
            if kept > 1 and (kept > max_entries or total > max_bytes):
                try:
                    p.unlink()
                except OSError:
                    continue
                evicted += 1
        if evicted:
            telemetry.count("artifacts.plan.evict", evicted)
        return evicted


# ----------------------------------------------------------------------
# Default cache resolution
# ----------------------------------------------------------------------
_override: Optional[ArtifactCache] = None
_override_set = False


def default_cache() -> Optional[ArtifactCache]:
    """The configuration-resolved cache, or ``None`` when disabled."""
    cfg = runtime_config()
    if not cfg.cache:
        return None
    return ArtifactCache(cfg.cache_dir)


def get_artifact_cache() -> Optional[ArtifactCache]:
    """The active cache: explicit override first, then the environment."""
    if _override_set:
        return _override
    return default_cache()


def set_artifact_cache(cache: Optional[ArtifactCache], *,
                       clear: bool = False) -> None:
    """Install (or with ``clear=True`` remove) a cache override.

    ``set_artifact_cache(None)`` forces caching *off* regardless of the
    environment; ``set_artifact_cache(None, clear=True)`` restores
    environment-driven resolution.
    """
    global _override, _override_set
    if clear:
        _override = None
        _override_set = False
    else:
        _override = cache
        _override_set = True
