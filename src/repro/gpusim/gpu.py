"""The GPU device: memory management and kernel launching.

A :class:`GPU` owns the simulated address space, the small functional
texture/constant caches, and the :class:`~repro.gpusim.trace.KernelTrace`
being accumulated.  Kernels are launched with CUDA-like geometry::

    gpu = GPU()
    out = gpu.alloc(1024)
    gpu.launch(my_kernel, grid=8, block=128, out)
    result = out.to_host()
    trace = gpu.trace
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple, Union

import numpy as np

from repro import telemetry
from repro.common.config import config as runtime_config
from repro.gpusim.config import GPUConfig
from repro.gpusim.dsl import BlockCtx
from repro.gpusim.isa import Space
from repro.gpusim.memory import Allocator, CacheModel, DeviceArray
from repro.gpusim.trace import KernelTrace

Dim = Union[int, Tuple[int, int]]

#: Probe for tests and benchmarks: one entry per launch routed through
#: the block-batched engine — ``(kernel_name, "batched" | "fallback",
#: n_blocks)``.  Mirrors ``repro.core.features.EXECUTIONS``.
BLOCK_BATCHES: List[Tuple[str, str, int]] = []


def batch_enabled() -> bool:
    """Whether launches use the block-batched engine (``REPRO_GPU_BATCH``).

    On by default; set ``REPRO_GPU_BATCH=off`` (or ``0``/``false``) —
    or ``repro.common.config.override(gpu_batch=False)`` — to force
    every launch onto the sequential per-block oracle.
    """
    return runtime_config().gpu_batch

#: Functional texture/constant cache geometry.  Real GPUs have small
#: per-SM read-only caches shared by that SM's resident CTAs; since our
#: blocks execute sequentially, a single modest cache approximates the
#: per-CTA share of one SM's cache.
_TEX_CACHE_BYTES = 16 * 1024
_CONST_CACHE_BYTES = 16 * 1024


def _as_2d(dim: Dim) -> Tuple[int, int]:
    if isinstance(dim, tuple):
        if len(dim) == 1:
            return (int(dim[0]), 1)
        if len(dim) != 2:
            raise ValueError("only 1-D or 2-D geometry is supported")
        return (int(dim[0]), int(dim[1]))
    return (int(dim), 1)


class GPU:
    """A simulated GPU device."""

    def __init__(self, config: Optional[GPUConfig] = None, app_name: str = ""):
        self.config = config or GPUConfig.sim_default()
        self._allocator = Allocator()
        self.trace = KernelTrace(app_name)
        self.tex_cache = CacheModel(_TEX_CACHE_BYTES, assoc=4, hash_sets=True)
        self.const_cache = CacheModel(_CONST_CACHE_BYTES, assoc=4)
        # Kernels whose host-side control flow needs per-block scalars;
        # once a batch attempt fails the kernel goes straight to the
        # scalar engine on later launches.
        self._batch_fallbacks: set = set()
        # Kernels whose trace aborted (untraceable constructs); launches
        # go straight to the batched interpreter instead of re-tracing.
        self._plan_unplannable: set = set()

    # ------------------------------------------------------------------
    # Memory management
    # ------------------------------------------------------------------
    def alloc(
        self,
        shape,
        dtype=np.float32,
        space: Space = Space.GLOBAL,
        name: str = "",
    ) -> DeviceArray:
        """Allocate a zero-initialized device array."""
        data = np.zeros(shape, dtype=dtype)
        base = self._allocator.alloc(data.nbytes, space)
        return DeviceArray(data, base, space, name)

    def to_device(
        self,
        host: np.ndarray,
        space: Space = Space.GLOBAL,
        name: str = "",
    ) -> DeviceArray:
        """Copy a host array into device memory."""
        data = np.array(host)  # defensive copy, keeps dtype
        base = self._allocator.alloc(data.nbytes, space)
        return DeviceArray(data, base, space, name)

    def to_texture(self, host: np.ndarray, name: str = "") -> DeviceArray:
        """Bind a host array to cached texture memory."""
        return self.to_device(host, Space.TEX, name)

    def to_const(self, host: np.ndarray, name: str = "") -> DeviceArray:
        """Copy a host array into cached constant memory."""
        return self.to_device(host, Space.CONST, name)

    def params(self, host: np.ndarray, name: str = "") -> DeviceArray:
        """Kernel-call parameter memory (always treated as cache hits)."""
        return self.to_device(host, Space.PARAM, name)

    def _alloc_shared(self, shape, dtype, name: str) -> DeviceArray:
        data = np.zeros(shape, dtype=dtype)
        base = self._allocator.alloc(data.nbytes, Space.SHARED)
        return DeviceArray(data, base, Space.SHARED, name)

    # ------------------------------------------------------------------
    # Kernel launch
    # ------------------------------------------------------------------
    def launch(
        self,
        kernel: Callable,
        grid: Dim,
        block: Dim,
        *args,
        regs_per_thread: int = 16,
        name: Optional[str] = None,
    ) -> None:
        """Launch ``kernel(ctx, *args)`` over the given geometry.

        ``grid`` and ``block`` may be ints or 2-tuples.  Semantically,
        blocks execute sequentially in lockstep (functionally safe for
        race-free kernels) with a fresh shared-memory arena each; by
        default the block-batched engine (:mod:`repro.gpusim.batch`)
        performs that execution many blocks at a time with bit-identical
        traces, falling back to the per-block loop for kernels that need
        per-block host scalars.
        """
        grid2 = _as_2d(grid)
        block2 = _as_2d(block)
        threads = block2[0] * block2[1]
        if threads < 1 or threads > 1024:
            raise ValueError(f"block size {threads} out of range [1, 1024]")
        launch = self.trace.new_launch(
            name or getattr(kernel, "__name__", "kernel"),
            grid2,
            block2,
            regs_per_thread,
        )
        n_blocks = grid2[0] * grid2[1]
        with telemetry.span(
            "kernel_launch", kernel=launch.kernel_name, blocks=n_blocks,
            threads=threads,
        ):
            plan_mode = batch_enabled() and runtime_config().gpu_plan
            if batch_enabled() and kernel not in self._batch_fallbacks:
                if plan_mode and kernel not in self._plan_unplannable:
                    from repro.gpusim import plans

                    if plans.try_plan(
                        self, kernel, launch, grid2, block2, args, n_blocks
                    ):
                        return
                if self._launch_batched(
                    kernel, launch, grid2, block2, args, n_blocks
                ):
                    if plan_mode:
                        from repro.gpusim import plans

                        plans.record_route(
                            launch.kernel_name, "batch", n_blocks
                        )
                    return
            if plan_mode:
                from repro.gpusim import plans

                plans.record_route(launch.kernel_name, "scalar", n_blocks)
            telemetry.count("gpusim.batch.launches.scalar")
            telemetry.count("gpusim.batch.blocks.scalar", n_blocks)
            # Masked-off lanes legitimately compute garbage (e.g. x/0);
            # the DSL discards those values, so the warnings are
            # suppressed.
            with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
                for bidx in range(n_blocks):
                    self._allocator.reset(Space.SHARED)
                    ctx = BlockCtx(self, launch, bidx, grid2, block2)
                    kernel(ctx, *args)

    def _launch_batched(
        self,
        kernel: Callable,
        launch,
        grid2: Tuple[int, int],
        block2: Tuple[int, int],
        args: tuple,
        n_blocks: int,
    ) -> bool:
        """Try the block-batched engine; True on success.

        On any failure — typically a kernel whose Python-level control
        flow needs per-block scalars and trips over ``(B, 1)`` arrays —
        device memory is restored from copy-on-first-write backups, the
        untouched launch trace is handed back to the scalar loop, and the
        kernel is remembered as scalar-only.
        """
        from repro.gpusim.batch import BatchLaunch

        runner = BatchLaunch(self, launch, grid2, block2)
        try:
            runner.run(kernel, args, n_blocks)
        except Exception:
            runner.restore()
            self._batch_fallbacks.add(kernel)
            BLOCK_BATCHES.append((launch.kernel_name, "fallback", n_blocks))
            telemetry.count("gpusim.batch.launches.fallback")
            return False
        runner.commit()
        BLOCK_BATCHES.append((launch.kernel_name, "batched", n_blocks))
        telemetry.count("gpusim.batch.launches.batched")
        telemetry.count("gpusim.batch.blocks.batched", n_blocks)
        return True

    def reset_trace(self, app_name: str = "") -> KernelTrace:
        """Return the accumulated trace and start a fresh one."""
        done = self.trace
        self.trace = KernelTrace(app_name or done.app_name)
        self.tex_cache = self.tex_cache.clone_empty()
        self.const_cache = self.const_cache.clone_empty()
        return done
