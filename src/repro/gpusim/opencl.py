"""OpenCL-flavored front end for the SIMT simulator (paper future work).

The paper notes Rodinia's OpenCL ports were in progress and that "OpenCL
and CUDA use very similar sets of abstractions, such that CUDA is
sufficient for the characterization"; Section VII lists OpenCL support
as planned.  This module provides the OpenCL vocabulary over the same
execution engine, so OpenCL-style kernels produce identical traces to
their CUDA-style twins:

    dev = CLDevice()
    buf = dev.buffer(np.arange(1024, dtype=np.float32))
    out = dev.buffer_like(buf)

    def vadd(cl, a, b):           # work-group at a time, like the DSL
        gid = cl.get_global_id(0)
        with cl.mask(gid < 1024):
            cl.write(b, gid, cl.read(a, gid) + 1)

    dev.enqueue_nd_range(vadd, global_size=1024, local_size=128,
                         args=(buf, out))
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.gpusim.config import GPUConfig
from repro.gpusim.dsl import BlockCtx
from repro.gpusim.gpu import GPU
from repro.gpusim.memory import DeviceArray
from repro.gpusim.trace import KernelTrace


class WorkGroupCtx:
    """OpenCL view of a thread block: work-items, NDRange ids, barrier.

    Thin adapter over :class:`~repro.gpusim.dsl.BlockCtx`; every memory
    and control-flow operation delegates to the underlying SIMT context,
    so statistics are identical to the CUDA-style DSL's.
    """

    def __init__(self, ctx: BlockCtx):
        self._ctx = ctx

    # --- NDRange geometry ------------------------------------------------
    def get_global_id(self, dim: int = 0) -> np.ndarray:
        if dim == 0:
            return self._ctx.gx if self._ctx.bdim[1] > 1 else self._ctx.gtid
        if dim == 1:
            return self._ctx.gy
        raise ValueError("only 1-D and 2-D NDRanges are supported")

    def get_local_id(self, dim: int = 0) -> np.ndarray:
        if dim == 0:
            return self._ctx.tx if self._ctx.bdim[1] > 1 else self._ctx.tidx
        if dim == 1:
            return self._ctx.ty
        raise ValueError("only 1-D and 2-D NDRanges are supported")

    def get_group_id(self, dim: int = 0) -> int:
        if dim == 0:
            return self._ctx.bx
        if dim == 1:
            return self._ctx.by
        raise ValueError("only 1-D and 2-D NDRanges are supported")

    def get_local_size(self, dim: int = 0) -> int:
        return self._ctx.bdim[dim]

    # --- memory -----------------------------------------------------------
    def read(self, buf: DeviceArray, idx) -> np.ndarray:
        return self._ctx.load(buf, idx)

    def write(self, buf: DeviceArray, idx, values) -> None:
        self._ctx.store(buf, idx, values)

    def atomic_add(self, buf: DeviceArray, idx, values) -> None:
        self._ctx.atomic_add(buf, idx, values)

    def local_array(self, shape, dtype=np.float32) -> DeviceArray:
        """__local memory (CUDA __shared__)."""
        return self._ctx.shared(shape, dtype=dtype)

    # --- control flow -------------------------------------------------
    def mask(self, cond):
        return self._ctx.masked(cond)

    def loop(self, cond_fn):
        return self._ctx.while_(cond_fn)

    def barrier(self) -> None:
        """barrier(CLK_LOCAL_MEM_FENCE)."""
        self._ctx.sync()

    def compute(self, n: int = 1) -> None:
        """Charge n arithmetic operations (same as BlockCtx.alu)."""
        self._ctx.alu(n)

    def select(self, cond, a, b):
        return self._ctx.select(cond, a, b)


class CLDevice:
    """An OpenCL-style device/queue over the simulated GPU."""

    def __init__(self, config: Optional[GPUConfig] = None, name: str = ""):
        self._gpu = GPU(config, app_name=name)

    # --- buffers -------------------------------------------------------
    def buffer(self, host: np.ndarray, name: str = "") -> DeviceArray:
        """clCreateBuffer + clEnqueueWriteBuffer."""
        return self._gpu.to_device(host, name=name)

    def buffer_like(self, other: DeviceArray, name: str = "") -> DeviceArray:
        return self._gpu.alloc(other.shape, dtype=other.dtype, name=name)

    def alloc(self, shape, dtype=np.float32, name: str = "") -> DeviceArray:
        return self._gpu.alloc(shape, dtype=dtype, name=name)

    def image(self, host: np.ndarray, name: str = "") -> DeviceArray:
        """Read-only image object (maps to the texture path)."""
        return self._gpu.to_texture(host, name=name)

    def constant(self, host: np.ndarray, name: str = "") -> DeviceArray:
        """__constant buffer."""
        return self._gpu.to_const(host, name=name)

    def read_buffer(self, buf: DeviceArray) -> np.ndarray:
        """clEnqueueReadBuffer."""
        return buf.to_host()

    # --- execution -------------------------------------------------------
    def enqueue_nd_range(
        self,
        kernel: Callable,
        global_size,
        local_size,
        args: Tuple = (),
        name: Optional[str] = None,
    ) -> None:
        """clEnqueueNDRangeKernel: 1-D or 2-D NDRanges.

        ``global_size`` must be a multiple of ``local_size`` in each
        dimension (as OpenCL requires).
        """
        gs = global_size if isinstance(global_size, tuple) else (global_size,)
        ls = local_size if isinstance(local_size, tuple) else (local_size,)
        if len(gs) != len(ls):
            raise ValueError("global and local sizes must have equal rank")
        if any(g % l for g, l in zip(gs, ls)):
            raise ValueError("global_size must be a multiple of local_size")
        grid = tuple(g // l for g, l in zip(gs, ls))
        if len(grid) == 1:
            grid, block = grid[0], ls[0]
        else:
            block = ls

        def launcher(ctx, *inner_args):
            kernel(WorkGroupCtx(ctx), *inner_args)

        self._gpu.launch(
            launcher, grid, block, *args,
            name=name or getattr(kernel, "__name__", "cl_kernel"),
        )

    @property
    def trace(self) -> KernelTrace:
        return self._gpu.trace

    def finish(self) -> KernelTrace:
        """clFinish: returns the accumulated trace and starts fresh."""
        return self._gpu.reset_trace()
