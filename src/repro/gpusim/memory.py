"""Device memory: arrays, address allocation, coalescing, bank conflicts,
and a set-associative LRU cache model.

Addresses are synthetic but stable: each memory space has its own region
of a flat 64-bit address space and a bump allocator, so coalescing,
channel interleaving, and cache behaviour are deterministic functions of
allocation order and access pattern.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro import telemetry
from repro.gpusim.isa import BANK_WORD_BYTES, SHARED_BANKS, TRANSACTION_BYTES, Space

_SPACE_BASE = {
    Space.GLOBAL: 0x1000_0000,
    Space.LOCAL: 0x4000_0000,
    Space.SHARED: 0x5000_0000,
    Space.CONST: 0x6000_0000,
    Space.TEX: 0x7000_0000,
    Space.PARAM: 0x8000_0000,
}

_ALLOC_ALIGN = 256


class DeviceArray:
    """A typed array resident in a simulated memory space.

    ``data`` is the backing numpy buffer (flattened access through
    ``data.flat`` by the DSL); ``base`` is the array's simulated byte
    address, used for coalescing and cache simulation.
    """

    def __init__(
        self,
        data: np.ndarray,
        base: int,
        space: Space,
        name: str = "",
    ):
        self.data = data
        self.base = base
        self.space = space
        self.name = name or f"{space.value}@{base:#x}"

    @property
    def itemsize(self) -> int:
        return self.data.dtype.itemsize

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def to_host(self) -> np.ndarray:
        """Copy the device contents back to a host array."""
        return self.data.copy()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeviceArray({self.name}, shape={self.shape}, space={self.space.value})"


class Allocator:
    """Bump allocator with one arena per memory space."""

    def __init__(self):
        self._next: Dict[Space, int] = dict(_SPACE_BASE)

    def alloc(self, nbytes: int, space: Space) -> int:
        base = self._next[space]
        aligned = (nbytes + _ALLOC_ALIGN - 1) // _ALLOC_ALIGN * _ALLOC_ALIGN
        self._next[space] = base + aligned
        return base

    def reset(self, space: Space) -> None:
        """Release an arena (used to reuse shared memory between blocks)."""
        self._next[space] = _SPACE_BASE[space]


def coalesce(addrs: np.ndarray, segment: int = TRANSACTION_BYTES) -> np.ndarray:
    """Group per-lane byte addresses into unique aligned segments.

    Models the hardware coalescer: one warp memory instruction issues one
    transaction per distinct ``segment``-byte-aligned region touched.
    Returns the sorted unique segment base addresses.
    """
    if addrs.size == 0:
        return addrs
    segments = np.unique(addrs // segment) * segment
    if telemetry.active():
        telemetry.count("gpusim.mem.coalesce.accesses", int(addrs.size))
        telemetry.count("gpusim.mem.coalesce.transactions",
                        int(segments.size))
    return segments


def bank_conflict_degree(addrs: np.ndarray) -> int:
    """Conflict degree of a shared-memory warp access.

    The degree is the maximum number of *distinct* word addresses mapping
    to the same bank; identical addresses broadcast and do not conflict.
    A conflict-free access has degree 1 (and degree 0 means no lanes
    active).  The access replays ``degree`` times in hardware.
    """
    if addrs.size == 0:
        return 0
    words = np.unique(addrs // BANK_WORD_BYTES)
    banks = words % SHARED_BANKS
    degree = int(np.bincount(banks, minlength=1).max())
    if degree > 1 and telemetry.active():
        telemetry.count("gpusim.mem.bank_replays", degree - 1)
    return degree


class CacheModel:
    """Set-associative LRU cache over byte addresses.

    Used for texture/constant caches during functional execution and for
    the Fermi L1/L2 hierarchy during timing.  Accesses are line-granular;
    eviction is strict LRU within a set.  Stores allocate (write-allocate)
    and mark lines dirty; ``access`` returns hit/miss per address.
    """

    def __init__(
        self,
        size_bytes: int,
        assoc: int = 4,
        line_bytes: int = 64,
        hash_sets: bool = False,
    ):
        if size_bytes <= 0:
            raise ValueError("cache size must be positive")
        n_lines = max(assoc, size_bytes // line_bytes)
        self.n_sets = max(1, n_lines // assoc)
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.size_bytes = size_bytes
        # Texture caches (and Fermi's L2) swizzle the set index to avoid
        # power-of-2 stride aliasing; plain modulo models simple caches.
        self.hash_sets = hash_sets
        # Each set is an ordered dict substitute: list of tags, MRU last.
        self._sets: Dict[int, list] = {}
        self.hits = 0
        self.misses = 0

    def access_one(self, addr: int) -> bool:
        """Access one address; returns True on hit."""
        line = addr // self.line_bytes
        if self.hash_sets:
            set_idx = (line ^ (line >> 10) ^ (line >> 5)) % self.n_sets
        else:
            set_idx = line % self.n_sets
        tags = self._sets.get(set_idx)
        if tags is None:
            tags = []
            self._sets[set_idx] = tags
        if line in tags:
            tags.remove(line)
            tags.append(line)
            self.hits += 1
            return True
        tags.append(line)
        if len(tags) > self.assoc:
            tags.pop(0)
        self.misses += 1
        return False

    def access(self, addrs: np.ndarray) -> np.ndarray:
        """Access a sequence of addresses in order; returns hit mask.

        Long traces run on the batch way-matrix engine — warm caches
        seed the engine's initial state, and the final state is written
        back in full, so mixing batch and per-access calls stays exact.
        ``access_one`` is the scalar oracle.
        """
        if addrs.size >= 4096:
            hits = self._access_batch(np.asarray(addrs))
            if hits is not None:
                telemetry.count("gpusim.cache.dispatch.batch")
                return hits
        telemetry.count("gpusim.cache.dispatch.scalar")
        out = np.empty(addrs.size, dtype=bool)
        one = self.access_one
        for i, a in enumerate(addrs.tolist()):
            out[i] = one(a)
        return out

    def _access_batch(self, addrs: np.ndarray) -> Optional[np.ndarray]:
        from repro.analytics.cache import (
            EMPTY_LINE,
            batch_worthwhile,
            partition_by_set,
            simulate_lru_sets,
        )

        lines = (addrs.astype(np.int64)) // self.line_bytes
        if self.hash_sets:
            set_idx = (lines ^ (lines >> 10) ^ (lines >> 5)) % self.n_sets
        else:
            set_idx = lines % self.n_sets
        part = partition_by_set(set_idx)
        if not batch_worthwhile(lines.size, part.counts):
            return None
        init_ways = None
        init_lengths = None
        if self._sets:
            # Seed the way matrix with the warm per-set LRU lists
            # (scalar lists are MRU-last; way rows are MRU-first).
            init_ways = np.full(
                (part.n_groups, self.assoc), EMPTY_LINE, dtype=np.int64
            )
            init_lengths = np.zeros(part.n_groups, dtype=np.int64)
            for g, sid in enumerate(part.set_ids.tolist()):
                tags = self._sets.get(sid)
                if tags:
                    init_ways[g, : len(tags)] = tags[::-1]
                    init_lengths[g] = len(tags)
        res = simulate_lru_sets(
            lines[part.order], part.starts, part.counts, self.assoc,
            need_hits=True,
            init_ways=init_ways, init_lengths=init_lengths,
        )
        n_miss = int(res.miss_per_group.sum())
        self.misses += n_miss
        self.hits += int(lines.size) - n_miss
        for g in range(part.n_groups):
            length = int(res.lengths[g])
            if length:
                # Way rows are MRU-first; the scalar lists are MRU-last.
                self._sets[int(part.set_ids[g])] = [
                    int(line) for line in res.ways[g, :length][::-1]
                ]
        hits = np.empty(lines.size, dtype=bool)
        hits[part.order] = res.hits_sorted
        return hits

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        n = self.accesses
        return self.hits / n if n else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def clone_empty(self) -> "CacheModel":
        """A fresh cache of identical geometry."""
        return CacheModel(
            self.size_bytes, self.assoc, self.line_bytes, self.hash_sets
        )
