"""Warp-masked SIMT kernel DSL.

Kernels are Python functions ``kernel(ctx, *args)`` invoked once per
thread block.  ``ctx`` carries one numpy lane per thread; divergent
control flow is expressed with structured constructs that maintain an
active-lane mask exactly as a SIMT reconvergence stack would for
structured code:

    with ctx.masked(cond):          # if (cond) { ... }
        ...
    for _ in ctx.while_(lambda: i < n):   # while (i < n) { ... }
        ...

Executing a whole block in lockstep is functionally safe for race-free
kernels (it is strictly *more* synchronized than hardware), which makes
``ctx.sync()`` a pure accounting event.  Every charged instruction is
sliced into 32-lane warp chunks for occupancy and issue accounting.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, Optional, Union

import numpy as np

from repro.gpusim.isa import Category, Space, TRANSACTION_BYTES
from repro.gpusim.memory import DeviceArray, bank_conflict_degree, coalesce
from repro.gpusim.trace import LaunchTrace

ArrayLike = Union[np.ndarray, int, float, bool]


class KernelFault(RuntimeError):
    """Raised when an active lane accesses an array out of bounds."""


class BlockCtx:
    """Execution context of one thread block.

    Lane-wise values are numpy arrays of length ``nthreads`` (the flat
    block size); scalars broadcast.  Loads return full-length arrays with
    inactive lanes zeroed; stores ignore inactive lanes.
    """

    WARP = 32

    def __init__(
        self,
        gpu: "repro.gpusim.gpu.GPU",
        launch: LaunchTrace,
        block_idx: int,
        grid: tuple,
        block: tuple,
    ):
        self._gpu = gpu
        self._launch = launch
        self._grid = grid
        self._block = block
        self.nthreads = block[0] * block[1]
        self.bidx = block_idx
        self.bx = block_idx % grid[0]
        self.by = block_idx // grid[0]
        self.tidx = np.arange(self.nthreads)
        self.tx = self.tidx % block[0]
        self.ty = self.tidx // block[0]
        self.gtid = block_idx * self.nthreads + self.tidx
        self.mask = np.ones(self.nthreads, dtype=bool)
        self._n_warps = (self.nthreads + self.WARP - 1) // self.WARP
        self._pad = self._n_warps * self.WARP - self.nthreads
        self._shared_bytes = 0

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    @property
    def gdim(self) -> tuple:
        return self._grid

    @property
    def bdim(self) -> tuple:
        return self._block

    @property
    def gx(self) -> np.ndarray:
        """Global x coordinate for 2-D grids/blocks."""
        return self.bx * self._block[0] + self.tx

    @property
    def gy(self) -> np.ndarray:
        return self.by * self._block[1] + self.ty

    # ------------------------------------------------------------------
    # Accounting primitives
    # ------------------------------------------------------------------
    def _warp_actives(self, mask: Optional[np.ndarray] = None) -> np.ndarray:
        m = self.mask if mask is None else mask
        if self._pad:
            m = np.concatenate([m, np.zeros(self._pad, dtype=bool)])
        return m.reshape(self._n_warps, self.WARP).sum(axis=1)

    def _charge(self, category: Category, repeat: int = 1) -> np.ndarray:
        """Charge one instruction at the current mask; returns warp actives."""
        actives = self._warp_actives()
        self._launch.charge_warps(category, actives, repeat)
        return actives

    def alu(self, n: int = 1) -> None:
        """Charge ``n`` arithmetic instructions at the current mask."""
        if n > 0 and self.mask.any():
            self._charge(Category.ALU, repeat=n)

    def branch(self) -> None:
        if self.mask.any():
            self._charge(Category.BRANCH)

    def sync(self) -> None:
        """__syncthreads(): accounting only (blocks run in lockstep)."""
        self._launch.charge_warps(
            Category.SYNC, self._warp_actives(np.ones(self.nthreads, dtype=bool))
        )

    # ------------------------------------------------------------------
    # Values
    # ------------------------------------------------------------------
    def const(self, value: ArrayLike, dtype=None) -> np.ndarray:
        """Broadcast a scalar (or pass through an array) to lane width."""
        arr = np.asarray(value, dtype=dtype)
        if arr.ndim == 0:
            arr = np.full(self.nthreads, arr)
        if arr.shape != (self.nthreads,):
            raise ValueError(f"lane value must have shape ({self.nthreads},)")
        return arr

    def select(self, cond: np.ndarray, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        """Predicated select (charges one ALU instruction)."""
        self.alu(1)
        return np.where(cond, a, b)

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------
    @contextmanager
    def masked(self, cond: np.ndarray):
        """Structured if: body executes with ``mask & cond`` active."""
        cond = np.asarray(cond, dtype=bool)
        self.branch()
        saved = self.mask
        self.mask = saved & cond
        try:
            yield self.mask.any()
        finally:
            self.mask = saved

    def if_else(self, cond: np.ndarray, then_fn: Callable, else_fn: Callable) -> None:
        """If/else with both sides serialized, as SIMT hardware does."""
        cond = np.asarray(cond, dtype=bool)
        with self.masked(cond):
            then_fn()
        with self.masked(~cond):
            else_fn()

    def while_(self, cond_fn: Callable[[], np.ndarray]) -> Iterator[int]:
        """Structured loop: iterate while any lane's condition holds.

        Lanes whose condition becomes false are masked off for the rest
        of the loop (no ``continue``-style re-entry), matching structured
        SIMT reconvergence.
        """
        saved = self.mask.copy()
        active = saved.copy()
        iteration = 0
        try:
            while True:
                self.mask = active
                self.branch()
                cond = np.asarray(cond_fn(), dtype=bool)
                active = active & cond
                if not active.any():
                    break
                self.mask = active
                yield iteration
                active = active & self.mask  # lanes may self-mask via break_()
                iteration += 1
        finally:
            self.mask = saved

    def range_(self, n: Union[int, np.ndarray]) -> Iterator[int]:
        """Counted loop with a per-lane (or scalar) trip count."""
        counts = self.const(n, dtype=np.int64)
        i = {"v": 0}

        def cond():
            return i["v"] < counts

        for it in self.while_(cond):
            yield it
            i["v"] += 1

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def shared(self, shape, dtype=np.float32, name: str = "") -> DeviceArray:
        """Allocate per-block shared memory (zero-initialized)."""
        arr = self._gpu._alloc_shared(shape, dtype, name)
        self._shared_bytes += arr.nbytes
        self._launch.shared_bytes_per_block = max(
            self._launch.shared_bytes_per_block, self._shared_bytes
        )
        return arr

    def _active_addrs(self, arr: DeviceArray, idx: np.ndarray) -> tuple:
        """Validated lane indices: (full idx, active mask, active indices).

        Byte addresses are *not* computed here — accounting derives them
        per 32-lane warp in :meth:`_warp_addr_chunks`.
        """
        idx = self.const(idx, dtype=np.int64)
        active = self.mask
        act_idx = idx[active]
        if act_idx.size and (act_idx.min() < 0 or act_idx.max() >= arr.size):
            bad = act_idx[(act_idx < 0) | (act_idx >= arr.size)][0]
            raise KernelFault(
                f"lane index {bad} out of bounds for {arr.name} (size {arr.size})"
            )
        return idx, active, act_idx

    def _warp_addr_chunks(
        self, arr: DeviceArray, idx: np.ndarray, active: np.ndarray
    ) -> Iterator[np.ndarray]:
        """Active lane addresses, one array per live 32-lane warp."""
        for w in range(self._n_warps):
            lo = w * self.WARP
            hi = min(lo + self.WARP, self.nthreads)
            m = active[lo:hi]
            if m.any():
                yield arr.base + idx[lo:hi][m] * arr.itemsize

    def _account_mem(
        self, arr: DeviceArray, idx: np.ndarray, active: np.ndarray, is_store: bool
    ) -> None:
        """Charge one memory instruction; coalescing, bank conflicts, and
        broadcast detection all operate per 32-lane warp, as hardware does."""
        launch = self._launch
        # Address generation: real kernels spend roughly one integer
        # instruction computing each access's address.
        self._charge(Category.ALU)
        actives = self._charge(Category.MEM)
        n_warps = int((actives > 0).sum())
        launch.charge_mem_space(arr.space, n_warps)
        space = arr.space
        if space in (Space.GLOBAL, Space.LOCAL):
            for wa in self._warp_addr_chunks(arr, idx, active):
                launch.record_transactions(coalesce(wa), self.bidx, is_store)
        elif space == Space.SHARED:
            for wa in self._warp_addr_chunks(arr, idx, active):
                degree = bank_conflict_degree(wa)
                if degree > 1:
                    launch.shared_replays += degree - 1
        elif space == Space.CONST:
            for wa in self._warp_addr_chunks(arr, idx, active):
                launch.const_accesses += wa.size
                uniq = np.unique(wa // 64)
                if uniq.size > 1:
                    launch.const_serializations += uniq.size - 1
                hits = self._gpu.const_cache.access(uniq * 64)
                misses = int((~hits).sum())
                launch.const_hits += wa.size - misses
                launch.record_transactions((uniq * 64)[~hits], self.bidx, False)
        elif space == Space.TEX:
            for wa in self._warp_addr_chunks(arr, idx, active):
                tx = coalesce(wa)
                launch.tex_accesses += wa.size
                hits = self._gpu.tex_cache.access(tx)
                launch.tex_hits += wa.size - int((~hits).sum())
                launch.record_transactions(tx[~hits], self.bidx, False)
        # PARAM: always treated as a cache hit (paper, Fig. 2 caption).

    def load(self, arr: DeviceArray, idx: ArrayLike) -> np.ndarray:
        """Per-lane gather from a device array (masked)."""
        if not self.mask.any():
            return np.zeros(self.nthreads, dtype=arr.dtype)
        idx, active, act_idx = self._active_addrs(arr, idx)
        self._account_mem(arr, idx, active, is_store=False)
        out = np.zeros(self.nthreads, dtype=arr.dtype)
        out[active] = arr.data.flat[act_idx]
        return out

    def store(self, arr: DeviceArray, idx: ArrayLike, values: ArrayLike) -> None:
        """Per-lane scatter to a device array (masked)."""
        if not self.mask.any():
            return
        idx, active, act_idx = self._active_addrs(arr, idx)
        self._account_mem(arr, idx, active, is_store=True)
        vals = self.const(values, dtype=arr.dtype)
        arr.data.flat[act_idx] = vals[active]

    def atomic_add(self, arr: DeviceArray, idx: ArrayLike, values: ArrayLike) -> None:
        """Atomic add (correct under duplicate lane indices)."""
        if not self.mask.any():
            return
        idx, active, act_idx = self._active_addrs(arr, idx)
        self._account_mem(arr, idx, active, is_store=True)
        vals = self.const(values, dtype=arr.dtype)
        np.add.at(arr.data.reshape(-1), act_idx, vals[active])

    # ------------------------------------------------------------------
    # Common kernel idioms
    # ------------------------------------------------------------------
    def block_reduce_sum(self, values: np.ndarray, smem: DeviceArray) -> float:
        """Tree reduction over the block through shared memory.

        Reproduces the classic halving pattern whose shrinking active set
        the paper highlights for Back Propagation (Section III-B).
        Returns the block total (a host scalar); ``smem`` must have at
        least ``nthreads`` elements.
        """
        self.store(smem, self.tidx, values)
        stride = self.nthreads // 2
        while stride >= 1:
            self.sync()
            with self.masked(self.tidx < stride):
                a = self.load(smem, self.tidx)
                b = self.load(smem, self.tidx + stride)
                self.alu(1)
                self.store(smem, self.tidx, a + b)
            stride //= 2
        return float(smem.data.flat[0])
