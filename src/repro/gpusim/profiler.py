"""Hardware-style performance-counter profiler for the simulated GPU.

The timing model (:mod:`repro.gpusim.timing`) computes a rich
issue/bandwidth/latency decomposition, cache-filter ladder, and
bank-conflict accounting for every launch — and then reports only the
final cycle count.  This module keeps the intermediates, the way Nsight
Compute keeps SM counters next to kernel durations:

- :class:`CounterSet` — one launch's counters: issued warp instructions,
  SIMD issue slots, shared-memory replays, constant serializations, the
  L1/L2/tex/const hit ladder, DRAM transactions and bytes per channel,
  coalescing efficiency, residency (warps/CTAs/waves), and a
  **stall-attribution** split of the launch's body cycles into
  issue/bandwidth/latency components that sums *bit-exactly* to
  ``LaunchTiming.body_cycles``.
- :class:`KernelRollup` / :class:`AppProfile` — per-kernel and per-app
  aggregation with hot-kernel tables, stall mixes, and a roofline
  classification (arithmetic intensity against the machine balance).
- :func:`profile_trace` — produce an :class:`AppProfile` from a
  functional trace; timing numbers are bit-identical to
  ``TimingModel.time`` because both share ``TimingModel._price``.

Counters derive deterministically from ``(trace, config)``, so the
scalar and block-batched execution engines — whose traces are already
bit-identical — yield identical CounterSets, and the fidelity drift gate
can pin them with the same tolerance machinery as figure data
(``gpuprof/`` family in :mod:`repro.fidelity.drift`).
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from repro import telemetry
from repro.common.tables import Table
from repro.gpusim.config import GPUConfig
from repro.gpusim.isa import TRANSACTION_BYTES
from repro.gpusim.trace import KernelTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gpusim.timing import TimingModel

#: Canonical component order.  Every exactness guarantee in this module
#: is stated over the left-to-right float sum in THIS order; reordering
#: changes rounding and breaks the bit-exact invariant.
STALL_COMPONENTS = ("issue", "bandwidth", "latency")


def cycles_per_transaction(config: GPUConfig) -> float:
    """Core cycles one DRAM transaction occupies its channel.

    Matches ``TimingModel._busy_from_counts`` term-for-term: a channel
    moves ``bus_width_bytes * 2`` bytes per memory clock (DDR), scaled
    into the core clock domain.
    """
    return (
        TRANSACTION_BYTES
        / (config.bus_width_bytes * 2)
        * (config.core_clock_ghz / config.mem_clock_ghz)
    )


def machine_balance(config: GPUConfig) -> float:
    """Roofline ridge point, in thread instructions per DRAM byte.

    Peak issue throughput is ``n_sms * simd_width`` thread instructions
    per core cycle; peak memory throughput is ``peak_bandwidth_gbs``
    converted to bytes per core cycle.  Kernels whose arithmetic
    intensity exceeds this balance cannot be limited by DRAM bandwidth.
    """
    peak_ipc = config.n_sms * config.simd_width
    bytes_per_cycle = config.peak_bandwidth_gbs / config.core_clock_ghz
    return peak_ipc / bytes_per_cycle if bytes_per_cycle else float("inf")


def attribute_stalls(
    issue_cycles: float,
    bandwidth_cycles: float,
    latency_cycles: float,
    body_cycles: float,
    bound: str,
) -> Dict[str, float]:
    """Split a launch's body cycles across the three stall components.

    Each component receives a share proportional to its standalone
    demand, so the report reads "of the launch's N cycles, X were
    issue, Y bandwidth, Z latency".  The split is *exact by
    construction*: ``out["issue"] + out["bandwidth"] + out["latency"]``
    (left-to-right, in :data:`STALL_COMPONENTS` order) equals
    ``body_cycles`` bit-for-bit.  Proportional shares are rounded
    floats, so a residual-correction loop folds any rounding remainder
    into the binding component; in the (never observed) event that four
    corrections do not converge, the whole body is attributed to
    ``bound`` — a sum of ``body + 0.0 + 0.0`` is always exact.
    """
    out = {c: 0.0 for c in STALL_COMPONENTS}
    if body_cycles == 0.0:
        return out
    demand = issue_cycles + bandwidth_cycles + latency_cycles
    if demand > 0.0:
        out["issue"] = body_cycles * (issue_cycles / demand)
        out["bandwidth"] = body_cycles * (bandwidth_cycles / demand)
        out["latency"] = body_cycles * (latency_cycles / demand)
        for _ in range(4):
            resid = body_cycles - (
                out["issue"] + out["bandwidth"] + out["latency"]
            )
            if resid == 0.0:
                return out
            out[bound] += resid
    out = {c: 0.0 for c in STALL_COMPONENTS}
    out[bound] = body_cycles
    return out


@dataclasses.dataclass(frozen=True)
class CounterSet:
    """One launch's hardware-style counters (see module docstring).

    ``stalls`` maps :data:`STALL_COMPONENTS` to cycles and sums
    bit-exactly to ``body_cycles``; ``cycles`` is always
    ``launch_overhead + body_cycles`` in the model's own float order.
    """

    kernel_name: str
    launch_index: int
    # --- shape / residency ------------------------------------------
    n_blocks: int
    threads_per_block: int
    resident_ctas: int
    resident_warps: int
    waves: int
    effective_sms: int
    # --- issue ladder -----------------------------------------------
    thread_insts: int
    issued_warp_insts: int
    simd_slots: float
    shared_replays: int
    const_serializations: int
    # --- memory ladder ----------------------------------------------
    tex_accesses: int
    tex_hits: int
    const_accesses: int
    const_hits: int
    l1_accesses: int
    l1_hits: int
    l2_accesses: int
    l2_hits: int
    global_warp_insts: int
    mem_transactions: int
    dram_transactions: int
    dram_bytes: int
    channel_transactions: Tuple[int, ...]
    # --- timing ------------------------------------------------------
    cycles: float
    body_cycles: float
    issue_cycles: float
    bandwidth_cycles: float
    latency_cycles: float
    stalls: Dict[str, float]
    bound: str
    bound_margin: float
    # --- roofline ----------------------------------------------------
    arithmetic_intensity: float
    roofline: str

    # ------------------------------------------------------------------
    @property
    def coalescing_efficiency(self) -> float:
        """Off-chip warp accesses per generated transaction (≤ 1.0).

        1.0 means every global/local warp access coalesced into a
        single transaction; scattered access patterns push it toward
        ``1 / warp_size``.  Launches with no off-chip traffic score 1.0.
        """
        if self.mem_transactions == 0:
            return 1.0
        return min(1.0, self.global_warp_insts / self.mem_transactions)

    @property
    def l1_hit_rate(self) -> float:
        return self.l1_hits / self.l1_accesses if self.l1_accesses else 0.0

    @property
    def l2_hit_rate(self) -> float:
        return self.l2_hits / self.l2_accesses if self.l2_accesses else 0.0

    @property
    def tex_hit_rate(self) -> float:
        return self.tex_hits / self.tex_accesses if self.tex_accesses else 0.0

    @property
    def const_hit_rate(self) -> float:
        return (
            self.const_hits / self.const_accesses if self.const_accesses else 0.0
        )

    @property
    def max_channel_transactions(self) -> int:
        return max(self.channel_transactions, default=0)

    def stall_mix(self) -> Dict[str, float]:
        """Stall cycles as fractions of body cycles (0.0 when empty)."""
        if self.body_cycles == 0.0:
            return {c: 0.0 for c in STALL_COMPONENTS}
        return {c: self.stalls[c] / self.body_cycles for c in STALL_COMPONENTS}

    def as_dict(self) -> Dict[str, object]:
        """Flat, deterministic view — the unit of drift-gating and of
        the scalar-vs-batched identity test."""
        d = dataclasses.asdict(self)
        d["channel_transactions"] = list(self.channel_transactions)
        d["coalescing_efficiency"] = self.coalescing_efficiency
        d["l1_hit_rate"] = self.l1_hit_rate
        d["l2_hit_rate"] = self.l2_hit_rate
        d["tex_hit_rate"] = self.tex_hit_rate
        d["const_hit_rate"] = self.const_hit_rate
        return d


@dataclasses.dataclass
class KernelRollup:
    """All launches of one kernel, aggregated."""

    kernel_name: str
    launches: int = 0
    cycles: float = 0.0
    body_cycles: float = 0.0
    stalls: Dict[str, float] = dataclasses.field(
        default_factory=lambda: {c: 0.0 for c in STALL_COMPONENTS}
    )
    thread_insts: int = 0
    issued_warp_insts: int = 0
    dram_transactions: int = 0
    dram_bytes: int = 0
    bound_cycles: Dict[str, float] = dataclasses.field(
        default_factory=lambda: {c: 0.0 for c in STALL_COMPONENTS}
    )

    def add(self, cs: CounterSet) -> None:
        self.launches += 1
        self.cycles += cs.cycles
        self.body_cycles += cs.body_cycles
        for c in STALL_COMPONENTS:
            self.stalls[c] += cs.stalls[c]
        self.thread_insts += cs.thread_insts
        self.issued_warp_insts += cs.issued_warp_insts
        self.dram_transactions += cs.dram_transactions
        self.dram_bytes += cs.dram_bytes
        self.bound_cycles[cs.bound] += cs.cycles

    @property
    def bound(self) -> str:
        """Cycle-weighted dominant bottleneck (STALL_COMPONENTS order
        breaks ties, consistent with ``classify_bound`` precedence)."""
        best = max(self.bound_cycles.values())
        for c in ("issue", "latency", "bandwidth"):
            if self.bound_cycles[c] == best:
                return c
        return "issue"  # pragma: no cover - unreachable

    @property
    def arithmetic_intensity(self) -> float:
        return self.thread_insts / max(self.dram_bytes, 1)

    def stall_mix(self) -> Dict[str, float]:
        if self.body_cycles == 0.0:
            return {c: 0.0 for c in STALL_COMPONENTS}
        return {c: self.stalls[c] / self.body_cycles for c in STALL_COMPONENTS}


@dataclasses.dataclass
class AppProfile:
    """Profile of one application run under one configuration."""

    app_name: str
    config: GPUConfig
    counters: List[CounterSet]

    @property
    def total_cycles(self) -> float:
        return sum(cs.cycles for cs in self.counters)

    @property
    def thread_insts(self) -> int:
        return sum(cs.thread_insts for cs in self.counters)

    @property
    def dram_bytes(self) -> int:
        return sum(cs.dram_bytes for cs in self.counters)

    def kernels(self) -> Dict[str, KernelRollup]:
        """Per-kernel rollups, in first-launch order."""
        out: Dict[str, KernelRollup] = {}
        for cs in self.counters:
            roll = out.get(cs.kernel_name)
            if roll is None:
                roll = out[cs.kernel_name] = KernelRollup(cs.kernel_name)
            roll.add(cs)
        return out

    def hot_kernels(self, n: int = 3) -> List[KernelRollup]:
        """The ``n`` kernels with the most cycles, hottest first.

        Ties broken by first-launch order, so the ranking is stable.
        """
        rolls = list(self.kernels().values())
        rolls.sort(key=lambda r: -r.cycles)
        return rolls[:n]

    def stall_mix(self) -> Dict[str, float]:
        """App-wide stall fractions over summed body cycles."""
        total = sum(cs.body_cycles for cs in self.counters)
        if total == 0.0:
            return {c: 0.0 for c in STALL_COMPONENTS}
        return {
            c: sum(cs.stalls[c] for cs in self.counters) / total
            for c in STALL_COMPONENTS
        }

    def roofline(self) -> str:
        """App-level roofline class from aggregate arithmetic intensity."""
        ai = self.thread_insts / max(self.dram_bytes, 1)
        return "compute" if ai >= machine_balance(self.config) else "bandwidth"

    # ------------------------------------------------------------------
    def kernel_table(self) -> Table:
        """Per-kernel stall attribution + roofline (the --gpu-profile
        report body)."""
        t = Table(
            f"{self.app_name}: per-kernel stall attribution "
            f"({self.config.name})",
            [
                "kernel", "launches", "cycles", "cyc%",
                "issue%", "bw%", "lat%", "bound", "margin%",
                "AI", "roofline",
            ],
        )
        total = self.total_cycles or 1.0
        balance = machine_balance(self.config)
        margins: Dict[str, float] = {}
        bodies: Dict[str, float] = {}
        for cs in self.counters:
            margins[cs.kernel_name] = margins.get(cs.kernel_name, 0.0) + (
                cs.bound_margin
            )
            bodies[cs.kernel_name] = bodies.get(cs.kernel_name, 0.0) + (
                cs.body_cycles
            )
        for roll in self.hot_kernels(n=len(self.kernels())):
            mix = roll.stall_mix()
            margin_pct = (
                100.0 * margins[roll.kernel_name] / bodies[roll.kernel_name]
                if bodies[roll.kernel_name]
                else 0.0
            )
            t.add_row([
                roll.kernel_name,
                roll.launches,
                roll.cycles,
                100.0 * roll.cycles / total,
                100.0 * mix["issue"],
                100.0 * mix["bandwidth"],
                100.0 * mix["latency"],
                roll.bound,
                margin_pct,
                roll.arithmetic_intensity,
                "compute" if roll.arithmetic_intensity >= balance else "bandwidth",
            ])
        return t

    def counter_table(self) -> Table:
        """Per-kernel counter ladder (the raw-counter half of the
        report)."""
        t = Table(
            f"{self.app_name}: counter sets ({self.config.name})",
            [
                "kernel", "warp_insts", "simd_slots", "replays",
                "const_ser", "l1_hit%", "l2_hit%", "coalesce",
                "dram_tx", "dram_MB", "warps", "waves",
            ],
        )
        agg: Dict[str, Dict[str, float]] = {}
        order: List[str] = []
        for cs in self.counters:
            a = agg.get(cs.kernel_name)
            if a is None:
                a = agg[cs.kernel_name] = {
                    "warp_insts": 0, "simd_slots": 0.0, "replays": 0,
                    "const_ser": 0, "l1_a": 0, "l1_h": 0, "l2_a": 0,
                    "l2_h": 0, "gwi": 0, "mem_tx": 0, "dram_tx": 0,
                    "dram_b": 0, "warps": 0, "waves": 0, "n": 0,
                }
                order.append(cs.kernel_name)
            a["warp_insts"] += cs.issued_warp_insts
            a["simd_slots"] += cs.simd_slots
            a["replays"] += cs.shared_replays
            a["const_ser"] += cs.const_serializations
            a["l1_a"] += cs.l1_accesses
            a["l1_h"] += cs.l1_hits
            a["l2_a"] += cs.l2_accesses
            a["l2_h"] += cs.l2_hits
            a["gwi"] += cs.global_warp_insts
            a["mem_tx"] += cs.mem_transactions
            a["dram_tx"] += cs.dram_transactions
            a["dram_b"] += cs.dram_bytes
            a["warps"] = max(a["warps"], cs.resident_warps)
            a["waves"] += cs.waves
            a["n"] += 1
        for name in order:
            a = agg[name]
            coalesce = (
                min(1.0, a["gwi"] / a["mem_tx"]) if a["mem_tx"] else 1.0
            )
            t.add_row([
                name,
                int(a["warp_insts"]),
                a["simd_slots"],
                int(a["replays"]),
                int(a["const_ser"]),
                100.0 * a["l1_h"] / a["l1_a"] if a["l1_a"] else 0.0,
                100.0 * a["l2_h"] / a["l2_a"] if a["l2_a"] else 0.0,
                coalesce,
                int(a["dram_tx"]),
                a["dram_b"] / 1e6,
                int(a["warps"]),
                int(a["waves"]),
            ])
        return t

    # ------------------------------------------------------------------
    def metrics(self) -> Dict[str, float]:
        """Flat drift-gateable metrics, keyed ``gpuprof/<app>/...``.

        Per-kernel rollup counters plus app totals; every value is a
        finite float so the registry's strict JSON round-trips.
        """
        out: Dict[str, float] = {}
        app = self.app_name
        for name, roll in self.kernels().items():
            base = f"gpuprof/{app}/{name}"
            mix = roll.stall_mix()
            out[f"{base}/cycles"] = float(roll.cycles)
            out[f"{base}/body_cycles"] = float(roll.body_cycles)
            out[f"{base}/stall_issue"] = float(roll.stalls["issue"])
            out[f"{base}/stall_bandwidth"] = float(roll.stalls["bandwidth"])
            out[f"{base}/stall_latency"] = float(roll.stalls["latency"])
            out[f"{base}/issue_frac"] = float(mix["issue"])
            out[f"{base}/issued_warp_insts"] = float(roll.issued_warp_insts)
            out[f"{base}/dram_transactions"] = float(roll.dram_transactions)
            out[f"{base}/dram_bytes"] = float(roll.dram_bytes)
            out[f"{base}/arithmetic_intensity"] = float(
                roll.arithmetic_intensity
            )
        out[f"gpuprof/{app}/total/cycles"] = float(self.total_cycles)
        out[f"gpuprof/{app}/total/thread_insts"] = float(self.thread_insts)
        out[f"gpuprof/{app}/total/dram_bytes"] = float(self.dram_bytes)
        out[f"gpuprof/{app}/total/launches"] = float(len(self.counters))
        return out


# ----------------------------------------------------------------------
def profile_trace(trace: KernelTrace, model: "TimingModel") -> AppProfile:
    """Profile every launch of ``trace`` under ``model``'s config.

    Pure function of ``(trace, model.config)``: identical traces (the
    scalar/batched engines guarantee this) give identical profiles.
    """
    cfg = model.config
    balance = machine_balance(cfg)
    counters: List[CounterSet] = []
    with telemetry.span(
        "gpu_profile", app=trace.app_name, launches=trace.n_launches
    ):
        for i, launch in enumerate(trace.launches):
            timing, detail = model._price(launch)
            stalls = attribute_stalls(
                timing.issue_cycles,
                timing.bandwidth_cycles,
                timing.latency_cycles,
                timing.body_cycles,
                timing.bound,
            )
            ladder = detail.ladder
            ai = launch.thread_insts / max(timing.dram_bytes, 1)
            counters.append(CounterSet(
                kernel_name=launch.kernel_name,
                launch_index=i,
                n_blocks=launch.n_blocks,
                threads_per_block=launch.threads_per_block,
                resident_ctas=detail.actual_ctas,
                resident_warps=detail.actual_warps,
                waves=detail.waves,
                effective_sms=detail.effective_sms,
                thread_insts=launch.thread_insts,
                issued_warp_insts=launch.issued_warp_insts,
                simd_slots=detail.issue_slots,
                shared_replays=launch.shared_replays,
                const_serializations=launch.const_serializations,
                tex_accesses=launch.tex_accesses,
                tex_hits=launch.tex_hits,
                const_accesses=launch.const_accesses,
                const_hits=launch.const_hits,
                l1_accesses=ladder.l1_accesses,
                l1_hits=ladder.l1_hits,
                l2_accesses=ladder.l2_accesses,
                l2_hits=ladder.l2_hits,
                global_warp_insts=launch.global_warp_insts,
                mem_transactions=launch.n_transactions,
                dram_transactions=ladder.dram_transactions,
                dram_bytes=timing.dram_bytes,
                channel_transactions=tuple(
                    int(c) for c in detail.channel_counts
                ),
                cycles=timing.cycles,
                body_cycles=timing.body_cycles,
                issue_cycles=timing.issue_cycles,
                bandwidth_cycles=timing.bandwidth_cycles,
                latency_cycles=timing.latency_cycles,
                stalls=stalls,
                bound=timing.bound,
                bound_margin=timing.bound_margin,
                arithmetic_intensity=ai,
                roofline="compute" if ai >= balance else "bandwidth",
            ))
        telemetry.count("gpusim.profile.launches", len(counters))
    return AppProfile(app_name=trace.app_name, config=cfg, counters=counters)


# ----------------------------------------------------------------------
def suite_table(profiles: Sequence[AppProfile]) -> Table:
    """One row per app: hottest kernel, stall mix, roofline class."""
    t = Table(
        "GPU profile: per-app hot kernels and stall mix",
        [
            "app", "launches", "cycles", "hot_kernel", "hot%",
            "issue%", "bw%", "lat%", "roofline",
        ],
    )
    for p in profiles:
        hot = p.hot_kernels(1)
        hot_name = hot[0].kernel_name if hot else "-"
        hot_pct = (
            100.0 * hot[0].cycles / p.total_cycles
            if hot and p.total_cycles
            else 0.0
        )
        mix = p.stall_mix()
        t.add_row([
            p.app_name,
            len(p.counters),
            p.total_cycles,
            hot_name,
            hot_pct,
            100.0 * mix["issue"],
            100.0 * mix["bandwidth"],
            100.0 * mix["latency"],
            p.roofline(),
        ])
    return t


def suite_metrics(profiles: Sequence[AppProfile]) -> Dict[str, float]:
    """Merged drift-gateable metrics of several app profiles."""
    out: Dict[str, float] = {}
    for p in profiles:
        out.update(p.metrics())
    return out
