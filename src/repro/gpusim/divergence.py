"""Branch-divergence characterization (paper future work, Section VII).

The paper lists "more detailed characterizations on the Rodinia GPU
implementations, such as branch divergence sensitivity" as future work.
This module derives divergence metrics from a kernel trace's occupancy
histogram and branch counts, and prices the *counterfactual* run in
which reconvergence is perfect (every instruction issues with full
warps) — an upper bound on what divergence-mitigation hardware (dynamic
warp formation, thread-block compaction) could recover.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

import numpy as np

from repro.gpusim.config import GPUConfig
from repro.gpusim.isa import Category
from repro.gpusim.timing import TimingModel, TimingResult
from repro.gpusim.trace import KernelTrace, LaunchTrace


@dataclasses.dataclass
class DivergenceStats:
    """Divergence profile of one application run.

    ``memory_divergence`` is the companion metric for the memory system:
    off-chip transactions per global/local memory warp instruction.  A
    fully coalesced float32 access costs 2 transactions per warp; a
    fully scattered one costs up to 32.
    """

    simd_efficiency: float        # thread insts / (warp insts * warp size)
    branch_fraction: float        # branch warp insts / all warp insts
    mean_active: float            # mean active lanes per issued warp
    frac_warps_underfilled: float  # issued warps with < warp_size lanes
    divergence_speedup_bound: float  # perfect-reconvergence speedup
    memory_divergence: float = 0.0   # transactions per off-chip warp inst

    def as_dict(self) -> Dict[str, float]:
        return dataclasses.asdict(self)


def _counterfactual_trace(trace: KernelTrace) -> KernelTrace:
    """A copy of the trace with every warp instruction fully packed.

    Thread instructions are preserved; issued warp instructions shrink to
    ``ceil(thread_insts / warp_size)`` per launch, modeling perfect lane
    compaction.  Memory transactions are left untouched (compaction does
    not reduce the data the kernel must move).
    """
    packed = KernelTrace(trace.app_name + "+packed")
    for lt in trace.launches:
        nlt = packed.new_launch(lt.kernel_name, lt.grid, lt.block,
                                lt.regs_per_thread)
        nlt.shared_bytes_per_block = lt.shared_bytes_per_block
        nlt.shared_replays = lt.shared_replays
        nlt.const_serializations = lt.const_serializations
        nlt.tex_accesses = lt.tex_accesses
        nlt.tex_hits = lt.tex_hits
        nlt.const_accesses = lt.const_accesses
        nlt.const_hits = lt.const_hits
        nlt.mem_warp_insts = dict(lt.mem_warp_insts)
        scale = (
            lt.thread_insts / (lt.issued_warp_insts * 32)
            if lt.issued_warp_insts else 1.0
        )
        for cat, count in lt.category_warp_insts.items():
            packed_count = int(np.ceil(count * scale))
            nlt.category_warp_insts[cat] = packed_count
        nlt.issued_warp_insts = sum(nlt.category_warp_insts.values())
        nlt.thread_insts = lt.thread_insts
        full = nlt.issued_warp_insts
        nlt.occupancy_hist = np.zeros(32, dtype=np.int64)
        nlt.occupancy_hist[31] = full
        for addrs, blocks, stores in lt.iter_transaction_chunks():
            nlt.record_transaction_stream(addrs, blocks, stores)
    return packed


def analyze_divergence(
    trace: KernelTrace, config: GPUConfig | None = None
) -> DivergenceStats:
    """Divergence metrics plus the perfect-reconvergence speedup bound."""
    config = config or GPUConfig.sim_default()
    hist = trace.occupancy_hist
    issued = int(hist.sum())
    if issued == 0:
        return DivergenceStats(1.0, 0.0, 0.0, 0.0, 1.0)
    mean_active = float((hist * np.arange(1, 33)).sum() / issued)
    simd_eff = trace.thread_insts / (trace.issued_warp_insts * 32)
    cat = trace.category_mix()
    underfilled = float(hist[:31].sum() / issued)

    model = TimingModel(config)
    actual = model.time(trace)
    packed = model.time(_counterfactual_trace(trace))
    bound = actual.cycles / packed.cycles if packed.cycles else 1.0

    from repro.gpusim.isa import Space
    offchip_insts = sum(
        lt.mem_warp_insts[Space.GLOBAL] + lt.mem_warp_insts[Space.LOCAL]
        for lt in trace.launches
    )
    mem_div = trace.n_transactions / offchip_insts if offchip_insts else 0.0
    return DivergenceStats(
        simd_efficiency=float(simd_eff),
        branch_fraction=float(cat.get("branch", 0.0)),
        mean_active=mean_active,
        frac_warps_underfilled=underfilled,
        divergence_speedup_bound=float(bound),
        memory_divergence=float(mem_div),
    )


def simd_width_sensitivity(
    trace: KernelTrace, widths=(8, 16, 32)
) -> Dict[int, TimingResult]:
    """Time the trace across SIMD widths (divergence interacts with
    pipeline width: narrow machines waste fewer slots on sparse warps in
    relative terms, but issue everything more slowly)."""
    out = {}
    for w in widths:
        cfg = GPUConfig.sim_default().replace(simd_width=w)
        out[w] = TimingModel(cfg).time(trace)
    return out
