"""SIMT GPU functional + timing simulator (the GPGPU-Sim substitute).

The simulator executes CUDA-style kernels written against a warp-masked
Python DSL (:class:`repro.gpusim.dsl.BlockCtx`), producing a
:class:`repro.gpusim.trace.KernelTrace` of dynamic statistics (issued
warp instructions, occupancy, memory-space mix, coalesced transactions,
bank conflicts).  A trace is timing-independent: the analytic
:class:`repro.gpusim.timing.TimingModel` prices the same trace under any
:class:`repro.gpusim.config.GPUConfig`, including the Fermi-style cached
configurations used for the paper's GTX480 study.
"""

from repro.gpusim.batch import BatchBlockCtx
from repro.gpusim.config import GPUConfig
from repro.gpusim.divergence import DivergenceStats, analyze_divergence
from repro.gpusim.dsl import BlockCtx
from repro.gpusim.gpu import BLOCK_BATCHES, GPU, batch_enabled
from repro.gpusim.isa import Space
from repro.gpusim.memory import DeviceArray
from repro.gpusim.plans import PLAN_ROUTES, clear_plans, plan_enabled
from repro.gpusim.profiler import (
    AppProfile,
    CounterSet,
    KernelRollup,
    attribute_stalls,
    machine_balance,
    profile_trace,
)
from repro.gpusim.timing import (
    ConcurrentTiming,
    LaunchTiming,
    TimingModel,
    TimingResult,
    classify_bound,
)
from repro.gpusim.trace import KernelTrace, LaunchTrace
from repro.gpusim.trace_io import load_trace, save_trace

__all__ = [
    "GPU",
    "GPUConfig",
    "BlockCtx",
    "BatchBlockCtx",
    "BLOCK_BATCHES",
    "batch_enabled",
    "PLAN_ROUTES",
    "plan_enabled",
    "clear_plans",
    "Space",
    "DeviceArray",
    "TimingModel",
    "TimingResult",
    "LaunchTiming",
    "ConcurrentTiming",
    "classify_bound",
    "AppProfile",
    "CounterSet",
    "KernelRollup",
    "attribute_stalls",
    "machine_balance",
    "profile_trace",
    "KernelTrace",
    "LaunchTrace",
    "DivergenceStats",
    "analyze_divergence",
    "save_trace",
    "load_trace",
]
