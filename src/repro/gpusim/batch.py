"""Block-batched SIMT execution engine.

The scalar engine in :mod:`repro.gpusim.gpu` runs a kernel once per
thread block, which costs thousands of Python round-trips for large
grids.  This module executes ``B`` blocks per kernel invocation as
``(B, T)`` lane matrices: divergence masks, loads/stores, and the warp
accounting (coalescing, bank conflicts, const/tex filtering) all operate
on the whole ``(B * n_warps, 32)`` address matrix in a few numpy passes.

Bit-identical traces are guaranteed by *deferring* every order-sensitive
side effect into a per-launch buffer and committing it in sequential
block order at launch end:

- Transaction streams are tagged ``(block, instruction seq)`` during the
  batch and reordered with one stable ``lexsort`` into the exact stream
  the per-block loop records.
- Texture/constant cache accesses are replayed through the (stateful)
  caches in the same sequential-block order, on the batch LRU engine of
  :mod:`repro.analytics.cache`; hit/miss accounting and the resulting
  miss transactions are therefore bit-identical to the scalar oracle.
- Scalar aggregate counters (occupancy histogram, per-category warp
  instructions, replays, serializations) commute and are accumulated
  directly.

Kernels whose *host-side* control flow depends on per-block scalars
(heartwall's per-block task switch, LUD's perimeter row/column split)
raise when those scalars arrive as ``(B, 1)`` arrays; the launch runner
catches the error, restores device memory from copy-on-first-write
backups, and re-runs the launch on the scalar oracle.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

from repro import telemetry
from repro.common.config import config as runtime_config
from repro.gpusim.dsl import BlockCtx
from repro.gpusim.isa import (
    BANK_WORD_BYTES,
    SHARED_BANKS,
    TRANSACTION_BYTES,
    Category,
    Space,
)
from repro.gpusim.memory import DeviceArray
from repro.gpusim.trace import LaunchTrace

#: Address-matrix slot holding no (inactive) lane.  Real addresses are
#: far below this, so sentinel-derived quotients can never collide.
_SENTINEL = np.int64(np.iinfo(np.int64).max)

def batch_lanes() -> int:
    """Lane budget per batch step (``REPRO_GPU_BATCH_LANES``).

    Grids needing more lanes run in sequential chunks of whole blocks
    (preserving the block order the trace commit relies on).
    """
    return runtime_config().gpu_batch_lanes


def _row_unique(amat: np.ndarray, divisor: int) -> Tuple[np.ndarray, np.ndarray]:
    """Sorted unique quotients per row of a sentinel-padded matrix.

    Returns the row-major concatenation of each row's sorted unique
    ``value // divisor`` (exactly ``np.unique`` per row, skipping
    sentinel slots) and the per-row unique counts.
    """
    q = np.where(amat == _SENTINEL, _SENTINEL, amat // divisor)
    s = np.sort(q, axis=1)
    first = s != _SENTINEL
    first[:, 1:] &= s[:, 1:] != s[:, :-1]
    return s[first], first.sum(axis=1)


def _bank_replays(amat: np.ndarray) -> int:
    """Total shared-memory replay count over the (R, 32) address rows.

    Per row: distinct bank-word addresses are binned by bank; the access
    replays ``degree`` times where ``degree`` is the largest bin, so each
    row contributes ``degree - 1`` replays (broadcasts do not conflict).
    """
    words, counts = _row_unique(amat, BANK_WORD_BYTES)
    if words.size == 0:
        return 0
    rows = np.repeat(np.arange(counts.size), counts)
    keys = rows * SHARED_BANKS + words % SHARED_BANKS
    degree = (
        np.bincount(keys, minlength=counts.size * SHARED_BANKS)
        .reshape(counts.size, SHARED_BANKS)
        .max(axis=1)
    )
    return int((degree - 1)[degree > 1].sum())


class BatchSharedArray(DeviceArray):
    """Per-block shared memory for a whole batch: data is ``(B,) + shape``.

    ``base`` (and therefore all address accounting) is the per-block base
    the scalar engine would produce; only the backing buffer is widened.
    ``size`` reports the per-block element count so the DSL bounds check
    validates per-block indices, exactly as the scalar path does.
    """

    def __init__(self, data: np.ndarray, base: int, name: str, block_size: int):
        super().__init__(data, base, Space.SHARED, name)
        self.block_size = block_size

    @property
    def size(self) -> int:  # per-block bounds, not the batched buffer's
        return self.block_size


class LaunchBuffer:
    """Deferred accounting of one batched launch.

    Everything the DSL would record on the :class:`LaunchTrace` (and the
    tex/const caches) is staged here and applied by :meth:`commit` in
    sequential block order — which also makes a mid-launch fallback to
    the scalar engine side-effect free.
    """

    def __init__(self):
        self.issued_warp_insts = 0
        self.thread_insts = 0
        self.category_warp_insts: Dict[Category, int] = {c: 0 for c in Category}
        self.mem_warp_insts: Dict[Space, int] = {s: 0 for s in Space}
        self.occupancy_hist = np.zeros(32, dtype=np.int64)
        self.shared_replays = 0
        self.const_serializations = 0
        self.const_accesses = 0
        self.tex_accesses = 0
        self.shared_bytes_per_block = 0
        # (seq, addrs, blocks, is_store) for global/local instructions;
        # (seq, addrs, blocks) cache-filtered accesses for const/tex.
        self._mem_events: List[Tuple[int, np.ndarray, np.ndarray, bool]] = []
        self._cache_events: Dict[str, List[Tuple[int, np.ndarray, np.ndarray]]] = {
            "const": [],
            "tex": [],
        }
        self._seq = 0

    # -- recording (called by BatchBlockCtx) ---------------------------
    def charge_warps(
        self, category: Category, active_per_warp: np.ndarray, repeat: int = 1
    ) -> None:
        live = active_per_warp[active_per_warp > 0]
        if live.size == 0:
            return
        self.issued_warp_insts += int(live.size) * repeat
        self.thread_insts += int(live.sum()) * repeat
        self.category_warp_insts[category] += int(live.size) * repeat
        np.add.at(self.occupancy_hist, live - 1, repeat)

    def charge_mem_space(self, space: Space, n_warps: int) -> None:
        self.mem_warp_insts[space] += n_warps

    def add_mem_event(
        self, addrs: np.ndarray, blocks: np.ndarray, is_store: bool
    ) -> None:
        self._seq += 1
        if addrs.size:
            self._mem_events.append((self._seq, addrs, blocks, is_store))

    def add_cache_event(
        self, kind: str, addrs: np.ndarray, blocks: np.ndarray
    ) -> None:
        self._seq += 1
        if addrs.size:
            self._cache_events[kind].append((self._seq, addrs, blocks))

    # -- commit --------------------------------------------------------
    def _replay_cache(self, kind: str, cache) -> Tuple[np.ndarray, ...]:
        """Replay one cache's accesses in (block, seq) order; misses out."""
        events = self._cache_events[kind]
        if not events:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.astype(np.int32), empty, 0
        addrs = np.concatenate([e[1] for e in events])
        blocks = np.concatenate([e[2] for e in events])
        seqs = np.repeat(
            np.array([e[0] for e in events], dtype=np.int64),
            np.array([e[1].size for e in events], dtype=np.int64),
        )
        # Events were appended in seq order, so one stable sort by block
        # yields the scalar engine's sequential-block access order.
        order = np.argsort(blocks, kind="stable")
        addrs, blocks, seqs = addrs[order], blocks[order], seqs[order]
        hits = cache.access(addrs)
        miss = ~hits
        return addrs[miss], blocks[miss], seqs[miss], int(miss.sum())

    def commit(self, launch: LaunchTrace, tex_cache, const_cache) -> None:
        const_miss = self._replay_cache("const", const_cache)
        tex_miss = self._replay_cache("tex", tex_cache)

        launch.issued_warp_insts += self.issued_warp_insts
        launch.thread_insts += self.thread_insts
        for cat, n in self.category_warp_insts.items():
            launch.category_warp_insts[cat] += n
        for space, n in self.mem_warp_insts.items():
            launch.mem_warp_insts[space] += n
        launch.occupancy_hist += self.occupancy_hist
        launch.shared_replays += self.shared_replays
        launch.const_serializations += self.const_serializations
        launch.const_accesses += self.const_accesses
        launch.const_hits += self.const_accesses - const_miss[3]
        launch.tex_accesses += self.tex_accesses
        launch.tex_hits += self.tex_accesses - tex_miss[3]
        launch.shared_bytes_per_block = max(
            launch.shared_bytes_per_block, self.shared_bytes_per_block
        )
        launch._version += 1

        # Assemble the off-chip transaction stream: global/local
        # transactions plus const/tex misses, merged into per-block
        # program order by one stable (block, seq) sort.
        addr_parts = [e[1] for e in self._mem_events]
        block_parts = [e[2] for e in self._mem_events]
        seq_parts = [
            np.full(e[1].size, e[0], dtype=np.int64) for e in self._mem_events
        ]
        store_parts = [
            np.full(e[1].size, e[3], dtype=bool) for e in self._mem_events
        ]
        for miss in (const_miss, tex_miss):
            if miss[0].size:
                addr_parts.append(miss[0])
                block_parts.append(miss[1])
                seq_parts.append(miss[2])
                store_parts.append(np.zeros(miss[0].size, dtype=bool))
        if not addr_parts:
            return
        addrs = np.concatenate(addr_parts)
        blocks = np.concatenate(block_parts)
        seqs = np.concatenate(seq_parts)
        stores = np.concatenate(store_parts)
        order = np.lexsort((seqs, blocks))
        # Off-chip transactions committed by the batched path; pairs with
        # the scalar path's per-warp recording so the profiler's counter
        # sets can be cross-checked against live telemetry totals.
        telemetry.count("gpusim.batch.transactions", int(addrs.size))
        launch.record_transaction_stream(
            addrs[order], blocks[order], stores[order]
        )


class BatchBlockCtx(BlockCtx):
    """Execution context of ``B`` thread blocks in lockstep.

    Lane values are ``(B, T)`` matrices; per-block scalars (``bidx``,
    ``bx``, ``by``) are ``(B, 1)`` columns so ordinary lane arithmetic
    broadcasts.  Control flow, masking, and value helpers are inherited
    from :class:`BlockCtx` — they are shape-generic — while accounting
    and memory access are overridden with whole-batch vectorizations
    that stage their effects on a :class:`LaunchBuffer`.
    """

    def __init__(
        self,
        gpu: "repro.gpusim.gpu.GPU",
        buf: LaunchBuffer,
        backups: Dict[int, Tuple[DeviceArray, np.ndarray]],
        block_lo: int,
        n_batch: int,
        grid: tuple,
        block: tuple,
    ):
        self._gpu = gpu
        self._buf = buf
        self._backups = backups
        self._grid = grid
        self._block = block
        self.nthreads = block[0] * block[1]
        self.batch = n_batch
        bcol = (block_lo + np.arange(n_batch))[:, None]
        self.bidx = bcol
        self.bx = bcol % grid[0]
        self.by = bcol // grid[0]
        self.tidx = np.arange(self.nthreads)
        self.tx = self.tidx % block[0]
        self.ty = self.tidx // block[0]
        self.gtid = bcol * self.nthreads + self.tidx
        self.mask = np.ones((n_batch, self.nthreads), dtype=bool)
        self._n_warps = (self.nthreads + self.WARP - 1) // self.WARP
        self._pad = self._n_warps * self.WARP - self.nthreads
        self._shared_bytes = 0
        # Per-block "still executing" flags: a block leaves a while_
        # body when all its lanes go inactive (sync() charges full warps
        # only for blocks still executing the surrounding code).
        self._exec = np.ones(n_batch, dtype=bool)
        self._warp_blocks = np.repeat(
            bcol.ravel().astype(np.int32), self._n_warps
        )

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _warp_actives(self, mask=None) -> np.ndarray:
        m = self.mask if mask is None else mask
        if m.shape != self.mask.shape:
            m = np.broadcast_to(m, self.mask.shape)
        if self._pad:
            padded = np.zeros(
                (self.batch, self._n_warps * self.WARP), dtype=bool
            )
            padded[:, : self.nthreads] = m
            m = padded
        return m.reshape(self.batch * self._n_warps, self.WARP).sum(axis=1)

    def _charge(self, category: Category, repeat: int = 1) -> np.ndarray:
        actives = self._warp_actives()
        self._buf.charge_warps(category, actives, repeat)
        return actives

    def sync(self) -> None:
        """__syncthreads() for every block still executing this code."""
        full = np.broadcast_to(
            self._exec[:, None], (self.batch, self.nthreads)
        )
        self._buf.charge_warps(Category.SYNC, self._warp_actives(full))

    # ------------------------------------------------------------------
    # Values / control flow
    # ------------------------------------------------------------------
    def const(self, value, dtype=None) -> np.ndarray:
        """Broadcast scalars, lane vectors, or per-block columns to (B, T)."""
        arr = np.asarray(value, dtype=dtype)
        shape = (self.batch, self.nthreads)
        if arr.ndim == 0:
            return np.full(shape, arr)
        if arr.shape in ((self.nthreads,), (1, self.nthreads),
                         (self.batch, 1), shape):
            return np.broadcast_to(arr, shape)
        raise ValueError(
            f"lane value must broadcast to {shape}, got {arr.shape}"
        )

    def while_(self, cond_fn: Callable[[], np.ndarray]):
        saved = self.mask.copy()
        saved_exec = self._exec
        active = saved.copy()
        iteration = 0
        try:
            while True:
                self._exec = active.any(axis=1)
                self.mask = active
                self.branch()
                cond = np.asarray(cond_fn(), dtype=bool)
                active = active & cond
                if not active.any():
                    break
                self._exec = active.any(axis=1)
                self.mask = active
                yield iteration
                active = active & self.mask  # lanes may self-mask
                iteration += 1
        finally:
            self.mask = saved
            self._exec = saved_exec

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def shared(self, shape, dtype=np.float32, name: str = "") -> BatchSharedArray:
        block_shape = tuple(np.atleast_1d(np.array(shape, dtype=np.int64)))
        block_size = int(np.prod(block_shape))
        block_nbytes = block_size * np.dtype(dtype).itemsize
        data = np.zeros((self.batch,) + block_shape, dtype=dtype)
        base = self._gpu._allocator.alloc(block_nbytes, Space.SHARED)
        arr = BatchSharedArray(
            data, base, name or f"{Space.SHARED.value}@{base:#x}", block_size
        )
        self._shared_bytes += block_nbytes
        self._buf.shared_bytes_per_block = max(
            self._buf.shared_bytes_per_block, self._shared_bytes
        )
        return arr

    def _reject_local_write(self, arr: DeviceArray) -> None:
        """Writable per-block local scratch cannot batch.

        LOCAL arrays are host-allocated once per launch and sized for a
        single block's threads; the sequential engine lets every block
        scribble over the same scratch, which is exactly the cross-block
        dataflow batching forbids.  Raising here routes the kernel to the
        scalar path (read-only LOCAL data would be safe, but no such
        kernels exist and a write is the cheap, certain signal).
        """
        if arr.space == Space.LOCAL:
            raise RuntimeError(
                f"batched engine cannot write block-reused local scratch "
                f"{arr.name}; kernel requires the scalar path"
            )

    def _backup(self, arr: DeviceArray) -> None:
        """Copy-on-first-write backup for scalar-oracle fallback."""
        if isinstance(arr, BatchSharedArray):
            return  # fresh per launch, nothing to restore
        key = id(arr)
        if key not in self._backups:
            self._backups[key] = (arr, arr.data.copy())

    def _flat_index(self, arr: DeviceArray, act_idx: np.ndarray,
                    active: np.ndarray) -> np.ndarray:
        if isinstance(arr, BatchSharedArray):
            rows = np.broadcast_to(
                np.arange(self.batch)[:, None], active.shape
            )[active]
            return act_idx + rows * arr.block_size
        return act_idx

    def _account_mem(
        self, arr: DeviceArray, idx: np.ndarray, active: np.ndarray,
        is_store: bool
    ) -> None:
        """One memory instruction over the whole batch.

        Mirrors the scalar engine: one address-generation ALU charge, one
        MEM charge, then per-warp coalescing / conflict / cache handling
        — here as a handful of numpy passes over the ``(R, 32)`` matrix
        of live-warp addresses.
        """
        self._charge(Category.ALU)
        actives = self._charge(Category.MEM)
        live = actives > 0
        self._buf.charge_mem_space(arr.space, int(live.sum()))
        space = arr.space
        if space == Space.PARAM or not live.any():
            return
        addrs = arr.base + idx * arr.itemsize
        if self._pad:
            amat = np.full(
                (self.batch, self._n_warps * self.WARP), _SENTINEL
            )
            amat[:, : self.nthreads] = np.where(active, addrs, _SENTINEL)
        else:
            amat = np.where(active, addrs, _SENTINEL)
        amat = amat.reshape(self.batch * self._n_warps, self.WARP)[live]
        blocks = self._warp_blocks[live]
        if space in (Space.GLOBAL, Space.LOCAL):
            segs, counts = _row_unique(amat, TRANSACTION_BYTES)
            self._buf.add_mem_event(
                segs * TRANSACTION_BYTES, np.repeat(blocks, counts), is_store
            )
        elif space == Space.SHARED:
            self._buf.shared_replays += _bank_replays(amat)
        elif space == Space.CONST:
            lines, counts = _row_unique(amat, 64)
            self._buf.const_accesses += int(actives.sum())
            self._buf.const_serializations += int((counts - 1).sum())
            self._buf.add_cache_event(
                "const", lines * 64, np.repeat(blocks, counts)
            )
        elif space == Space.TEX:
            segs, counts = _row_unique(amat, TRANSACTION_BYTES)
            self._buf.tex_accesses += int(actives.sum())
            self._buf.add_cache_event(
                "tex", segs * TRANSACTION_BYTES, np.repeat(blocks, counts)
            )

    def load(self, arr: DeviceArray, idx) -> np.ndarray:
        if not self.mask.any():
            return np.zeros((self.batch, self.nthreads), dtype=arr.dtype)
        idx, active, act_idx = self._active_addrs(arr, idx)
        self._account_mem(arr, idx, active, is_store=False)
        out = np.zeros((self.batch, self.nthreads), dtype=arr.dtype)
        out[active] = arr.data.flat[self._flat_index(arr, act_idx, active)]
        return out

    def store(self, arr: DeviceArray, idx, values) -> None:
        if not self.mask.any():
            return
        self._reject_local_write(arr)
        idx, active, act_idx = self._active_addrs(arr, idx)
        self._account_mem(arr, idx, active, is_store=True)
        vals = self.const(values, dtype=arr.dtype)
        self._backup(arr)
        # Flat indices are block-major, and numpy fancy assignment
        # applies in index order, so duplicate targets resolve exactly as
        # the sequential-block loop does (last block wins).
        arr.data.flat[self._flat_index(arr, act_idx, active)] = vals[active]

    def atomic_add(self, arr: DeviceArray, idx, values) -> None:
        if not self.mask.any():
            return
        self._reject_local_write(arr)
        idx, active, act_idx = self._active_addrs(arr, idx)
        self._account_mem(arr, idx, active, is_store=True)
        vals = self.const(values, dtype=arr.dtype)
        self._backup(arr)
        np.add.at(
            arr.data.reshape(-1),
            self._flat_index(arr, act_idx, active),
            vals[active],
        )

    # ------------------------------------------------------------------
    # Common kernel idioms
    # ------------------------------------------------------------------
    def block_reduce_sum(self, values: np.ndarray, smem: DeviceArray):
        """Tree reduction per block; returns a ``(B, 1)`` column of totals.

        The column broadcasts through lane arithmetic and stores exactly
        like the scalar engine's per-block host float; kernels that
        instead *branch* on the total in Python raise on the ambiguous
        array truth value, which triggers the scalar fallback.
        """
        self.store(smem, self.tidx, values)
        stride = self.nthreads // 2
        while stride >= 1:
            self.sync()
            with self.masked(self.tidx < stride):
                a = self.load(smem, self.tidx)
                b = self.load(smem, self.tidx + stride)
                self.alu(1)
                self.store(smem, self.tidx, a + b)
            stride //= 2
        return smem.data.reshape(self.batch, -1)[:, :1].astype(np.float64)


class BatchLaunch:
    """Runs one kernel launch on the batched engine with rollback."""

    def __init__(self, gpu, launch: LaunchTrace, grid: tuple, block: tuple):
        self._gpu = gpu
        self._launch = launch
        self._grid = grid
        self._block = block
        self._buf = LaunchBuffer()
        self._backups: Dict[int, Tuple[DeviceArray, np.ndarray]] = {}

    def run(self, kernel: Callable, args: tuple, n_blocks: int) -> None:
        threads = self._block[0] * self._block[1]
        step = max(1, batch_lanes() // threads)
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            for lo in range(0, n_blocks, step):
                n_batch = min(step, n_blocks - lo)
                with telemetry.span(
                    "batch_pass", blocks=n_batch, lanes=n_batch * threads
                ):
                    self._gpu._allocator.reset(Space.SHARED)
                    ctx = BatchBlockCtx(
                        self._gpu, self._buf, self._backups,
                        lo, n_batch, self._grid, self._block,
                    )
                    kernel(ctx, *args)

    def restore(self) -> None:
        """Undo every device write of a failed batch attempt."""
        for arr, copy in self._backups.values():
            arr.data[...] = copy

    def commit(self) -> None:
        # Lane occupancy of the committed launch: issued warp slots vs
        # active threads (perfect occupancy would make them equal x32).
        telemetry.count(
            "gpusim.batch.warp_insts", self._buf.issued_warp_insts
        )
        telemetry.count(
            "gpusim.batch.active_lanes", self._buf.thread_insts
        )
        self._buf.commit(self._launch, self._gpu.tex_cache,
                         self._gpu.const_cache)
