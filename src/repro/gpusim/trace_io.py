"""Kernel-trace serialization.

A :class:`~repro.gpusim.trace.KernelTrace` is the expensive artifact of
a characterization run (the functional execution); the timing model is
cheap.  Persisting traces lets a user collect once and explore
configurations offline — the same collect/analyze split GPGPU-Sim users
rely on:

    save_trace(gpu.trace, "bfs.npz")
    ...
    trace = load_trace("bfs.npz")
    TimingModel(my_config).time(trace)

Format: a single ``.npz`` with flat arrays per launch plus a small JSON
header; loads back bit-identically (timing results match exactly).
"""

from __future__ import annotations

import json
from typing import Union

import numpy as np

from repro.gpusim.isa import Category, Space
from repro.gpusim.trace import KernelTrace

_FORMAT_VERSION = 1

_INT_FIELDS = (
    "thread_insts",
    "issued_warp_insts",
    "shared_replays",
    "const_serializations",
    "tex_accesses",
    "tex_hits",
    "const_accesses",
    "const_hits",
    "shared_bytes_per_block",
)


def save_trace(trace: KernelTrace, path: Union[str, "os.PathLike"]) -> None:
    """Write a trace to a ``.npz`` file."""
    header = {
        "format": _FORMAT_VERSION,
        "app_name": trace.app_name,
        "launches": [],
    }
    arrays = {}
    for i, lt in enumerate(trace.launches):
        meta = {
            "kernel_name": lt.kernel_name,
            "grid": list(lt.grid),
            "block": list(lt.block),
            "regs_per_thread": lt.regs_per_thread,
            "category_warp_insts": {
                c.value: n for c, n in lt.category_warp_insts.items()
            },
            "mem_warp_insts": {s.value: n for s, n in lt.mem_warp_insts.items()},
        }
        for field in _INT_FIELDS:
            meta[field] = int(getattr(lt, field))
        header["launches"].append(meta)
        addrs, blocks, stores = lt.transactions()
        arrays[f"l{i}_occupancy"] = lt.occupancy_hist
        arrays[f"l{i}_tx_addr"] = addrs
        arrays[f"l{i}_tx_block"] = blocks
        arrays[f"l{i}_tx_store"] = stores
    arrays["header"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def load_trace(path: Union[str, "os.PathLike"]) -> KernelTrace:
    """Read a trace written by :func:`save_trace`."""
    with np.load(path) as data:
        header = json.loads(bytes(data["header"].tobytes()).decode("utf-8"))
        if header.get("format") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format {header.get('format')!r}"
            )
        trace = KernelTrace(header["app_name"])
        for i, meta in enumerate(header["launches"]):
            lt = trace.new_launch(
                meta["kernel_name"],
                tuple(meta["grid"]),
                tuple(meta["block"]),
                meta["regs_per_thread"],
            )
            for field in _INT_FIELDS:
                setattr(lt, field, meta[field])
            lt.category_warp_insts = {
                Category(k): v for k, v in meta["category_warp_insts"].items()
            }
            lt.mem_warp_insts = {
                Space(k): v for k, v in meta["mem_warp_insts"].items()
            }
            lt.occupancy_hist = data[f"l{i}_occupancy"].copy()
            addrs = data[f"l{i}_tx_addr"]
            if addrs.size:
                lt._tx_final = (
                    addrs.copy(),
                    data[f"l{i}_tx_block"].copy(),
                    data[f"l{i}_tx_store"].copy(),
                )
                lt._tx_addr_chunks = [lt._tx_final[0]]
                lt._tx_block_chunks = [lt._tx_final[1]]
                lt._tx_store_chunks = [lt._tx_final[2]]
        return trace
