"""Kernel-trace serialization.

A :class:`~repro.gpusim.trace.KernelTrace` is the expensive artifact of
a characterization run (the functional execution); the timing model is
cheap.  Persisting traces lets a user collect once and explore
configurations offline — the same collect/analyze split GPGPU-Sim users
rely on:

    save_trace(gpu.trace, "bfs.npz")
    ...
    trace = load_trace("bfs.npz")
    TimingModel(my_config).time(trace)

Two formats, both plain ``.npz`` zips that load back bit-identically:

- **v2 (current)** — columnar segments: the transaction streams of all
  launches concatenate into one global record stream, cut into groups of
  ``~chunk_rows`` rows; each group stores delta-encoded addresses, block
  ids, and bit-packed store flags as separate compressed members, plus a
  JSON header with per-launch row counts.  Groups are written and read
  one at a time, so saving or loading a spilled LARGE trace never
  materializes the full stream; fewer, larger zip members and the
  delta/bit-packed encodings also make warm loads measurably faster and
  smaller than v1 (gated in ``benchmarks/test_bench_trace_pipeline.py``).
- **v1 (legacy)** — dense per-launch ``l{i}_tx_*`` arrays.  The reader
  is kept for backward compatibility with existing artifacts, and the
  writer remains available (``save_trace(..., version=1)``) for the
  round-trip test and for producing artifacts older readers understand.
"""

from __future__ import annotations

import json
import os
import zipfile
from typing import List, Union

import numpy as np
from numpy.lib import format as npformat

from repro.gpusim.isa import Category, Space
from repro.gpusim.trace import KernelTrace

_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)

_INT_FIELDS = (
    "thread_insts",
    "issued_warp_insts",
    "shared_replays",
    "const_serializations",
    "tex_accesses",
    "tex_hits",
    "const_accesses",
    "const_hits",
    "shared_bytes_per_block",
)


def _launch_meta(lt) -> dict:
    meta = {
        "kernel_name": lt.kernel_name,
        "grid": list(lt.grid),
        "block": list(lt.block),
        "regs_per_thread": lt.regs_per_thread,
        "category_warp_insts": {
            c.value: n for c, n in lt.category_warp_insts.items()
        },
        "mem_warp_insts": {s.value: n for s, n in lt.mem_warp_insts.items()},
    }
    for field in _INT_FIELDS:
        meta[field] = int(getattr(lt, field))
    return meta


def _restore_launch(trace: KernelTrace, meta: dict):
    lt = trace.new_launch(
        meta["kernel_name"],
        tuple(meta["grid"]),
        tuple(meta["block"]),
        meta["regs_per_thread"],
    )
    for field in _INT_FIELDS:
        setattr(lt, field, meta[field])
    lt.category_warp_insts = {
        Category(k): v for k, v in meta["category_warp_insts"].items()
    }
    lt.mem_warp_insts = {
        Space(k): v for k, v in meta["mem_warp_insts"].items()
    }
    return lt


def _write_member(zf: zipfile.ZipFile, name: str, arr: np.ndarray) -> None:
    with zf.open(name + ".npy", "w", force_zip64=True) as fh:
        npformat.write_array(
            fh, np.ascontiguousarray(arr), allow_pickle=False
        )


def save_trace(
    trace: KernelTrace,
    path: Union[str, "os.PathLike"],
    version: int = _FORMAT_VERSION,
) -> None:
    """Write a trace to a ``.npz`` file (v2 columnar by default)."""
    if version not in _SUPPORTED_VERSIONS:
        raise ValueError(f"unsupported trace format {version!r}")
    if version == 1:
        _save_trace_v1(trace, path)
        return
    from repro.common.config import config

    group_rows = config().trace_chunk_rows
    header = {
        "format": 2,
        "app_name": trace.app_name,
        "launches": [],
        "groups": [],
    }
    with zipfile.ZipFile(
        os.fspath(path), "w", zipfile.ZIP_DEFLATED, allowZip64=True
    ) as zf:
        # Buffered pieces of the pending group (global record order).
        buf_a: List[np.ndarray] = []
        buf_b: List[np.ndarray] = []
        buf_s: List[np.ndarray] = []
        buffered = 0
        n_groups = 0

        def flush():
            nonlocal buffered, n_groups
            if not buffered:
                return
            addrs = np.concatenate(buf_a) if len(buf_a) > 1 else buf_a[0]
            blocks = np.concatenate(buf_b) if len(buf_b) > 1 else buf_b[0]
            stores = np.concatenate(buf_s) if len(buf_s) > 1 else buf_s[0]
            buf_a.clear(), buf_b.clear(), buf_s.clear()
            # Self-contained delta encoding: element 0 absolute, rest
            # first differences — transaction streams are largely
            # strided, so deltas deflate far better than raw addresses.
            delta = np.diff(addrs.astype(np.int64), prepend=np.int64(0))
            delta[0] = addrs[0]
            _write_member(zf, f"g{n_groups}_addr", delta)
            _write_member(zf, f"g{n_groups}_block", blocks)
            _write_member(
                zf, f"g{n_groups}_store", np.packbits(stores.view(np.uint8))
            )
            header["groups"].append(int(buffered))
            n_groups += 1
            buffered = 0

        for i, lt in enumerate(trace.launches):
            meta = _launch_meta(lt)
            meta["tx_rows"] = int(lt.n_transactions)
            header["launches"].append(meta)
            _write_member(zf, f"l{i}_occupancy", lt.occupancy_hist)
            for addrs, blocks, stores in lt.iter_transaction_chunks():
                pos = 0
                while pos < addrs.size:
                    take = min(addrs.size - pos, group_rows - buffered)
                    buf_a.append(addrs[pos : pos + take])
                    buf_b.append(blocks[pos : pos + take])
                    buf_s.append(stores[pos : pos + take])
                    buffered += take
                    pos += take
                    if buffered == group_rows:
                        flush()
        flush()
        _write_member(
            zf,
            "header",
            np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
        )


def _save_trace_v1(trace: KernelTrace, path) -> None:
    """Legacy dense per-launch layout (readable by pre-v2 code)."""
    header = {
        "format": 1,
        "app_name": trace.app_name,
        "launches": [],
    }
    arrays = {}
    for i, lt in enumerate(trace.launches):
        header["launches"].append(_launch_meta(lt))
        addrs, blocks, stores = lt.transactions()
        arrays[f"l{i}_occupancy"] = lt.occupancy_hist
        arrays[f"l{i}_tx_addr"] = addrs
        arrays[f"l{i}_tx_block"] = blocks
        arrays[f"l{i}_tx_store"] = stores
    arrays["header"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def load_trace(path: Union[str, "os.PathLike"]) -> KernelTrace:
    """Read a trace written by :func:`save_trace` (any supported version)."""
    with np.load(path) as data:
        header = json.loads(bytes(data["header"].tobytes()).decode("utf-8"))
        version = header.get("format")
        if version not in _SUPPORTED_VERSIONS:
            raise ValueError(f"unsupported trace format {version!r}")
        trace = KernelTrace(header["app_name"])
        if version == 1:
            for i, meta in enumerate(header["launches"]):
                lt = _restore_launch(trace, meta)
                lt.occupancy_hist = data[f"l{i}_occupancy"].copy()
                addrs = data[f"l{i}_tx_addr"]
                if addrs.size:
                    lt.record_transaction_stream(
                        addrs, data[f"l{i}_tx_block"], data[f"l{i}_tx_store"]
                    )
            return trace
        launches = []
        remaining = []
        for i, meta in enumerate(header["launches"]):
            lt = _restore_launch(trace, meta)
            lt.occupancy_hist = data[f"l{i}_occupancy"].copy()
            launches.append(lt)
            remaining.append(int(meta["tx_rows"]))
        # Stream groups back in global record order, handing each launch
        # its share; appends re-chunk (and re-spill) under the active
        # budget, so loading never materializes the full stream.
        cursor = 0
        for j, rows in enumerate(header["groups"]):
            delta = data[f"g{j}_addr"]
            addrs = np.cumsum(delta, dtype=np.int64)
            blocks = data[f"g{j}_block"]
            stores = (
                np.unpackbits(data[f"g{j}_store"], count=rows)
                .astype(bool)
            )
            pos = 0
            while pos < rows:
                while cursor < len(launches) and remaining[cursor] == 0:
                    cursor += 1
                if cursor >= len(launches):
                    raise ValueError("trace groups exceed launch rows")
                take = min(rows - pos, remaining[cursor])
                launches[cursor].record_transaction_stream(
                    addrs[pos : pos + take],
                    blocks[pos : pos + take],
                    stores[pos : pos + take],
                )
                remaining[cursor] -= take
                pos += take
        if any(remaining):
            raise ValueError("trace groups short of launch rows")
        return trace
