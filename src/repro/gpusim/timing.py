"""Analytic bottleneck timing model.

Prices a :class:`~repro.gpusim.trace.KernelTrace` under a
:class:`~repro.gpusim.config.GPUConfig`.  Per launch, the cycle count is

    overhead + max(issue-bound, bandwidth-bound, latency-bound)

- **issue-bound**: total issue slots (``warp_size / simd_width`` per warp
  instruction, plus shared-memory bank-conflict replays and constant-
  cache serializations) divided over the SMs that actually receive CTAs.
- **bandwidth-bound**: busiest memory channel's service time; off-chip
  transactions are address-interleaved over channels, optionally filtered
  through Fermi's per-SM L1 and unified L2 first.
- **latency-bound**: total exposed memory latency divided by the
  resident-warp concurrency the occupancy calculation allows.

This is the Hong & Kim-style analytic family the paper cites ([14]); it
reproduces the qualitative contrasts the characterization reports (which
workloads scale with SM count, which saturate channels, which are
latency-exposed at low occupancy) from a single functional trace.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import telemetry
from repro.gpusim.config import GPUConfig
from repro.gpusim.isa import TRANSACTION_BYTES, Category
from repro.gpusim.memory import CacheModel
from repro.gpusim.trace import KernelTrace, LaunchTrace

#: Memory-level-parallelism factor: outstanding requests a warp overlaps.
_MLP = 4.0

#: Resident warps per SM needed to keep the issue stage fully fed
#: (hides ALU dependency latency); below this, issue efficiency drops
#: as sqrt(warps / threshold).
_FULL_ISSUE_WARPS = 20.0


@dataclasses.dataclass
class LaunchTiming:
    kernel_name: str
    cycles: float
    issue_cycles: float
    bandwidth_cycles: float
    latency_cycles: float
    ctas_per_sm: int
    resident_warps: int
    dram_bytes: int
    bound: str
    #: Cycles excluding the launch overhead; ``cycles`` is always the
    #: float sum ``launch_overhead_cycles + body_cycles``.  Stored (not
    #: recomputed by subtraction) so the profiler's stall attribution
    #: can sum bit-exactly to it.
    body_cycles: float = 0.0
    #: Gap between the binding component and the runner-up; small
    #: margins mean the ``bound`` label is fragile.
    bound_margin: float = 0.0


def classify_bound(
    issue_cycles: float, bandwidth_cycles: float, latency_cycles: float
) -> Tuple[str, float, float]:
    """Classify a launch's bottleneck; returns (bound, body, margin).

    ``body`` is the max of the three components.  On *exact* ties the
    precedence is deterministic and documented: **issue > latency >
    bandwidth**.  Rationale: an issue tie means the SMs' front end is
    already saturated, so adding bandwidth or hiding latency cannot
    help; a latency/bandwidth tie is attributed to latency because the
    busiest-channel service time is a lower bound that concurrency
    cannot shrink, whereas exposed latency responds to occupancy — the
    more actionable diagnosis.  ``margin`` is ``body`` minus the
    second-largest component (0.0 on a tie).
    """
    body = max(issue_cycles, bandwidth_cycles, latency_cycles)
    for bound, component in (
        ("issue", issue_cycles),
        ("latency", latency_cycles),
        ("bandwidth", bandwidth_cycles),
    ):
        if component == body:
            break
    ranked = sorted((issue_cycles, bandwidth_cycles, latency_cycles),
                    reverse=True)
    return bound, body, ranked[0] - ranked[1]


@dataclasses.dataclass(frozen=True)
class CacheLadder:
    """What :meth:`TimingModel._filter_through_caches` measured.

    The transaction stream enters at the top (``total`` accesses) and
    drains through whichever levels the configuration enables; whatever
    misses everywhere goes to DRAM.  The surviving transactions are kept
    only as aggregates — a count and per-channel totals — so pricing a
    spilled out-of-core launch never materializes its address stream.
    ``avg_latency`` is the access-weighted mean latency of the ladder.
    """

    dram_transactions: int
    avg_latency: float
    channel_counts: np.ndarray
    total: int = 0
    l1_accesses: int = 0
    l1_hits: int = 0
    l2_accesses: int = 0
    l2_hits: int = 0


@dataclasses.dataclass(frozen=True)
class PriceDetail:
    """Intermediate quantities of one launch pricing.

    Everything :meth:`TimingModel.time_launch` computes on the way to a
    :class:`LaunchTiming` that the per-launch profiler
    (:mod:`repro.gpusim.profiler`) needs but the timing result does not
    carry: the occupancy solution, the cache-filter ladder, and the
    per-channel DRAM transaction counts.
    """

    occupancy: Dict[str, int]
    effective_sms: int
    actual_ctas: int
    actual_warps: int
    waves: int
    issue_slots: float
    issue_stall: float
    ladder: CacheLadder
    channel_counts: np.ndarray


@dataclasses.dataclass
class TimingResult:
    """Timing of a full application run under one configuration."""

    config: GPUConfig
    launches: List[LaunchTiming]
    cycles: float
    thread_insts: int
    dram_bytes: int

    @property
    def ipc(self) -> float:
        return self.thread_insts / self.cycles if self.cycles else 0.0

    @property
    def time_s(self) -> float:
        return self.cycles / (self.config.core_clock_ghz * 1e9)

    @property
    def bandwidth_gbs(self) -> float:
        t = self.time_s
        return self.dram_bytes / t / 1e9 if t else 0.0

    @property
    def bw_utilization(self) -> float:
        peak = self.config.peak_bandwidth_gbs
        return self.bandwidth_gbs / peak if peak else 0.0

    def bound_mix(self) -> Dict[str, float]:
        """Fraction of cycles attributed to each bottleneck class."""
        total = sum(l.cycles for l in self.launches) or 1.0
        out = {"issue": 0.0, "bandwidth": 0.0, "latency": 0.0}
        for l in self.launches:
            out[l.bound] += l.cycles / total
        return out


class TimingModel:
    """Prices kernel traces under a configuration."""

    def __init__(self, config: GPUConfig):
        self.config = config

    # ------------------------------------------------------------------
    def occupancy(self, launch: LaunchTrace) -> Dict[str, int]:
        """Resident CTAs/warps per SM under all four occupancy limiters."""
        cfg = self.config
        threads = launch.threads_per_block
        warps_per_cta = math.ceil(threads / cfg.warp_size)
        by_threads = max(1, cfg.max_threads_per_sm // threads)
        shared = launch.shared_bytes_per_block
        by_shared = (
            max(1, cfg.shared_mem_per_sm // shared) if shared > 0 else cfg.max_ctas_per_sm
        )
        regs = launch.regs_per_thread * threads
        by_regs = max(1, cfg.regs_per_sm // regs) if regs > 0 else cfg.max_ctas_per_sm
        ctas_per_sm = min(cfg.max_ctas_per_sm, by_threads, by_shared, by_regs)
        # Shared usage beyond capacity still runs one CTA (hardware would
        # refuse the launch; we degrade gracefully and flag it).
        if shared > cfg.shared_mem_per_sm:
            ctas_per_sm = 1
        return {
            "ctas_per_sm": ctas_per_sm,
            "warps_per_cta": warps_per_cta,
            "resident_warps": ctas_per_sm * warps_per_cta,
            "by_threads": by_threads,
            "by_shared": by_shared,
            "by_regs": by_regs,
        }

    # ------------------------------------------------------------------
    def _channel_counts(self, addrs: np.ndarray) -> np.ndarray:
        """Per-channel DRAM transaction counts (address-interleaved)."""
        cfg = self.config
        if addrs.size == 0:
            return np.zeros(cfg.n_mem_channels, dtype=np.int64)
        channels = (addrs >> 8) % cfg.n_mem_channels
        return np.bincount(
            channels.astype(np.int64), minlength=cfg.n_mem_channels
        )

    def _busy_from_counts(self, counts: np.ndarray) -> float:
        """Busiest channel's service time, in core cycles."""
        cfg = self.config
        cycles_per_tx = (
            TRANSACTION_BYTES
            / (cfg.bus_width_bytes * 2)
            * (cfg.core_clock_ghz / cfg.mem_clock_ghz)
        )
        return float(counts.max() * cycles_per_tx)

    def _filter_through_caches(
        self, launch: LaunchTrace, effective_sms: int
    ) -> CacheLadder:
        """Run transactions through L1/L2; returns the :class:`CacheLadder`.

        L1s are per-SM (CTAs map to SMs round-robin); the L2 is unified.
        Without caches, all transactions go to DRAM at full latency.
        """
        cfg = self.config
        total = launch.n_transactions
        n_ch = cfg.n_mem_channels
        zeros = np.zeros(n_ch, dtype=np.int64)
        if total == 0:
            return CacheLadder(0, float(cfg.mem_latency_cycles), zeros)
        if not cfg.has_l1 and not cfg.has_l2:
            counts = zeros
            for addrs, _, _ in launch.iter_transaction_chunks():
                counts = counts + self._channel_counts(addrs)
            return CacheLadder(
                int(total), float(cfg.mem_latency_cycles), counts,
                total=int(total),
            )

        n_sms = max(1, effective_sms)
        l1s = (
            [
                CacheModel(cfg.l1_size, cfg.l1_assoc, TRANSACTION_BYTES)
                for _ in range(n_sms)
            ]
            if cfg.has_l1
            else None
        )
        l2 = (
            CacheModel(cfg.l2_size, cfg.l2_assoc, TRANSACTION_BYTES,
                       hash_sets=True)
            if cfg.has_l2
            else None
        )
        n_blocks = max(1, launch.n_blocks)
        chunk = max(1, math.ceil(n_blocks / n_sms))
        l1_hits = l2_hits = l2_accesses = dram_tx = 0
        counts = zeros
        # The caches persist across chunks (their state imports warm into
        # the batch engine), so streaming the launch chunk by chunk is
        # bit-identical to one dense pass.
        for addrs, blocks, _ in launch.iter_transaction_chunks():
            survivors = addrs
            if l1s is not None:
                if cfg.cta_scheduler == "chunked":
                    sms = np.minimum(blocks // chunk, n_sms - 1)
                else:
                    sms = blocks % n_sms
                # Each SM's L1 sees an independent stream; boolean
                # masking keeps per-SM time order, so one vectorizable
                # access() call per SM replaces the per-transaction loop.
                hit_mask = np.empty(addrs.size, dtype=bool)
                for sm, l1 in enumerate(l1s):
                    mask = sms == sm
                    if mask.any():
                        hit_mask[mask] = l1.access(addrs[mask])
                l1_hits += int(hit_mask.sum())
                survivors = addrs[~hit_mask]
            if l2 is not None:
                l2_accesses += int(survivors.size)
                if survivors.size:
                    hit2 = l2.access(survivors)
                    l2_hits += int(hit2.sum())
                    dram = survivors[~hit2]
                else:
                    dram = survivors
            else:
                dram = survivors
            dram_tx += int(dram.size)
            if dram.size:
                counts = counts + self._channel_counts(dram)
        lat = (
            l1_hits * cfg.l1_latency_cycles
            + l2_hits * cfg.l2_latency_cycles
            + dram_tx * cfg.mem_latency_cycles
        ) / total
        return CacheLadder(
            dram_tx,
            float(lat),
            counts,
            total=int(total),
            l1_accesses=int(total) if cfg.has_l1 else 0,
            l2_accesses=l2_accesses,
            l1_hits=l1_hits,
            l2_hits=l2_hits,
        )

    # ------------------------------------------------------------------
    def _price(self, launch: LaunchTrace) -> Tuple[LaunchTiming, PriceDetail]:
        """Price one launch, keeping the intermediates for the profiler."""
        cfg = self.config
        occ = self.occupancy(launch)
        n_blocks = max(1, launch.n_blocks)
        effective_sms = min(cfg.n_sms, n_blocks)

        # Actual residency: capacity-limited CTAs, but a small grid may
        # not fill even that (e.g. LUD's diagonal kernel, NW's early
        # wavefronts).
        waves = math.ceil(n_blocks / effective_sms)
        actual_ctas = max(1, min(occ["ctas_per_sm"], waves))
        actual_warps = actual_ctas * occ["warps_per_cta"]

        # Issue-bound component.  Below _FULL_ISSUE_WARPS resident warps
        # the scheduler cannot cover ALU dependency latency, so issue
        # efficiency degrades (this is what makes shared-memory-hungry
        # kernels prefer Fermi's shared-bias split: the 16 kB
        # configuration halves their resident CTAs).
        slots_per_inst = cfg.warp_size / cfg.simd_width
        issue_slots = launch.issued_warp_insts * slots_per_inst
        if cfg.model_bank_conflicts:
            issue_slots += launch.shared_replays * slots_per_inst
        issue_slots += launch.const_serializations
        issue_stall = max(1.0, math.sqrt(_FULL_ISSUE_WARPS / actual_warps))
        issue_cycles = issue_slots / effective_sms * issue_stall

        # Bandwidth-bound component (through caches when configured).
        ladder = self._filter_through_caches(launch, effective_sms)
        channel_counts = ladder.channel_counts
        bandwidth_cycles = self._busy_from_counts(channel_counts)

        # Latency-bound component: per-SM transaction latency divided by
        # warp concurrency and per-warp MLP.
        tx_per_sm = launch.n_transactions / effective_sms
        concurrency = actual_warps
        latency_cycles = tx_per_sm * ladder.avg_latency / (concurrency * _MLP)

        bound, body, margin = classify_bound(
            issue_cycles, bandwidth_cycles, latency_cycles
        )
        cycles = cfg.launch_overhead_cycles + body
        timing = LaunchTiming(
            kernel_name=launch.kernel_name,
            cycles=cycles,
            issue_cycles=issue_cycles,
            bandwidth_cycles=bandwidth_cycles,
            latency_cycles=latency_cycles,
            ctas_per_sm=occ["ctas_per_sm"],
            resident_warps=actual_warps,
            dram_bytes=ladder.dram_transactions * TRANSACTION_BYTES,
            bound=bound,
            body_cycles=body,
            bound_margin=margin,
        )
        detail = PriceDetail(
            occupancy=occ,
            effective_sms=effective_sms,
            actual_ctas=actual_ctas,
            actual_warps=actual_warps,
            waves=waves,
            issue_slots=issue_slots,
            issue_stall=issue_stall,
            ladder=ladder,
            channel_counts=channel_counts,
        )
        return timing, detail

    def time_launch(self, launch: LaunchTrace) -> LaunchTiming:
        timing, _ = self._price(launch)
        return timing

    def time(self, trace: KernelTrace) -> TimingResult:
        with telemetry.span("timing", app=trace.app_name,
                            launches=trace.n_launches):
            launches = [self.time_launch(lt) for lt in trace.launches]
        return TimingResult(
            config=self.config,
            launches=launches,
            cycles=sum(l.cycles for l in launches),
            thread_insts=trace.thread_insts,
            dram_bytes=sum(l.dram_bytes for l in launches),
        )

    def profile(self, trace: KernelTrace) -> "AppProfile":
        """Price every launch *and* collect its hardware-style counters.

        Returns a :class:`repro.gpusim.profiler.AppProfile`; the timing
        numbers inside are bit-identical to :meth:`time` (both paths go
        through :meth:`_price`).
        """
        from repro.gpusim.profiler import profile_trace

        return profile_trace(trace, self)

    # ------------------------------------------------------------------
    # Concurrent kernel execution (paper future work, Section VII)
    # ------------------------------------------------------------------
    def time_concurrent(self, traces: List[KernelTrace]) -> "ConcurrentTiming":
        """Co-schedule several applications on one GPU.

        The paper lists "simultaneous kernel execution" as a planned
        Rodinia feature.  Model: co-running kernels share the machine's
        two throughput resources — issue slots and memory channels — so
        the co-run's duration is the larger of the *summed* issue demand
        and the *summed* channel demand (plus each app's exposed-latency
        floor).  Complementary pairs (one issue-bound + one
        bandwidth-bound) overlap their demands and finish faster than
        running back-to-back.
        """
        if not traces:
            raise ValueError("need at least one trace")
        singles = [self.time(tr) for tr in traces]
        serial_cycles = sum(t.cycles for t in singles)
        total_issue = sum(
            l.issue_cycles for t in singles for l in t.launches
        )
        total_bw = sum(
            l.bandwidth_cycles for t in singles for l in t.launches
        )
        latency_floor = max(
            (l.latency_cycles for t in singles for l in t.launches),
            default=0.0,
        )
        overhead = sum(
            self.config.launch_overhead_cycles * len(t.launches)
            for t in singles
        ) / max(1, len(singles))  # launches overlap across streams
        concurrent_cycles = overhead + max(total_issue, total_bw, latency_floor)
        # Co-running can never beat the slowest member running alone.
        concurrent_cycles = max(
            concurrent_cycles, max(t.cycles for t in singles) * 0.999
        )
        return ConcurrentTiming(
            config=self.config,
            singles=singles,
            serial_cycles=float(serial_cycles),
            concurrent_cycles=float(concurrent_cycles),
        )


@dataclasses.dataclass
class ConcurrentTiming:
    """Serial vs co-scheduled execution of multiple applications."""

    config: GPUConfig
    singles: List[TimingResult]
    serial_cycles: float
    concurrent_cycles: float

    @property
    def speedup(self) -> float:
        """Throughput gain of co-scheduling over back-to-back runs."""
        if self.concurrent_cycles <= 0:
            return 1.0
        return self.serial_cycles / self.concurrent_cycles
