"""Dynamic execution traces.

A :class:`LaunchTrace` accumulates the statistics of one kernel launch;
a :class:`KernelTrace` is the ordered collection of launches from one
application run.  Traces are *timing independent*: they capture the
dynamic instruction stream (counts, occupancy, transaction addresses) so
that the timing model can price the same run under many configurations
(Figures 1, 4, 5 and the Plackett-Burman study all reuse one functional
execution per workload).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.common.chunkstore import ChunkStore
from repro.gpusim.isa import TRANSACTION_BYTES, Category, Space

#: Column layout of a launch's off-chip transaction stream.
TX_DTYPES = (np.dtype(np.int64), np.dtype(np.int32), np.dtype(bool))


class LaunchTrace:
    """Statistics of a single kernel launch."""

    def __init__(
        self,
        kernel_name: str,
        grid: Tuple[int, int],
        block: Tuple[int, int],
        regs_per_thread: int,
    ):
        self.kernel_name = kernel_name
        self.grid = grid
        self.block = block
        self.regs_per_thread = regs_per_thread
        self.shared_bytes_per_block = 0

        self.thread_insts = 0
        self.issued_warp_insts = 0
        self.category_warp_insts: Dict[Category, int] = {c: 0 for c in Category}
        self.mem_warp_insts: Dict[Space, int] = {s: 0 for s in Space}
        self.occupancy_hist = np.zeros(32, dtype=np.int64)
        self.shared_replays = 0
        self.const_serializations = 0

        # Bumped on every recording call; lets the owning KernelTrace
        # invalidate its memoized aggregates without a back-reference.
        self._version = 0

        # Off-chip transaction stream (global/local/texture-miss) as
        # fixed-size column chunks that spill past the trace budget.
        self._tx = ChunkStore(TX_DTYPES, label=f"gpu:{kernel_name}")

        self.tex_accesses = 0
        self.tex_hits = 0
        self.const_accesses = 0
        self.const_hits = 0

    # ------------------------------------------------------------------
    # Recording (called by the DSL)
    # ------------------------------------------------------------------
    def charge_warps(
        self, category: Category, active_per_warp: np.ndarray, repeat: int = 1
    ) -> None:
        """Charge one instruction over the given per-warp active-lane counts.

        ``active_per_warp`` holds the number of active lanes in each
        32-lane warp chunk of the block; zero-lane warps issue nothing.
        ``repeat`` charges the same instruction multiple times (loop-free
        accounting for vectorized kernel helpers).
        """
        live = active_per_warp[active_per_warp > 0]
        if live.size == 0:
            return
        self._version += 1
        n_warps = int(live.size) * repeat
        n_threads = int(live.sum()) * repeat
        self.issued_warp_insts += n_warps
        self.thread_insts += n_threads
        self.category_warp_insts[category] += n_warps
        np.add.at(self.occupancy_hist, live - 1, repeat)

    def charge_mem_space(self, space: Space, n_warps: int) -> None:
        self._version += 1
        self.mem_warp_insts[space] += n_warps

    def record_transactions(
        self, addrs: np.ndarray, block_idx: int, is_store: bool
    ) -> None:
        if addrs.size == 0:
            return
        self._version += 1
        self._tx.append(
            addrs,
            np.full(addrs.size, block_idx, dtype=np.int32),
            np.full(addrs.size, is_store, dtype=bool),
        )

    def record_transaction_stream(
        self, addrs: np.ndarray, blocks: np.ndarray, stores: np.ndarray
    ) -> None:
        """Append a pre-assembled (addr, block, store) transaction stream.

        Used by the batched execution engine, which reorders its per-batch
        events into sequential-block order before flushing; the resulting
        concatenated stream is bit-identical to per-warp recording.
        """
        if addrs.size == 0:
            return
        self._version += 1
        self._tx.append(addrs, blocks, stores)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def n_blocks(self) -> int:
        return self.grid[0] * self.grid[1]

    @property
    def threads_per_block(self) -> int:
        return self.block[0] * self.block[1]

    def transactions(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(addr, block, is_store) arrays of all off-chip transactions.

        Dense materialization — fine for short traces and oracles; the
        streaming consumers iterate :meth:`iter_transaction_chunks`
        instead so spilled chunks never re-assemble in memory.
        """
        return self._tx.columns()

    def iter_transaction_chunks(
        self,
    ) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """(addr, block, is_store) column chunks in record order."""
        return self._tx.iter_chunks()

    @property
    def n_transactions(self) -> int:
        return self._tx.n_rows

    @property
    def dram_bytes(self) -> int:
        return self.n_transactions * TRANSACTION_BYTES

    @property
    def total_mem_warp_insts(self) -> int:
        return sum(self.mem_warp_insts.values())

    @property
    def global_warp_insts(self) -> int:
        """Warp-level accesses that target off-chip address spaces.

        GLOBAL plus LOCAL (register-spill) traffic — the denominator of
        the profiler's coalescing-efficiency counter: perfectly
        coalesced code issues one transaction per such access.
        """
        return (
            self.mem_warp_insts[Space.GLOBAL] + self.mem_warp_insts[Space.LOCAL]
        )


class KernelTrace:
    """All launches of one application run, with aggregate views.

    Aggregate properties reduce over every launch; timing and the
    experiments access them repeatedly, so the reductions are memoized
    and invalidated whenever a launch is added or any launch records new
    data (tracked through each launch's ``_version`` counter).
    """

    def __init__(self, app_name: str = ""):
        self.app_name = app_name
        self.launches: List[LaunchTrace] = []
        self._agg_cache: Dict[str, object] = {}
        self._agg_token: Tuple[int, int] = (0, 0)

    def new_launch(self, *args, **kwargs) -> LaunchTrace:
        self._agg_cache.clear()
        lt = LaunchTrace(*args, **kwargs)
        self.launches.append(lt)
        return lt

    def _cached(self, key: str, compute):
        token = (len(self.launches), sum(lt._version for lt in self.launches))
        if token != self._agg_token:
            self._agg_cache.clear()
            self._agg_token = token
        if key not in self._agg_cache:
            self._agg_cache[key] = compute()
        return self._agg_cache[key]

    # Aggregates -------------------------------------------------------
    @property
    def thread_insts(self) -> int:
        return self._cached(
            "thread_insts", lambda: sum(lt.thread_insts for lt in self.launches)
        )

    @property
    def issued_warp_insts(self) -> int:
        return self._cached(
            "issued_warp_insts",
            lambda: sum(lt.issued_warp_insts for lt in self.launches),
        )

    @property
    def n_launches(self) -> int:
        return len(self.launches)

    def _occupancy_hist(self) -> np.ndarray:
        out = np.zeros(32, dtype=np.int64)
        for lt in self.launches:
            out += lt.occupancy_hist
        out.flags.writeable = False  # cached: callers must not mutate
        return out

    @property
    def occupancy_hist(self) -> np.ndarray:
        return self._cached("occupancy_hist", self._occupancy_hist)

    def occupancy_buckets(self) -> Dict[str, float]:
        """Figure 3's quartile buckets as fractions of issued warps."""
        hist = self.occupancy_hist
        total = hist.sum()
        if total == 0:
            return {"1-8": 0.0, "9-16": 0.0, "17-24": 0.0, "25-32": 0.0}
        return {
            "1-8": float(hist[0:8].sum() / total),
            "9-16": float(hist[8:16].sum() / total),
            "17-24": float(hist[16:24].sum() / total),
            "25-32": float(hist[24:32].sum() / total),
        }

    @property
    def mean_warp_occupancy(self) -> float:
        hist = self.occupancy_hist
        total = hist.sum()
        if total == 0:
            return 0.0
        return float((hist * np.arange(1, 33)).sum() / total)

    def mem_mix(self) -> Dict[str, float]:
        """Figure 2's memory-space instruction breakdown (fractions).

        Global and local are merged, as in the paper's plot.
        """
        totals: Dict[Space, int] = {s: 0 for s in Space}
        for lt in self.launches:
            for s, n in lt.mem_warp_insts.items():
                totals[s] += n
        grand = sum(totals.values())
        if grand == 0:
            return {k: 0.0 for k in ("shared", "tex", "const", "param", "global")}
        return {
            "shared": totals[Space.SHARED] / grand,
            "tex": totals[Space.TEX] / grand,
            "const": totals[Space.CONST] / grand,
            "param": totals[Space.PARAM] / grand,
            "global": (totals[Space.GLOBAL] + totals[Space.LOCAL]) / grand,
        }

    @property
    def dram_bytes(self) -> int:
        return self._cached(
            "dram_bytes", lambda: sum(lt.dram_bytes for lt in self.launches)
        )

    @property
    def n_transactions(self) -> int:
        return self._cached(
            "n_transactions",
            lambda: sum(lt.n_transactions for lt in self.launches),
        )

    def category_mix(self) -> Dict[str, float]:
        totals: Dict[Category, int] = {c: 0 for c in Category}
        for lt in self.launches:
            for c, n in lt.category_warp_insts.items():
                totals[c] += n
        grand = sum(totals.values())
        if grand == 0:
            return {c.value: 0.0 for c in Category}
        return {c.value: totals[c] / grand for c in Category}
