"""Instruction categories and memory spaces of the simulated machine.

The taxonomy mirrors what GPGPU-Sim reports and what the paper plots:
Figure 2 breaks memory instructions down into shared, texture, constant,
parameter, and global/local accesses.
"""

from __future__ import annotations

import enum


class Space(enum.Enum):
    """GPU memory spaces distinguished by the characterization."""

    GLOBAL = "global"
    LOCAL = "local"
    SHARED = "shared"
    CONST = "const"
    TEX = "tex"
    PARAM = "param"

    @property
    def is_offchip(self) -> bool:
        """Whether a miss in this space generates DRAM traffic."""
        return self in (Space.GLOBAL, Space.LOCAL, Space.TEX)


class Category(enum.Enum):
    """Dynamic instruction categories charged by the DSL."""

    ALU = "alu"
    BRANCH = "branch"
    MEM = "mem"
    SYNC = "sync"


#: Byte granularity of a coalesced DRAM transaction segment.
TRANSACTION_BYTES = 64

#: Number of shared-memory banks (one word wide each).
SHARED_BANKS = 32

#: Shared-memory bank word size in bytes.
BANK_WORD_BYTES = 4
