"""Traced launch plans: compile-by-tracing for the kernel DSL.

The block-batched engine (:mod:`repro.gpusim.batch`) already executes a
launch as a handful of whole-batch numpy passes, but it still
*re-interprets* the Python kernel body — mask bookkeeping, address
validation, coalescing/bank-conflict accounting — on every launch.  For
launch-heavy workloads (hotspot, srad) that interpretation dominates.

This module traces **one** execution of a kernel through the batched
engine and records a *launch plan*: a linear schedule of whole-batch
numpy ops (gather loads, scatter/atomic stores, ufunc arithmetic,
shared-memory allocations, host-branch guards) plus a
:class:`PlanAccounting` snapshot of everything the launch contributes to
the :class:`~repro.gpusim.trace.LaunchTrace` (aggregate counters and the
pre-sorted transaction / cache-access streams).  Subsequent launches
with the same content key *replay* the plan — a few hundred numpy calls
and one accounting commit — skipping DSL interpretation entirely.

Correctness model
-----------------
- The scalar per-block loop (``REPRO_GPU_BATCH=off``) remains the
  bit-identity oracle; the batched engine is bit-identical to it, and a
  replay is bit-identical to the batched trace execution by
  construction: loads/stores reuse the exact flat-index and active-mask
  arrays captured at trace time, value arithmetic is re-executed with
  the *raw* operand objects (preserving NEP 50 weak-scalar promotion),
  and the accounting commit mirrors ``LaunchBuffer.commit`` exactly,
  including replaying const/tex accesses through the live caches.
- Scalar kernel arguments stay *symbolic* (bound per replay) unless the
  trace demands their concrete value for indices, masks, trip counts or
  host control flow — then the trace restarts with those slots *baked*
  (part of the variant key), since they shape the recorded accounting.
- Values read back from device data may only reach host control flow as
  a size-1 truth test; the trace records a **guard** with the observed
  outcome.  A replay whose recomputed guard differs raises
  :class:`PlanDivergence`: device writes are rolled back, the plan is
  invalidated, and the launch re-runs on the batched engine.
- Any other untraceable construct (data-dependent addressing or masks,
  side channels past the DSL) aborts the trace; the kernel is marked
  unplannable for its GPU and routes to the existing engine.

Keying and persistence
----------------------
Plans are keyed by kernel fingerprint (qualname + source + closure
cells + defaults), grid/block geometry, the lane budget, and per-arg
signatures (space/dtype/shape/base for arrays, type for scalars); baked
scalars key plan *variants* under the structural key.  A small
process-wide LRU (:data:`SESSION_CAP` plan sets) fronts the artifact
cache (:mod:`repro.core.artifacts`), which persists plan sets as
``plan-<kernel>-<key>.npz`` with an entry/byte budget and mtime-LRU
eviction.  ``--no-cache`` (``set_artifact_cache(None)``) keeps plans
session-only.

Telemetry parity: a replayed launch emits the same ``gpusim.batch.*``
counters and ``BLOCK_BATCHES`` probe entry the batched engine would, so
every existing counter contract holds under ``REPRO_GPU_PLAN=on``;
routing visibility comes from the :data:`PLAN_ROUTES` probe and the
``gpusim.plan.*`` counter family.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
from collections import OrderedDict
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro import telemetry
from repro.common.config import config as runtime_config
from repro.gpusim.batch import BatchBlockCtx, LaunchBuffer, batch_lanes
from repro.gpusim.isa import Category, Space
from repro.gpusim.memory import DeviceArray
from repro.gpusim.trace import LaunchTrace

#: Bump when the plan encoding changes; old persisted plans never match.
PLAN_FORMAT = 1

#: Plan sets kept in the in-process LRU.
SESSION_CAP = 32

#: Baked-scalar variants kept per plan set.
VARIANT_CAP = 8

#: Routing probe: one entry per launch while plan mode is active —
#: ``(kernel_name, "replay" | "trace" | "batch" | "scalar", n_blocks)``.
PLAN_ROUTES: List[Tuple[str, str, int]] = []

#: numpy functions (non-ufuncs) the tracer understands.
_FUNC_REGISTRY = {"where": np.where, "clip": np.clip}
_FUNC_NAMES = {fn: name for name, fn in _FUNC_REGISTRY.items()}

_SCALAR_TYPES = (bool, int, float, np.bool_, np.integer, np.floating)


def plan_enabled() -> bool:
    """Whether launches may use traced plans (``REPRO_GPU_PLAN``).

    On by default (plans only engage when the batched engine is also
    enabled); set ``REPRO_GPU_PLAN=off`` — or
    ``repro.common.config.override(gpu_plan=False)`` — to interpret
    every launch.
    """
    return runtime_config().gpu_plan


def record_route(kernel_name: str, route: str, n_blocks: int) -> None:
    """Record one launch's routing decision (probe + counter)."""
    PLAN_ROUTES.append((kernel_name, route, n_blocks))
    telemetry.count(f"gpusim.plan.route.{kernel_name}.{route}")


class PlanAbort(Exception):
    """The kernel is untraceable; route to the batched interpreter."""


class PlanDivergence(Exception):
    """A replay observed state the plan was not traced under."""


class _NeedsBake(Exception):
    """The trace demanded concrete values for symbolic scalar slots."""

    def __init__(self, slots: FrozenSet[int]):
        super().__init__(f"scalar args {sorted(slots)} shape the trace")
        self.slots = slots


# ----------------------------------------------------------------------
# Ufunc / function resolution
# ----------------------------------------------------------------------
_UFUNC_CACHE: Dict[str, np.ufunc] = {}


def _ufunc(name: str) -> np.ufunc:
    fn = _UFUNC_CACHE.get(name)
    if fn is None:
        fn = getattr(np, name, None)
        if not isinstance(fn, np.ufunc):
            raise PlanDivergence(f"unknown ufunc {name!r} in plan")
        _UFUNC_CACHE[name] = fn
    return fn


def _bcast(value, dtype: np.dtype, shape: tuple) -> np.ndarray:
    """``BatchBlockCtx.const`` minus validation (shapes validated at trace)."""
    arr = np.asarray(value, dtype=dtype)
    if arr.ndim == 0:
        return np.full(shape, arr)
    return np.broadcast_to(arr, shape)


# ----------------------------------------------------------------------
# Trace-time value graph
# ----------------------------------------------------------------------
class PlanBuilder:
    """Accumulates the step schedule and constant pool of one trace."""

    def __init__(self):
        self.steps: List[tuple] = []
        #: Raw operand objects.  ndarrays are deduplicated by identity
        #: (pooling keeps them alive, so ids cannot be recycled); python
        #: and numpy scalars are stored *raw* — coercing them to arrays
        #: would turn NEP 50 weak scalars into strong ones and change
        #: float32 promotion between trace and replay.
        self.pool: List[object] = []
        self._pool_ids: Dict[int, int] = {}
        #: (shape, dtype str) per shared-memory allocation, in order.
        self.shared_specs: List[Tuple[tuple, str]] = []
        self.n_guards = 0

    def emit(self, step: tuple) -> int:
        self.steps.append(step)
        return len(self.steps) - 1

    def value(self, step: tuple, concrete, load_dep: bool,
              scalar_deps: FrozenSet[int]) -> "TracedArray":
        return TracedArray(self, concrete, self.emit(step), load_dep,
                           scalar_deps)

    def pool_idx(self, value) -> int:
        if isinstance(value, np.ndarray):
            j = self._pool_ids.get(id(value))
            if j is None:
                self.pool.append(value)
                j = len(self.pool) - 1
                self._pool_ids[id(value)] = j
            return j
        if not isinstance(value, _SCALAR_TYPES):
            raise PlanAbort(
                f"unsupported operand type {type(value).__name__}"
            )
        self.pool.append(value)
        return len(self.pool) - 1

    def operands(self, inputs) -> Tuple[list, list, bool, FrozenSet[int]]:
        """Encode ufunc/function operands; returns (ops, concretes,
        load_dep, scalar_deps)."""
        ops, cvals = [], []
        load_dep = False
        deps: FrozenSet[int] = frozenset()
        for v in inputs:
            if isinstance(v, TracedArray):
                if v._b is not self:
                    raise PlanAbort("traced value leaked across launches")
                ops.append(("r", v.ref))
                cvals.append(v.concrete)
                load_dep = load_dep or v.load_dep
                deps = deps | v.scalar_deps
            else:
                ops.append(("p", self.pool_idx(v)))
                cvals.append(v)
        return ops, cvals, load_dep, deps


class TracedArray(np.lib.mixins.NDArrayOperatorsMixin):
    """A lazily-traced value flowing through a kernel body.

    Wraps the concrete value the batched engine would compute while
    recording every operation as a plan step.  ``load_dep`` marks values
    derived from device data (must never reach indices, masks or host
    control flow except as a guard); ``scalar_deps`` tracks which
    symbolic scalar argument slots the value depends on.
    """

    __slots__ = ("_b", "concrete", "ref", "load_dep", "scalar_deps")

    def __init__(self, builder: PlanBuilder, concrete, ref: int,
                 load_dep: bool, scalar_deps: FrozenSet[int]):
        self._b = builder
        self.concrete = concrete
        self.ref = ref
        self.load_dep = load_dep
        self.scalar_deps = scalar_deps

    # -- numpy-facing metadata (geometry is trace-static) --------------
    @property
    def dtype(self):
        return np.asarray(self.concrete).dtype

    @property
    def shape(self):
        return np.asarray(self.concrete).shape

    @property
    def ndim(self):
        return np.asarray(self.concrete).ndim

    @property
    def size(self):
        return np.asarray(self.concrete).size

    def astype(self, dtype) -> "TracedArray":
        out = np.asarray(self.concrete).astype(dtype)
        return self._b.value(
            ("astype", self.ref, np.dtype(dtype).str),
            out, self.load_dep, self.scalar_deps,
        )

    # -- traced dispatch ------------------------------------------------
    def __array_ufunc__(self, ufunc, method, *inputs, **kwargs):
        if method != "__call__" or kwargs:
            raise PlanAbort(
                f"untraceable ufunc use: {ufunc.__name__}.{method}"
            )
        ops, cvals, load_dep, deps = self._b.operands(inputs)
        out = ufunc(*cvals)
        return self._b.value(("ufunc", ufunc.__name__, ops), out,
                             load_dep, deps)

    def __array_function__(self, func, types, args, kwargs):
        name = _FUNC_NAMES.get(func)
        if name is None or kwargs or (name == "where" and len(args) != 3):
            raise PlanAbort(
                f"untraceable numpy call: {getattr(func, '__name__', func)}"
            )
        ops, cvals, load_dep, deps = self._b.operands(args)
        out = func(*cvals)
        return self._b.value(("func", name, ops), out, load_dep, deps)

    # -- concretization boundary ---------------------------------------
    def _force(self, why: str):
        """The trace demands a concrete value; bake or abort."""
        if self.load_dep:
            raise PlanAbort(f"{why} depends on device data")
        if self.scalar_deps:
            raise _NeedsBake(self.scalar_deps)
        raise PlanAbort(why)

    def __array__(self, dtype=None, copy=None):
        self._force("concrete array demanded")

    def __bool__(self):
        c = np.asarray(self.concrete)
        if c.size != 1:
            # Same failure the batched engine produces; the launch will
            # route to the interpreter and fall back to the scalar loop.
            raise ValueError(
                "The truth value of an array with more than one element "
                "is ambiguous."
            )
        if self.load_dep:
            flag = bool(c.reshape(())[()])
            self._b.emit(("guard", self.ref, flag))
            self._b.n_guards += 1
            return flag
        self._force("host branch")

    def __index__(self):
        self._force("integer index")

    def __int__(self):
        self._force("int() conversion")

    def __float__(self):
        self._force("float() conversion")

    def __iter__(self):
        self._force("host iteration")

    def __getitem__(self, key):
        self._force("host indexing")

    def __len__(self):
        return len(np.asarray(self.concrete))

    def __repr__(self):
        return (f"TracedArray(ref={self.ref}, load_dep={self.load_dep}, "
                f"scalar_deps={sorted(self.scalar_deps)})")


# ----------------------------------------------------------------------
# Accounting snapshot (mirror of LaunchBuffer.commit)
# ----------------------------------------------------------------------
class PlanAccounting:
    """Everything one launch contributes to its :class:`LaunchTrace`.

    Built from a :class:`LaunchBuffer` *before* that buffer commits
    (:meth:`from_buffer` is pure), and applied by :meth:`commit` with
    the exact semantics of ``LaunchBuffer.commit``: const then tex
    cache accesses replayed through the live caches in (block, seq)
    order, aggregate counters added, and the off-chip transaction
    stream appended in the scalar engine's sequential-block order.
    """

    __slots__ = (
        "issued_warp_insts", "thread_insts", "category_warp_insts",
        "mem_warp_insts", "occupancy_hist", "shared_replays",
        "const_serializations", "const_accesses", "tex_accesses",
        "shared_bytes_per_block", "cache_streams", "gl", "tx_presorted",
    )

    @classmethod
    def from_buffer(cls, buf: LaunchBuffer) -> "PlanAccounting":
        a = cls.__new__(cls)
        a.issued_warp_insts = buf.issued_warp_insts
        a.thread_insts = buf.thread_insts
        a.category_warp_insts = dict(buf.category_warp_insts)
        a.mem_warp_insts = dict(buf.mem_warp_insts)
        a.occupancy_hist = buf.occupancy_hist.copy()
        a.shared_replays = buf.shared_replays
        a.const_serializations = buf.const_serializations
        a.const_accesses = buf.const_accesses
        a.tex_accesses = buf.tex_accesses
        a.shared_bytes_per_block = buf.shared_bytes_per_block
        # Cache-access streams, pre-sorted into the sequential-block
        # order _replay_cache produces (stable sort by block of events
        # appended in seq order).
        a.cache_streams = {}
        for kind in ("const", "tex"):
            events = buf._cache_events[kind]
            if not events:
                a.cache_streams[kind] = None
                continue
            addrs = np.concatenate([e[1] for e in events])
            blocks = np.concatenate([e[2] for e in events])
            seqs = np.repeat(
                np.array([e[0] for e in events], dtype=np.int64),
                np.array([e[1].size for e in events], dtype=np.int64),
            )
            order = np.argsort(blocks, kind="stable")
            a.cache_streams[kind] = (addrs[order], blocks[order],
                                     seqs[order])
        # Global/local transaction parts (concatenated in event order).
        if buf._mem_events:
            a.gl = (
                np.concatenate([e[1] for e in buf._mem_events]),
                np.concatenate([e[2] for e in buf._mem_events]),
                np.concatenate([
                    np.full(e[1].size, e[0], dtype=np.int64)
                    for e in buf._mem_events
                ]),
                np.concatenate([
                    np.full(e[1].size, e[3], dtype=bool)
                    for e in buf._mem_events
                ]),
            )
        else:
            a.gl = None
        # With no cache events the final stream is known now: pre-sort
        # it once so replays skip the lexsort entirely.
        a.tx_presorted = None
        if a.cache_streams["const"] is None and a.cache_streams["tex"] is None:
            if a.gl is not None:
                addrs, blocks, seqs, stores = a.gl
                order = np.lexsort((seqs, blocks))
                a.tx_presorted = (addrs[order], blocks[order],
                                  stores[order])
                a.gl = None
        return a

    def commit(self, launch: LaunchTrace, tex_cache, const_cache) -> None:
        misses = {}
        for kind, cache in (("const", const_cache), ("tex", tex_cache)):
            stream = self.cache_streams[kind]
            if stream is None:
                misses[kind] = None
                n_miss = 0
            else:
                addrs, blocks, seqs = stream
                hits = cache.access(addrs)
                m = ~hits
                misses[kind] = (addrs[m], blocks[m], seqs[m])
                n_miss = int(m.sum())
            if kind == "const":
                launch.const_accesses += self.const_accesses
                launch.const_hits += self.const_accesses - n_miss
            else:
                launch.tex_accesses += self.tex_accesses
                launch.tex_hits += self.tex_accesses - n_miss
        launch.issued_warp_insts += self.issued_warp_insts
        launch.thread_insts += self.thread_insts
        for cat, n in self.category_warp_insts.items():
            launch.category_warp_insts[cat] += n
        for space, n in self.mem_warp_insts.items():
            launch.mem_warp_insts[space] += n
        launch.occupancy_hist += self.occupancy_hist
        launch.shared_replays += self.shared_replays
        launch.const_serializations += self.const_serializations
        launch.shared_bytes_per_block = max(
            launch.shared_bytes_per_block, self.shared_bytes_per_block
        )
        launch._version += 1

        if self.tx_presorted is not None:
            addrs, blocks, stores = self.tx_presorted
            telemetry.count("gpusim.batch.transactions", int(addrs.size))
            launch.record_transaction_stream(addrs, blocks, stores)
            return
        addr_parts, block_parts, seq_parts, store_parts = [], [], [], []
        if self.gl is not None:
            addr_parts.append(self.gl[0])
            block_parts.append(self.gl[1])
            seq_parts.append(self.gl[2])
            store_parts.append(self.gl[3])
        for kind in ("const", "tex"):
            miss = misses[kind]
            if miss is not None and miss[0].size:
                addr_parts.append(miss[0])
                block_parts.append(miss[1])
                seq_parts.append(miss[2])
                store_parts.append(np.zeros(miss[0].size, dtype=bool))
        if not addr_parts:
            return
        addrs = np.concatenate(addr_parts)
        blocks = np.concatenate(block_parts)
        seqs = np.concatenate(seq_parts)
        stores = np.concatenate(store_parts)
        order = np.lexsort((seqs, blocks))
        telemetry.count("gpusim.batch.transactions", int(addrs.size))
        launch.record_transaction_stream(
            addrs[order], blocks[order], stores[order]
        )


# ----------------------------------------------------------------------
# Tracing context
# ----------------------------------------------------------------------
class PlanTracerCtx(BatchBlockCtx):
    """A :class:`BatchBlockCtx` that records a launch plan as it runs.

    Memory ops execute exactly as the batched engine would (same
    device-state evolution, same :class:`LaunchBuffer` accounting) while
    emitting plan steps with the captured flat-index/active-mask arrays;
    loads return :class:`TracedArray` values so downstream arithmetic
    and stores are recorded too.
    """

    def __init__(self, builder: PlanBuilder, slots: Dict[int, tuple],
                 *args):
        super().__init__(*args)
        self._builder = builder
        self._slots = slots

    def _slot_of(self, arr: DeviceArray) -> tuple:
        ref = self._slots.get(id(arr))
        if ref is None:
            raise PlanAbort(
                f"array {arr.name} is not a kernel argument or shared "
                f"allocation"
            )
        return ref

    @staticmethod
    def _plain(value, what: str):
        if isinstance(value, TracedArray):
            value._force(what)
        return value

    # -- shared memory --------------------------------------------------
    def shared(self, shape, dtype=np.float32, name: str = ""):
        arr = super().shared(shape, dtype, name)
        b = self._builder
        j = len(b.shared_specs)
        b.shared_specs.append(
            (tuple(int(x) for x in arr.data.shape), arr.data.dtype.str)
        )
        b.emit(("salloc", j))
        self._slots[id(arr)] = ("shared", j)
        return arr

    # -- memory instructions --------------------------------------------
    def load(self, arr: DeviceArray, idx):
        if not self.mask.any():
            return np.zeros((self.batch, self.nthreads), dtype=arr.dtype)
        idx = self._plain(idx, "load index")
        idx, active, act_idx = self._active_addrs(arr, idx)
        self._account_mem(arr, idx, active, is_store=False)
        flat = np.asarray(self._flat_index(arr, act_idx, active),
                          dtype=np.int64)
        out = np.zeros((self.batch, self.nthreads), dtype=arr.dtype)
        out[active] = arr.data.flat[flat]
        kind, slot = self._slot_of(arr)
        b = self._builder
        step = ("load", kind, slot, b.pool_idx(flat), b.pool_idx(active),
                (self.batch, self.nthreads), arr.dtype.str)
        return b.value(step, out, True, frozenset())

    def _scatter(self, op: str, arr: DeviceArray, idx, values) -> None:
        if not self.mask.any():
            return
        self._reject_local_write(arr)
        idx = self._plain(idx, f"{op} index")
        idx, active, act_idx = self._active_addrs(arr, idx)
        self._account_mem(arr, idx, active, is_store=True)
        b = self._builder
        if isinstance(values, TracedArray):
            if values._b is not b:
                raise PlanAbort("traced value leaked across launches")
            vop = ("r", values.ref)
            vals = self.const(values.concrete, dtype=arr.dtype)
        else:
            vop = ("p", b.pool_idx(values))
            vals = self.const(values, dtype=arr.dtype)
        self._backup(arr)
        flat = np.asarray(self._flat_index(arr, act_idx, active),
                          dtype=np.int64)
        if op == "store":
            arr.data.flat[flat] = vals[active]
        else:
            np.add.at(arr.data.reshape(-1), flat, vals[active])
        kind, slot = self._slot_of(arr)
        b.emit((op, kind, slot, b.pool_idx(flat), b.pool_idx(active),
                vop, arr.dtype.str, (self.batch, self.nthreads)))

    def store(self, arr: DeviceArray, idx, values) -> None:
        self._scatter("store", arr, idx, values)

    def atomic_add(self, arr: DeviceArray, idx, values) -> None:
        self._scatter("atomic", arr, idx, values)

    def block_reduce_sum(self, values, smem: DeviceArray):
        out = super().block_reduce_sum(values, smem)
        kind, slot = self._slot_of(smem)
        if kind != "shared":
            raise PlanAbort("block_reduce_sum through non-shared memory")
        return self._builder.value(
            ("scol0", slot, self.batch), out, True, frozenset()
        )


class _Tracer:
    """One trace attempt: runs the kernel under :class:`PlanTracerCtx`."""

    def __init__(self, gpu, grid: tuple, block: tuple,
                 baked: FrozenSet[int]):
        self._gpu = gpu
        self._grid = grid
        self._block = block
        self.baked = baked
        self.buf = LaunchBuffer()
        self.backups: Dict[int, Tuple[DeviceArray, np.ndarray]] = {}
        self.builder = PlanBuilder()

    def run(self, kernel, args: tuple, n_blocks: int) -> None:
        b = self.builder
        slots: Dict[int, tuple] = {}
        wrapped = []
        for i, a in enumerate(args):
            if isinstance(a, DeviceArray):
                slots[id(a)] = ("arg", i)
                wrapped.append(a)
            elif i in self.baked:
                wrapped.append(a)
            else:
                ref = b.emit(("sload", i))
                wrapped.append(
                    TracedArray(b, a, ref, False, frozenset([i]))
                )
        threads = self._block[0] * self._block[1]
        step = max(1, batch_lanes() // threads)
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            for lo in range(0, n_blocks, step):
                n_batch = min(step, n_blocks - lo)
                with telemetry.span(
                    "batch_pass", blocks=n_batch, lanes=n_batch * threads
                ):
                    self._gpu._allocator.reset(Space.SHARED)
                    ctx = PlanTracerCtx(
                        b, slots, self._gpu, self.buf, self.backups,
                        lo, n_batch, self._grid, self._block,
                    )
                    kernel(ctx, *wrapped)

    def restore(self) -> None:
        for arr, copy in self.backups.values():
            arr.data[...] = copy

    def finalize(self, kernel_name: str) -> "Plan":
        b = self.builder
        return Plan(kernel_name, b.steps, b.pool, b.shared_specs,
                    PlanAccounting.from_buffer(self.buf), b.n_guards)


# ----------------------------------------------------------------------
# Plans and replay
# ----------------------------------------------------------------------
class Plan:
    """One compiled variant: step schedule + pool + accounting."""

    __slots__ = ("kernel_name", "steps", "pool", "shared_specs", "acct",
                 "n_guards")

    def __init__(self, kernel_name, steps, pool, shared_specs, acct,
                 n_guards):
        self.kernel_name = kernel_name
        self.steps = steps
        self.pool = pool
        self.shared_specs = shared_specs
        self.acct = acct
        self.n_guards = n_guards


class PlanSet:
    """All baked-scalar variants of one structural key."""

    def __init__(self, kernel_name: str, bake):
        self.kernel_name = kernel_name
        self.bake = frozenset(bake)
        self.variants: "OrderedDict[str, Plan]" = OrderedDict()


def _replay(plan: Plan, gpu, launch: LaunchTrace, args: tuple) -> None:
    """Execute a plan against the live device state.

    Raises :class:`PlanDivergence` (with device writes rolled back) on a
    guard mismatch or any replay error; commits accounting only after
    every step succeeded.
    """
    steps, pool, shared_specs = plan.steps, plan.pool, plan.shared_specs
    vals: List[object] = [None] * len(steps)
    shared: List[Optional[np.ndarray]] = [None] * len(shared_specs)
    backups: Dict[int, Tuple[DeviceArray, np.ndarray]] = {}

    def operand(o):
        return vals[o[1]] if o[0] == "r" else pool[o[1]]

    try:
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            for si, st in enumerate(steps):
                op = st[0]
                if op == "ufunc":
                    vals[si] = _ufunc(st[1])(*[operand(o) for o in st[2]])
                elif op == "load":
                    src = (args[st[2]].data if st[1] == "arg"
                           else shared[st[2]])
                    out = np.zeros(tuple(st[5]), dtype=np.dtype(st[6]))
                    out[pool[st[4]]] = src.flat[pool[st[3]]]
                    vals[si] = out
                elif op in ("store", "atomic"):
                    v = operand(st[5])
                    vb = _bcast(v, np.dtype(st[6]), tuple(st[7]))
                    flat, act = pool[st[3]], pool[st[4]]
                    if st[1] == "arg":
                        arr = args[st[2]]
                        if id(arr) not in backups:
                            backups[id(arr)] = (arr, arr.data.copy())
                        buf = arr.data
                    else:
                        buf = shared[st[2]]
                    if op == "store":
                        buf.flat[flat] = vb[act]
                    else:
                        np.add.at(buf.reshape(-1), flat, vb[act])
                elif op == "sload":
                    vals[si] = args[st[1]]
                elif op == "func":
                    vals[si] = _FUNC_REGISTRY[st[1]](
                        *[operand(o) for o in st[2]]
                    )
                elif op == "astype":
                    vals[si] = np.asarray(vals[st[1]]).astype(
                        np.dtype(st[2])
                    )
                elif op == "salloc":
                    shape, dt = shared_specs[st[1]]
                    shared[st[1]] = np.zeros(tuple(shape),
                                             dtype=np.dtype(dt))
                elif op == "scol0":
                    vals[si] = (shared[st[1]].reshape(st[2], -1)[:, :1]
                                .astype(np.float64))
                elif op == "guard":
                    c = np.asarray(vals[st[1]])
                    if c.size != 1 or bool(c.reshape(())[()]) != st[2]:
                        raise PlanDivergence(
                            f"host branch diverged at step {si}"
                        )
                else:
                    raise PlanDivergence(f"unknown plan step {op!r}")
    except PlanDivergence:
        for arr, copy in backups.values():
            arr.data[...] = copy
        raise
    except Exception as exc:
        for arr, copy in backups.values():
            arr.data[...] = copy
        raise PlanDivergence(f"replay failed: {exc}") from exc
    plan.acct.commit(launch, gpu.tex_cache, gpu.const_cache)


# ----------------------------------------------------------------------
# Keying
# ----------------------------------------------------------------------
_fp_cache: Dict[object, str] = {}


def _cell_sig(v) -> tuple:
    if isinstance(v, np.ndarray):
        digest = hashlib.sha256(
            np.ascontiguousarray(v).tobytes()
        ).hexdigest()[:12]
        return ("nd", v.dtype.str, list(v.shape), digest)
    if isinstance(v, (bool, int, float, str, bytes, type(None))):
        return (type(v).__name__, repr(v))
    if callable(v):
        return ("fn", getattr(v, "__qualname__", repr(v)))
    return ("obj", type(v).__name__, repr(v))


def _kernel_fp(kernel) -> str:
    """Content fingerprint of a kernel: source + closure + defaults.

    Closure cells and defaults are part of the identity because factory
    -made kernels share source while capturing different parameters.
    """
    fp = _fp_cache.get(kernel)
    if fp is None:
        try:
            src = inspect.getsource(kernel)
        except (OSError, TypeError):
            src = repr(kernel)
        cells = [
            _cell_sig(c.cell_contents)
            for c in (getattr(kernel, "__closure__", None) or ())
        ]
        defaults = [
            _cell_sig(d)
            for d in (getattr(kernel, "__defaults__", None) or ())
        ]
        payload = json.dumps(
            [getattr(kernel, "__qualname__", "?"), src, cells, defaults],
            default=str,
        )
        fp = hashlib.sha256(payload.encode()).hexdigest()[:16]
        _fp_cache[kernel] = fp
    return fp


def _arg_sig(args: tuple) -> Optional[list]:
    """Per-arg structural signature, or None if any arg is unplannable."""
    sig = []
    for a in args:
        if isinstance(a, DeviceArray):
            sig.append(["a", a.space.value, a.data.dtype.str,
                        list(a.data.shape), int(a.base)])
        elif isinstance(a, _SCALAR_TYPES):
            sig.append(["s", type(a).__name__])
        else:
            return None
    return sig


def _primary_key(kernel, grid: tuple, block: tuple, args_sig: list) -> str:
    payload = json.dumps({
        "format": PLAN_FORMAT,
        "kernel": _kernel_fp(kernel),
        "grid": list(grid),
        "block": list(block),
        "lanes": batch_lanes(),
        "args": args_sig,
    }, sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _variant_key(args: tuple, bake: FrozenSet[int]) -> str:
    payload = json.dumps([
        [i, type(args[i]).__name__, repr(args[i])] for i in sorted(bake)
    ])
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


# ----------------------------------------------------------------------
# Session store (in-process LRU in front of the artifact cache)
# ----------------------------------------------------------------------
_session: "OrderedDict[str, PlanSet]" = OrderedDict()


def clear_plans() -> None:
    """Drop every in-process plan (tests; persisted plans unaffected)."""
    _session.clear()


def _session_get(key: str) -> Optional[PlanSet]:
    ps = _session.get(key)
    if ps is not None:
        _session.move_to_end(key)
    return ps


def _session_put(key: str, ps: PlanSet) -> None:
    _session[key] = ps
    _session.move_to_end(key)
    while len(_session) > SESSION_CAP:
        _session.popitem(last=False)
        telemetry.count("gpusim.plan.lru.evict")


# ----------------------------------------------------------------------
# Persistence (npz in the artifact cache)
# ----------------------------------------------------------------------
def _acct_save(acct: PlanAccounting, arrays: dict, prefix: str) -> dict:
    header = {
        "i": {
            "issued": acct.issued_warp_insts,
            "threads": acct.thread_insts,
            "sh_replays": acct.shared_replays,
            "const_ser": acct.const_serializations,
            "const_acc": acct.const_accesses,
            "tex_acc": acct.tex_accesses,
            "sh_bytes": acct.shared_bytes_per_block,
        },
        "cat": {c.name: n for c, n in acct.category_warp_insts.items()},
        "mem": {s.name: n for s, n in acct.mem_warp_insts.items()},
        "has": {
            "const": acct.cache_streams["const"] is not None,
            "tex": acct.cache_streams["tex"] is not None,
            "gl": acct.gl is not None,
            "tx": acct.tx_presorted is not None,
        },
    }
    arrays[prefix + "occ"] = acct.occupancy_hist
    for kind in ("const", "tex"):
        stream = acct.cache_streams[kind]
        if stream is not None:
            for k, arr in enumerate(stream):
                arrays[f"{prefix}{kind}{k}"] = arr
    if acct.gl is not None:
        for k, arr in enumerate(acct.gl):
            arrays[f"{prefix}gl{k}"] = arr
    if acct.tx_presorted is not None:
        for k, arr in enumerate(acct.tx_presorted):
            arrays[f"{prefix}tx{k}"] = arr
    return header


def _acct_load(header: dict, z, prefix: str) -> PlanAccounting:
    a = PlanAccounting.__new__(PlanAccounting)
    i = header["i"]
    a.issued_warp_insts = int(i["issued"])
    a.thread_insts = int(i["threads"])
    a.shared_replays = int(i["sh_replays"])
    a.const_serializations = int(i["const_ser"])
    a.const_accesses = int(i["const_acc"])
    a.tex_accesses = int(i["tex_acc"])
    a.shared_bytes_per_block = int(i["sh_bytes"])
    a.category_warp_insts = {
        Category[name]: int(n) for name, n in header["cat"].items()
    }
    a.mem_warp_insts = {
        Space[name]: int(n) for name, n in header["mem"].items()
    }
    a.occupancy_hist = z[prefix + "occ"]
    has = header["has"]
    a.cache_streams = {}
    for kind in ("const", "tex"):
        if has[kind]:
            a.cache_streams[kind] = tuple(
                z[f"{prefix}{kind}{k}"] for k in range(3)
            )
        else:
            a.cache_streams[kind] = None
    a.gl = (tuple(z[f"{prefix}gl{k}"] for k in range(4))
            if has["gl"] else None)
    a.tx_presorted = (tuple(z[f"{prefix}tx{k}"] for k in range(3))
                      if has["tx"] else None)
    return a


def _save_planset(ps: PlanSet, path: str) -> None:
    arrays: dict = {}
    variants = []
    for vi, (vkey, plan) in enumerate(ps.variants.items()):
        tags = []
        for j, v in enumerate(plan.pool):
            if isinstance(v, np.ndarray):
                tags.append("nd")
            elif isinstance(v, (bool, int, float)):
                tags.append(["py", type(v).__name__])
            else:  # numpy scalar (pool admission guarantees the type)
                tags.append("np")
            arrays[f"v{vi}p{j}"] = np.asarray(v)
        acct_header = _acct_save(plan.acct, arrays, f"v{vi}a")
        variants.append({
            "vkey": vkey,
            "steps": plan.steps,
            "pool": tags,
            "shared": [[list(shape), dt] for shape, dt in plan.shared_specs],
            "n_guards": plan.n_guards,
            "acct": acct_header,
        })
    header = {
        "format": PLAN_FORMAT,
        "kernel": ps.kernel_name,
        "bake": sorted(ps.bake),
        "variants": variants,
    }
    arrays["header"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def _load_planset(path) -> Optional[PlanSet]:
    try:
        with np.load(path, allow_pickle=False) as z:
            header = json.loads(bytes(z["header"]).decode("utf-8"))
            if header.get("format") != PLAN_FORMAT:
                return None
            ps = PlanSet(header["kernel"], header["bake"])
            for vi, vh in enumerate(header["variants"]):
                pool: List[object] = []
                for j, tag in enumerate(vh["pool"]):
                    a = z[f"v{vi}p{j}"]
                    if tag == "nd":
                        pool.append(a)
                    elif tag == "np":
                        pool.append(a[()])
                    else:
                        cast = {"bool": bool, "int": int,
                                "float": float}[tag[1]]
                        pool.append(cast(a[()]))
                steps = [tuple(s) for s in vh["steps"]]
                specs = [(tuple(shape), dt) for shape, dt in vh["shared"]]
                acct = _acct_load(vh["acct"], z, f"v{vi}a")
                ps.variants[vh["vkey"]] = Plan(
                    header["kernel"], steps, pool, specs, acct,
                    int(vh["n_guards"]),
                )
            return ps
    except Exception:
        return None


def _disk_cache():
    from repro.core.artifacts import get_artifact_cache
    return get_artifact_cache()


def _disk_load(kernel_name: str, key: str) -> Optional[PlanSet]:
    cache = _disk_cache()
    if cache is None:
        return None
    path = cache.get_plan_file(kernel_name, key)
    if path is None:
        return None
    ps = _load_planset(path)
    if ps is None:
        telemetry.count("gpusim.plan.load_failed")
    return ps


def _disk_store(kernel_name: str, key: str, ps: PlanSet) -> None:
    cache = _disk_cache()
    if cache is None:
        return
    try:
        cache.put_plan_file(
            kernel_name, key, lambda tmp: _save_planset(ps, tmp)
        )
    except Exception:
        telemetry.count("gpusim.plan.save_failed")


def _disk_drop(kernel_name: str, key: str) -> None:
    cache = _disk_cache()
    if cache is None:
        return
    try:
        os.unlink(cache.plan_path(kernel_name, key))
    except OSError:
        pass


# ----------------------------------------------------------------------
# Launch entry point
# ----------------------------------------------------------------------
def _block_batches() -> list:
    from repro.gpusim.gpu import BLOCK_BATCHES
    return BLOCK_BATCHES


def _count_batched(issued: int, threads: int, n_blocks: int) -> None:
    """The counter set the batched engine emits for a committed launch.

    Replays and trace launches emit the identical ``gpusim.batch.*``
    telemetry so every counter contract holds regardless of routing.
    """
    telemetry.count("gpusim.batch.warp_insts", issued)
    telemetry.count("gpusim.batch.active_lanes", threads)
    telemetry.count("gpusim.batch.launches.batched")
    telemetry.count("gpusim.batch.blocks.batched", n_blocks)


def try_plan(gpu, kernel, launch: LaunchTrace, grid: tuple, block: tuple,
             args: tuple, n_blocks: int) -> bool:
    """Replay or trace a plan for this launch; False routes to the engine.

    On False the launch trace and device memory are untouched and the
    kernel may have been marked unplannable on ``gpu``.
    """
    args_sig = _arg_sig(args)
    if args_sig is None:
        gpu._plan_unplannable.add(kernel)
        return False
    key = _primary_key(kernel, grid, block, args_sig)

    ps = _session_get(key)
    if ps is None:
        ps = _disk_load(launch.kernel_name, key)
        if ps is not None:
            _session_put(key, ps)
    if ps is not None:
        try:
            vkey = _variant_key(args, ps.bake)
            plan = ps.variants.get(vkey)
        except Exception:
            plan = None
        if plan is not None:
            ps.variants.move_to_end(vkey)
            try:
                with telemetry.span(
                    "plan_replay", kernel=launch.kernel_name,
                    blocks=n_blocks,
                ):
                    _replay(plan, gpu, launch, args)
            except PlanDivergence:
                ps.variants.pop(vkey, None)
                _session.pop(key, None)
                _disk_drop(launch.kernel_name, key)
                gpu._plan_unplannable.add(kernel)
                telemetry.count("gpusim.plan.invalidated")
                return False
            _count_batched(plan.acct.issued_warp_insts,
                           plan.acct.thread_insts, n_blocks)
            _block_batches().append(
                (launch.kernel_name, "batched", n_blocks)
            )
            record_route(launch.kernel_name, "replay", n_blocks)
            telemetry.count("gpusim.plan.launches.replayed")
            telemetry.count("gpusim.plan.blocks.replayed", n_blocks)
            return True

    # No usable variant: trace this launch, baking scalar slots the
    # trace turns out to depend on (bounded by the scalar arg count).
    bake = set(ps.bake) if ps is not None else set()
    n_scalars = sum(1 for s in args_sig if s[0] == "s")
    plan = None
    for _ in range(n_scalars + 2):
        tracer = _Tracer(gpu, grid, block, frozenset(bake))
        try:
            tracer.run(kernel, args, n_blocks)
        except _NeedsBake as nb:
            tracer.restore()
            new = set(nb.slots) - bake
            if not new:  # no progress possible; treat as unplannable
                gpu._plan_unplannable.add(kernel)
                telemetry.count("gpusim.plan.launches.aborted")
                return False
            bake |= new
            telemetry.count("gpusim.plan.bakes", len(new))
            continue
        except Exception:
            # PlanAbort, or the same failure the batched engine would
            # hit (per-block host scalars, kernel faults): restore and
            # let the launch re-run on the engine, which reproduces the
            # real error/fallback path.
            tracer.restore()
            gpu._plan_unplannable.add(kernel)
            telemetry.count("gpusim.plan.launches.aborted")
            return False
        plan = tracer.finalize(launch.kernel_name)
        break
    if plan is None:
        gpu._plan_unplannable.add(kernel)
        telemetry.count("gpusim.plan.launches.aborted")
        return False

    # The trace already executed the launch through the real batch
    # machinery: commit its buffer (bit-identical by construction) with
    # the engine's own counter set.
    _count_batched(tracer.buf.issued_warp_insts, tracer.buf.thread_insts,
                   n_blocks)
    tracer.buf.commit(launch, gpu.tex_cache, gpu.const_cache)
    _block_batches().append((launch.kernel_name, "batched", n_blocks))
    record_route(launch.kernel_name, "trace", n_blocks)
    telemetry.count("gpusim.plan.launches.traced")

    if ps is None:
        ps = PlanSet(launch.kernel_name, bake)
    elif ps.bake != frozenset(bake):
        # Variant keys are relative to the bake basis; a wider basis
        # invalidates previously keyed variants.
        ps.bake = frozenset(bake)
        ps.variants.clear()
    vkey = _variant_key(args, ps.bake)
    ps.variants[vkey] = plan
    ps.variants.move_to_end(vkey)
    while len(ps.variants) > VARIANT_CAP:
        ps.variants.popitem(last=False)
    _session_put(key, ps)
    _disk_store(launch.kernel_name, key, ps)
    return True
