"""GPU configurations.

Presets mirror the paper's three machines:

- ``sim_default`` / ``sim_8sm``: the GPGPU-Sim configurations of Table II
  (28 or 8 SMs, SIMD width 32, 32 kB shared memory, 8 memory channels).
- ``gtx280``: 30 SMs of 8 SPs at 1.3 GHz, no general-purpose caches.
- ``gtx480_shared_bias`` / ``gtx480_l1_bias``: Fermi — 15 SMs at 1.4 GHz
  with the 64 kB on-chip memory split 48/16 or 16/48 between shared
  memory and L1, plus a 768 kB unified L2.
"""

from __future__ import annotations

import dataclasses
from typing import Dict


@dataclasses.dataclass(frozen=True)
class GPUConfig:
    """Architectural parameters consumed by the timing model."""

    name: str = "sim-default"
    core_clock_ghz: float = 2.0
    n_sms: int = 28
    warp_size: int = 32
    simd_width: int = 32
    max_threads_per_sm: int = 1024
    max_ctas_per_sm: int = 8
    regs_per_sm: int = 16384
    shared_mem_per_sm: int = 32 * 1024
    model_bank_conflicts: bool = True
    n_mem_channels: int = 8
    mem_clock_ghz: float = 1.2
    bus_width_bytes: int = 16
    mem_latency_cycles: int = 400
    l1_size: int = 0            # 0 disables the L1 (pre-Fermi)
    l1_assoc: int = 4
    l1_latency_cycles: int = 40
    l2_size: int = 0            # 0 disables the L2
    l2_assoc: int = 8
    l2_latency_cycles: int = 150
    launch_overhead_cycles: int = 400
    # Hardware thread-block scheduler (paper future work: "the impact of
    # hardware thread scheduling mechanisms").  "round_robin" deals CTAs
    # across SMs; "chunked" gives each SM a contiguous CTA range, which
    # keeps spatially-adjacent blocks' data in the same L1.
    cta_scheduler: str = "round_robin"

    def replace(self, **kwargs) -> "GPUConfig":
        return dataclasses.replace(self, **kwargs)

    @property
    def peak_bandwidth_gbs(self) -> float:
        """Aggregate DRAM bandwidth in GB/s (DDR: two transfers/cycle)."""
        return self.n_mem_channels * self.bus_width_bytes * 2 * self.mem_clock_ghz

    @property
    def has_l1(self) -> bool:
        return self.l1_size > 0

    @property
    def has_l2(self) -> bool:
        return self.l2_size > 0

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @staticmethod
    def sim_default() -> "GPUConfig":
        """The 28-shader GPGPU-Sim configuration of Table II."""
        return GPUConfig()

    @staticmethod
    def sim_8sm() -> "GPUConfig":
        """The 8-shader variant used in Figure 1."""
        return GPUConfig(name="sim-8sm", n_sms=8)

    @staticmethod
    def gtx280() -> "GPUConfig":
        return GPUConfig(
            name="gtx280",
            core_clock_ghz=1.3,
            n_sms=30,
            simd_width=8,
            max_threads_per_sm=1024,
            max_ctas_per_sm=8,
            regs_per_sm=16384,
            shared_mem_per_sm=16 * 1024,
            n_mem_channels=8,
            mem_clock_ghz=1.1,
            bus_width_bytes=16,
        )

    @staticmethod
    def gtx480_shared_bias() -> "GPUConfig":
        """Fermi with 48 kB shared + 16 kB L1 (the default split)."""
        return GPUConfig(
            name="gtx480-shared-bias",
            core_clock_ghz=1.4,
            n_sms=15,
            simd_width=32,
            max_threads_per_sm=1536,
            max_ctas_per_sm=8,
            regs_per_sm=32768,
            shared_mem_per_sm=48 * 1024,
            n_mem_channels=6,
            mem_clock_ghz=1.85,
            bus_width_bytes=16,
            l1_size=16 * 1024,
            l2_size=768 * 1024,
        )

    @staticmethod
    def gtx480_l1_bias() -> "GPUConfig":
        """Fermi with 16 kB shared + 48 kB L1."""
        return GPUConfig.gtx480_shared_bias().replace(
            name="gtx480-l1-bias",
            shared_mem_per_sm=16 * 1024,
            l1_size=48 * 1024,
        )

    @staticmethod
    def presets() -> Dict[str, "GPUConfig"]:
        return {
            c.name: c
            for c in (
                GPUConfig.sim_default(),
                GPUConfig.sim_8sm(),
                GPUConfig.gtx280(),
                GPUConfig.gtx480_shared_bias(),
                GPUConfig.gtx480_l1_bias(),
            )
        }
