"""Inter-thread-block data sharing on the GPU (paper future work).

Section VII lists "data sharing among threads" as a planned deeper
characterization of the Rodinia GPU implementations.  Intra-block
sharing is visible in the shared-memory instruction mix (Fig. 2); this
module measures the *inter-block* component from the traced global
transaction streams: which DRAM lines are touched by more than one
thread block, and what fraction of traffic they carry.

High inter-block sharing means a workload would benefit from a shared
last-level cache (it is why MUMmer and BFS gain under Fermi's L2 in
Fig. 5) and, conversely, suffers under private per-SM caches.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

import numpy as np

from repro.gpusim.trace import KernelTrace


@dataclasses.dataclass
class GPUSharingStats:
    """Inter-block sharing profile of one application run."""

    total_lines: int
    shared_lines: int            # touched by >1 block
    total_transactions: int
    shared_transactions: int     # to lines touched by >1 block
    mean_blocks_per_line: float
    max_blocks_per_line: int

    @property
    def frac_lines_shared(self) -> float:
        return self.shared_lines / self.total_lines if self.total_lines else 0.0

    @property
    def shared_traffic_ratio(self) -> float:
        if not self.total_transactions:
            return 0.0
        return self.shared_transactions / self.total_transactions

    def as_dict(self) -> Dict[str, float]:
        return {
            "frac_lines_shared": self.frac_lines_shared,
            "shared_traffic_ratio": self.shared_traffic_ratio,
            "mean_blocks_per_line": self.mean_blocks_per_line,
            "max_blocks_per_line": float(self.max_blocks_per_line),
        }


def analyze_gpu_sharing(
    trace: KernelTrace, line_bytes: int = 64
) -> GPUSharingStats:
    """Inter-block sharing over all launches' off-chip transactions.

    Sharing is assessed per launch (blocks of different launches reusing
    a buffer is a pipeline's normal dataflow, not concurrent sharing)
    and aggregated.
    """
    total_lines = shared_lines = 0
    total_tx = shared_tx = 0
    blocks_per_line_sum = 0
    max_blocks = 0
    for lt in trace.launches:
        if lt.n_transactions == 0:
            continue
        n_blocks = max(1, lt.n_blocks)
        # Pass 1 (streaming): the distinct (line, block) pair set.
        uniq_pairs = np.empty(0, dtype=np.int64)
        for addrs, blocks, _ in lt.iter_transaction_chunks():
            lines = addrs // line_bytes
            uniq_pairs = np.union1d(uniq_pairs, lines * n_blocks + blocks)
        pair_lines = uniq_pairs // n_blocks
        uniq_lines, counts = np.unique(pair_lines, return_counts=True)
        shared_set = uniq_lines[counts > 1]
        # Pass 2 (streaming): traffic to the now-known shared lines.
        for addrs, _, _ in lt.iter_transaction_chunks():
            lines = addrs // line_bytes
            shared_tx += int(np.isin(lines, shared_set).sum())
        total_lines += int(uniq_lines.size)
        shared_lines += int(shared_set.size)
        total_tx += int(lt.n_transactions)
        blocks_per_line_sum += int(counts.sum())
        if counts.size:
            max_blocks = max(max_blocks, int(counts.max()))
    return GPUSharingStats(
        total_lines=total_lines,
        shared_lines=shared_lines,
        total_transactions=total_tx,
        shared_transactions=shared_tx,
        mean_blocks_per_line=(
            blocks_per_line_sum / total_lines if total_lines else 0.0
        ),
        max_blocks_per_line=max_blocks,
    )
