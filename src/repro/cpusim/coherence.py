"""Private-cache coherence simulation (extension beyond the paper).

The paper's methodology (after Bienia et al.) uses a single cache shared
by all 8 cores, which makes sharing visible as hit-rate effects but
hides *coherence traffic*.  This module simulates per-core private
caches with a write-invalidate MSI-style protocol over the same merged
trace, reporting invalidations, coherence misses, and the split of
misses into the classic cold / capacity-conflict / coherence classes —
the measurements a private-cache CMP study would add.

Protocol (line granularity):
- A read installs the line Shared in the reader's cache.
- A write installs/promotes the line Modified in the writer's cache and
  invalidates every other copy.
- A miss on a line whose last eviction in this cache was caused by an
  invalidation counts as a *coherence miss*.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Set, Tuple

import numpy as np


@dataclasses.dataclass
class CoherenceStats:
    """Aggregate results of a private-cache coherence run."""

    n_cores: int
    accesses: int
    misses: int
    cold_misses: int
    coherence_misses: int
    invalidations: int
    writebacks: int
    #: Invalidations where the victim had touched the written word
    #: (true communication) vs. only other words of the line (false
    #: sharing — pure line-granularity collateral).
    true_sharing_invalidations: int = 0
    false_sharing_invalidations: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def coherence_miss_fraction(self) -> float:
        return self.coherence_misses / self.misses if self.misses else 0.0

    @property
    def invalidations_per_kiloref(self) -> float:
        if not self.accesses:
            return 0.0
        return 1000.0 * self.invalidations / self.accesses

    @property
    def capacity_misses(self) -> int:
        return self.misses - self.cold_misses - self.coherence_misses

    @property
    def false_sharing_fraction(self) -> float:
        """Fraction of invalidations that are pure false sharing."""
        if not self.invalidations:
            return 0.0
        return self.false_sharing_invalidations / self.invalidations


class _PrivateCache:
    """Set-associative LRU with per-line MSI state (M or S).

    Each resident entry is ``[line, modified, touched_words]`` where
    ``touched_words`` records the word offsets this core accessed during
    the current residency — the information needed to classify an
    incoming invalidation as true or false sharing.
    """

    __slots__ = ("n_sets", "assoc", "sets", "invalidated")

    def __init__(self, size_bytes: int, assoc: int, line_bytes: int):
        self.n_sets = max(1, size_bytes // (assoc * line_bytes))
        self.assoc = assoc
        # set -> list of [line, modified, touched_words] with MRU last.
        self.sets: Dict[int, List[list]] = {}
        # Lines whose most recent departure was an invalidation.
        self.invalidated: Set[int] = set()

    def lookup(self, line: int):
        ways = self.sets.get(line % self.n_sets)
        if not ways:
            return None
        for entry in ways:
            if entry[0] == line:
                return entry
        return None

    def touch(self, entry: list, line: int) -> None:
        ways = self.sets[line % self.n_sets]
        ways.remove(entry)
        ways.append(entry)

    def install(self, line: int, modified: bool, word: int) -> Tuple[bool, bool]:
        """Returns (evicted_dirty, was_invalidation_miss)."""
        was_inval = line in self.invalidated
        self.invalidated.discard(line)
        ways = self.sets.setdefault(line % self.n_sets, [])
        ways.append([line, modified, {word}])
        evicted_dirty = False
        if len(ways) > self.assoc:
            victim = ways.pop(0)
            evicted_dirty = victim[1]
        return evicted_dirty, was_inval

    def invalidate(self, line: int, word: int) -> Tuple[bool, bool]:
        """Remove the line if present.

        Returns ``(was_present, was_true_sharing)`` — true sharing if
        this core had touched the written word during its residency.
        """
        ways = self.sets.get(line % self.n_sets)
        if not ways:
            return False, False
        for entry in ways:
            if entry[0] == line:
                ways.remove(entry)
                self.invalidated.add(line)
                return True, word in entry[2]
        return False, False


def simulate_coherent_caches(
    addrs: np.ndarray,
    tids: np.ndarray,
    writes: np.ndarray,
    cache_bytes_per_core: int = 512 * 1024,
    assoc: int = 4,
    line_bytes: int = 64,
    n_cores: int = 8,
) -> CoherenceStats:
    """Run a merged multithreaded trace through private coherent caches.

    Long traces spread over many sets run on the vectorized engine of
    :mod:`repro.analytics.coherence`; the per-access simulator below
    remains the oracle.
    """
    if addrs.size >= 4096:
        from repro.analytics.coherence import simulate_coherent_caches_batch

        stats = simulate_coherent_caches_batch(
            addrs, tids, writes, cache_bytes_per_core, assoc, line_bytes,
            n_cores,
        )
        if stats is not None:
            return stats
    return simulate_coherent_caches_scalar(
        addrs, tids, writes, cache_bytes_per_core, assoc, line_bytes, n_cores
    )


def simulate_coherent_caches_chunked(
    iter_chunks,
    cache_bytes_per_core: int = 512 * 1024,
    assoc: int = 4,
    line_bytes: int = 64,
    n_cores: int = 8,
) -> CoherenceStats:
    """Streaming coherence run over (addr, tid, is_write) column chunks.

    ``iter_chunks`` is a zero-argument callable returning the chunk
    iterator (e.g. ``machine.iter_trace_chunks``).  Carries the batch
    engine's machine state between chunks; counters are bit-identical to
    one dense :func:`simulate_coherent_caches` run.
    """
    from repro.analytics.coherence import simulate_coherent_caches_batch

    if line_bytes > 512:
        # Touched-word masks don't cover such lines; dense scalar oracle.
        cols = [np.concatenate(c) for c in zip(*iter_chunks())] or [
            np.empty(0, dtype=np.int64)
        ] * 3
        return simulate_coherent_caches_scalar(
            cols[0], cols[1], cols[2], cache_bytes_per_core, assoc,
            line_bytes, n_cores,
        )
    totals = CoherenceStats(n_cores, 0, 0, 0, 0, 0, 0)
    state = None
    for addrs, tids, writes in iter_chunks():
        stats, state = simulate_coherent_caches_batch(
            addrs, tids, writes, cache_bytes_per_core, assoc, line_bytes,
            n_cores, force=True, state=state, return_state=True,
        )
        totals.accesses += stats.accesses
        totals.misses += stats.misses
        totals.cold_misses += stats.cold_misses
        totals.coherence_misses += stats.coherence_misses
        totals.invalidations += stats.invalidations
        totals.writebacks += stats.writebacks
        totals.true_sharing_invalidations += stats.true_sharing_invalidations
        totals.false_sharing_invalidations += stats.false_sharing_invalidations
    return totals


def simulate_coherent_caches_scalar(
    addrs: np.ndarray,
    tids: np.ndarray,
    writes: np.ndarray,
    cache_bytes_per_core: int = 512 * 1024,
    assoc: int = 4,
    line_bytes: int = 64,
    n_cores: int = 8,
) -> CoherenceStats:
    """Per-access reference simulation — the oracle for the batch engine."""
    caches = [_PrivateCache(cache_bytes_per_core, assoc, line_bytes)
              for _ in range(n_cores)]
    seen_lines: Set[int] = set()
    misses = cold = coh = invals = wbs = 0
    true_sh = false_sh = 0
    lines = (addrs // line_bytes).tolist()
    words = ((addrs % line_bytes) // 8).tolist()
    tid_list = tids.tolist()
    wr_list = writes.tolist()
    for line, word, tid, wr in zip(lines, words, tid_list, wr_list):
        core = tid % n_cores
        me = caches[core]
        entry = me.lookup(line)
        if wr:
            # Invalidate all other copies on any write, classifying each
            # by whether the victim had touched the written word.
            for other_core, other in enumerate(caches):
                if other_core == core:
                    continue
                present, was_true = other.invalidate(line, word)
                if present:
                    invals += 1
                    if was_true:
                        true_sh += 1
                    else:
                        false_sh += 1
            if entry is not None:
                entry[1] = True
                entry[2].add(word)
                me.touch(entry, line)
            else:
                misses += 1
                if line not in seen_lines:
                    cold += 1
                evd, was_inval = me.install(line, True, word)
                wbs += evd
                coh += was_inval
        else:
            if entry is not None:
                entry[2].add(word)
                me.touch(entry, line)
            else:
                misses += 1
                if line not in seen_lines:
                    cold += 1
                evd, was_inval = me.install(line, False, word)
                wbs += evd
                coh += was_inval
        seen_lines.add(line)
    return CoherenceStats(
        n_cores=n_cores,
        accesses=len(lines),
        misses=misses,
        cold_misses=cold,
        coherence_misses=coh,
        invalidations=invals,
        writebacks=wbs,
        true_sharing_invalidations=true_sh,
        false_sharing_invalidations=false_sh,
    )
