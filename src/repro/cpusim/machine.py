"""The instrumented machine and thread contexts.

The paper collects its CPU metrics with Pin over 8-thread runs sharing a
single cache.  Here, workloads are written against :class:`ThreadCtx`
(loads, stores, ALU/branch accounting, barriers); the :class:`Machine`
runs the logical threads of a parallel region one after another —
functionally identical for fork-join data-parallel code — and then
interleaves their recorded access batches round-robin in fixed quanta so
the merged trace approximates the concurrent order seen by a shared
cache.
"""

from __future__ import annotations

import dataclasses
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.common.chunkstore import ChunkStore

IndexLike = Union[int, np.ndarray, Sequence[int]]

#: Accesses per thread per interleaving quantum.
DEFAULT_QUANTUM = 64

#: Column layout of the merged machine trace.
TRACE_DTYPES = (np.dtype(np.int64), np.dtype(np.int16), np.dtype(bool))


class HostArray:
    """A typed array in the instrumented address space."""

    def __init__(self, data: np.ndarray, base: int, name: str = ""):
        self.data = data
        self.base = base
        self.name = name or f"arr@{base:#x}"

    @property
    def itemsize(self) -> int:
        return self.data.dtype.itemsize

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    def to_host(self) -> np.ndarray:
        return self.data.copy()

    def __repr__(self) -> str:  # pragma: no cover
        return f"HostArray({self.name}, shape={self.shape})"


@dataclasses.dataclass
class OpCounts:
    """Element-level dynamic operation counts (instruction mix)."""

    alu: int = 0
    branch: int = 0
    load: int = 0
    store: int = 0

    @property
    def total(self) -> int:
        return self.alu + self.branch + self.load + self.store

    @property
    def mem(self) -> int:
        return self.load + self.store

    def mix(self) -> Dict[str, float]:
        t = self.total or 1
        return {
            "alu": self.alu / t,
            "branch": self.branch / t,
            "load": self.load / t,
            "store": self.store / t,
        }

    def add(self, other: "OpCounts") -> None:
        self.alu += other.alu
        self.branch += other.branch
        self.load += other.load
        self.store += other.store


class ThreadCtx:
    """One logical thread of a parallel region."""

    def __init__(self, machine: "Machine", tid: int, nthreads: int):
        self.machine = machine
        self.tid = tid
        self.nthreads = nthreads
        self.counts = OpCounts()
        self._addr_chunks: List[np.ndarray] = []
        self._write_chunks: List[np.ndarray] = []

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def alu(self, n: int = 1) -> None:
        """Charge ``n`` arithmetic/logic operations."""
        self.counts.alu += int(n)

    def branch(self, n: int = 1) -> None:
        """Charge ``n`` conditional branches."""
        self.counts.branch += int(n)

    def _record(self, addrs: np.ndarray, is_write: bool) -> None:
        self._addr_chunks.append(addrs)
        self._write_chunks.append(np.full(addrs.size, is_write, dtype=bool))

    def _addrs_for(self, arr: HostArray, idx: IndexLike) -> np.ndarray:
        flat = np.asarray(idx, dtype=np.int64).reshape(-1)
        if flat.size and (flat.min() < 0 or flat.max() >= arr.size):
            bad = flat[(flat < 0) | (flat >= arr.size)][0]
            raise IndexError(
                f"thread {self.tid}: index {bad} out of bounds for "
                f"{arr.name} (size {arr.size})"
            )
        return arr.base + flat * arr.itemsize

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def load(self, arr: HostArray, idx: IndexLike) -> np.ndarray:
        """Instrumented gather; returns the loaded values."""
        addrs = self._addrs_for(arr, idx)
        self.counts.load += addrs.size
        self._record(addrs, False)
        flat = np.asarray(idx, dtype=np.int64).reshape(-1)
        vals = arr.data.reshape(-1)[flat]
        shape = np.shape(idx)
        return vals.reshape(shape) if shape else vals[0]

    def store(self, arr: HostArray, idx: IndexLike, values) -> None:
        """Instrumented scatter."""
        addrs = self._addrs_for(arr, idx)
        self.counts.store += addrs.size
        self._record(addrs, True)
        flat = np.asarray(idx, dtype=np.int64).reshape(-1)
        vals = np.broadcast_to(
            np.asarray(values, dtype=arr.data.dtype), flat.shape
        ).reshape(-1)
        arr.data.reshape(-1)[flat] = vals

    def update(self, arr: HostArray, idx: IndexLike, fn: Callable) -> None:
        """Read-modify-write: ``arr[idx] = fn(arr[idx])``."""
        vals = self.load(arr, idx)
        self.alu(np.asarray(idx).size if np.ndim(idx) else 1)
        self.store(arr, idx, fn(vals))

    # ------------------------------------------------------------------
    # Work partitioning
    # ------------------------------------------------------------------
    def chunk(self, n: int) -> range:
        """This thread's block-partitioned slice of ``range(n)``."""
        per = (n + self.nthreads - 1) // self.nthreads
        lo = min(n, self.tid * per)
        hi = min(n, lo + per)
        return range(lo, hi)

    def strided(self, n: int) -> range:
        """This thread's cyclic (round-robin) slice of ``range(n)``."""
        return range(self.tid, n, self.nthreads)


class Machine:
    """Instrumented shared-memory machine (default 8 threads)."""

    def __init__(
        self,
        n_threads: int = 8,
        line_size: int = 64,
        quantum: int = DEFAULT_QUANTUM,
    ):
        self.n_threads = n_threads
        self.line_size = line_size
        self.quantum = quantum
        self._next_addr = 0x1000_0000
        self.counts = OpCounts()
        # Per-thread dynamic instruction totals (for load-balance analysis).
        self.thread_insts = np.zeros(n_threads, dtype=np.int64)
        # Merged (addr, tid, is_write) trace as fixed-size column chunks
        # that spill to compressed segments past the trace budget.
        self._trace = ChunkStore(TRACE_DTYPES, label="cpu")

    # ------------------------------------------------------------------
    # Memory management
    # ------------------------------------------------------------------
    def array(self, data: np.ndarray, name: str = "") -> HostArray:
        buf = np.array(data)
        base = self._next_addr
        self._next_addr += (buf.nbytes + 255) // 256 * 256
        return HostArray(buf, base, name)

    def alloc(self, shape, dtype=np.float64, name: str = "") -> HostArray:
        return self.array(np.zeros(shape, dtype=dtype), name)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def parallel(self, fn: Callable, *args, n_threads: Optional[int] = None) -> list:
        """Run ``fn(thread_ctx, *args)`` on each logical thread.

        Threads execute sequentially (fork-join semantics); their access
        batches are interleaved round-robin in ``quantum``-sized slices
        into the machine trace.  Returns the per-thread return values.
        """
        nt = n_threads or self.n_threads
        ctxs = [ThreadCtx(self, tid, nt) for tid in range(nt)]
        results = [fn(ctx, *args) for ctx in ctxs]
        self._merge_region(ctxs)
        return results

    def serial(self, fn: Callable, *args):
        """Run a sequential phase on thread 0."""
        ctx = ThreadCtx(self, 0, 1)
        result = fn(ctx, *args)
        self._merge_region([ctx])
        return result

    def _merge_region(self, ctxs: List[ThreadCtx]) -> None:
        per_thread = []
        for ctx in ctxs:
            self.counts.add(ctx.counts)
            if ctx.tid < self.n_threads:
                self.thread_insts[ctx.tid] += ctx.counts.total
            if ctx._addr_chunks:
                per_thread.append(
                    (
                        ctx.tid,
                        np.concatenate(ctx._addr_chunks),
                        np.concatenate(ctx._write_chunks),
                    )
                )
        if not per_thread:
            return
        if len(per_thread) == 1:
            tid, addrs, writes = per_thread[0]
            self._trace.append(
                addrs, np.full(addrs.size, tid, dtype=np.int16), writes
            )
            return
        q = self.quantum
        cursors = [0] * len(per_thread)
        sizes = [t[1].size for t in per_thread]
        out_a, out_t, out_w = [], [], []
        remaining = sum(sizes)
        while remaining > 0:
            for i, (tid, addrs, writes) in enumerate(per_thread):
                c = cursors[i]
                if c >= sizes[i]:
                    continue
                hi = min(sizes[i], c + q)
                out_a.append(addrs[c:hi])
                out_t.append(np.full(hi - c, tid, dtype=np.int16))
                out_w.append(writes[c:hi])
                remaining -= hi - c
                cursors[i] = hi
        self._trace.append(
            np.concatenate(out_a),
            np.concatenate(out_t),
            np.concatenate(out_w),
        )

    # ------------------------------------------------------------------
    # Trace access
    # ------------------------------------------------------------------
    def trace(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(addr, tid, is_write) arrays of the merged access trace.

        Dense materialization — the oracle/compat view.  Streaming
        consumers iterate :meth:`iter_trace_chunks` so spilled chunks
        never re-assemble in memory.
        """
        return self._trace.columns()

    def iter_trace_chunks(
        self,
    ) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """(addr, tid, is_write) column chunks in merged-trace order."""
        return self._trace.iter_chunks()

    @property
    def n_accesses(self) -> int:
        return self._trace.n_rows

    def data_footprint_pages(self, page_bytes: int = 4096) -> int:
        """Distinct data pages touched (Figure 12)."""
        pages: np.ndarray = np.empty(0, dtype=np.int64)
        for addrs, _, _ in self.iter_trace_chunks():
            pages = np.union1d(pages, addrs // page_bytes)
        return int(pages.size)

    def lines(self) -> np.ndarray:
        """Cache-line index of every access."""
        return self.trace()[0] // self.line_size

    def load_imbalance(self) -> float:
        """Max/mean dynamic instructions across threads (1.0 = perfect).

        Bienia-style parallelization-quality measure: a value of 2.0
        means the busiest thread executed twice the average, i.e. the
        parallel section's critical path is ~2x the balanced optimum.
        """
        busy = self.thread_insts[self.thread_insts > 0]
        if busy.size == 0:
            return 1.0
        return float(busy.max() / busy.mean())
