"""Exact set-associative shared-cache simulation.

The paper's working-set/sharing methodology (after Bienia et al. [4])
uses an 8-core processor with a single shared cache, 4-way associative
with 64-byte lines, swept from 128 kB to 16 MB.  :class:`SharedCache`
simulates one such cache over the merged multithreaded trace; the faster
reuse-distance profile (:mod:`repro.cpusim.reuse`) provides the full
sweep, validated against this exact simulator in tests.

Whole-trace runs from a cold cache dispatch to the vectorized way-matrix
engine (:mod:`repro.analytics.cache`) when the trace spreads over enough
sets; the per-access scalar path below remains the oracle (its per-set
LRU is an ``OrderedDict``, so hit promotion and eviction are O(1) rather
than the O(assoc) ``list.remove``/``pop(0)`` dance).
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

#: The paper's cache-size sweep (bytes).
PAPER_CACHE_SIZES = tuple(128 * 1024 * (2 ** i) for i in range(8))


@dataclasses.dataclass
class CacheStats:
    accesses: int = 0
    misses: int = 0
    cold_misses: int = 0
    evictions: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class SharedCache:
    """Shared set-associative LRU cache over byte addresses."""

    def __init__(self, size_bytes: int, assoc: int = 4, line_bytes: int = 64):
        if size_bytes < assoc * line_bytes:
            raise ValueError("cache smaller than one set")
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.n_sets = size_bytes // (assoc * line_bytes)
        # set index -> OrderedDict of resident lines, LRU first.
        self._sets: Dict[int, "OrderedDict[int, None]"] = {}
        self._seen: set = set()
        self.stats = CacheStats()

    def access_line(self, line: int) -> bool:
        """Access one line address; returns True on hit."""
        st = self.stats
        st.accesses += 1
        set_idx = line % self.n_sets
        ways = self._sets.get(set_idx)
        if ways is None:
            ways = OrderedDict()
            self._sets[set_idx] = ways
        if line in ways:
            ways.move_to_end(line)
            return True
        st.misses += 1
        if line not in self._seen:
            st.cold_misses += 1
            self._seen.add(line)
        ways[line] = None
        if len(ways) > self.assoc:
            ways.popitem(last=False)
            st.evictions += 1
        return False

    def run(
        self, addrs: np.ndarray, record_hits: bool = True
    ) -> Optional[np.ndarray]:
        """Run a byte-address trace; returns the per-access hit mask.

        With ``record_hits=False`` the mask is neither built nor
        returned — the fast path for stats-only callers.
        """
        if self._batchable(addrs.size):
            result = self._run_batch(addrs, record_hits)
            if result is not None:
                hits, ran_batch = result
                return hits
        lines = (addrs // self.line_bytes).tolist()
        access = self.access_line
        if not record_hits:
            for line in lines:
                access(line)
            return None
        out = np.empty(len(lines), dtype=bool)
        for i, line in enumerate(lines):
            out[i] = access(line)
        return out

    # ------------------------------------------------------------------
    # Vectorized whole-trace path
    # ------------------------------------------------------------------
    def _batchable(self, n: int) -> bool:
        """Batch for long runs — warm state imports into the way matrix."""
        return n >= 4096

    def _run_batch(self, addrs, record_hits):
        from repro.analytics.cache import (
            EMPTY_LINE,
            batch_worthwhile,
            partition_by_set,
            simulate_lru_sets,
        )

        lines = (addrs // self.line_bytes).astype(np.int64)
        part = partition_by_set(lines % self.n_sets)
        if not batch_worthwhile(lines.size, part.counts):
            return None
        init_ways = init_lengths = None
        if self._sets:
            G = part.n_groups
            init_ways = np.full((G, self.assoc), EMPTY_LINE, dtype=np.int64)
            init_lengths = np.zeros(G, dtype=np.int64)
            for g, sid in enumerate(part.set_ids.tolist()):
                ways = self._sets.get(sid)
                if ways:
                    resident = list(ways)  # LRU first
                    init_lengths[g] = len(resident)
                    init_ways[g, : len(resident)] = resident[::-1]
        res = simulate_lru_sets(
            lines[part.order],
            part.starts,
            part.counts,
            self.assoc,
            need_hits=record_hits,
            init_ways=init_ways,
            init_lengths=init_lengths,
        )
        st = self.stats
        st.accesses += int(lines.size)
        misses = int(res.miss_per_group.sum())
        st.misses += misses
        uniq = np.unique(lines)
        if self._seen:
            new_lines = [l for l in uniq.tolist() if l not in self._seen]
            st.cold_misses += len(new_lines)
            self._seen.update(new_lines)
        else:
            st.cold_misses += int(uniq.size)
            self._seen.update(uniq.tolist())
        # Every miss installs a line; occupancy growth accounts for the
        # installs that displaced nothing — the rest evicted.
        init_occupancy = 0 if init_lengths is None else int(init_lengths.sum())
        st.evictions += misses - (int(res.lengths.sum()) - init_occupancy)
        for g in range(part.n_groups):
            length = int(res.lengths[g])
            if length:
                # Way rows are MRU-first; the scalar dict is LRU-first.
                self._sets[int(part.set_ids[g])] = OrderedDict(
                    (int(line), None)
                    for line in res.ways[g, :length][::-1]
                )
        if record_hits:
            hits = np.empty(lines.size, dtype=bool)
            hits[part.order] = res.hits_sorted
            return hits, True
        return None, True

    def resident_lines(self) -> set:
        """Lines currently resident (for sharing-in-cache analyses)."""
        resident = set()
        for ways in self._sets.values():
            resident.update(ways)
        return resident


def simulate_shared_cache(
    addrs: np.ndarray,
    size_bytes: int,
    assoc: int = 4,
    line_bytes: int = 64,
) -> CacheStats:
    """Convenience wrapper: stats of one trace through one cache."""
    cache = SharedCache(size_bytes, assoc, line_bytes)
    cache.run(addrs, record_hits=False)
    return cache.stats


def miss_rates_exact(
    addrs: np.ndarray,
    sizes: Tuple[int, ...] = PAPER_CACHE_SIZES,
    assoc: int = 4,
    line_bytes: int = 64,
) -> Dict[int, float]:
    """Exact miss rate at each cache size.

    The batch sweep shares the per-set partitioning across sizes (each
    doubling refines the previous partition in O(n)); results are
    identical to one scalar simulation per size.
    """
    from repro.analytics.cache import miss_rates_exact_batch

    return miss_rates_exact_batch(addrs, sizes, assoc, line_bytes)
