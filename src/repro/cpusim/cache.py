"""Exact set-associative shared-cache simulation.

The paper's working-set/sharing methodology (after Bienia et al. [4])
uses an 8-core processor with a single shared cache, 4-way associative
with 64-byte lines, swept from 128 kB to 16 MB.  :class:`SharedCache`
simulates one such cache over the merged multithreaded trace; the faster
reuse-distance profile (:mod:`repro.cpusim.reuse`) provides the full
sweep, validated against this exact simulator in tests.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

import numpy as np

#: The paper's cache-size sweep (bytes).
PAPER_CACHE_SIZES = tuple(128 * 1024 * (2 ** i) for i in range(8))


@dataclasses.dataclass
class CacheStats:
    accesses: int = 0
    misses: int = 0
    cold_misses: int = 0
    evictions: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class SharedCache:
    """Shared set-associative LRU cache over byte addresses."""

    def __init__(self, size_bytes: int, assoc: int = 4, line_bytes: int = 64):
        if size_bytes < assoc * line_bytes:
            raise ValueError("cache smaller than one set")
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.n_sets = size_bytes // (assoc * line_bytes)
        self._sets: Dict[int, list] = {}
        self._seen: set = set()
        self.stats = CacheStats()

    def access_line(self, line: int) -> bool:
        """Access one line address; returns True on hit."""
        st = self.stats
        st.accesses += 1
        set_idx = line % self.n_sets
        ways = self._sets.get(set_idx)
        if ways is None:
            ways = []
            self._sets[set_idx] = ways
        if line in ways:
            ways.remove(line)
            ways.append(line)
            return True
        st.misses += 1
        if line not in self._seen:
            st.cold_misses += 1
            self._seen.add(line)
        ways.append(line)
        if len(ways) > self.assoc:
            ways.pop(0)
            st.evictions += 1
        return False

    def run(self, addrs: np.ndarray) -> np.ndarray:
        """Run a byte-address trace; returns per-access hit mask."""
        lines = (addrs // self.line_bytes).tolist()
        out = np.empty(len(lines), dtype=bool)
        access = self.access_line
        for i, line in enumerate(lines):
            out[i] = access(line)
        return out

    def resident_lines(self) -> set:
        """Lines currently resident (for sharing-in-cache analyses)."""
        resident = set()
        for ways in self._sets.values():
            resident.update(ways)
        return resident


def simulate_shared_cache(
    addrs: np.ndarray,
    size_bytes: int,
    assoc: int = 4,
    line_bytes: int = 64,
) -> CacheStats:
    """Convenience wrapper: stats of one trace through one cache."""
    cache = SharedCache(size_bytes, assoc, line_bytes)
    cache.run(addrs)
    return cache.stats


def miss_rates_exact(
    addrs: np.ndarray,
    sizes: Tuple[int, ...] = PAPER_CACHE_SIZES,
    assoc: int = 4,
    line_bytes: int = 64,
) -> Dict[int, float]:
    """Exact miss rate at each cache size (one pass per size)."""
    out = {}
    for size in sizes:
        out[size] = simulate_shared_cache(addrs, size, assoc, line_bytes).miss_rate
    return out
