"""Instruction-footprint measurement (Figure 11 substitute).

The paper measures the number of distinct 64-byte x86 instruction blocks
touched during execution.  Our workloads are Python, so the honest
equivalent is the executed *bytecode* footprint: while a workload runs
under the tracer, every Python code object entered contributes its
``co_code`` bytes; the footprint is the total in 64-byte blocks.  Only
frames from the workload package are counted (the instrumentation
machinery is excluded), mirroring Pin's per-image filtering.

The substitution is documented in DESIGN.md; absolute values are not
comparable to x86 but relative workload ordering is reported in
EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
from types import CodeType, FrameType
from typing import Optional, Set


class CodeFootprintTracer:
    """Collects executed code objects via ``sys.setprofile``.

    Use as a context manager around the workload run::

        tracer = CodeFootprintTracer()
        with tracer:
            run_workload(...)
        blocks = tracer.footprint_blocks()
    """

    def __init__(self, path_filter: str = "workloads", block_bytes: int = 64):
        self.path_filter = path_filter
        self.block_bytes = block_bytes
        self._codes: Set[CodeType] = set()
        self._prev = None

    def _profile(self, frame: FrameType, event: str, arg) -> None:
        if event == "call":
            code = frame.f_code
            if self.path_filter in code.co_filename:
                self._codes.add(code)

    def __enter__(self) -> "CodeFootprintTracer":
        self._prev = sys.getprofile()
        sys.setprofile(self._profile)
        return self

    def __exit__(self, *exc) -> None:
        sys.setprofile(self._prev)

    @property
    def code_bytes(self) -> int:
        return sum(len(code.co_code) for code in self._codes)

    @property
    def n_functions(self) -> int:
        return len(self._codes)

    def footprint_blocks(self) -> int:
        """Distinct instruction blocks (of ``block_bytes``) executed."""
        return sum(
            (len(code.co_code) + self.block_bytes - 1) // self.block_bytes
            for code in self._codes
        )
