"""Assembled CPU-side characterization of one workload run.

``characterize_trace`` bundles the paper's per-workload CPU metrics —
instruction mix, the miss-rate curve over the paper's eight cache sizes,
the exact 4 MB miss rate (Figure 10), sharing statistics, and data/code
footprints — into one :class:`CPUMetrics` record, which feeds the
feature vectors of :mod:`repro.core.features`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro.cpusim.cache import PAPER_CACHE_SIZES, simulate_shared_cache
from repro.cpusim.machine import Machine
from repro.cpusim.reuse import miss_rate_curve
from repro.cpusim.sharing import SharingStats, analyze_sharing

#: Figure 10's cache configuration.
FIG10_CACHE_BYTES = 4 * 1024 * 1024


@dataclasses.dataclass
class CPUMetrics:
    """Characterization record of one workload run."""

    name: str
    inst_mix: Dict[str, float]
    total_insts: int
    mem_refs: int
    miss_curve: Dict[int, float]
    miss_rate_4mb: float
    sharing: SharingStats
    data_footprint_4kb: int
    code_footprint_64b: int

    def working_set_features(self) -> Dict[str, float]:
        return {f"miss@{size//1024}kB": rate for size, rate in self.miss_curve.items()}

    def mix_features(self) -> Dict[str, float]:
        return dict(self.inst_mix)

    def sharing_features(self) -> Dict[str, float]:
        return self.sharing.features()

    def all_features(self) -> Dict[str, float]:
        out = {}
        out.update(self.mix_features())
        out.update(self.working_set_features())
        out.update(self.sharing_features())
        return out


def characterize_trace(
    machine: Machine,
    name: str = "",
    code_footprint_64b: int = 0,
    exact_4mb: bool = True,
) -> CPUMetrics:
    """Compute all CPU metrics from a machine's accumulated trace."""
    addrs, tids, writes = machine.trace()
    curve = miss_rate_curve(addrs, PAPER_CACHE_SIZES, machine.line_size)
    if exact_4mb and addrs.size:
        rate_4mb = simulate_shared_cache(
            addrs, FIG10_CACHE_BYTES, assoc=4, line_bytes=machine.line_size
        ).miss_rate
    else:
        rate_4mb = curve.get(FIG10_CACHE_BYTES, 0.0)
    return CPUMetrics(
        name=name,
        inst_mix=machine.counts.mix(),
        total_insts=machine.counts.total,
        mem_refs=machine.counts.mem,
        miss_curve=curve,
        miss_rate_4mb=rate_4mb,
        sharing=analyze_sharing(addrs, tids, writes, machine.line_size),
        data_footprint_4kb=machine.data_footprint_pages(),
        code_footprint_64b=code_footprint_64b,
    )
