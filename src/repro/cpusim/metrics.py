"""Assembled CPU-side characterization of one workload run.

``characterize_trace`` bundles the paper's per-workload CPU metrics —
instruction mix, the miss-rate curve over the paper's eight cache sizes,
the exact 4 MB miss rate (Figure 10), sharing statistics, and data/code
footprints — into one :class:`CPUMetrics` record, which feeds the
feature vectors of :mod:`repro.core.features`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro.cpusim.cache import PAPER_CACHE_SIZES
from repro.cpusim.machine import Machine
from repro.cpusim.sharing import SharingStats

#: Figure 10's cache configuration.
FIG10_CACHE_BYTES = 4 * 1024 * 1024


@dataclasses.dataclass
class CPUMetrics:
    """Characterization record of one workload run."""

    name: str
    inst_mix: Dict[str, float]
    total_insts: int
    mem_refs: int
    miss_curve: Dict[int, float]
    miss_rate_4mb: float
    sharing: SharingStats
    data_footprint_4kb: int
    code_footprint_64b: int

    def working_set_features(self) -> Dict[str, float]:
        return {f"miss@{size//1024}kB": rate for size, rate in self.miss_curve.items()}

    def mix_features(self) -> Dict[str, float]:
        return dict(self.inst_mix)

    def sharing_features(self) -> Dict[str, float]:
        return self.sharing.features()

    def all_features(self) -> Dict[str, float]:
        out = {}
        out.update(self.mix_features())
        out.update(self.working_set_features())
        out.update(self.sharing_features())
        return out


def characterize_trace(
    machine: Machine,
    name: str = "",
    code_footprint_64b: int = 0,
    exact_4mb: bool = True,
) -> CPUMetrics:
    """Compute all CPU metrics from a machine's accumulated trace.

    Streams the trace chunk by chunk — every analysis (reuse curve, the
    exact 4 MB cache, sharing) carries its state between chunks — so a
    spilled out-of-core trace is characterized without re-materializing
    it; results are bit-identical to the dense whole-trace path.
    """
    from repro.analytics.chunked import StreamingReuse, StreamingSharing
    from repro.cpusim.cache import SharedCache
    from repro.cpusim.reuse import curve_from_histogram

    reuse = StreamingReuse(machine.line_size)
    sharing = StreamingSharing(machine.line_size)
    cache4 = (
        SharedCache(FIG10_CACHE_BYTES, assoc=4, line_bytes=machine.line_size)
        if exact_4mb
        else None
    )
    for addrs, tids, writes in machine.iter_trace_chunks():
        reuse.update(addrs)
        sharing.update(addrs, tids, writes)
        if cache4 is not None:
            cache4.run(addrs, record_hits=False)
    hist, cold = reuse.result()
    curve = curve_from_histogram(
        hist, cold, PAPER_CACHE_SIZES, machine.line_size
    )
    if cache4 is not None and machine.n_accesses:
        rate_4mb = cache4.stats.miss_rate
    else:
        rate_4mb = curve.get(FIG10_CACHE_BYTES, 0.0)
    return CPUMetrics(
        name=name,
        inst_mix=machine.counts.mix(),
        total_insts=machine.counts.total,
        mem_refs=machine.counts.mem,
        miss_curve=curve,
        miss_rate_4mb=rate_4mb,
        sharing=sharing.result(machine.iter_trace_chunks),
        data_footprint_4kb=machine.data_footprint_pages(),
        code_footprint_64b=code_footprint_64b,
    )
