"""Working-set identification from miss-rate curves.

Bienia et al. [4] — whose methodology the paper adopts — identify each
workload's *working sets* (WS1, WS2) as the cache sizes where the
miss-rate curve drops sharply: the plateaus between drops are stable
regimes, the drops mark a working set becoming cache-resident.  This
module detects those knees from the reuse-distance miss curve, giving
the "how much cache does this benchmark want" numbers that architects
read off Figure 8's underlying data.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.cpusim.cache import PAPER_CACHE_SIZES
from repro.cpusim.reuse import curve_from_histogram, reuse_distance_histogram


@dataclasses.dataclass
class WorkingSet:
    """One detected working set."""

    size_bytes: int            # cache size at which it becomes resident
    miss_rate_before: float    # plateau above the knee
    miss_rate_after: float     # plateau below the knee

    @property
    def drop(self) -> float:
        """Absolute miss-rate reduction when this working set fits."""
        return self.miss_rate_before - self.miss_rate_after


def _fine_size_grid(
    points_per_octave: int, min_size: int, max_size: int
) -> List[int]:
    sizes: List[int] = []
    size = min_size
    while size <= max_size:
        for step in range(points_per_octave):
            s = int(size * 2 ** (step / points_per_octave))
            if s <= max_size:
                sizes.append(s)
        size *= 2
    return sorted(set(sizes))


def fine_miss_curve(
    addrs: np.ndarray,
    line_bytes: int = 64,
    points_per_octave: int = 2,
    min_size: int = 16 * 1024,
    max_size: int = 32 * 1024 * 1024,
) -> Dict[int, float]:
    """Miss rate on a fine logarithmic grid of cache sizes.

    One reuse-distance pass serves every size (stack inclusion), so the
    fine grid costs no more than the paper's eight points.
    """
    hist, cold = reuse_distance_histogram(addrs, line_bytes)
    grid = _fine_size_grid(points_per_octave, min_size, max_size)
    return curve_from_histogram(hist, cold, tuple(grid), line_bytes)


def fine_miss_curve_chunked(
    iter_chunks,
    line_bytes: int = 64,
    points_per_octave: int = 2,
    min_size: int = 16 * 1024,
    max_size: int = 32 * 1024 * 1024,
) -> Dict[int, float]:
    """Streaming :func:`fine_miss_curve` over (addr, ...) column chunks."""
    from repro.analytics.chunked import reuse_histogram_chunked

    hist, cold = reuse_histogram_chunked(iter_chunks, line_bytes)
    grid = _fine_size_grid(points_per_octave, min_size, max_size)
    return curve_from_histogram(hist, cold, tuple(grid), line_bytes)


def detect_working_sets(
    curve: Dict[int, float],
    min_drop_fraction: float = 0.2,
    max_sets: int = 3,
) -> List[WorkingSet]:
    """Knees of a miss-rate curve.

    A knee is a size where the miss rate falls by at least
    ``min_drop_fraction`` of the total curve range within one grid step.
    Returns up to ``max_sets`` working sets, largest drop first, then
    re-sorted by size.
    """
    sizes = sorted(curve)
    if len(sizes) < 2:
        return []
    rates = np.array([curve[s] for s in sizes])
    total_range = rates.max() - rates.min()
    if total_range <= 0:
        return []
    drops = rates[:-1] - rates[1:]
    knees = [
        WorkingSet(sizes[i + 1], float(rates[i]), float(rates[i + 1]))
        for i in range(len(drops))
        if drops[i] >= min_drop_fraction * total_range
    ]
    knees.sort(key=lambda wsp: -wsp.drop)
    knees = knees[:max_sets]
    knees.sort(key=lambda wsp: wsp.size_bytes)
    # Merge knees on adjacent grid points (one physical working set can
    # straddle a grid boundary).
    merged: List[WorkingSet] = []
    for ws in knees:
        if merged and ws.size_bytes <= merged[-1].size_bytes * 2:
            prev = merged[-1]
            merged[-1] = WorkingSet(
                prev.size_bytes,
                max(prev.miss_rate_before, ws.miss_rate_before),
                min(prev.miss_rate_after, ws.miss_rate_after),
            )
        else:
            merged.append(ws)
    return merged


def summarize(addrs: np.ndarray, line_bytes: int = 64) -> List[WorkingSet]:
    """Convenience: fine curve + knee detection in one call."""
    return detect_working_sets(fine_miss_curve(addrs, line_bytes))
