"""Pin-like CPU instrumentation substrate.

Multithreaded (OpenMP-style) workloads run against a :class:`Machine`:
each logical thread's instrumented loads/stores append exact address
batches, which the machine interleaves round-robin in fixed quanta to
approximate concurrent execution on the paper's 8-core shared-cache
machine.  Analyses over the merged trace reproduce the paper's CPU-side
metrics: instruction mix, working sets (miss rate over cache sizes),
sharing behaviour, and instruction/data footprints.
"""

from repro.cpusim.cache import SharedCache, simulate_shared_cache
from repro.cpusim.codefootprint import CodeFootprintTracer
from repro.cpusim.coherence import CoherenceStats, simulate_coherent_caches
from repro.cpusim.machine import HostArray, Machine, ThreadCtx
from repro.cpusim.metrics import CPUMetrics, characterize_trace
from repro.cpusim.reuse import miss_rate_curve, reuse_distance_histogram
from repro.cpusim.sharing import SharingStats, analyze_sharing, sharing_at_size
from repro.cpusim.workingset import detect_working_sets, fine_miss_curve

__all__ = [
    "Machine",
    "ThreadCtx",
    "HostArray",
    "SharedCache",
    "simulate_shared_cache",
    "CoherenceStats",
    "simulate_coherent_caches",
    "miss_rate_curve",
    "reuse_distance_histogram",
    "SharingStats",
    "analyze_sharing",
    "sharing_at_size",
    "detect_working_sets",
    "fine_miss_curve",
    "CPUMetrics",
    "characterize_trace",
    "CodeFootprintTracer",
]
