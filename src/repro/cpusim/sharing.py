"""Sharing-behaviour analysis.

Following Bienia et al. [4] (whose methodology the paper adopts), a line
is *shared* if more than one thread accesses it during the run.  The
analyzer reports the fraction of touched lines that are shared, the
fraction of accesses that go to shared lines, write-sharing, and a
producer-consumer communication measure (reads of a line last written by
a different thread).
"""

from __future__ import annotations

import dataclasses
from typing import Dict

import numpy as np


@dataclasses.dataclass
class SharingStats:
    total_lines: int
    shared_lines: int
    total_accesses: int
    shared_accesses: int
    write_shared_lines: int
    consumer_reads: int
    mean_sharers: float

    @property
    def frac_lines_shared(self) -> float:
        return self.shared_lines / self.total_lines if self.total_lines else 0.0

    @property
    def shared_access_ratio(self) -> float:
        """Accesses to shared lines per memory reference."""
        if not self.total_accesses:
            return 0.0
        return self.shared_accesses / self.total_accesses

    @property
    def frac_lines_write_shared(self) -> float:
        """Lines written by one thread and accessed by another."""
        return (
            self.write_shared_lines / self.total_lines if self.total_lines else 0.0
        )

    @property
    def consumer_read_ratio(self) -> float:
        """Reads of another thread's data per memory reference."""
        if not self.total_accesses:
            return 0.0
        return self.consumer_reads / self.total_accesses

    def features(self) -> Dict[str, float]:
        return {
            "frac_lines_shared": self.frac_lines_shared,
            "shared_access_ratio": self.shared_access_ratio,
            "frac_lines_write_shared": self.frac_lines_write_shared,
            "consumer_read_ratio": self.consumer_read_ratio,
            "mean_sharers": self.mean_sharers,
        }


def analyze_sharing(
    addrs: np.ndarray,
    tids: np.ndarray,
    writes: np.ndarray,
    line_bytes: int = 64,
) -> SharingStats:
    """Whole-run sharing statistics of a merged multithreaded trace."""
    if addrs.size == 0:
        return SharingStats(0, 0, 0, 0, 0, 0, 0.0)
    lines = addrs // line_bytes
    tids = tids.astype(np.int64)

    # Distinct (line, tid) pairs -> sharer count per line.
    n_tids = int(tids.max()) + 1
    pair = lines * n_tids + tids
    uniq_pairs = np.unique(pair)
    pair_lines = uniq_pairs // n_tids
    uniq_lines, sharer_counts = np.unique(pair_lines, return_counts=True)
    shared_line_set = uniq_lines[sharer_counts > 1]

    # Accesses to shared lines (sorted membership test).
    is_shared = np.isin(lines, shared_line_set, assume_unique=False)
    shared_accesses = int(is_shared.sum())

    # Write-shared: line written at least once AND shared.
    written_lines = np.unique(lines[writes])
    write_shared = int(np.isin(written_lines, shared_line_set).sum())

    # Producer-consumer reads: read of a line last written by another tid.
    if addrs.size >= 256:
        from repro.analytics.sharing import count_consumer_reads_batch

        consumer_reads = count_consumer_reads_batch(lines, tids, writes)
    else:
        consumer_reads = _count_consumer_reads(lines, tids, writes)

    return SharingStats(
        total_lines=int(uniq_lines.size),
        shared_lines=int(shared_line_set.size),
        total_accesses=int(addrs.size),
        shared_accesses=shared_accesses,
        write_shared_lines=write_shared,
        consumer_reads=consumer_reads,
        mean_sharers=float(sharer_counts.mean()),
    )


def _count_consumer_reads(
    lines: np.ndarray, tids: np.ndarray, writes: np.ndarray
) -> int:
    """Reads whose line's most recent writer is a different thread.

    Scalar oracle for
    :func:`repro.analytics.sharing.count_consumer_reads_batch`.
    """
    last_writer: Dict[int, int] = {}
    count = 0
    seq_l = lines.tolist()
    seq_t = tids.tolist()
    seq_w = writes.tolist()
    for line, tid, w in zip(seq_l, seq_t, seq_w):
        if w:
            last_writer[line] = tid
        else:
            lw = last_writer.get(line)
            if lw is not None and lw != tid:
                count += 1
    return count


@dataclasses.dataclass
class SizeSharing:
    """Sharing observed *within cache residency* at one cache size.

    Bienia et al. classify the lines held in a cache of each size as
    shared or private and count accesses to shared lines — so sharing is
    a function of cache size: a small cache evicts a line before the
    second thread arrives, hiding the sharing; a large cache exposes it.
    """

    size_bytes: int
    total_accesses: int
    shared_accesses: int       # hit on a line another thread also touched
    lifetimes: int             # line install..evict intervals observed
    shared_lifetimes: int      # lifetimes during which >1 thread touched

    @property
    def shared_access_ratio(self) -> float:
        if not self.total_accesses:
            return 0.0
        return self.shared_accesses / self.total_accesses

    @property
    def frac_lifetimes_shared(self) -> float:
        if not self.lifetimes:
            return 0.0
        return self.shared_lifetimes / self.lifetimes


def sharing_at_size(
    addrs: np.ndarray,
    tids: np.ndarray,
    size_bytes: int,
    assoc: int = 4,
    line_bytes: int = 64,
) -> SizeSharing:
    """Residency-windowed sharing through a set-associative LRU cache.

    An access is *shared* when its line is resident and some other
    thread has touched it since the line was installed.  A lifetime
    (install → evict, or install → end of trace) is shared when more
    than one thread touched the line during it.

    Long traces over many sets run on the batch way-matrix engine;
    :func:`sharing_at_size_scalar` is the per-access oracle.
    """
    n_sets = max(1, (size_bytes // line_bytes) // assoc)
    if addrs.size >= 4096:
        from repro.analytics.sharing import sharing_at_size_batch

        lines = (addrs // line_bytes).astype(np.int64)
        result = sharing_at_size_batch(
            lines, tids.astype(np.int64), n_sets, assoc
        )
        if result is not None:
            shared_accesses, lifetimes, shared_lifetimes = result
            return SizeSharing(
                size_bytes=size_bytes,
                total_accesses=int(addrs.size),
                shared_accesses=shared_accesses,
                lifetimes=lifetimes,
                shared_lifetimes=shared_lifetimes,
            )
    return sharing_at_size_scalar(addrs, tids, size_bytes, assoc, line_bytes)


def sharing_at_size_chunked(
    iter_chunks,
    size_bytes: int,
    assoc: int = 4,
    line_bytes: int = 64,
) -> SizeSharing:
    """Streaming residency-windowed sharing over (addr, tid, ...) chunks.

    ``iter_chunks`` is a zero-argument callable returning the chunk
    iterator.  The way-matrix engine's cache state carries between
    chunks and still-resident lifetimes close after the last one, so the
    result is bit-identical to the dense :func:`sharing_at_size`.
    """
    from repro.analytics.sharing import sharing_at_size_batch

    n_sets = max(1, (size_bytes // line_bytes) // assoc)
    total = shared = lifetimes = shared_lt = 0
    state = None
    for chunk in iter_chunks():
        addrs, tids = chunk[0], chunk[1]
        lines = (addrs // line_bytes).astype(np.int64)
        result = sharing_at_size_batch(
            lines, tids.astype(np.int64), n_sets, assoc,
            force=True, state=state, return_state=True,
        )
        if result is None:  # >= 64 thread ids: dense scalar fallback
            cols = [np.concatenate(c) for c in zip(*iter_chunks())]
            return sharing_at_size_scalar(
                cols[0], cols[1], size_bytes, assoc, line_bytes
            )
        s, lt, slt, state = result
        total += int(addrs.size)
        shared += s
        lifetimes += lt
        shared_lt += slt
    if state is not None:
        lt, slt = state.close_lifetimes()
        lifetimes += lt
        shared_lt += slt
    return SizeSharing(
        size_bytes=size_bytes,
        total_accesses=total,
        shared_accesses=shared,
        lifetimes=lifetimes,
        shared_lifetimes=shared_lt,
    )


def sharing_at_size_scalar(
    addrs: np.ndarray,
    tids: np.ndarray,
    size_bytes: int,
    assoc: int = 4,
    line_bytes: int = 64,
) -> SizeSharing:
    """Per-access reference walk — the oracle for the batch engine."""
    n_sets = max(1, (size_bytes // line_bytes) // assoc)
    sets: Dict[int, list] = {}          # set -> [line, ...] MRU last
    sharers: Dict[int, set] = {}        # resident line -> tids this lifetime
    shared_accesses = 0
    lifetimes = 0
    shared_lifetimes = 0
    lines = (addrs // line_bytes).tolist()
    tid_list = tids.tolist()
    for line, tid in zip(lines, tid_list):
        s = line % n_sets
        ways = sets.setdefault(s, [])
        if line in ways:
            ways.remove(line)
            ways.append(line)
            seen = sharers[line]
            if (tid not in seen and seen) or len(seen) > 1:
                shared_accesses += 1
            seen.add(tid)
        else:
            ways.append(line)
            sharers[line] = {tid}
            if len(ways) > assoc:
                victim = ways.pop(0)
                lifetimes += 1
                if len(sharers.pop(victim)) > 1:
                    shared_lifetimes += 1
    # Close out still-resident lifetimes.
    for seen in sharers.values():
        lifetimes += 1
        if len(seen) > 1:
            shared_lifetimes += 1
    return SizeSharing(
        size_bytes=size_bytes,
        total_accesses=len(lines),
        shared_accesses=shared_accesses,
        lifetimes=lifetimes,
        shared_lifetimes=shared_lifetimes,
    )
