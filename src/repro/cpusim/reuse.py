"""Reuse-distance (Mattson stack) profiling.

One pass over the trace yields the LRU stack-distance histogram, from
which the miss rate of a fully-associative LRU cache of *any* size
follows (inclusion property): an access misses iff its reuse distance
(number of distinct lines touched since the previous access to the same
line) is at least the cache's line capacity.  The paper's caches are
4-way set-associative; the LRU-stack curve is a standard, close
approximation (validated against the exact simulator in the test suite).

Two implementations:

- the classic last-use + Fenwick-tree walk (O(log n) per access, pure
  Python) — kept as the oracle, and used for short traces;
- the batch algorithm of :mod:`repro.analytics.reuse` (offline
  previous-occurrence + sort-based counting, all numpy) — bit-identical
  and an order of magnitude faster on long traces.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.cpusim.cache import PAPER_CACHE_SIZES

#: Traces at least this long go through the vectorized path.
_BATCH_THRESHOLD = 256


class _Fenwick:
    """Binary indexed tree over access timestamps."""

    def __init__(self, n: int):
        self.n = n
        self.tree = [0] * (n + 1)

    def add(self, i: int, delta: int) -> None:
        i += 1
        while i <= self.n:
            self.tree[i] += delta
            i += i & (-i)

    def prefix(self, i: int) -> int:
        """Sum of positions [0, i]."""
        i += 1
        s = 0
        while i > 0:
            s += self.tree[i]
            i -= i & (-i)
        return s


def reuse_distance_histogram_scalar(
    addrs: np.ndarray, line_bytes: int = 64
) -> Tuple[np.ndarray, int]:
    """Scalar (Fenwick) stack-distance histogram — the test oracle."""
    lines = (addrs // line_bytes).astype(np.int64)
    n = lines.size
    if n == 0:
        return np.zeros(1, dtype=np.int64), 0
    fen = _Fenwick(n)
    last_use: Dict[int, int] = {}
    hist: Dict[int, int] = {}
    cold = 0
    seq = lines.tolist()
    for t, line in enumerate(seq):
        prev = last_use.get(line)
        if prev is None:
            cold += 1
        else:
            # Distinct lines since prev = markers in (prev, t).
            d = fen.prefix(t - 1) - fen.prefix(prev)
            hist[d] = hist.get(d, 0) + 1
            fen.add(prev, -1)
        fen.add(t, 1)
        last_use[line] = t
    if hist:
        out = np.zeros(max(hist) + 1, dtype=np.int64)
        for d, c in hist.items():
            out[d] = c
    else:
        out = np.zeros(1, dtype=np.int64)
    return out, cold


def reuse_distance_histogram(
    addrs: np.ndarray, line_bytes: int = 64
) -> Tuple[np.ndarray, int]:
    """Histogram of LRU stack distances of a byte-address trace.

    Returns ``(distances_hist, cold_misses)`` where ``distances_hist[d]``
    counts accesses with reuse distance exactly ``d`` (d = number of
    distinct other lines touched since the previous access to the line).
    Cold (first-touch) accesses are counted separately.
    """
    if addrs.size >= _BATCH_THRESHOLD:
        from repro.analytics.reuse import reuse_distance_histogram_batch

        return reuse_distance_histogram_batch(addrs, line_bytes)
    return reuse_distance_histogram_scalar(addrs, line_bytes)


def curve_from_histogram(
    hist: np.ndarray,
    cold: int,
    sizes: Tuple[int, ...] = PAPER_CACHE_SIZES,
    line_bytes: int = 64,
) -> Dict[int, float]:
    """Miss rates at each cache size from a stack-distance histogram.

    The inclusion property makes one histogram serve every size: a cache
    holding ``L`` lines misses exactly the accesses with distance >= L,
    plus all cold misses.  Shared by :func:`miss_rate_curve` and the
    fine-grid curve of :mod:`repro.cpusim.workingset`, and the streaming
    entry point for :class:`repro.analytics.chunked.StreamingReuse`.
    """
    n = int(hist.sum()) + cold
    if n == 0:
        return {size: 0.0 for size in sizes}
    cum = np.cumsum(hist)  # cum[d] = accesses with distance <= d
    total_hist = int(hist.sum())
    out = {}
    for size in sizes:
        capacity = size // line_bytes
        if capacity <= 0:
            hits = 0
        elif capacity - 1 >= hist.size:
            hits = total_hist
        else:
            hits = int(cum[capacity - 1])
        out[size] = (n - hits) / n
    return out


def miss_rate_curve(
    addrs: np.ndarray,
    sizes: Tuple[int, ...] = PAPER_CACHE_SIZES,
    line_bytes: int = 64,
) -> Dict[int, float]:
    """Miss rate (misses per memory reference) at each cache size.

    Computed from a single reuse-distance pass: for a cache holding ``L``
    lines, accesses with stack distance >= L miss, plus all cold misses.
    """
    hist, cold = reuse_distance_histogram(addrs, line_bytes)
    return curve_from_histogram(hist, cold, sizes, line_bytes)


def miss_rate_curve_chunked(
    iter_chunks,
    sizes: Tuple[int, ...] = PAPER_CACHE_SIZES,
    line_bytes: int = 64,
) -> Dict[int, float]:
    """Streaming miss-rate curve over (addr, ...) column chunks.

    ``iter_chunks`` is a zero-argument callable returning the chunk
    iterator; results are bit-identical to :func:`miss_rate_curve` on
    the concatenated trace.
    """
    from repro.analytics.chunked import reuse_histogram_chunked

    hist, cold = reuse_histogram_chunked(iter_chunks, line_bytes)
    return curve_from_histogram(hist, cold, sizes, line_bytes)
