"""Tests for the SIMT DSL: masking, control flow, memory accounting."""

import numpy as np
import pytest

from repro.gpusim import GPU, GPUConfig
from repro.gpusim.dsl import KernelFault
from repro.gpusim.isa import Category, Space


def fresh_gpu():
    return GPU(GPUConfig.sim_default())


class TestBasicExecution:
    def test_vector_add(self):
        gpu = fresh_gpu()
        n = 300
        a = gpu.to_device(np.arange(n, dtype=np.float32))
        out = gpu.alloc(n)

        def k(ctx, a, out):
            i = ctx.gtid
            with ctx.masked(i < n):
                ctx.store(out, i, ctx.load(a, i) + 1)

        gpu.launch(k, 3, 128, a, out)
        np.testing.assert_allclose(out.to_host(), np.arange(n) + 1)

    def test_tail_lanes_masked(self):
        gpu = fresh_gpu()
        n = 100  # grid covers 128 threads
        out = gpu.alloc(128, dtype=np.int64)

        def k(ctx, out):
            i = ctx.gtid
            with ctx.masked(i < n):
                ctx.store(out, i, 1)

        gpu.launch(k, 1, 128, out)
        assert out.to_host()[:n].sum() == n
        assert out.to_host()[n:].sum() == 0

    def test_2d_geometry(self):
        gpu = fresh_gpu()
        out = gpu.alloc((8, 8), dtype=np.int64)

        def k(ctx, out):
            ctx.store(out, ctx.gy * 8 + ctx.gx, ctx.gy * 100 + ctx.gx)

        gpu.launch(k, (2, 2), (4, 4), out)
        expect = np.arange(8)[:, None] * 100 + np.arange(8)[None, :]
        np.testing.assert_array_equal(out.to_host(), expect)

    def test_block_size_validation(self):
        gpu = fresh_gpu()
        with pytest.raises(ValueError):
            gpu.launch(lambda ctx: None, 1, 2048)


class TestControlFlow:
    def test_if_else_covers_all_lanes(self):
        gpu = fresh_gpu()
        out = gpu.alloc(64, dtype=np.int64)

        def k(ctx, out):
            cond = ctx.tidx % 2 == 0
            ctx.if_else(
                cond,
                lambda: ctx.store(out, ctx.tidx, 1),
                lambda: ctx.store(out, ctx.tidx, 2),
            )

        gpu.launch(k, 1, 64, out)
        vals = out.to_host()
        assert (vals[0::2] == 1).all() and (vals[1::2] == 2).all()

    def test_while_per_lane_trip_counts(self):
        gpu = fresh_gpu()
        out = gpu.alloc(32, dtype=np.int64)

        def k(ctx, out):
            count = ctx.const(0, dtype=np.int64)
            limit = ctx.tidx  # lane i iterates i times

            def cond():
                return count < limit

            for _ in ctx.while_(cond):
                ctx.alu(1)
                # Lane-state updates must be masked explicitly: plain
                # numpy assignment touches every lane.
                count = np.where(ctx.mask, count + 1, count)
            ctx.store(out, ctx.tidx, count)

        gpu.launch(k, 1, 32, out)
        np.testing.assert_array_equal(out.to_host(), np.arange(32))

    def test_range_counted_loop(self):
        gpu = fresh_gpu()
        out = gpu.alloc(16, dtype=np.int64)

        def k(ctx, out):
            acc = ctx.const(0, dtype=np.int64)
            for _ in ctx.range_(5):
                acc = acc + 2
            ctx.store(out, ctx.tidx, acc)

        gpu.launch(k, 1, 16, out)
        assert (out.to_host() == 10).all()

    def test_nested_masks_intersect(self):
        gpu = fresh_gpu()
        out = gpu.alloc(64, dtype=np.int64)

        def k(ctx, out):
            with ctx.masked(ctx.tidx < 32):
                with ctx.masked(ctx.tidx >= 16):
                    ctx.store(out, ctx.tidx, 1)

        gpu.launch(k, 1, 64, out)
        vals = out.to_host()
        assert vals[16:32].sum() == 16
        assert vals[:16].sum() == 0 and vals[32:].sum() == 0

    def test_select_charges_and_picks(self):
        gpu = fresh_gpu()
        out = gpu.alloc(32, dtype=np.int64)

        def k(ctx, out):
            v = ctx.select(ctx.tidx < 10, 7, 3)
            ctx.store(out, ctx.tidx, v)

        gpu.launch(k, 1, 32, out)
        vals = out.to_host()
        assert (vals[:10] == 7).all() and (vals[10:] == 3).all()


class TestAccounting:
    def test_occupancy_histogram_full_warps(self):
        gpu = fresh_gpu()

        def k(ctx):
            ctx.alu(1)

        gpu.launch(k, 1, 64)
        hist = gpu.trace.occupancy_hist
        assert hist[31] == 2 and hist[:31].sum() == 0

    def test_occupancy_histogram_partial(self):
        gpu = fresh_gpu()

        def k(ctx):
            with ctx.masked(ctx.tidx < 40):
                ctx.alu(1)

        gpu.launch(k, 1, 64)
        lt = gpu.trace.launches[0]
        # ALU charged at one full warp (32) and one 8-lane warp; plus the
        # branch from masked() at both full warps.
        assert lt.occupancy_hist[31] >= 1
        assert lt.occupancy_hist[7] == 1

    def test_thread_vs_warp_instructions(self):
        gpu = fresh_gpu()

        def k(ctx):
            ctx.alu(3)

        gpu.launch(k, 2, 32)
        tr = gpu.trace
        assert tr.issued_warp_insts == 6       # 3 insts x 2 blocks
        assert tr.thread_insts == 6 * 32

    def test_mem_mix_spaces(self):
        gpu = fresh_gpu()
        g = gpu.alloc(32)
        t = gpu.to_texture(np.zeros(32, dtype=np.float32))
        c = gpu.to_const(np.zeros(32, dtype=np.float32))

        def k(ctx, g, t, c):
            ctx.load(g, ctx.tidx)
            ctx.load(t, ctx.tidx)
            ctx.load(c, ctx.tidx)
            s = ctx.shared(32, dtype=np.float32)
            ctx.store(s, ctx.tidx, 0.0)

        gpu.launch(k, 1, 32, g, t, c)
        mix = gpu.trace.mem_mix()
        assert mix["global"] == pytest.approx(0.25)
        assert mix["tex"] == pytest.approx(0.25)
        assert mix["const"] == pytest.approx(0.25)
        assert mix["shared"] == pytest.approx(0.25)

    def test_shared_bank_conflicts_charged_per_warp(self):
        gpu = fresh_gpu()

        def k(ctx):
            s = ctx.shared(64 * 32, dtype=np.float32)
            # Stride-32 words: every lane in a warp hits bank 0.
            ctx.store(s, ctx.tidx * 32, 1.0)

        gpu.launch(k, 1, 64, )
        lt = gpu.trace.launches[0]
        # Two warps, each with a 32-way conflict -> 31 replays each.
        assert lt.shared_replays == 62

    def test_global_transactions_coalesced(self):
        gpu = fresh_gpu()
        g = gpu.alloc(512, dtype=np.float32)

        def k(ctx, g):
            ctx.load(g, ctx.tidx)           # unit stride: 2 tx/warp
            ctx.load(g, ctx.tidx * 16)      # 64B stride: 32 tx/warp

        gpu.launch(k, 1, 32, g)
        lt = gpu.trace.launches[0]
        assert lt.n_transactions == 2 + 32

    def test_uniform_const_no_serialization(self):
        gpu = fresh_gpu()
        c = gpu.to_const(np.zeros(8, dtype=np.float32))

        def k(ctx, c):
            ctx.load(c, 3)

        gpu.launch(k, 1, 32, c)
        assert gpu.trace.launches[0].const_serializations == 0

    def test_divergent_const_serializes(self):
        gpu = fresh_gpu()
        c = gpu.to_const(np.zeros(1024, dtype=np.float32))

        def k(ctx, c):
            ctx.load(c, ctx.tidx * 16)  # several 64B lines per warp

        gpu.launch(k, 1, 32, c)
        assert gpu.trace.launches[0].const_serializations > 0

    def test_tex_cache_hits_on_reuse(self):
        gpu = fresh_gpu()
        t = gpu.to_texture(np.zeros(64, dtype=np.float32))

        def k(ctx, t):
            ctx.load(t, ctx.tidx)
            ctx.load(t, ctx.tidx)  # second access hits

        gpu.launch(k, 1, 32, t)
        lt = gpu.trace.launches[0]
        assert lt.tex_hits >= 32


class TestMemorySemantics:
    def test_out_of_bounds_faults(self):
        gpu = fresh_gpu()
        g = gpu.alloc(16)

        def k(ctx, g):
            ctx.load(g, ctx.tidx)  # lanes 16..31 out of bounds

        with pytest.raises(KernelFault):
            gpu.launch(k, 1, 32, g)

    def test_masked_oob_is_safe(self):
        gpu = fresh_gpu()
        g = gpu.alloc(16)

        def k(ctx, g):
            with ctx.masked(ctx.tidx < 16):
                ctx.load(g, ctx.tidx)

        gpu.launch(k, 1, 32, g)  # should not raise

    def test_atomic_add_with_duplicates(self):
        gpu = fresh_gpu()
        g = gpu.alloc(1, dtype=np.int64)

        def k(ctx, g):
            ctx.atomic_add(g, ctx.const(0, dtype=np.int64), 1)

        gpu.launch(k, 1, 64, g)
        assert g.to_host()[0] == 64

    def test_block_reduce_sum(self):
        gpu = fresh_gpu()
        out = gpu.alloc(1, dtype=np.float64)

        def k(ctx, out):
            smem = ctx.shared(ctx.nthreads, dtype=np.float64)
            total = ctx.block_reduce_sum(ctx.tidx.astype(np.float64), smem)
            with ctx.masked(ctx.tidx == 0):
                ctx.store(out, ctx.const(0, np.int64), total)

        gpu.launch(k, 1, 128, out)
        assert out.to_host()[0] == pytest.approx(sum(range(128)))

    def test_shared_fresh_per_block(self):
        gpu = fresh_gpu()
        out = gpu.alloc(4, dtype=np.float32)

        def k(ctx, out):
            s = ctx.shared(32, dtype=np.float32)
            v = ctx.load(s, ctx.tidx)  # zero-initialized every block
            with ctx.masked(ctx.tidx == 0):
                ctx.store(out, ctx.const(ctx.bidx, np.int64), v)
            ctx.store(s, ctx.tidx, 99.0)

        gpu.launch(k, 4, 32, out)
        assert (out.to_host() == 0).all()

    def test_reset_trace(self):
        gpu = fresh_gpu()
        gpu.launch(lambda ctx: ctx.alu(1), 1, 32)
        first = gpu.reset_trace()
        assert first.issued_warp_insts > 0
        assert gpu.trace.issued_warp_insts == 0
