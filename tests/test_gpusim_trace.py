"""Tests for trace accumulation and aggregate views."""

import numpy as np
import pytest

from repro.gpusim.isa import Category, Space
from repro.gpusim.trace import KernelTrace, LaunchTrace


class TestLaunchTrace:
    def _lt(self):
        tr = KernelTrace("t")
        return tr.new_launch("k", (4, 2), (64, 2), 24), tr

    def test_geometry(self):
        lt, _ = self._lt()
        assert lt.n_blocks == 8
        assert lt.threads_per_block == 128

    def test_charge_skips_empty_warps(self):
        lt, _ = self._lt()
        lt.charge_warps(Category.ALU, np.array([32, 0, 5, 0]))
        assert lt.issued_warp_insts == 2
        assert lt.thread_insts == 37
        assert lt.occupancy_hist[31] == 1
        assert lt.occupancy_hist[4] == 1

    def test_repeat_multiplies(self):
        lt, _ = self._lt()
        lt.charge_warps(Category.MEM, np.array([16]), repeat=10)
        assert lt.issued_warp_insts == 10
        assert lt.thread_insts == 160
        assert lt.occupancy_hist[15] == 10

    def test_transactions_concatenate(self):
        lt, _ = self._lt()
        lt.record_transactions(np.array([0, 64]), 3, False)
        lt.record_transactions(np.array([128]), 5, True)
        addrs, blocks, stores = lt.transactions()
        np.testing.assert_array_equal(addrs, [0, 64, 128])
        np.testing.assert_array_equal(blocks, [3, 3, 5])
        np.testing.assert_array_equal(stores, [False, False, True])
        assert lt.n_transactions == 3
        assert lt.dram_bytes == 3 * 64

    def test_transactions_cache_invalidated_on_append(self):
        lt, _ = self._lt()
        lt.record_transactions(np.array([0]), 0, False)
        assert lt.n_transactions == 1
        lt.record_transactions(np.array([64]), 0, False)
        assert lt.n_transactions == 2

    def test_empty_transactions(self):
        lt, _ = self._lt()
        addrs, blocks, stores = lt.transactions()
        assert addrs.size == blocks.size == stores.size == 0


class TestKernelTraceAggregates:
    def _trace(self):
        tr = KernelTrace("app")
        a = tr.new_launch("k1", (1, 1), (32, 1), 16)
        a.charge_warps(Category.ALU, np.array([32]), repeat=10)
        a.charge_mem_space(Space.GLOBAL, 4)
        a.charge_mem_space(Space.LOCAL, 2)
        a.charge_warps(Category.MEM, np.array([32]), repeat=6)
        b = tr.new_launch("k2", (1, 1), (32, 1), 16)
        b.charge_warps(Category.BRANCH, np.array([16]), repeat=4)
        b.charge_mem_space(Space.SHARED, 6)
        b.charge_warps(Category.MEM, np.array([16]), repeat=6)
        return tr

    def test_totals(self):
        tr = self._trace()
        assert tr.n_launches == 2
        assert tr.issued_warp_insts == 26
        assert tr.thread_insts == 10 * 32 + 6 * 32 + 4 * 16 + 6 * 16

    def test_mem_mix_merges_global_and_local(self):
        mix = self._trace().mem_mix()
        assert mix["global"] == pytest.approx(6 / 12)
        assert mix["shared"] == pytest.approx(6 / 12)
        assert sum(mix.values()) == pytest.approx(1.0)

    def test_mem_mix_empty(self):
        mix = KernelTrace("empty").mem_mix()
        assert all(v == 0.0 for v in mix.values())

    def test_occupancy_buckets_sum(self):
        buckets = self._trace().occupancy_buckets()
        assert sum(buckets.values()) == pytest.approx(1.0)
        assert buckets["25-32"] == pytest.approx(16 / 26)
        assert buckets["9-16"] == pytest.approx(10 / 26)

    def test_mean_occupancy(self):
        tr = self._trace()
        expect = (16 * 32 + 10 * 16) / 26
        assert tr.mean_warp_occupancy == pytest.approx(expect)

    def test_category_mix(self):
        mix = self._trace().category_mix()
        assert mix["alu"] == pytest.approx(10 / 26)
        assert mix["mem"] == pytest.approx(12 / 26)
        assert mix["branch"] == pytest.approx(4 / 26)

    def test_empty_buckets(self):
        buckets = KernelTrace("e").occupancy_buckets()
        assert sum(buckets.values()) == 0.0
        assert KernelTrace("e").mean_warp_occupancy == 0.0


class TestAggregateMemoization:
    def test_aggregates_cached_until_new_data(self):
        tr = KernelTrace("memo")
        a = tr.new_launch("k", (2, 1), (32, 1), 16)
        a.charge_warps(Category.ALU, np.array([32, 32]))
        first = tr.thread_insts
        assert tr.thread_insts is first or tr.thread_insts == first
        assert tr._agg_cache  # memoized after first access
        # More data on an *existing* launch must invalidate the cache.
        a.charge_warps(Category.ALU, np.array([32, 32]))
        assert tr.thread_insts == first + 64

    def test_new_launch_invalidates(self):
        tr = KernelTrace("memo")
        a = tr.new_launch("k", (1, 1), (32, 1), 16)
        a.charge_warps(Category.MEM, np.array([16]))
        assert tr.issued_warp_insts == 1
        b = tr.new_launch("k2", (1, 1), (32, 1), 16)
        b.charge_warps(Category.MEM, np.array([16, 8]))
        assert tr.issued_warp_insts == 3

    def test_transactions_invalidate_dram_bytes(self):
        tr = KernelTrace("memo")
        a = tr.new_launch("k", (1, 1), (32, 1), 16)
        assert tr.dram_bytes == 0
        a.record_transactions(np.array([0, 64, 128]), 0, False)
        assert tr.n_transactions == 3
        assert tr.dram_bytes == 3 * 64

    def test_occupancy_hist_cached_copy_is_readonly(self):
        tr = KernelTrace("memo")
        a = tr.new_launch("k", (1, 1), (32, 1), 16)
        a.charge_warps(Category.ALU, np.array([32]))
        hist = tr.occupancy_hist
        assert not hist.flags.writeable
        with pytest.raises(ValueError):
            hist[0] = 99

    def test_transaction_stream_matches_per_warp_recording(self):
        """record_transaction_stream is the batch engine's entry point;
        appending a pre-assembled stream must be indistinguishable from
        the equivalent sequence of record_transactions calls."""
        a = LaunchTrace("k", (2, 1), (32, 1), 16)
        a.record_transactions(np.array([0, 64]), 0, False)
        a.record_transactions(np.array([128]), 1, True)
        b = LaunchTrace("k", (2, 1), (32, 1), 16)
        b.record_transaction_stream(
            np.array([0, 64, 128]),
            np.array([0, 0, 1]),
            np.array([False, False, True]),
        )
        for u, v in zip(a.transactions(), b.transactions()):
            np.testing.assert_array_equal(u, v)
